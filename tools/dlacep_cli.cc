// dlacep — command-line front end to the library.
//
// Subcommands:
//   generate  --kind stock|synthetic --events N [--seed S] --out F.csv
//       Synthesize a dataset and write it as CSV.
//   run       --query Q --data F.csv [--engine nfa|tree|lazy|adaptive]
//       Evaluate a PQL query exactly and print matches + statistics.
//   compare   --query Q --train F.csv --test G.csv
//             [--filter event|window] [--hidden N] [--layers N]
//             [--epochs N] [--num_threads N] [--shards N]
//             [--save model.bin | --load model.bin]
//       Train (or load) a DLACEP filter on the training stream and
//       compare DLACEP against exact CEP on the test stream. With
//       --shards N the trained filter additionally streams the test
//       set through the sharded online runtime and the match sets are
//       cross-checked.
//   replay    --query Q --data F.csv [--filter KIND] [--rate R]
//             [--queue_capacity N] [--num_threads N | --shards N]
//             [--drop 0|1]
//       Stream a CSV through the online runtime (bounded ingest queue,
//       worker pool or thread-per-core shards, overload control) and
//       print RuntimeStats at exit. --shards N >= 1 selects the sharded
//       runtime (consistent-hash routing, per-shard rings, core
//       pinning; --pin 0 disables the pinning); output is byte-identical
//       to --num_threads mode at any N.
//   serve     --query Q [--events N] [--symbols N] [--seed S]
//             [--filter KIND] [--rate R] [--queue_capacity N] ...
//       Like replay, but the source is live stock-market simulation.
//
// Multi-query serving: replay/serve/compare accept --queries, either an
// integer N (register N copies of --query — exercises structural-twin
// dedup) or a semicolon-separated PQL list. Queries are registered in a
// runtime QueryRegistry and served by one shared pipeline (one NN trunk
// forward per window with per-query heads, shared CEP sub-plans);
// per-query match counts, sharing statistics, and the aggregate
// queries/sec x events/sec headline print at exit. --churn_every_ms MS
// (replay/serve) registers/unregisters a clone of query 0 on that
// cadence while the stream drains. compare --queries additionally
// cross-checks every served query against the batch evaluator and an
// isolated single-query online run.
//
// Online filter KINDs: pass (default), type-shed, random-shed, oracle,
// or event|window with --train F.csv (trains first, then streams).
//
// Fault tolerance (replay/serve): --deadline/--anomaly_streak tune the
// HealthGuard, --checkpoint_dir/--checkpoint_every/--restore drive
// crash-consistent snapshots, and --inject=... runs the deterministic
// fault harness (see runtime/fault_injection.h for the spec grammar).
//
// Per-query fault isolation (--queries serving): --query_pm_budget /
// --query_deadline_ms cap each shared-extraction engine chunk;
// --breaker_trips sets the circuit breaker's consecutive-abort trip
// threshold. A query that keeps blowing its budget is suspended alone
// (reported degraded) while every other query keeps exact answers.
// --inject pathological_query registers a combinatorial-blowup pattern
// mid-run and churn_storm hammers register/unregister; replay's
// --verify_isolated 1 re-runs each initial query in isolation and exits
// nonzero unless non-degraded served match sets are byte-identical.
//
// Notes: --load restores network weights only; the featurizer is refit
// from --train, so pass the same training stream used with --save.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cep/engine.h"
#include "dlacep/event_filter.h"
#include "dlacep/multi_pattern.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "dlacep/shedding_filter.h"
#include "dlacep/window_filter.h"
#include "nn/serialize.h"
#include "obs/export.h"
#include "obs/stages.h"
#include "pattern/parser.h"
#include "runtime/fault_injection.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "serve/server.h"
#include "stream/csv_io.h"
#include "stream/generator.h"
#include "stream/stocksim.h"

namespace dlacep {
namespace {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        ok_ = false;
        return;
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    ok_ = argc % 2 == 0;
    if (!ok_) std::fprintf(stderr, "flags must come in --name value pairs\n");
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  long GetInt(const std::string& name, long fallback) const {
    return Has(name) ? std::strtol(Get(name).c_str(), nullptr, 10)
                     : fallback;
  }
  double GetDouble(const std::string& name, double fallback) const {
    return Has(name) ? std::strtod(Get(name).c_str(), nullptr) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dlacep generate --kind stock|synthetic --events N "
               "[--seed S] --out F.csv\n"
               "  dlacep run --query Q --data F.csv "
               "[--engine nfa|tree|lazy|adaptive]\n"
               "  dlacep compare --query Q --train F.csv --test G.csv\n"
               "       [--filter event|window] [--hidden N] [--layers N]"
               " [--epochs N]\n"
               "       [--threshold P] [--num_threads N] [--batch_size N]"
               " [--shards N]\n"
               "       [--save model.bin | --load model.bin]\n"
               "  dlacep replay --query Q --data F.csv [--filter KIND]\n"
               "       [--rate EV_PER_SEC] [--queue_capacity N]"
               " [--num_threads N | --shards N [--pin 0|1]]\n"
               "       [--batch_size N] [--batch_timeout_ms MS]\n"
               "       [--drop 0|1] [--overload 0|1] [--train F.csv]\n"
               "  dlacep serve --query Q [--events N] [--symbols N]"
               " [--seed S]\n"
               "       [--filter KIND] [--rate EV_PER_SEC]"
               " [--queue_capacity N]\n"
               "       [--num_threads N | --shards N [--pin 0|1]]"
               " [--batch_size N] [--batch_timeout_ms MS]\n"
               "       [--drop 0|1] [--overload 0|1]"
               " [--train F.csv]\n"
               "  (online filter KINDs: pass | type-shed | random-shed |"
               " oracle | event | window)\n"
               "  multi-query serving (replay/serve/compare):\n"
               "       [--queries N | --queries 'Q1;Q2;...']"
               " [--engine nfa|tree|lazy|adaptive]\n"
               "       [--churn_every_ms MS]   (replay/serve only)\n"
               "  observability flags (replay/serve):\n"
               "       [--metrics_out FILE(.prom|.json)]"
               " [--metrics_every SEC]\n"
               "  fault-tolerance flags (replay/serve):\n"
               "       [--health 0|1] [--deadline SEC] [--anomaly_streak N]\n"
               "       [--probe_period N] [--probe_passes N]\n"
               "       [--checkpoint_dir DIR] [--checkpoint_every N]"
               " [--restore 0|1]\n"
               "       [--inject nan_burst[:B[:C]],model_corrupt,"
               "corrupt_source[:P],\n"
               "                wedge[:W[:S]],source_fail[:AT[:N]],\n"
               "                pathological_query[:AT[:W]],"
               "churn_storm[:N]]\n"
               "  per-query isolation flags (--queries serving):\n"
               "       [--query_pm_budget N] [--query_deadline_ms MS]"
               " [--breaker_trips N]\n"
               "       [--verify_isolated 0|1]   (replay only)\n");
  return 2;
}

int Generate(const Args& args) {
  const std::string kind = args.Get("kind", "synthetic");
  const size_t events =
      static_cast<size_t>(args.GetInt("events", 10000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();

  EventStream stream = [&] {
    if (kind == "stock") {
      StockSimConfig config;
      config.num_events = events;
      config.seed = seed;
      return GenerateStockStream(config);
    }
    SyntheticConfig config;
    config.num_events = events;
    config.seed = seed;
    return GenerateSynthetic(config);
  }();
  const Status status = WriteCsv(stream, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", stream.size(), out.c_str());
  return 0;
}

StatusOr<EventStream> LoadStream(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("missing CSV path");
  }
  return ReadCsv(path);
}

int RunQuery(const Args& args) {
  auto stream = LoadStream(args.Get("data"));
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto pattern = ParsePattern(args.Get("query"), stream.value().schema_ptr());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const std::string engine_name = args.Get("engine", "nfa");
  const EngineKind kind = engine_name == "tree"       ? EngineKind::kTree
                          : engine_name == "lazy"     ? EngineKind::kLazy
                          : engine_name == "adaptive" ? EngineKind::kAdaptive
                                                      : EngineKind::kNfa;
  auto engine = CreateEngine(kind, pattern.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  MatchSet matches;
  const Status status = engine.value()->Evaluate(
      {stream.value().events().data(), stream.value().size()}, &matches);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const EngineStats& stats = engine.value()->stats();
  std::printf("pattern        : %s\n", pattern.value().ToString().c_str());
  std::printf("engine         : %s\n", engine.value()->name().c_str());
  std::printf("events         : %llu\n",
              static_cast<unsigned long long>(stats.events_processed));
  std::printf("partial matches: %llu\n",
              static_cast<unsigned long long>(stats.partial_matches));
  std::printf("matches        : %zu\n", matches.size());
  std::printf("elapsed        : %.3fs (%.0f events/s)\n",
              stats.elapsed_seconds, stats.throughput());
  size_t shown = 0;
  for (const Match& match : matches) {
    if (++shown > 20) {
      std::printf("  ... (%zu more)\n", matches.size() - 20);
      break;
    }
    std::printf("  %s\n", match.ToString().c_str());
  }
  return 0;
}

int CompareMulti(const Args& args, const EventStream& train,
                 const EventStream& test);

int Compare(const Args& args) {
  auto train = LoadStream(args.Get("train"));
  auto test = LoadStream(args.Get("test"));
  if (!train.ok() || !test.ok()) {
    std::fprintf(stderr, "cannot load streams\n");
    return 1;
  }
  if (args.Has("queries")) {
    return CompareMulti(args, train.value(), test.value());
  }
  auto pattern = ParsePattern(args.Get("query"), train.value().schema_ptr());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }

  DlacepConfig config;
  config.network.hidden_dim =
      static_cast<size_t>(args.GetInt("hidden", 12));
  config.network.num_layers =
      static_cast<size_t>(args.GetInt("layers", 1));
  config.train.max_epochs =
      static_cast<size_t>(args.GetInt("epochs", 30));
  config.event_threshold = args.GetDouble("threshold", 0.35);
  config.window_threshold = config.event_threshold;
  config.num_threads = static_cast<size_t>(args.GetInt("num_threads", 1));
  config.batch_size = static_cast<size_t>(args.GetInt("batch_size", 1));
  const FilterKind kind = args.Get("filter", "event") == "window"
                              ? FilterKind::kWindowNetwork
                              : FilterKind::kEventNetwork;

  std::printf("building DLACEP (%s) on %zu training events...\n",
              FilterKindName(kind), train.value().size());
  BuiltDlacep built =
      BuildDlacep(pattern.value(), train.value(), kind, config);
  std::printf("  trained %zu epochs, held-out entity F1 %.3f\n",
              built.train_result.epochs_run, built.test_metrics.f1());

  // Optional persistence of the filter network.
  auto* trainable = dynamic_cast<TrainableFilter*>(&built.pipeline->filter());
  if (args.Has("load") && trainable != nullptr) {
    const Status status =
        LoadParameters(trainable->Params(), args.Get("load"));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    trainable->OnParamsChanged();  // repack frozen inference weights
    std::printf("  loaded weights from %s\n", args.Get("load").c_str());
  }
  if (args.Has("save") && trainable != nullptr) {
    const Status status =
        SaveParameters(trainable->Params(), args.Get("save"));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("  saved weights to %s\n", args.Get("save").c_str());
  }

  const ComparisonResult result =
      built.pipeline->CompareWithEcep(test.value());
  std::printf("\nexact matches   : %zu\n", result.exact_matches.size());
  std::printf("DLACEP matches  : %zu\n", result.dlacep.matches.size());
  std::printf("recall          : %.3f\n", result.quality.recall);
  std::printf("precision       : %.3f\n", result.quality.precision);
  std::printf("filtering ratio : %.1f%%\n",
              result.dlacep.filtering_ratio() * 100);
  std::printf("throughput gain : %.2fx\n", result.throughput_gain());

  // --shards N: stream the test set through the sharded online runtime
  // with the same trained filter and cross-check it against the batch
  // matches — the byte-equality contract, exercised end to end from the
  // CLI.
  const long shards = args.GetInt("shards", 0);
  if (shards > 0) {
    const Status online_ok = OnlineDlacep::ValidateForOnline(pattern.value());
    if (!online_ok.ok()) {
      std::fprintf(stderr, "--shards: %s\n", online_ok.ToString().c_str());
      return 1;
    }
    OnlineConfig online_config;
    online_config.num_shards = static_cast<size_t>(shards);
    online_config.batch_size = config.batch_size;
    online_config.overload.enabled = false;  // lossless, like the batch run
    OnlineDlacep online(pattern.value(), &built.pipeline->filter(),
                        online_config);
    ReplaySource source(&test.value());
    const OnlineResult streamed = online.Run(&source);
    const bool identical =
        streamed.matches.size() == result.dlacep.matches.size() &&
        streamed.matches.IntersectionSize(result.dlacep.matches) ==
            result.dlacep.matches.size();
    std::printf("\nsharded replay  : %ld shards\n", shards);
    std::printf("  events/sec    : %.0f\n",
                streamed.stats.elapsed_seconds > 0
                    ? static_cast<double>(test.value().size()) /
                          streamed.stats.elapsed_seconds
                    : 0.0);
    std::printf("  accounted     : %s\n",
                streamed.stats.Accounted() ? "yes" : "NO");
    std::printf("  matches equal : %s\n", identical ? "yes" : "NO");
    if (!identical || !streamed.stats.Accounted()) return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// Online streaming modes (serve / replay).

/// The online filter plus whatever owns it (a shedding baseline, the
/// oracle, or a whole trained pipeline for the learned kinds).
struct OnlineFilter {
  const StreamFilter* filter = nullptr;
  std::unique_ptr<StreamFilter> owned;
  std::unique_ptr<BuiltDlacep> built;  ///< keeps featurizer + filter alive
  TrainableFilter* trainable = nullptr;  ///< non-null for learned kinds
};

StatusOr<OnlineFilter> MakeOnlineFilter(const Args& args,
                                        const Pattern& pattern) {
  OnlineFilter out;
  const std::string kind = args.Get("filter", "pass");
  if (kind == "pass") {
    out.owned = std::make_unique<PassThroughFilter>();
  } else if (kind == "type-shed") {
    out.owned = std::make_unique<TypeSheddingFilter>(pattern);
  } else if (kind == "random-shed") {
    out.owned = std::make_unique<RandomSheddingFilter>(
        args.GetDouble("keep", 0.5),
        static_cast<uint64_t>(args.GetInt("seed", 1)));
  } else if (kind == "oracle") {
    out.owned = std::make_unique<OracleFilter>(pattern);
  } else if (kind == "event" || kind == "window") {
    auto train = LoadStream(args.Get("train"));
    if (!train.ok()) {
      return Status::InvalidArgument(
          "--filter " + kind + " needs --train F.csv (" +
          train.status().ToString() + ")");
    }
    DlacepConfig config;
    config.network.hidden_dim =
        static_cast<size_t>(args.GetInt("hidden", 12));
    config.network.num_layers =
        static_cast<size_t>(args.GetInt("layers", 1));
    config.train.max_epochs =
        static_cast<size_t>(args.GetInt("epochs", 30));
    config.event_threshold = args.GetDouble("threshold", 0.35);
    config.window_threshold = config.event_threshold;
    std::printf("training %s filter on %zu events...\n", kind.c_str(),
                train.value().size());
    out.built = std::make_unique<BuiltDlacep>(
        BuildDlacep(pattern, train.value(),
                    kind == "window" ? FilterKind::kWindowNetwork
                                     : FilterKind::kEventNetwork,
                    config));
    out.filter = &out.built->pipeline->filter();
    out.trainable =
        dynamic_cast<TrainableFilter*>(&out.built->pipeline->filter());
    return out;
  } else {
    return Status::InvalidArgument("unknown online filter kind: " + kind);
  }
  out.filter = out.owned.get();
  return out;
}

OnlineConfig MakeOnlineConfig(const Args& args) {
  OnlineConfig config;
  config.queue_capacity =
      static_cast<size_t>(args.GetInt("queue_capacity", 1024));
  config.num_threads = static_cast<size_t>(args.GetInt("num_threads", 1));
  config.drop_when_full = args.GetInt("drop", 0) != 0;
  config.overload.enabled = args.GetInt("overload", 1) != 0;
  config.drift.enabled = args.Has("drift_reference");
  config.drift.reference_rate = args.GetDouble("drift_reference", 0.0);
  config.health.enabled = args.GetInt("health", 1) != 0;
  config.health.mark_deadline_seconds = args.GetDouble("deadline", 0.0);
  config.health.anomaly_streak =
      static_cast<size_t>(args.GetInt("anomaly_streak", 0));
  config.health.probe_period =
      static_cast<size_t>(args.GetInt("probe_period", 8));
  config.health.probe_passes =
      static_cast<size_t>(args.GetInt("probe_passes", 3));
  config.checkpoint.dir = args.Get("checkpoint_dir");
  config.checkpoint.every_events =
      static_cast<uint64_t>(args.GetInt("checkpoint_every", 0));
  config.checkpoint.restore = args.GetInt("restore", 0) != 0;
  config.batch_size = static_cast<size_t>(args.GetInt("batch_size", 1));
  config.batch_timeout_ms = args.GetDouble("batch_timeout_ms", 2.0);
  config.num_shards = static_cast<size_t>(args.GetInt("shards", 0));
  config.pin_shard_threads = args.GetInt("pin", 1) != 0;
  const std::string engine = args.Get("engine", "nfa");
  config.engine = engine == "tree"       ? EngineKind::kTree
                  : engine == "lazy"     ? EngineKind::kLazy
                  : engine == "adaptive" ? EngineKind::kAdaptive
                                         : EngineKind::kNfa;
  return config;
}

/// End-of-run recall-loss warning: nonzero means the engine's legacy
/// storage cap silently truncated partial matches during extraction and
/// the reported match sets may be missing answers.
void WarnDroppedPartialMatches(const RuntimeStats& stats) {
  if (stats.cep_partial_matches_dropped == 0) return;
  std::fprintf(stderr,
               "WARNING: %llu partial matches silently dropped by the "
               "engine storage cap — recall may be lost; raise the cap or "
               "set an explicit --query_pm_budget to fail loudly\n",
               static_cast<unsigned long long>(
                   stats.cep_partial_matches_dropped));
}

int StreamOnline(const Args& args, const Pattern& pattern,
                 std::unique_ptr<StreamSource> source) {
  const Status online_ok = OnlineDlacep::ValidateForOnline(pattern);
  if (!online_ok.ok()) {
    std::fprintf(stderr, "%s\n", online_ok.ToString().c_str());
    return 1;
  }
  auto filter = MakeOnlineFilter(args, pattern);
  if (!filter.ok()) {
    std::fprintf(stderr, "%s\n", filter.status().ToString().c_str());
    return 1;
  }

  auto plan = ParseFaultSpec(args.Get("inject"));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  FaultInjector injector(plan.value());
  OnlineConfig config = MakeOnlineConfig(args);
  // Fail with a Status instead of the extractor's CHECK when the chosen
  // engine rejects this pattern shape (tree/lazy cover SEQ/CONJ/DISJ
  // only; nfa and adaptive accept everything).
  if (auto probe = CreateEngine(config.engine, pattern, config.engine_options);
      !probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
    return 1;
  }
  if (plan.value().any()) {
    std::printf("injecting faults: %s\n", args.Get("inject").c_str());
    injector.InstallNanHook();
    source = injector.WrapSource(std::move(source));
    config.worker_window_hook = [&injector](uint64_t seq) {
      injector.OnWorkerWindow(seq);
    };
    if (plan.value().model_corrupt) {
      if (filter.value().trainable != nullptr) {
        CorruptParams(filter.value().trainable);
      } else {
        std::printf(
            "  (model_corrupt: filter '%s' has no parameters, skipped)\n",
            filter.value().filter->name().c_str());
      }
    }
  }

  // --metrics_out FILE exposes the obs registry: Prometheus text (or the
  // unified bench JSON schema for *.json paths), rewritten every
  // --metrics_every SEC while streaming and once more at exit. Touching
  // the standard families first makes every scrape schema-complete even
  // for stages this run never executes.
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (args.Has("metrics_out")) {
    obs::TouchStandardMetrics();
    exporter = std::make_unique<obs::MetricsExporter>(
        args.Get("metrics_out"), args.GetDouble("metrics_every", 0.0));
  }

  OnlineDlacep online(pattern, filter.value().filter, config);
  OnlineResult result;
  const Status run_status = online.Run(source.get(), &result);
  if (!run_status.ok()) {
    std::fprintf(stderr, "%s\n", run_status.ToString().c_str());
    return 1;
  }
  if (exporter != nullptr && !exporter->Flush()) {
    std::fprintf(stderr, "cannot write %s\n",
                 args.Get("metrics_out").c_str());
    return 1;
  }
  std::printf("pattern : %s\n", pattern.ToString().c_str());
  std::printf("filter  : %s\n", filter.value().filter->name().c_str());
  std::printf("%s", result.stats.ToString().c_str());
  WarnDroppedPartialMatches(result.stats);
  size_t shown = 0;
  for (const Match& match : result.matches) {
    if (++shown > 10) {
      std::printf("  ... (%zu more)\n", result.matches.size() - 10);
      break;
    }
    std::printf("  %s\n", match.ToString().c_str());
  }
  return result.stats.Accounted() ? 0 : 1;
}

// ---------------------------------------------------------------------
// Multi-query serving (--queries on replay/serve/compare).

EngineKind ParseEngineKind(const Args& args) {
  const std::string name = args.Get("engine", "nfa");
  return name == "tree"       ? EngineKind::kTree
         : name == "lazy"     ? EngineKind::kLazy
         : name == "adaptive" ? EngineKind::kAdaptive
                              : EngineKind::kNfa;
}

/// --queries is either an integer N (N copies of --query) or a
/// semicolon-separated PQL list.
StatusOr<std::vector<Pattern>> ParseQueries(
    const Args& args, std::shared_ptr<const Schema> schema) {
  const std::string spec = args.Get("queries");
  std::vector<std::string> texts;
  if (!spec.empty() &&
      spec.find_first_not_of("0123456789") == std::string::npos) {
    const long n = std::strtol(spec.c_str(), nullptr, 10);
    if (n <= 0) return Status::InvalidArgument("--queries N must be >= 1");
    if (!args.Has("query")) {
      return Status::InvalidArgument(
          "--queries N needs --query Q to replicate");
    }
    texts.assign(static_cast<size_t>(n), args.Get("query"));
  } else {
    size_t begin = 0;
    while (begin <= spec.size()) {
      const size_t end = spec.find(';', begin);
      const std::string text = spec.substr(
          begin, end == std::string::npos ? std::string::npos : end - begin);
      if (!text.empty()) texts.push_back(text);
      if (end == std::string::npos) break;
      begin = end + 1;
    }
    if (texts.empty()) {
      return Status::InvalidArgument("--queries: empty query list");
    }
  }
  std::vector<Pattern> patterns;
  for (const std::string& text : texts) {
    auto pattern = ParsePattern(text, schema);
    if (!pattern.ok()) return pattern.status();
    patterns.push_back(std::move(pattern.value()));
  }
  return patterns;
}

DlacepConfig MakeTrainConfig(const Args& args) {
  DlacepConfig config;
  config.network.hidden_dim = static_cast<size_t>(args.GetInt("hidden", 12));
  config.network.num_layers = static_cast<size_t>(args.GetInt("layers", 1));
  config.train.max_epochs = static_cast<size_t>(args.GetInt("epochs", 30));
  config.event_threshold = args.GetDouble("threshold", 0.35);
  config.window_threshold = config.event_threshold;
  config.batch_size = static_cast<size_t>(args.GetInt("batch_size", 1));
  return config;
}

void PrintSharing(const serve::SharingStats& sharing) {
  std::printf(
      "sharing : %zu partitions, %zu engines run, %zu served shared, "
      "%zu guard-pruned, %zu type-pruned\n",
      sharing.partitions, sharing.engines_run, sharing.engines_shared,
      sharing.guard_pruned, sharing.type_pruned);
  if (sharing.budget_aborts > 0 || sharing.breaker_trips > 0 ||
      sharing.chunks_skipped > 0) {
    std::printf(
        "isolate : %zu chunks run, %zu skipped, %zu budget aborts, "
        "%zu breaker trips\n",
        sharing.chunks_run, sharing.chunks_skipped, sharing.budget_aborts,
        sharing.breaker_trips);
  }
}

size_t MaxCountWindow(const std::vector<Pattern>& patterns) {
  size_t w = 0;
  for (const Pattern& pattern : patterns) {
    w = std::max(w, pattern.window().count_size());
  }
  return w;
}

bool SameMatches(const MatchSet& a, const MatchSet& b);

void PrintHeadline(const serve::MultiQueryResult& result) {
  std::printf("headline: %zu queries x %.0f events/s = %.0f query-events/s\n",
              result.queries.size(), result.events_per_sec(),
              result.query_events_per_sec());
}

/// `replay_stream` is non-null in replay mode only; --verify_isolated
/// and the pathological hook's hottest-type scan need the raw events.
int StreamMultiQuery(const Args& args, std::vector<Pattern> patterns,
                     std::unique_ptr<StreamSource> source,
                     const EventStream* replay_stream) {
  for (const Pattern& pattern : patterns) {
    const Status online_ok = OnlineDlacep::ValidateForOnline(pattern);
    if (!online_ok.ok()) {
      std::fprintf(stderr, "%s\n", online_ok.ToString().c_str());
      return 1;
    }
  }

  auto plan = ParseFaultSpec(args.Get("inject"));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  FaultInjector injector(plan.value());

  // Shared trunk: --filter event trains ONE network over all queries
  // (unified labels, paper section 4.3) and serves per-query heads off
  // its CRF marginals. Every other kind marks once per window and all
  // queries share the base marks (the shedding baselines judge
  // relevance against query 0 only).
  const std::string kind = args.Get("filter", "pass");
  std::unique_ptr<MultiPatternDlacep> multi;
  OnlineFilter base;
  const EventNetworkFilter* heads = nullptr;
  const StreamFilter* base_filter = nullptr;
  if (kind == "event") {
    auto train = LoadStream(args.Get("train"));
    if (!train.ok()) {
      std::fprintf(stderr, "--filter event needs --train F.csv (%s)\n",
                   train.status().ToString().c_str());
      return 1;
    }
    std::printf("training shared trunk on %zu events for %zu queries...\n",
                train.value().size(), patterns.size());
    multi = std::make_unique<MultiPatternDlacep>(patterns, train.value(),
                                                 MakeTrainConfig(args));
    std::printf("  held-out entity F1 %.3f\n", multi->test_metrics().f1());
    heads = multi->filter();
  } else if (kind == "window") {
    std::fprintf(stderr,
                 "multi-query serving needs event-level marks; "
                 "--filter window is not supported with --queries\n");
    return 1;
  } else {
    auto made = MakeOnlineFilter(args, patterns[0]);
    if (!made.ok()) {
      std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
      return 1;
    }
    base = std::move(made.value());
    base_filter = base.filter;
  }

  serve::QueryRegistry registry;
  for (size_t q = 0; q < patterns.size(); ++q) {
    serve::QueryOptions options;
    options.name = "q" + std::to_string(q);
    options.engine = ParseEngineKind(args);
    auto id = registry.Register(patterns[q], options);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (args.Has("metrics_out")) {
    obs::TouchStandardMetrics();
    exporter = std::make_unique<obs::MetricsExporter>(
        args.Get("metrics_out"), args.GetDouble("metrics_every", 0.0));
  }

  serve::ServeConfig config;
  config.online = MakeOnlineConfig(args);
  config.query_pm_budget =
      static_cast<uint64_t>(args.GetInt("query_pm_budget", 0));
  config.query_deadline_seconds =
      args.GetDouble("query_deadline_ms", 0.0) / 1000.0;
  config.breaker.trip_after =
      static_cast<uint32_t>(args.GetInt("breaker_trips", 3));

  // --verify_isolated pins the explicit geometry (2W/W over the initial
  // queries) and disables overload so the serve run and the per-query
  // isolated reference runs are byte-comparable (CompareMulti's recipe).
  const bool verify_isolated = args.GetInt("verify_isolated", 0) != 0;
  if (verify_isolated) {
    if (replay_stream == nullptr) {
      std::fprintf(stderr, "--verify_isolated needs replay --data\n");
      return 1;
    }
    const size_t w = MaxCountWindow(patterns);
    config.online.mark_size = 2 * w;
    config.online.step_size = w;
    config.online.overload.enabled = false;
  }

  // Fault wiring. pathological_query parses its blowup pattern up front
  // (a SEQ of four hottest-type positions — argmax over the replay
  // stream when available, else type 0) so a bad spec fails before the
  // run; the hook just registers it from the worker thread.
  std::unique_ptr<Pattern> pathological;
  if (plan.value().any()) {
    std::printf("injecting faults: %s\n", args.Get("inject").c_str());
    injector.InstallNanHook();
    source = injector.WrapSource(std::move(source));
    config.online.worker_window_hook = [&injector](uint64_t seq) {
      injector.OnWorkerWindow(seq);
    };
    if (plan.value().model_corrupt) {
      TrainableFilter* trainable =
          multi != nullptr
              ? dynamic_cast<TrainableFilter*>(
                    const_cast<EventNetworkFilter*>(heads))
              : base.trainable;
      if (trainable != nullptr) {
        CorruptParams(trainable);
      } else {
        std::printf("  (model_corrupt: filter has no parameters, skipped)\n");
      }
    }
    if (plan.value().pathological_query) {
      std::shared_ptr<const Schema> schema = source->schema();
      TypeId hottest = 0;
      if (replay_stream != nullptr && schema->num_types() > 0) {
        std::vector<uint64_t> counts(schema->num_types(), 0);
        for (const Event& event : replay_stream->events()) {
          if (!event.is_blank()) ++counts[event.type];
        }
        hottest = static_cast<TypeId>(
            std::max_element(counts.begin(), counts.end()) - counts.begin());
      }
      const std::string type = schema->TypeName(hottest);
      const std::string text =
          "SEQ(" + type + " a, " + type + " b, " + type + " c, " + type +
          " d) WITHIN " + std::to_string(plan.value().pathological_window) +
          " EVENTS";
      auto parsed = ParsePattern(text, schema);
      if (!parsed.ok()) {
        std::fprintf(stderr, "pathological_query: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      pathological = std::make_unique<Pattern>(std::move(parsed.value()));
      injector.SetPathologicalHook([&args, &registry, &pathological] {
        serve::QueryOptions options;
        options.name = "pathological";
        options.engine = ParseEngineKind(args);
        (void)registry.Register(*pathological, options);
      });
    }
  }

  serve::MultiQueryServer server(&registry, base_filter, heads, config);

  // --churn_every_ms: register/unregister a clone of query 0 on a cadence
  // while the stream drains — the RCU snapshot swap under live traffic.
  // churn_storm injection drops the pacing and hammers the registry for
  // a fixed number of cycles instead.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> churn_cycles{0};
  std::thread churn;
  const double churn_ms = args.GetDouble("churn_every_ms", 0.0);
  const bool storm = plan.value().churn_storm;
  if (churn_ms > 0 || storm) {
    churn = std::thread([&, storm] {
      const auto half =
          std::chrono::duration<double, std::milli>(churn_ms / 2);
      while (!stop.load(std::memory_order_relaxed)) {
        if (storm &&
            churn_cycles.load(std::memory_order_relaxed) >=
                plan.value().churn_cycles) {
          break;
        }
        serve::QueryOptions options;
        options.name = "churn";
        auto id = registry.Register(patterns[0], options);
        if (!storm) std::this_thread::sleep_for(half);
        if (id.ok()) (void)registry.Unregister(id.value());
        churn_cycles.fetch_add(1, std::memory_order_relaxed);
        if (!storm) std::this_thread::sleep_for(half);
      }
    });
  }

  serve::MultiQueryResult result;
  const Status run_status = server.Run(source.get(), &result);
  stop.store(true);
  if (churn.joinable()) churn.join();
  if (!run_status.ok()) {
    std::fprintf(stderr, "%s\n", run_status.ToString().c_str());
    return 1;
  }
  if (exporter != nullptr && !exporter->Flush()) {
    std::fprintf(stderr, "cannot write %s\n",
                 args.Get("metrics_out").c_str());
    return 1;
  }

  std::printf("queries : %zu registered\n", patterns.size());
  for (const serve::QueryResult& query : result.queries) {
    std::printf("  %-8s: matches=%zu marked=%zu cost=%llu%s%s\n",
                query.name.c_str(), query.matches.size(),
                query.marked_events,
                static_cast<unsigned long long>(query.extract_cost),
                query.shared ? " (shared engine)" : "",
                query.degraded ? " DEGRADED" : "");
    if (query.breaker_state != serve::BreakerState::kHealthy ||
        query.budget_aborts > 0) {
      std::printf("            breaker=%s trips=%llu aborts=%llu\n",
                  serve::BreakerStateName(query.breaker_state),
                  static_cast<unsigned long long>(query.breaker_trips),
                  static_cast<unsigned long long>(query.budget_aborts));
    }
  }
  if (churn_cycles.load() > 0) {
    std::printf("churn   : %llu register/unregister cycles\n",
                static_cast<unsigned long long>(churn_cycles.load()));
  }
  std::printf("%s", result.stats.ToString().c_str());
  WarnDroppedPartialMatches(result.stats);
  PrintSharing(result.sharing);
  PrintHeadline(result);

  int exit_code = result.stats.Accounted() ? 0 : 1;
  if (verify_isolated) {
    // Re-run every initial query alone through the single-query runtime
    // (same filter, same explicit geometry, no budget) and compare.
    // Non-degraded queries must be byte-identical — the isolation
    // contract; degraded queries must still be a subset (no false
    // positives). Mid-run registrations (churn, pathological) have no
    // whole-stream reference and are skipped.
    std::printf("\nisolated cross-check:\n");
    bool all_ok = true;
    for (size_t q = 0; q < patterns.size(); ++q) {
      const std::string name = "q" + std::to_string(q);
      const serve::QueryResult* served = nullptr;
      for (const serve::QueryResult& query : result.queries) {
        if (query.name == name) {
          served = &query;
          break;
        }
      }
      if (served == nullptr) continue;  // unregistered mid-run
      const StreamFilter* isolated_filter =
          heads != nullptr ? heads : base_filter;
      OnlineConfig alone_config = config.online;
      alone_config.worker_window_hook = nullptr;
      OnlineDlacep alone(patterns[q], isolated_filter, alone_config);
      ReplaySource alone_source(replay_stream);
      const OnlineResult isolated = alone.Run(&alone_source);
      const bool equal = SameMatches(served->matches, isolated.matches);
      const bool subset =
          served->matches.IntersectionSize(isolated.matches) ==
          served->matches.size();
      const bool ok = served->degraded ? subset : equal;
      all_ok = all_ok && ok;
      std::printf("  %-8s: served=%zu isolated=%zu %s%s\n", name.c_str(),
                  served->matches.size(), isolated.matches.size(),
                  served->degraded ? (subset ? "subset" : "NOT-SUBSET")
                                   : (equal ? "identical" : "DIFFER"),
                  served->degraded ? " (degraded)" : "");
    }
    std::printf("isolated identical : %s\n", all_ok ? "yes" : "NO");
    if (!all_ok) exit_code = 1;
  }
  return exit_code;
}

bool SameMatches(const MatchSet& a, const MatchSet& b) {
  return a.size() == b.size() && a.IntersectionSize(b) == a.size();
}

int CompareMulti(const Args& args, const EventStream& train,
                 const EventStream& test) {
  auto patterns = ParseQueries(args, train.schema_ptr());
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  for (const Pattern& pattern : patterns.value()) {
    const Status online_ok = OnlineDlacep::ValidateForOnline(pattern);
    if (!online_ok.ok()) {
      std::fprintf(stderr, "%s\n", online_ok.ToString().c_str());
      return 1;
    }
  }

  std::printf("building shared trunk on %zu training events "
              "for %zu queries...\n",
              train.size(), patterns.value().size());
  MultiPatternDlacep multi(patterns.value(), train, MakeTrainConfig(args));
  std::printf("  held-out entity F1 %.3f\n", multi.test_metrics().f1());
  const MultiPatternResult batch = multi.Evaluate(test);

  serve::QueryRegistry registry;
  for (size_t q = 0; q < patterns.value().size(); ++q) {
    serve::QueryOptions options;
    options.name = "q" + std::to_string(q);
    options.engine = ParseEngineKind(args);
    auto id = registry.Register(patterns.value()[q], options);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }

  // Serve + isolated runs share the explicit geometry (the batch
  // evaluator's 2W/W over the widest query) and disable overload, so the
  // three match sets are byte-comparable.
  serve::ServeConfig config;
  config.online = MakeOnlineConfig(args);
  config.online.overload.enabled = false;
  config.online.mark_size = 2 * multi.max_window();
  config.online.step_size = multi.max_window();

  serve::MultiQueryServer server(&registry, nullptr, multi.filter(), config);
  ReplaySource source(&test);
  serve::MultiQueryResult served;
  const Status run_status = server.Run(&source, &served);
  if (!run_status.ok()) {
    std::fprintf(stderr, "%s\n", run_status.ToString().c_str());
    return 1;
  }

  std::printf("\nper-query cross-check (shared serving vs batch vs "
              "isolated online):\n");
  bool all_equal = true;
  for (size_t q = 0; q < patterns.value().size(); ++q) {
    OnlineDlacep alone(patterns.value()[q], multi.filter(), config.online);
    ReplaySource alone_source(&test);
    const OnlineResult isolated = alone.Run(&alone_source);
    const MatchSet& shared_matches = served.queries[q].matches;
    const bool vs_batch = SameMatches(shared_matches, batch.per_pattern[q]);
    const bool vs_alone = SameMatches(shared_matches, isolated.matches);
    all_equal = all_equal && vs_batch && vs_alone;
    std::printf("  %-8s: matches=%zu batch=%s isolated=%s%s\n",
                served.queries[q].name.c_str(), shared_matches.size(),
                vs_batch ? "equal" : "DIFFER",
                vs_alone ? "equal" : "DIFFER",
                served.queries[q].shared ? " (shared engine)" : "");
  }
  PrintSharing(served.sharing);
  PrintHeadline(served);
  std::printf("per-query identical : %s\n", all_equal ? "yes" : "NO");
  if (!all_equal || !served.stats.Accounted()) return 1;
  return 0;
}

int Replay(const Args& args) {
  auto stream = LoadStream(args.Get("data"));
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  if (args.Has("queries")) {
    auto patterns = ParseQueries(args, stream.value().schema_ptr());
    if (!patterns.ok()) {
      std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
      return 1;
    }
    auto source = std::make_unique<ReplaySource>(
        &stream.value(), args.GetDouble("rate", 0.0));
    return StreamMultiQuery(args, std::move(patterns.value()),
                            std::move(source), &stream.value());
  }
  auto pattern = ParsePattern(args.Get("query"), stream.value().schema_ptr());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  auto source = std::make_unique<ReplaySource>(&stream.value(),
                                               args.GetDouble("rate", 0.0));
  return StreamOnline(args, pattern.value(), std::move(source));
}

int Serve(const Args& args) {
  StockSimConfig sim;
  sim.num_events = static_cast<size_t>(args.GetInt("events", 20000));
  sim.num_symbols = static_cast<size_t>(args.GetInt("symbols", 50));
  sim.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  auto source =
      std::make_unique<StockSimSource>(sim, args.GetDouble("rate", 0.0));
  if (args.Has("queries")) {
    auto patterns = ParseQueries(args, source->schema());
    if (!patterns.ok()) {
      std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
      return 1;
    }
    return StreamMultiQuery(args, std::move(patterns.value()),
                            std::move(source), /*replay_stream=*/nullptr);
  }
  auto pattern = ParsePattern(args.Get("query"), source->schema());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  return StreamOnline(args, pattern.value(), std::move(source));
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  if (!args.ok()) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(args);
  if (command == "run") return RunQuery(args);
  if (command == "compare") return Compare(args);
  if (command == "replay") return Replay(args);
  if (command == "serve") return Serve(args);
  return Usage();
}

}  // namespace
}  // namespace dlacep

int main(int argc, char** argv) { return dlacep::Main(argc, argv); }
