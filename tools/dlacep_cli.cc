// dlacep — command-line front end to the library.
//
// Subcommands:
//   generate  --kind stock|synthetic --events N [--seed S] --out F.csv
//       Synthesize a dataset and write it as CSV.
//   run       --query Q --data F.csv [--engine nfa|tree|lazy]
//       Evaluate a PQL query exactly and print matches + statistics.
//   compare   --query Q --train F.csv --test G.csv
//             [--filter event|window] [--hidden N] [--layers N]
//             [--epochs N] [--save model.bin | --load model.bin]
//       Train (or load) a DLACEP filter on the training stream and
//       compare DLACEP against exact CEP on the test stream.
//
// Notes: --load restores network weights only; the featurizer is refit
// from --train, so pass the same training stream used with --save.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "cep/engine.h"
#include "dlacep/event_filter.h"
#include "dlacep/pipeline.h"
#include "dlacep/window_filter.h"
#include "nn/serialize.h"
#include "pattern/parser.h"
#include "stream/csv_io.h"
#include "stream/generator.h"
#include "stream/stocksim.h"

namespace dlacep {
namespace {

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        ok_ = false;
        return;
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    ok_ = argc % 2 == 0;
    if (!ok_) std::fprintf(stderr, "flags must come in --name value pairs\n");
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  long GetInt(const std::string& name, long fallback) const {
    return Has(name) ? std::strtol(Get(name).c_str(), nullptr, 10)
                     : fallback;
  }
  double GetDouble(const std::string& name, double fallback) const {
    return Has(name) ? std::strtod(Get(name).c_str(), nullptr) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dlacep generate --kind stock|synthetic --events N "
               "[--seed S] --out F.csv\n"
               "  dlacep run --query Q --data F.csv "
               "[--engine nfa|tree|lazy]\n"
               "  dlacep compare --query Q --train F.csv --test G.csv\n"
               "       [--filter event|window] [--hidden N] [--layers N]"
               " [--epochs N]\n"
               "       [--threshold P] [--save model.bin | --load "
               "model.bin]\n");
  return 2;
}

int Generate(const Args& args) {
  const std::string kind = args.Get("kind", "synthetic");
  const size_t events =
      static_cast<size_t>(args.GetInt("events", 10000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();

  EventStream stream = [&] {
    if (kind == "stock") {
      StockSimConfig config;
      config.num_events = events;
      config.seed = seed;
      return GenerateStockStream(config);
    }
    SyntheticConfig config;
    config.num_events = events;
    config.seed = seed;
    return GenerateSynthetic(config);
  }();
  const Status status = WriteCsv(stream, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", stream.size(), out.c_str());
  return 0;
}

StatusOr<EventStream> LoadStream(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("missing CSV path");
  }
  return ReadCsv(path);
}

int RunQuery(const Args& args) {
  auto stream = LoadStream(args.Get("data"));
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto pattern = ParsePattern(args.Get("query"), stream.value().schema_ptr());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }
  const std::string engine_name = args.Get("engine", "nfa");
  const EngineKind kind = engine_name == "tree" ? EngineKind::kTree
                          : engine_name == "lazy" ? EngineKind::kLazy
                                                  : EngineKind::kNfa;
  auto engine = CreateEngine(kind, pattern.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  MatchSet matches;
  const Status status = engine.value()->Evaluate(
      {stream.value().events().data(), stream.value().size()}, &matches);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const EngineStats& stats = engine.value()->stats();
  std::printf("pattern        : %s\n", pattern.value().ToString().c_str());
  std::printf("engine         : %s\n", engine.value()->name().c_str());
  std::printf("events         : %llu\n",
              static_cast<unsigned long long>(stats.events_processed));
  std::printf("partial matches: %llu\n",
              static_cast<unsigned long long>(stats.partial_matches));
  std::printf("matches        : %zu\n", matches.size());
  std::printf("elapsed        : %.3fs (%.0f events/s)\n",
              stats.elapsed_seconds, stats.throughput());
  size_t shown = 0;
  for (const Match& match : matches) {
    if (++shown > 20) {
      std::printf("  ... (%zu more)\n", matches.size() - 20);
      break;
    }
    std::printf("  %s\n", match.ToString().c_str());
  }
  return 0;
}

int Compare(const Args& args) {
  auto train = LoadStream(args.Get("train"));
  auto test = LoadStream(args.Get("test"));
  if (!train.ok() || !test.ok()) {
    std::fprintf(stderr, "cannot load streams\n");
    return 1;
  }
  auto pattern = ParsePattern(args.Get("query"), train.value().schema_ptr());
  if (!pattern.ok()) {
    std::fprintf(stderr, "%s\n", pattern.status().ToString().c_str());
    return 1;
  }

  DlacepConfig config;
  config.network.hidden_dim =
      static_cast<size_t>(args.GetInt("hidden", 12));
  config.network.num_layers =
      static_cast<size_t>(args.GetInt("layers", 1));
  config.train.max_epochs =
      static_cast<size_t>(args.GetInt("epochs", 30));
  config.event_threshold = args.GetDouble("threshold", 0.35);
  config.window_threshold = config.event_threshold;
  const FilterKind kind = args.Get("filter", "event") == "window"
                              ? FilterKind::kWindowNetwork
                              : FilterKind::kEventNetwork;

  std::printf("building DLACEP (%s) on %zu training events...\n",
              FilterKindName(kind), train.value().size());
  BuiltDlacep built =
      BuildDlacep(pattern.value(), train.value(), kind, config);
  std::printf("  trained %zu epochs, held-out entity F1 %.3f\n",
              built.train_result.epochs_run, built.test_metrics.f1());

  // Optional persistence of the filter network.
  auto* trainable = dynamic_cast<TrainableFilter*>(&built.pipeline->filter());
  if (args.Has("load") && trainable != nullptr) {
    const Status status =
        LoadParameters(trainable->Params(), args.Get("load"));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    trainable->OnParamsChanged();  // repack frozen inference weights
    std::printf("  loaded weights from %s\n", args.Get("load").c_str());
  }
  if (args.Has("save") && trainable != nullptr) {
    const Status status =
        SaveParameters(trainable->Params(), args.Get("save"));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("  saved weights to %s\n", args.Get("save").c_str());
  }

  const ComparisonResult result =
      built.pipeline->CompareWithEcep(test.value());
  std::printf("\nexact matches   : %zu\n", result.exact_matches.size());
  std::printf("DLACEP matches  : %zu\n", result.dlacep.matches.size());
  std::printf("recall          : %.3f\n", result.quality.recall);
  std::printf("precision       : %.3f\n", result.quality.precision);
  std::printf("filtering ratio : %.1f%%\n",
              result.dlacep.filtering_ratio() * 100);
  std::printf("throughput gain : %.2fx\n", result.throughput_gain());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  if (!args.ok()) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(args);
  if (command == "run") return RunQuery(args);
  if (command == "compare") return Compare(args);
  return Usage();
}

}  // namespace
}  // namespace dlacep

int main(int argc, char** argv) { return dlacep::Main(argc, argv); }
