// Stock-market monitoring — the paper's flagship scenario end to end:
//
//   1. simulate a NASDAQ-style tick stream (Zipf symbol popularity,
//      random-walk volumes);
//   2. define a Table-1-style query: five updates of top-10 symbols whose
//      last volume sits inside a band of each predecessor's volume;
//   3. train DLACEP's event network on a historical stream;
//   4. evaluate a fresh stream with the DLACEP pipeline and with exact
//      CEP, and compare throughput and detected matches.
//
//   $ ./examples/stock_monitoring

#include <cstdio>

#include "dlacep/pipeline.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"

using namespace dlacep;  // NOLINT — example brevity

int main() {
  // Historical stream for training, fresh stream for evaluation.
  const EventStream history =
      GenerateStockStream(workloads::StockConfig(5000, 42));
  const EventStream live =
      GenerateStockStream(workloads::StockConfig(3000, 43));

  // QA1-style query: SEQ of 4 top-10-symbol updates, the last volume
  // within ±10% of each predecessor, all within 20 events.
  const Pattern pattern =
      workloads::QA1(history.schema_ptr(), /*j=*/4, /*k=*/10,
                     /*alpha=*/0.9, /*beta=*/1.1, /*p_size=*/3,
                     /*window=*/20);
  std::printf("monitoring: %s\n\n", pattern.ToString().c_str());

  // Train the event-network filter (scaled-down defaults; see
  // dlacep/config.h for the paper-scale knobs).
  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 30;
  config.event_threshold = 0.35;

  std::printf("training the event network on %zu historical events...\n",
              history.size());
  BuiltDlacep dlacep =
      BuildDlacep(pattern, history, FilterKind::kEventNetwork, config);
  std::printf("  trained %zu epochs, final loss %.4f\n",
              dlacep.train_result.epochs_run,
              dlacep.train_result.final_loss);
  std::printf("  held-out event-labeling F1: %.3f\n\n",
              dlacep.test_metrics.f1());

  // Head-to-head on the live stream.
  std::printf("evaluating %zu live events...\n", live.size());
  const ComparisonResult result = dlacep.pipeline->CompareWithEcep(live);

  std::printf("\n%-26s %14s %14s\n", "", "exact CEP", "DLACEP");
  std::printf("%-26s %14.3f %14.3f\n", "wall time (s)",
              result.ecep_seconds, result.dlacep.elapsed_seconds());
  std::printf("%-26s %14llu %14llu\n", "partial matches",
              static_cast<unsigned long long>(
                  result.ecep_stats.partial_matches),
              static_cast<unsigned long long>(
                  result.dlacep.cep_stats.partial_matches));
  std::printf("%-26s %14zu %14zu\n", "matches",
              result.exact_matches.size(), result.dlacep.matches.size());
  std::printf("\nthroughput gain : %.2fx\n", result.throughput_gain());
  std::printf("match recall    : %.3f (precision %.3f — NEG-free "
              "DLACEP emits no false positives)\n",
              result.quality.recall, result.quality.precision);
  std::printf("events filtered : %.1f%%\n",
              result.dlacep.filtering_ratio() * 100.0);
  return 0;
}
