// Adaptive multi-pattern monitoring — the extension modules in action:
//
//   * two patterns monitored by ONE shared event network (paper §4.3's
//     semantic unification);
//   * a concept-drift monitor watching the filter's marking rate, with
//     warm-start fine-tuning when the live stream departs from the
//     training distribution (§4.3's "model retraining" strategy).
//
//   $ ./examples/adaptive_monitoring

#include <cstdio>

#include "dlacep/drift.h"
#include "dlacep/event_filter.h"
#include "dlacep/multi_pattern.h"
#include "pattern/builder.h"
#include "stream/generator.h"

using namespace dlacep;  // NOLINT — example brevity

int main() {
  // ------------------------------------------------------------------
  // Part 1: one filter, two patterns.
  SyntheticConfig gen;
  gen.num_events = 7000;
  gen.seed = 21;
  const EventStream history = GenerateSynthetic(gen);
  gen.num_events = 1200;
  gen.seed = 22;
  const EventStream live = GenerateSynthetic(gen);
  auto schema = history.schema_ptr();

  std::vector<Pattern> patterns;
  {
    PatternBuilder b(schema);
    auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "b"),
                      b.Prim("C", "c"));
    patterns.push_back(b.BuildOrDie(std::move(root), WindowSpec::Count(8)));
  }
  {
    PatternBuilder b(schema);
    auto root = b.Seq(b.Prim("D", "d"), b.Prim("E", "e"));
    b.WhereCmp(1.0, "d", "vol", CmpOp::kLt, 1.0, "e");
    patterns.push_back(b.BuildOrDie(std::move(root), WindowSpec::Count(6)));
  }

  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 50;
  config.event_threshold = 0.35;
  config.oversample_positive = 2;

  std::printf("training ONE filter for %zu patterns...\n",
              patterns.size());
  MultiPatternDlacep system(patterns, history, config);
  std::printf("  unified labeling F1 on held-out windows: %.3f\n\n",
              system.test_metrics().f1());

  MultiPatternResult result = system.Evaluate(live);
  for (size_t p = 0; p < patterns.size(); ++p) {
    std::printf("pattern %zu: %s\n  -> %zu matches\n", p,
                patterns[p].ToString().c_str(),
                result.per_pattern[p].size());
  }
  std::printf("shared filtering ratio: %.1f%%\n\n",
              result.filtering_ratio() * 100.0);

  // ------------------------------------------------------------------
  // Part 2: drift detection + warm-start fine-tuning.
  const Pattern& watched = patterns[0];
  const Featurizer featurizer(watched, history);
  EventNetworkFilter filter(&featurizer, config.network,
                            config.event_threshold);
  const InputAssembler assembler = InputAssembler::ForWindow(8);
  const FilterDataset dataset = BuildFilterDataset(
      watched, history, assembler, featurizer, 0.9, config.split_seed);
  filter.Fit(dataset.train_event, config.train);

  // A drifted live stream: different type mix starves the filter.
  SyntheticConfig drift_gen;
  drift_gen.num_events = 1500;
  drift_gen.num_types = 15;  // training saw 15 too, but with other seed
  drift_gen.attr_mean = 1.5;  // value distribution shifted
  drift_gen.seed = 23;
  const EventStream drifted = GenerateSynthetic(drift_gen);

  DriftMonitor monitor(/*reference_rate=*/0.8, /*tolerance=*/0.2,
                       /*window_budget=*/6);
  std::printf("evaluating a drifted stream with adaptive retraining...\n");
  DlacepConfig finetune = config;
  finetune.train.max_epochs = 6;
  const AdaptiveResult adaptive = EvaluateWithRetraining(
      watched, &filter, featurizer, drifted, &monitor,
      /*retrain_events=*/600, finetune);
  std::printf("  drifts detected : %zu\n", adaptive.drifts_detected);
  std::printf("  retrainings     : %zu (%.2fs fine-tuning)\n",
              adaptive.retrainings, adaptive.retrain_seconds);
  std::printf("  matches emitted : %zu\n", adaptive.matches.size());
  return 0;
}
