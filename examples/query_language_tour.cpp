// A tour of PQL, the textual pattern query language: every operator
// (SEQ, CONJ, DISJ, KC, NEG, ANY), chained comparisons, and count / time
// windows. Each query is parsed, echoed back from the AST, and evaluated
// on a small synthetic stream.
//
//   $ ./examples/query_language_tour

#include <cstdio>

#include "cep/engine.h"
#include "pattern/parser.h"
#include "stream/generator.h"

using namespace dlacep;  // NOLINT — example brevity

int main() {
  SyntheticConfig config;
  config.num_events = 400;
  config.seed = 11;
  const EventStream stream = GenerateSynthetic(config);

  const char* queries[] = {
      // The paper's §2.1 example shape: a 5-step sequence with chained
      // band comparisons.
      "PATTERN SEQ(A a, B b, C c, D d, E e) "
      "WHERE 0.55 * a.vol < b.vol AND b.vol < 1.45 * c.vol "
      "AND 3 * e.vol < d.vol WITHIN 40 EVENTS",

      // Chained comparison sugar: x < y < z.
      "SEQ(A a, B b, C c) WHERE a.vol < b.vol < c.vol WITHIN 25 EVENTS",

      // Conjunction: order-free co-occurrence.
      "CONJ(A x, B y, C z) WHERE x.vol < z.vol WITHIN 15 EVENTS",

      // Disjunction of two sequences.
      "DISJ(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 12 EVENTS",

      // Kleene closure with repetition bounds.
      "SEQ(A a, KC(B ks){1..3}, C c) WHERE a.vol < ks.vol "
      "WITHIN 18 EVENTS",

      // Negation: no C between A and B.
      "SEQ(A a, NEG(C nc), B b) WITHIN 14 EVENTS",

      // Multi-type positions (the Table 1 'T_k' notation).
      "SEQ(ANY(A, B, C) first, ANY(D, E) second) "
      "WHERE first.vol < second.vol WITHIN 10 EVENTS",

      // Time-based window.
      "SEQ(A a, B b) WITHIN 6.5 TIME",
  };

  for (const char* query : queries) {
    std::printf("query : %s\n", query);
    auto pattern = ParsePattern(query, stream.schema_ptr());
    if (!pattern.ok()) {
      std::printf("  PARSE ERROR: %s\n\n",
                  pattern.status().ToString().c_str());
      continue;
    }
    std::printf("ast   : %s\n", pattern.value().ToString().c_str());

    auto engine = CreateEngine(EngineKind::kNfa, pattern.value());
    if (!engine.ok()) {
      std::printf("  ENGINE ERROR: %s\n\n",
                  engine.status().ToString().c_str());
      continue;
    }
    MatchSet matches;
    const Status status = engine.value()->Evaluate(
        {stream.events().data(), stream.size()}, &matches);
    if (!status.ok()) {
      std::printf("  EVAL ERROR: %s\n\n", status.ToString().c_str());
      continue;
    }
    std::printf("result: %zu matches, %llu partial matches\n\n",
                matches.size(),
                static_cast<unsigned long long>(
                    engine.value()->stats().partial_matches));
  }
  return 0;
}
