// Quickstart: define a pattern with the PQL query language, evaluate a
// synthetic stream with the exact NFA engine, and print the matches.
//
//   $ ./examples/quickstart
//
// This is the paper's introductory Example (1): an A event, followed by
// a B event, followed by a C event whose value exceeds both.

#include <cstdio>

#include "cep/engine.h"
#include "pattern/parser.h"
#include "stream/generator.h"

using namespace dlacep;  // NOLINT — example brevity

int main() {
  // 1. A stream of synthetic events over types A..O with one "vol"
  //    attribute (15 types, N(0,1) values, constant sampling rate).
  SyntheticConfig config;
  config.num_events = 300;
  config.seed = 7;
  const EventStream stream = GenerateSynthetic(config);

  // 2. The pattern, written in PQL. `WITHIN 20 EVENTS` is a count-based
  //    window: a match's events may span at most 20 arrival positions.
  const char* query =
      "PATTERN SEQ(A a, B b, C c) "
      "WHERE a.vol < c.vol AND b.vol < c.vol "
      "WITHIN 20 EVENTS";
  auto pattern = ParsePattern(query, stream.schema_ptr());
  if (!pattern.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 pattern.status().ToString().c_str());
    return 1;
  }
  std::printf("pattern: %s\n\n", pattern.value().ToString().c_str());

  // 3. Evaluate with the exact NFA engine (skip-till-any-match).
  auto engine = CreateEngine(EngineKind::kNfa, pattern.value());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine error: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  MatchSet matches;
  const Status status = engine.value()->Evaluate(
      {stream.events().data(), stream.size()}, &matches);
  if (!status.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // 4. Report.
  const EngineStats& stats = engine.value()->stats();
  std::printf("events processed : %llu\n",
              static_cast<unsigned long long>(stats.events_processed));
  std::printf("partial matches  : %llu\n",
              static_cast<unsigned long long>(stats.partial_matches));
  std::printf("full matches     : %zu\n\n", matches.size());

  size_t shown = 0;
  for (const Match& match : matches) {
    if (++shown > 10) {
      std::printf("  ... (%zu more)\n", matches.size() - 10);
      break;
    }
    std::printf("  match %zu: events", shown);
    for (EventId id : match.ids) {
      const Event& e = stream[static_cast<size_t>(id)];
      std::printf("  [%llu %s vol=%.2f]",
                  static_cast<unsigned long long>(id),
                  stream.schema().TypeName(e.type).c_str(), e.attr(0));
    }
    std::printf("\n");
  }
  return 0;
}
