// IoT anomaly detection with negation — a healthcare/IoT-style scenario
// (the paper's §1 motivation) exercising the NEG operator and the
// negation-aware labeling of §4.4:
//
//   "alert when a temperature spike (SPIKE) is followed by a shutdown
//    (SHUTDOWN) within 20 readings, with no operator acknowledgment
//    (ACK) in between"
//
// Under negation DLACEP may emit false positives when the filter drops
// the ACK events; the event network therefore learns to relay negated
// types too, and the reported metric is F1 rather than recall alone.
//
//   $ ./examples/iot_anomaly

#include <cstdio>

#include "common/rng.h"
#include "dlacep/pipeline.h"
#include "pattern/builder.h"

using namespace dlacep;  // NOLINT — example brevity

namespace {

// A sensor stream: routine READING events plus occasional SPIKE /
// SHUTDOWN / ACK control events, each carrying a severity value.
EventStream MakeSensorStream(std::shared_ptr<const Schema> schema,
                             size_t num_events, uint64_t seed) {
  Rng rng(seed);
  EventStream stream(std::move(schema));
  for (size_t i = 0; i < num_events; ++i) {
    const double roll = rng.Uniform();
    TypeId type = 0;  // READING
    if (roll > 0.92) {
      type = 1;  // SPIKE
    } else if (roll > 0.86) {
      type = 2;  // SHUTDOWN
    } else if (roll > 0.82) {
      type = 3;  // ACK
    }
    stream.Append(type, static_cast<double>(i),
                  {rng.Normal(type == 1 ? 3.0 : 0.0, 1.0)});
  }
  return stream;
}

}  // namespace

int main() {
  auto schema = std::make_shared<Schema>();
  schema->RegisterType("READING");
  schema->RegisterType("SPIKE");
  schema->RegisterType("SHUTDOWN");
  schema->RegisterType("ACK");
  schema->RegisterAttr("severity");

  const EventStream history = MakeSensorStream(schema, 5000, 7);
  const EventStream live = MakeSensorStream(schema, 3000, 8);

  PatternBuilder builder(schema);
  auto root = builder.Seq(builder.Prim("SPIKE", "spike"),
                          builder.Neg(builder.Prim("ACK", "ack")),
                          builder.Prim("SHUTDOWN", "down"));
  builder.WhereCmp(1.0, "spike", "severity", CmpOp::kGt, 1.0, "down");
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(20));
  std::printf("alert pattern: %s\n\n", pattern.ToString().c_str());

  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 40;
  config.event_threshold = 0.35;
  config.oversample_positive = 2;

  std::printf("training on %zu historical readings "
              "(negation-aware labeling relays ACK events too)...\n",
              history.size());
  BuiltDlacep dlacep =
      BuildDlacep(pattern, history, FilterKind::kEventNetwork, config);
  std::printf("  held-out event-labeling F1: %.3f\n\n",
              dlacep.test_metrics.f1());

  const ComparisonResult result = dlacep.pipeline->CompareWithEcep(live);
  std::printf("exact alerts    : %zu\n", result.exact_matches.size());
  std::printf("DLACEP alerts   : %zu\n", result.dlacep.matches.size());
  std::printf("recall          : %.3f\n", result.quality.recall);
  std::printf("precision       : %.3f  (can dip below 1.0: dropped ACKs "
              "may fabricate alerts)\n",
              result.quality.precision);
  std::printf("F1              : %.3f\n", result.quality.f1);
  std::printf("throughput gain : %.2fx\n", result.throughput_gain());
  std::printf("\nnote: a 2-positive-position pattern creates almost no "
              "partial matches, so exact CEP is already cheap and the "
              "filter overhead dominates — the paper's §3.2 regime where "
              "ACEP is NOT worth it. The win here is quality control on "
              "negation (precision stays 1.0); see stock_monitoring for "
              "the throughput story.\n");
  return 0;
}
