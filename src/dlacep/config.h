// DLACEP configuration knobs and their paper defaults.

#ifndef DLACEP_DLACEP_CONFIG_H_
#define DLACEP_DLACEP_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "nn/trainer.h"

namespace dlacep {

/// Filter-network architecture. The paper's defaults (3 stacked BiLSTM
/// layers of hidden size 75, trained on a GPU for days) are scaled down
/// here so the full study runs on one CPU core in minutes; both knobs can
/// be set back to paper scale.
struct NetworkConfig {
  size_t hidden_dim = 16;  ///< paper: 75
  size_t num_layers = 2;   ///< paper: 3
  uint64_t seed = 99;
};

/// Training defaults tuned for the scaled-down models of this
/// reproduction. The paper trains with lr 1e-3 → 1e-4 and batch sizes
/// 512 → 256 on GPU-scale models; at hidden size 16 on CPU, a higher
/// rate and small batches converge in a fraction of the epochs.
inline TrainConfig DefaultDlacepTrainConfig() {
  TrainConfig config;
  config.max_epochs = 60;
  config.batch_size = 8;
  config.lr_initial = 3e-3;
  config.lr_final = 1e-3;
  return config;
}

/// End-to-end DLACEP configuration (paper §4.2, §5.1).
struct DlacepConfig {
  /// Events marked per evaluation step. 0 = the paper default 2·W.
  size_t mark_size = 0;
  /// Stream advance per evaluation step. 0 = the paper default W.
  size_t step_size = 0;

  /// Worker threads for the filtration stage. Every assembler window is
  /// an independent inference, so the pipeline shards windows across a
  /// fixed-size thread pool and merges the per-window marks back in
  /// window order — the marked-event sequence, MatchSet, and
  /// filtering_ratio() are byte-identical to the sequential run
  /// (tests/determinism_test.cc). 1 = the exact legacy sequential path
  /// (default); 0 = hardware concurrency.
  size_t num_threads = 1;

  /// Windows marked per filter call in the filtration stage. 1 = the
  /// exact legacy per-window path (default). >1 groups consecutive
  /// assembler windows into micro-batches of this size (the tail batch
  /// may be smaller) and marks each with one MarkBatchWith call, so the
  /// NN trunk runs matrix-matrix GEMMs across windows. Batched marks are
  /// byte-identical to the per-window marks; the underlying activations
  /// agree to <= 1e-9 (see nn/infer.h).
  size_t batch_size = 1;

  NetworkConfig network;
  TrainConfig train = DefaultDlacepTrainConfig();

  /// Decision threshold on the event network's posterior marginal for
  /// the "participates" tag.
  double event_threshold = 0.5;
  /// Decision threshold on the window network's sigmoid output.
  double window_threshold = 0.5;

  /// Fraction of labeled samples used for training (the rest is the test
  /// split; paper: 70/30).
  double train_fraction = 0.7;
  uint64_t split_seed = 17;

  /// Training-set replication factor for samples that contain at least
  /// one positive label. The paper notes "class imbalance in favor of 0
  /// labeled events ... leads to overfiltering events at low amounts of
  /// data and epochs" (§5.2); at this reproduction's scaled-down data
  /// volumes the imbalance is harsher, and oversampling the applicable
  /// windows counteracts it. 1 = off.
  size_t oversample_positive = 1;

  /// §4.4: also label (and hence relay) events whose type appears under
  /// a NEG operator, so the extractor can suppress would-be false
  /// positives. Disabling this reproduces the paper's "large amount of
  /// false positive matches" failure mode (ablation).
  bool negation_aware_labeling = true;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_CONFIG_H_
