// CEP extractor (paper §4.4).
//
// Marked events keep their unique increasing arrival ids. The extractor
// concatenates the deduplicated marked events into a filtered stream and
// evaluates it with an exact CEP engine whose count-window constraint is
// enforced over event *ids*, not stream positions — the paper's
// mechanism guaranteeing that (NEG-free) DLACEP output is a subset of
// the exact match set: a match spans at most W-1 id units no matter how
// many unmarked events were dropped in between.

#ifndef DLACEP_DLACEP_EXTRACTOR_H_
#define DLACEP_DLACEP_EXTRACTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "cep/adaptive_engine.h"
#include "cep/engine.h"
#include "pattern/pattern.h"

namespace dlacep {

class CepExtractor {
 public:
  /// `engine_kind` defaults to the NFA engine; Fig 12 style setups may
  /// plug the tree, lazy, or adaptive engine instead. With
  /// EngineKind::kAdaptive the selector's decisions are published to
  /// dlacep_engine_selected_total{engine,pattern} under
  /// options.pattern_label.
  CepExtractor(const Pattern& pattern,
               EngineKind engine_kind = EngineKind::kNfa,
               const EngineOptions& options = EngineOptions{});

  /// Deduplicates `marked` (by id), sorts by arrival, and extracts all
  /// matches. The returned set is merged into `out`.
  Status Extract(std::vector<const Event*> marked, MatchSet* out);

  /// Feeds one closed assembler window into the adaptive selector's
  /// frequency estimator (no-op for static engines). The online runtime
  /// calls this from the router so observation order — and therefore
  /// the selection trail — is deterministic at every shard count.
  void ObserveWindow(std::span<const Event> events) {
    if (adaptive_ != nullptr) adaptive_->ObserveWindow(events);
  }

  const EngineStats& stats() const { return engine_->stats(); }
  void ResetStats() { engine_->ResetStats(); }

  /// Non-null iff the extractor runs the adaptive engine.
  AdaptiveEngine* adaptive() { return adaptive_; }
  const AdaptiveEngine* adaptive() const { return adaptive_; }

 private:
  std::unique_ptr<CepEngine> engine_;
  AdaptiveEngine* adaptive_ = nullptr;  ///< typed alias, not owned
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_EXTRACTOR_H_
