// CEP extractor (paper §4.4).
//
// Marked events keep their unique increasing arrival ids. The extractor
// concatenates the deduplicated marked events into a filtered stream and
// evaluates it with an exact CEP engine whose count-window constraint is
// enforced over event *ids*, not stream positions — the paper's
// mechanism guaranteeing that (NEG-free) DLACEP output is a subset of
// the exact match set: a match spans at most W-1 id units no matter how
// many unmarked events were dropped in between.

#ifndef DLACEP_DLACEP_EXTRACTOR_H_
#define DLACEP_DLACEP_EXTRACTOR_H_

#include <memory>
#include <vector>

#include "cep/engine.h"
#include "pattern/pattern.h"

namespace dlacep {

class CepExtractor {
 public:
  /// `engine_kind` defaults to the NFA engine; Fig 12 style setups may
  /// plug the tree or lazy engine instead.
  CepExtractor(const Pattern& pattern,
               EngineKind engine_kind = EngineKind::kNfa,
               const EngineOptions& options = EngineOptions{});

  /// Deduplicates `marked` (by id), sorts by arrival, and extracts all
  /// matches. The returned set is merged into `out`.
  Status Extract(std::vector<const Event*> marked, MatchSet* out);

  const EngineStats& stats() const { return engine_->stats(); }
  void ResetStats() { engine_->ResetStats(); }

 private:
  std::unique_ptr<CepEngine> engine_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_EXTRACTOR_H_
