// Concept-drift handling (paper §4.3, future-work strategy 1: periodic
// model retraining).
//
// The trained filter's decisions are only as good as the statistical
// match between the training stream and the live stream. DriftMonitor
// tracks a cheap online proxy — the filter's marking rate over a sliding
// budget of recent windows — and flags a drift when it departs from the
// training-time reference by more than a tolerance band. RetrainingLoop
// wires the monitor to a TrainableFilter: on every flagged drift it
// relabels a recent stream segment with exact CEP and fine-tunes the
// filter on it (warm start — weights are NOT reinitialized, the transfer
// -learning shortcut the paper suggests for mild drifts).

#ifndef DLACEP_DLACEP_DRIFT_H_
#define DLACEP_DLACEP_DRIFT_H_

#include <cstddef>
#include <deque>

#include "dlacep/assembler.h"
#include "dlacep/config.h"
#include "dlacep/filter.h"

namespace dlacep {

/// Sliding-window drift detector over the filter marking rate.
class DriftMonitor {
 public:
  /// `reference_rate`: fraction of events marked on the training data.
  /// `tolerance`: absolute deviation that counts as drift.
  /// `window_budget`: number of recent assembler windows to average.
  DriftMonitor(double reference_rate, double tolerance,
               size_t window_budget);

  /// Records one assembler window's marks; returns true when the
  /// smoothed marking rate has left the tolerance band (and resets the
  /// trigger so consecutive calls don't re-fire until re-armed by
  /// ResetReference or more data).
  bool Observe(const std::vector<int>& marks);

  /// Re-anchors the reference to the currently observed rate (call after
  /// retraining).
  void ResetReference();

  double observed_rate() const;
  double reference_rate() const { return reference_rate_; }

 private:
  double reference_rate_;
  double tolerance_;
  size_t window_budget_;
  std::deque<std::pair<size_t, size_t>> history_;  ///< (marked, total)
  size_t marked_sum_ = 0;
  size_t total_sum_ = 0;
};

/// Outcome of one adaptive evaluation pass.
struct AdaptiveResult {
  MatchSet matches;
  size_t drifts_detected = 0;
  size_t retrainings = 0;
  double retrain_seconds = 0.0;
};

/// Evaluates `stream` with `filter` (an *event-network* filter — the
/// fine-tuning uses per-event labels), watching for drift; whenever the
/// monitor fires, the most recent `retrain_events` events are relabeled
/// with exact CEP and the filter is fine-tuned for
/// `config.train.max_epochs` epochs (warm start). Matches are extracted
/// exactly as in DlacepPipeline.
AdaptiveResult EvaluateWithRetraining(
    const Pattern& pattern, TrainableFilter* filter,
    const Featurizer& featurizer, const EventStream& stream,
    DriftMonitor* monitor, size_t retrain_events,
    const DlacepConfig& config);

}  // namespace dlacep

#endif  // DLACEP_DLACEP_DRIFT_H_
