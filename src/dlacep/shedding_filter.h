// Load-shedding baseline filters (paper §6 "Load shedding").
//
// Load shedding drops events (or partial matches) to meet a resource
// budget, classically at random or by simple per-type utilities. These
// filters plug into the DLACEP pipeline in place of the learned network,
// giving an apples-to-apples baseline: at the SAME filtering ratio, how
// many matches does a non-learned policy lose compared to the trained
// filter? (The paper positions DLACEP as a conceptual shift away from
// such emergency shedding.)

#ifndef DLACEP_DLACEP_SHEDDING_FILTER_H_
#define DLACEP_DLACEP_SHEDDING_FILTER_H_

#include <vector>

#include "common/rng.h"
#include "dlacep/filter.h"
#include "pattern/pattern.h"

namespace dlacep {

/// Uniform random shedding: every event is relayed with probability
/// `keep_probability`, regardless of content. The marks of a window are
/// a pure function of (seed, range.begin), so Mark() is re-entrant and
/// its output does not depend on window evaluation order — required by
/// the parallel filtration stage and handy for reproducibility.
class RandomSheddingFilter : public StreamFilter {
 public:
  RandomSheddingFilter(double keep_probability, uint64_t seed);

  std::string name() const override { return "random-shedding"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override;

  /// The pure marking core: marks for a window of `count` events whose
  /// global start position is `stream_begin`. Mark() delegates here
  /// with (range.size(), range.begin); the online runtime calls it
  /// directly so detached window copies keep their global salt.
  std::vector<int> MarkCount(size_t count, size_t stream_begin) const;

  /// Salts by the window's head arrival id (a shard-stable key carried
  /// by the detached window itself), NOT by the stream_begin the caller
  /// passes — so shed decisions cannot depend on dispatch order or
  /// shard count. Equal to the batch Mark() whenever ids equal stream
  /// positions (every lossless run).
  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext* ctx,
                              double threshold_boost) const override;

 private:
  double keep_probability_;
  uint64_t seed_;
};

/// Type-aware shedding: events whose type the pattern references are
/// always relayed; all other events are dropped. The cheapest
/// content-aware policy — it achieves exactly the filtering ratio of the
/// pattern-irrelevant traffic and loses no matches, but cannot filter
/// within the relevant types (where DLACEP's gains come from).
class TypeSheddingFilter : public StreamFilter {
 public:
  explicit TypeSheddingFilter(const Pattern& pattern);

  std::string name() const override { return "type-shedding"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override;

 private:
  std::vector<bool> relevant_;  ///< indexed by type id
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_SHEDDING_FILTER_H_
