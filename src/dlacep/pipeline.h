// The end-to-end DLACEP pipeline (paper Fig 4):
//
//   stream → input assembler → DNN filter → CEP extractor → matches
//
// plus the measurement protocol of §5.1: BuildDlacep() assembles,
// labels, trains, and scores a filter network from a historical stream;
// Evaluate() runs the filtration + extraction path over a fresh stream
// and reports throughput, filtering ratio, and the match set;
// CompareWithEcep() additionally runs a baseline ECEP engine over the
// same stream and reports throughput gain and match quality.

#ifndef DLACEP_DLACEP_PIPELINE_H_
#define DLACEP_DLACEP_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "dlacep/assembler.h"
#include "dlacep/config.h"
#include "dlacep/extractor.h"
#include "dlacep/featurizer.h"
#include "dlacep/filter.h"
#include "nn/infer.h"

namespace dlacep {

/// Outcome of one pipeline evaluation.
struct PipelineResult {
  MatchSet matches;
  size_t total_events = 0;
  /// Deduplicated marked events, counted by the pipeline over the
  /// merged marks (overlapping assembler windows mark some events
  /// twice; each is counted once). Blank/padding events count too —
  /// the filter relayed them even though the extractor later drops
  /// them — so filtering_ratio() reflects what the filter kept, not
  /// what the engine processed.
  size_t marked_events = 0;
  /// Ids of marked events in deterministic merge order (window by
  /// window, duplicates from overlapping windows included). This is the
  /// pipeline's mark vector: byte-identical across num_threads
  /// settings, which the determinism tests assert.
  std::vector<EventId> marked_ids;
  double filter_seconds = 0.0;  ///< wall clock, whatever num_threads is
  double cep_seconds = 0.0;
  EngineStats cep_stats;

  double elapsed_seconds() const { return filter_seconds + cep_seconds; }
  double throughput() const {
    return Throughput(static_cast<double>(total_events),
                      elapsed_seconds());
  }
  /// Fraction of events filtered out (the paper's filtering ratio Ψ,
  /// aggregated over all types).
  double filtering_ratio() const {
    return total_events == 0
               ? 0.0
               : 1.0 - static_cast<double>(marked_events) /
                           static_cast<double>(total_events);
  }
};

/// ECEP-vs-DLACEP comparison (one row of the paper's gain/recall plots).
struct ComparisonResult {
  PipelineResult dlacep;
  MatchSet exact_matches;
  EngineStats ecep_stats;
  double ecep_seconds = 0.0;
  MatchSetMetrics quality;  ///< recall / precision / F1 / FN%

  double throughput_gain() const {
    return dlacep.throughput() /
           Throughput(static_cast<double>(dlacep.total_events),
                      ecep_seconds);
  }
};

/// The assembled system: filter + extractor + assembler.
class DlacepPipeline {
 public:
  /// `filter` may be a trained network, the oracle filter, or the
  /// pass-through filter. The pipeline owns it.
  DlacepPipeline(const Pattern& pattern,
                 std::unique_ptr<StreamFilter> filter,
                 const DlacepConfig& config);

  /// Runs filtration + extraction over `stream`. With
  /// config.num_threads != 1 the filtration stage fans window inference
  /// out over a fixed-size thread pool; the result is byte-identical to
  /// the sequential run (deterministic window-order merge).
  PipelineResult Evaluate(const EventStream& stream);

  /// Runs Evaluate() plus a baseline ECEP engine over the same stream.
  ComparisonResult CompareWithEcep(const EventStream& stream,
                                   EngineKind baseline = EngineKind::kNfa);

  StreamFilter& filter() { return *filter_; }
  const InputAssembler& assembler() const { return assembler_; }

 private:
  /// The pool used for parallel filtration, created lazily on the first
  /// Evaluate() that wants more than one worker and reused afterwards.
  ThreadPool* FiltrationPool();

  Pattern pattern_;
  DlacepConfig config_;
  InputAssembler assembler_;
  std::unique_ptr<StreamFilter> filter_;
  CepExtractor extractor_;
  std::unique_ptr<ThreadPool> pool_;
  /// One inference scratch arena per filtration worker (slot 0 doubles
  /// as the sequential path's arena), created lazily alongside the pool
  /// and reused across windows and across Evaluate() calls — after the
  /// first window each Mark runs allocation-free.
  std::vector<std::unique_ptr<InferenceContext>> contexts_;
};

/// A fully built DLACEP instance: featurizer + trained filter + pipeline
/// + training/test diagnostics.
struct BuiltDlacep {
  std::unique_ptr<Featurizer> featurizer;
  std::unique_ptr<DlacepPipeline> pipeline;
  TrainResult train_result;
  BinaryMetrics test_metrics;   ///< entity-level P/R/F1 on the test split
  double label_seconds = 0.0;   ///< dataset labeling time
  double train_seconds = 0.0;
};

enum class FilterKind { kEventNetwork, kWindowNetwork, kOracle,
                        kPassThrough };

const char* FilterKindName(FilterKind kind);

/// Builds a DLACEP system for `pattern` from the historical
/// `train_stream`: assembles sample windows, labels them with exact CEP,
/// trains the requested filter network (no-op for oracle/pass-through),
/// and scores it on the held-out test split.
BuiltDlacep BuildDlacep(const Pattern& pattern,
                        const EventStream& train_stream, FilterKind kind,
                        const DlacepConfig& config);

}  // namespace dlacep

#endif  // DLACEP_DLACEP_PIPELINE_H_
