#include "dlacep/shedding_filter.h"

namespace dlacep {

RandomSheddingFilter::RandomSheddingFilter(double keep_probability,
                                           uint64_t seed)
    : keep_probability_(keep_probability), seed_(seed) {
  DLACEP_CHECK_GE(keep_probability_, 0.0);
  DLACEP_CHECK_LE(keep_probability_, 1.0);
}

std::vector<int> RandomSheddingFilter::MarkCount(size_t count,
                                                 size_t stream_begin) const {
  // Fresh per-window generator (splitmix-style mix of the window start
  // into the seed) — see the header for why Mark must be stateless.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                   (static_cast<uint64_t>(stream_begin) + 1)));
  std::vector<int> marks(count);
  for (int& m : marks) {
    m = rng.Bernoulli(keep_probability_) ? 1 : 0;
  }
  return marks;
}

std::vector<int> RandomSheddingFilter::Mark(const EventStream&,
                                            WindowRange range) const {
  return MarkCount(range.size(), range.begin);
}

std::vector<int> RandomSheddingFilter::MarkOnline(
    const EventStream& window, size_t stream_begin, InferenceContext*,
    double) const {
  // The salt keys on the window's head arrival id, not on the position
  // the caller's assembler happens to pass: arrival ids are assigned at
  // ingest and travel with the detached window, so shed decisions are a
  // pure function of window content — identical across shard counts,
  // dispatch orders, and thread counts. With a lossless producer the
  // head id equals the window's global stream position, so this stays
  // byte-identical to the batch path's Mark(stream, {stream_begin, ...}).
  return MarkCount(window.size(), window.size() > 0
                                      ? static_cast<size_t>(window[0].id)
                                      : stream_begin);
}

TypeSheddingFilter::TypeSheddingFilter(const Pattern& pattern) {
  relevant_.assign(pattern.schema().num_types(), false);
  for (TypeId type : pattern.ReferencedTypes()) {
    if (type >= 0 && static_cast<size_t>(type) < relevant_.size()) {
      relevant_[static_cast<size_t>(type)] = true;
    }
  }
}

std::vector<int> TypeSheddingFilter::Mark(const EventStream& stream,
                                          WindowRange range) const {
  std::vector<int> marks(range.size(), 0);
  for (size_t t = 0; t < range.size(); ++t) {
    const Event& e = stream[range.begin + t];
    if (!e.is_blank() && relevant_[static_cast<size_t>(e.type)]) {
      marks[t] = 1;
    }
  }
  return marks;
}

}  // namespace dlacep
