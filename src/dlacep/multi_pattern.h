// Multi-pattern monitoring (paper §4.3).
//
// "When there is more than one monitored pattern, we can train the
// network with samples labeled according to the monitoring requirement,
// thus semantically unifying the patterns into one": an event is labeled
// 1 iff it participates in a full match of ANY monitored pattern; a
// window is applicable iff it contains a match of any pattern. One
// filter network serves all patterns; the CEP extractor then runs each
// pattern's exact engine over the shared filtered stream.
//
// All patterns must share the schema and use count windows; the
// assembler is sized by the largest pattern window.

#ifndef DLACEP_DLACEP_MULTI_PATTERN_H_
#define DLACEP_DLACEP_MULTI_PATTERN_H_

#include <memory>
#include <vector>

#include "dlacep/config.h"
#include "dlacep/event_filter.h"
#include "dlacep/pipeline.h"

namespace dlacep {

/// Result of a multi-pattern evaluation: one match set per pattern, in
/// input order, plus shared filtering statistics.
struct MultiPatternResult {
  std::vector<MatchSet> per_pattern;
  size_t total_events = 0;
  size_t marked_events = 0;
  double filter_seconds = 0.0;
  double cep_seconds = 0.0;

  double filtering_ratio() const {
    return total_events == 0
               ? 0.0
               : 1.0 - static_cast<double>(marked_events) /
                           static_cast<double>(total_events);
  }
};

/// A DLACEP system monitoring several patterns with one shared filter.
class MultiPatternDlacep {
 public:
  /// Builds featurizer + unified labels + event network from
  /// `train_stream`, then one extractor per pattern.
  MultiPatternDlacep(std::vector<Pattern> patterns,
                     const EventStream& train_stream,
                     const DlacepConfig& config);

  MultiPatternResult Evaluate(const EventStream& stream);

  const BinaryMetrics& test_metrics() const { return test_metrics_; }
  size_t num_patterns() const { return patterns_.size(); }
  const std::vector<Pattern>& patterns() const { return patterns_; }
  size_t max_window() const { return max_window_; }

  /// The shared filter network, for serving layers that drive it
  /// directly (src/serve registers it as the multi-head trunk). Owned
  /// by this object; valid for its lifetime.
  const EventNetworkFilter* filter() const { return filter_.get(); }

  /// Windows marked per filter call in Evaluate (mirrors
  /// DlacepConfig::batch_size). Exposed so equivalence tests can sweep
  /// batch sizes without retraining a second system.
  void set_batch_size(size_t batch_size) { config_.batch_size = batch_size; }

 private:
  std::vector<Pattern> patterns_;
  DlacepConfig config_;
  size_t max_window_;
  std::unique_ptr<Featurizer> featurizer_;
  std::unique_ptr<EventNetworkFilter> filter_;
  BinaryMetrics test_metrics_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_MULTI_PATTERN_H_
