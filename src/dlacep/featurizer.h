// Event embedding (paper §4.3).
//
// Each primitive event becomes a feature vector of
//   [ compacted one-hot type | blank flag | standardized attributes
//     | standardized signed-log attributes ].
// The signed-log channel (sign(v)·log1p(|v|), standardized) makes the
// multiplicative band predicates that dominate the paper's queries
// (α·x.vol < y.vol < β·x.vol) *additive*, which a BiLSTM learns far more
// readily — the counterpart of the paper training on standardized
// volumes of a log-normal-ish quantity.
// The one-hot is compacted pattern-wise: every event type referenced by
// the pattern gets its own slot and all other types share one "other"
// slot (the paper's example: 500 types, 1 referenced → 2 categories).
// Numeric attributes are standardized with the mean/stddev of the
// training stream. Blank (padding) events encode as zeros plus the blank
// flag — used by the simulated time-based-window experiment (Fig 14).

#ifndef DLACEP_DLACEP_FEATURIZER_H_
#define DLACEP_DLACEP_FEATURIZER_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "nn/matrix.h"
#include "pattern/pattern.h"
#include "stream/stream.h"

namespace dlacep {

class Featurizer {
 public:
  /// Fits the standardizer on `train_stream` and compacts the type
  /// encoding to the types `pattern` references.
  Featurizer(const Pattern& pattern, const EventStream& train_stream);

  /// Multi-pattern variant (paper §4.3: several patterns semantically
  /// unified into one monitoring task): compaction signatures are formed
  /// over the union of all patterns' primitive type sets.
  Featurizer(const std::vector<std::vector<TypeId>>& type_sets,
             const EventStream& train_stream);

  /// Encodes a window of events as a T×feature_dim() matrix.
  Matrix Encode(std::span<const Event> window) const;

  size_t feature_dim() const { return feature_dim_; }
  size_t num_type_slots() const { return num_type_slots_; }

  /// The signed-log transform used for the second attribute channel.
  static double SignedLog(double v);

 private:
  std::unordered_map<TypeId, size_t> type_slot_;  ///< referenced types
  size_t num_type_slots_ = 0;  ///< referenced + 1 shared "other" slot
  size_t num_attrs_ = 0;
  size_t feature_dim_ = 0;
  std::vector<AttrStats> attr_stats_;
  std::vector<AttrStats> log_attr_stats_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_FEATURIZER_H_
