// The stream-filter interface of the filtration-based ACEP system
// (paper §3.1, §4.3): given one assembler window, mark the events that
// should be relayed to the CEP extractor.

#ifndef DLACEP_DLACEP_FILTER_H_
#define DLACEP_DLACEP_FILTER_H_

#include <string>
#include <vector>

#include "dlacep/labeler.h"
#include "nn/metrics.h"
#include "nn/trainer.h"
#include "stream/stream.h"
#include "stream/window.h"

namespace dlacep {

class StreamFilter {
 public:
  virtual ~StreamFilter() = default;

  virtual std::string name() const = 0;

  /// Per-event 0/1 marks for stream[range] (1 = relay).
  ///
  /// Mark() is const and must be re-entrant: when the pipeline runs
  /// with num_threads > 1 it invokes Mark() concurrently from worker
  /// threads, one assembler window per task. Implementations may only
  /// read shared state (model parameters, featurizer statistics) and
  /// must keep any scratch (tapes, rngs) local to the call, or
  /// serialize access internally.
  virtual std::vector<int> Mark(const EventStream& stream,
                                WindowRange range) const = 0;
};

/// A filter backed by a trainable network.
class TrainableFilter : public StreamFilter {
 public:
  /// Trains on pre-encoded samples (see BuildFilterDataset); returns the
  /// trainer's result.
  virtual TrainResult Fit(const std::vector<Sample>& samples,
                          const TrainConfig& config) = 0;

  /// Marks from pre-encoded features (used during evaluation so that the
  /// featurization cost is attributed to the filter). Const/re-entrant
  /// under the same contract as Mark().
  virtual std::vector<int> MarkFeatures(const Matrix& features) const = 0;

  virtual std::vector<Parameter*> Params() = 0;

  /// Evaluates filter quality on pre-encoded samples: the paper's
  /// entity-level P/R/F1 (§4.3) — entities are events for the event
  /// network and windows for the window network.
  virtual BinaryMetrics Score(const std::vector<Sample>& samples) const = 0;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_FILTER_H_
