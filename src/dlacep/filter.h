// The stream-filter interface of the filtration-based ACEP system
// (paper §3.1, §4.3): given one assembler window, mark the events that
// should be relayed to the CEP extractor.

#ifndef DLACEP_DLACEP_FILTER_H_
#define DLACEP_DLACEP_FILTER_H_

#include <span>
#include <string>
#include <vector>

#include "dlacep/labeler.h"
#include "nn/metrics.h"
#include "nn/trainer.h"
#include "stream/stream.h"
#include "stream/window.h"

namespace dlacep {

class InferenceContext;

/// Sentinel mark value: the filter's scores were numerically invalid
/// (NaN/Inf) for this window, so no trustworthy relay decision exists.
/// Network filters return a whole-window vector of kInvalidMark instead
/// of silently thresholding NaN to 0 (which would drop every event). The
/// batch pipeline treats any nonzero mark as relay (conservative); the
/// online runtime's HealthGuard recognizes the sentinel, quarantines the
/// window (relaying it unfiltered), and flips into degraded mode.
inline constexpr int kInvalidMark = -1;

/// One window of a MarkBatchOnline() micro-batch: the events the online
/// runtime materialized for it, its position in the full stream, and
/// the overload threshold boost in force when it closed (windows inside
/// one batch may have closed under different overload levels).
struct OnlineWindow {
  const EventStream* events = nullptr;
  size_t stream_begin = 0;
  double threshold_boost = 0.0;
};

class StreamFilter {
 public:
  virtual ~StreamFilter() = default;

  virtual std::string name() const = 0;

  /// Per-event 0/1 marks for stream[range] (1 = relay).
  ///
  /// Mark() is const and must be re-entrant: when the pipeline runs
  /// with num_threads > 1 it invokes Mark() concurrently from worker
  /// threads, one assembler window per task. Implementations may only
  /// read shared state (model parameters, featurizer statistics) and
  /// must keep any scratch (tapes, rngs) local to the call, or
  /// serialize access internally.
  virtual std::vector<int> Mark(const EventStream& stream,
                                WindowRange range) const = 0;

  /// Mark() with a caller-provided reusable scratch arena. The pipeline
  /// threads one InferenceContext per worker through here so that
  /// network filters run allocation-free after the first window; `ctx`
  /// must not be shared across concurrent calls. Filters without a
  /// network (oracle, pass-through, shedding) ignore it.
  virtual std::vector<int> MarkWith(const EventStream& stream,
                                    WindowRange range,
                                    InferenceContext* ctx) const {
    (void)ctx;
    return Mark(stream, range);
  }

  /// Marks one assembler window that the online runtime has
  /// materialized as a standalone stream: `window` holds copies of the
  /// events (with their arrival ids) and `stream_begin` is the window's
  /// position in the full stream. The default forwards to MarkWith over
  /// the whole window, which is correct for any content-based filter;
  /// position-salted filters (random shedding) override it to recover
  /// their global salt, and network filters override it to honor
  /// `threshold_boost` — an overload-control increment added to their
  /// decision threshold so borderline entities are shed first (0 =
  /// normal operation). Same const/re-entrancy contract as Mark().
  virtual std::vector<int> MarkOnline(const EventStream& window,
                                      size_t stream_begin,
                                      InferenceContext* ctx,
                                      double threshold_boost) const {
    (void)stream_begin;
    (void)threshold_boost;
    return MarkWith(window, WindowRange{0, window.size()}, ctx);
  }

  /// Marks a micro-batch of assembler windows in one call, writing
  /// windows.size() mark vectors to `marks[0..B)` in window order. The
  /// default is a per-window MarkWith loop — exact legacy semantics for
  /// filters with nothing to batch (oracle, pass-through, shedding).
  /// Network filters override it to stack the windows' feature matrices
  /// batch-major and run the trunk once as matrix-matrix work
  /// (nn/infer.h ForwardBatch); batched marks must equal the per-window
  /// marks byte for byte. Same const/re-entrancy contract as Mark();
  /// `ctx` must not be shared across concurrent calls.
  virtual void MarkBatchWith(const EventStream& stream,
                             std::span<const WindowRange> windows,
                             InferenceContext* ctx,
                             std::vector<int>* marks) const {
    for (size_t i = 0; i < windows.size(); ++i) {
      marks[i] = MarkWith(stream, windows[i], ctx);
    }
  }

  /// Batched twin of MarkOnline for the online runtime's
  /// batch-collection stage. The default loops MarkOnline — which keeps
  /// position-salted filters (random shedding) exactly deterministic —
  /// and network filters override it to batch the trunk forward while
  /// still applying each window's own threshold boost.
  virtual void MarkBatchOnline(std::span<const OnlineWindow> windows,
                               InferenceContext* ctx,
                               std::vector<int>* marks) const {
    for (size_t i = 0; i < windows.size(); ++i) {
      marks[i] = MarkOnline(*windows[i].events, windows[i].stream_begin, ctx,
                            windows[i].threshold_boost);
    }
  }
};

/// A filter backed by a trainable network.
class TrainableFilter : public StreamFilter {
 public:
  /// Trains on pre-encoded samples (see BuildFilterDataset); returns the
  /// trainer's result.
  virtual TrainResult Fit(const std::vector<Sample>& samples,
                          const TrainConfig& config) = 0;

  /// Marks from pre-encoded features (used during evaluation so that the
  /// featurization cost is attributed to the filter). Const/re-entrant
  /// under the same contract as Mark().
  virtual std::vector<int> MarkFeatures(const Matrix& features) const = 0;

  /// MarkFeatures() with a caller-provided scratch arena (nullptr = use
  /// a call-local one). Same re-entrancy contract; a given `ctx` must
  /// not be shared across concurrent calls.
  virtual std::vector<int> MarkFeaturesWith(const Matrix& features,
                                            InferenceContext* ctx) const {
    (void)ctx;
    return MarkFeatures(features);
  }

  /// Golden-reference marks via the autograd tape forward (the training
  /// machinery). Slow — kept so equivalence tests and before/after
  /// benchmarks can pin the fast path against it; must produce the same
  /// thresholded marks as MarkFeatures().
  virtual std::vector<int> MarkFeaturesTape(const Matrix& features) const = 0;

  /// Must be called after mutating parameter values out-of-band
  /// (LoadParameters, snapshot restore) so the filter can repack its
  /// frozen inference weights; Fit() refreezes on its own.
  virtual void OnParamsChanged() {}

  virtual std::vector<Parameter*> Params() = 0;

  /// Evaluates filter quality on pre-encoded samples: the paper's
  /// entity-level P/R/F1 (§4.3) — entities are events for the event
  /// network and windows for the window network.
  virtual BinaryMetrics Score(const std::vector<Sample>& samples) const = 0;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_FILTER_H_
