#include "dlacep/padding.h"

#include <algorithm>

#include "common/rng.h"

namespace dlacep {

namespace {

/// Copies stream[begin, begin+take) into `out` and pads with blanks to
/// `max_window` events, carrying the last real timestamp forward.
void EmitPadded(const EventStream& source, size_t begin, size_t take,
                size_t max_window, EventStream* out) {
  double last_ts = take > 0 ? source[begin].timestamp : 0.0;
  for (size_t k = 0; k < take; ++k) {
    const Event& e = source[begin + k];
    out->Append(e.type, e.timestamp, e.attrs);
    last_ts = e.timestamp;
  }
  for (size_t k = take; k < max_window; ++k) {
    out->AppendBlank(last_ts);
  }
}

}  // namespace

EventStream PadTimeWindows(const EventStream& source, double time_span,
                           size_t max_window) {
  DLACEP_CHECK_GT(max_window, 0u);
  EventStream out(source.schema_ptr());
  size_t i = 0;
  while (i < source.size()) {
    size_t take = 1;
    while (i + take < source.size() && take < max_window &&
           source[i + take].timestamp - source[i].timestamp <=
               time_span) {
      ++take;
    }
    EmitPadded(source, i, take, max_window, &out);
    i += take;
  }
  return out;
}

EventStream PadRandomWindows(const EventStream& source, size_t max_window,
                             uint64_t seed) {
  DLACEP_CHECK_GT(max_window, 0u);
  Rng rng(seed);
  EventStream out(source.schema_ptr());
  size_t i = 0;
  while (i < source.size()) {
    const size_t chunk = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(std::max<size_t>(1, max_window / 2)),
        static_cast<int64_t>(max_window)));
    const size_t take = std::min(chunk, source.size() - i);
    EmitPadded(source, i, take, max_window, &out);
    i += take;
  }
  return out;
}

double PaddingRatio(const EventStream& stream) {
  if (stream.empty()) return 0.0;
  size_t blanks = 0;
  for (const Event& e : stream) {
    if (e.is_blank()) ++blanks;
  }
  return static_cast<double>(blanks) / static_cast<double>(stream.size());
}

}  // namespace dlacep
