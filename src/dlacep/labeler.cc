#include "dlacep/labeler.h"

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"

namespace dlacep {

namespace {

// Collects types referenced under NEG operators.
void CollectNegatedTypes(const PatternNode& node, bool under_neg,
                         std::set<TypeId>* out) {
  if (node.kind == OpKind::kPrimitive) {
    if (under_neg) out->insert(node.types.begin(), node.types.end());
    return;
  }
  const bool neg = under_neg || node.kind == OpKind::kNeg;
  for (const auto& child : node.children) {
    CollectNegatedTypes(*child, neg, out);
  }
}

}  // namespace

SampleLabeler::SampleLabeler(const Pattern& pattern) : pattern_(pattern) {
  CollectNegatedTypes(pattern_.root(), /*under_neg=*/false,
                      &negated_types_);
  auto engine = CreateEngine(EngineKind::kNfa, pattern_);
  DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
  engine_ = std::move(engine).value();
}

LabeledSample SampleLabeler::Label(const EventStream& stream,
                                   WindowRange range) const {
  LabeledSample sample;
  sample.range = range;
  sample.event_labels.assign(range.size(), 0);

  const std::span<const Event> span =
      stream.View(range.begin, range.size());
  MatchSet matches;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    const Status status = engine_->Evaluate(span, &matches);
    DLACEP_CHECK_MSG(status.ok(), status.ToString());
  }
  sample.num_matches = matches.size();
  sample.window_label = matches.empty() ? 0 : 1;

  // Participant ids → positional labels. Ids inside the span are
  // contiguous, so offset arithmetic suffices; blank events never match.
  for (const Match& match : matches) {
    for (EventId id : match.ids) {
      DLACEP_CHECK_GE(id, span.front().id);
      const size_t offset = static_cast<size_t>(id - span.front().id);
      DLACEP_CHECK_LT(offset, sample.event_labels.size());
      sample.event_labels[offset] = 1;
    }
  }
  // Negation awareness: relay candidate negated events too (§4.4).
  if (!negated_types_.empty()) {
    for (size_t t = 0; t < span.size(); ++t) {
      if (negated_types_.count(span[t].type) > 0) {
        sample.event_labels[t] = 1;
      }
    }
  }
  return sample;
}

namespace {

// Labels every assembler window from one global exact-CEP pass. A match
// must span at most W - 1 id units, and MarkSize >= 2W / StepSize <= W
// guarantee every such id interval lies inside at least one sample
// window, so per-window labels derived from the global match set equal
// the labels a per-window CEP run would produce — at half the cost (no
// overlap is re-evaluated).
std::vector<LabeledSample> LabelAllWindows(
    const Pattern& pattern, const EventStream& stream,
    const std::vector<WindowRange>& windows,
    const std::set<TypeId>& negated_types) {
  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
  MatchSet matches;
  const Status status = engine.value()->Evaluate(
      {stream.events().data(), stream.size()}, &matches);
  DLACEP_CHECK_MSG(status.ok(), status.ToString());

  // Sort matches by their minimal event id for windowed lookups.
  std::vector<const Match*> by_min;
  by_min.reserve(matches.size());
  for (const Match& m : matches) by_min.push_back(&m);
  std::sort(by_min.begin(), by_min.end(),
            [](const Match* a, const Match* b) {
              return a->ids.front() < b->ids.front();
            });

  std::vector<LabeledSample> out;
  out.reserve(windows.size());
  const EventId base = stream.empty() ? 0 : stream[0].id;
  for (const WindowRange& range : windows) {
    LabeledSample sample;
    sample.range = range;
    sample.event_labels.assign(range.size(), 0);
    const EventId lo = base + range.begin;
    const EventId hi = base + range.end;  // exclusive
    auto it = std::lower_bound(
        by_min.begin(), by_min.end(), lo,
        [](const Match* m, EventId id) { return m->ids.front() < id; });
    for (; it != by_min.end() && (*it)->ids.front() < hi; ++it) {
      if ((*it)->ids.back() >= hi) continue;  // not fully inside
      ++sample.num_matches;
      for (EventId id : (*it)->ids) {
        sample.event_labels[static_cast<size_t>(id - lo)] = 1;
      }
    }
    sample.window_label = sample.num_matches > 0 ? 1 : 0;
    if (!negated_types.empty()) {
      for (size_t t = 0; t < range.size(); ++t) {
        if (negated_types.count(stream[range.begin + t].type) > 0) {
          sample.event_labels[t] = 1;
        }
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::set<TypeId> NegatedTypesOf(const Pattern& pattern) {
  std::set<TypeId> out;
  CollectNegatedTypes(pattern.root(), /*under_neg=*/false, &out);
  return out;
}

}  // namespace

FilterDataset BuildFilterDataset(const Pattern& pattern,
                                 const EventStream& stream,
                                 const InputAssembler& assembler,
                                 const Featurizer& featurizer,
                                 double train_fraction, uint64_t seed,
                                 bool negation_aware) {
  DLACEP_CHECK_GT(train_fraction, 0.0);
  DLACEP_CHECK_LE(train_fraction, 1.0);
  const std::vector<WindowRange> windows = assembler.Windows(stream.size());
  std::vector<LabeledSample> all_labeled = LabelAllWindows(
      pattern, stream, windows,
      negation_aware ? NegatedTypesOf(pattern) : std::set<TypeId>{});

  FilterDataset dataset;
  Rng rng(seed);
  const std::vector<size_t> order = rng.Permutation(windows.size());
  const size_t train_count = static_cast<size_t>(
      train_fraction * static_cast<double>(windows.size()) + 0.5);

  for (size_t k = 0; k < order.size(); ++k) {
    const WindowRange range = windows[order[k]];
    LabeledSample labeled = std::move(all_labeled[order[k]]);
    Sample event_sample;
    event_sample.features =
        featurizer.Encode(stream.View(range.begin, range.size()));
    event_sample.labels = labeled.event_labels;
    Sample window_sample;
    window_sample.features = event_sample.features;
    window_sample.labels = {labeled.window_label};

    const bool is_train = k < train_count;
    if (is_train) {
      dataset.train_raw.push_back(std::move(labeled));
      dataset.train_event.push_back(std::move(event_sample));
      dataset.train_window.push_back(std::move(window_sample));
    } else {
      dataset.test_raw.push_back(std::move(labeled));
      dataset.test_event.push_back(std::move(event_sample));
      dataset.test_window.push_back(std::move(window_sample));
    }
  }
  return dataset;
}

}  // namespace dlacep
