// DNN input assembler (paper §4.2, Fig 4-6).
//
// The trained network evaluates the stream in steps of StepSize events,
// marking MarkSize events per step. With the paper's defaults
// (MarkSize = 2·W, StepSize = W) every pair of events at distance < W
// co-occurs in at least one sample, so no in-window match can be missed
// by windowing alone; larger MarkSize finds matches the original pattern
// window would reject (excess CEP work, Fig 6), larger StepSize skips
// stream positions (missed matches, Fig 5).

#ifndef DLACEP_DLACEP_ASSEMBLER_H_
#define DLACEP_DLACEP_ASSEMBLER_H_

#include <vector>

#include "common/status.h"
#include "stream/window.h"

namespace dlacep {

class InputAssembler {
 public:
  /// `mark_size` must be >= the pattern window W and `step_size` >=
  /// max(1, mark_size - W) for full coverage (checked by the pipeline,
  /// not here — ablation benches intentionally violate it).
  InputAssembler(size_t mark_size, size_t step_size)
      : mark_size_(mark_size), step_size_(step_size) {
    DLACEP_CHECK_GT(mark_size_, 0u);
    DLACEP_CHECK_GT(step_size_, 0u);
  }

  /// Sample windows over a stream of `stream_size` events.
  std::vector<WindowRange> Windows(size_t stream_size) const {
    if (stream_size == 0) return {};
    return CountWindows(stream_size, mark_size_, step_size_);
  }

  size_t mark_size() const { return mark_size_; }
  size_t step_size() const { return step_size_; }

  /// The paper-default assembler for pattern window W.
  static InputAssembler ForWindow(size_t w) {
    return InputAssembler(2 * w, w);
  }

 private:
  size_t mark_size_;
  size_t step_size_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_ASSEMBLER_H_
