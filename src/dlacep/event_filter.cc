#include "dlacep/event_filter.h"

#include <algorithm>
#include <cmath>

#include "obs/stages.h"
#include "obs/trace.h"

namespace dlacep {

EventNetworkFilter::EventNetworkFilter(const Featurizer* featurizer,
                                       const NetworkConfig& network,
                                       double event_threshold)
    : featurizer_(featurizer),
      event_threshold_(event_threshold),
      init_rng_(network.seed),
      stack_("event.stack", featurizer->feature_dim(), network.hidden_dim,
             network.num_layers, &init_rng_),
      head_fwd_("event.head_fwd", stack_.out_dim(), 2, &init_rng_),
      head_bwd_("event.head_bwd", stack_.out_dim(), 2, &init_rng_),
      crf_("event.crf", 2, &init_rng_) {
  DLACEP_CHECK(featurizer_ != nullptr);
  Refreeze();
}

void EventNetworkFilter::Refreeze() {
  frozen_.stack = Freeze(stack_);
  frozen_.head_fwd = Freeze(head_fwd_);
  frozen_.head_bwd = Freeze(head_bwd_);
}

void EventNetworkFilter::OnParamsChanged() { Refreeze(); }

std::pair<Var, Var> EventNetworkFilter::Emissions(
    Tape* tape, const Matrix& features) const {
  Var h = stack_.Forward(tape, tape->Input(features));
  return {head_fwd_.Forward(tape, h), head_bwd_.Forward(tape, h)};
}

Var EventNetworkFilter::Loss(Tape* tape, const Sample& sample) {
  auto [emissions_f, emissions_b] = Emissions(tape, sample.features);
  return crf_.Nll(tape, emissions_f, emissions_b, sample.labels);
}

std::vector<Parameter*> EventNetworkFilter::Params() {
  std::vector<Parameter*> params = stack_.Params();
  for (Parameter* p : head_fwd_.Params()) params.push_back(p);
  for (Parameter* p : head_bwd_.Params()) params.push_back(p);
  for (Parameter* p : crf_.Params()) params.push_back(p);
  return params;
}

std::vector<int> EventNetworkFilter::Threshold(const Matrix& marginals,
                                               double threshold) const {
  std::vector<int> marks(marginals.rows());
  for (size_t t = 0; t < marginals.rows(); ++t) {
    const double score = marginals(t, 1);
    if (!std::isfinite(score)) {
      // NaN compares false against any threshold, which would silently
      // drop the event. Surface the blown-up pass as a whole-window
      // sentinel instead; downstream either relays everything (batch) or
      // quarantines and degrades (online HealthGuard).
      return std::vector<int>(marginals.rows(), kInvalidMark);
    }
    marks[t] = score >= threshold ? 1 : 0;
  }
  return marks;
}

std::vector<int> EventNetworkFilter::MarkFeaturesAt(
    const Matrix& features, InferenceContext* ctx,
    double threshold) const {
  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();
  const Matrix& h = frozen_.stack.Forward(c, features);
  Matrix& emissions_f = c->Acquire(features.rows(), 2);
  Matrix& emissions_b = c->Acquire(features.rows(), 2);
  frozen_.head_fwd.Forward(h, &emissions_f);
  frozen_.head_bwd.Forward(h, &emissions_b);
  return Threshold(crf_.Marginals(emissions_f, emissions_b), threshold);
}

void EventNetworkFilter::MarkFeaturesBatchAt(
    std::span<const Matrix> features, InferenceContext* ctx,
    std::span<const double> thresholds, std::vector<int>* marks) const {
  const size_t batch = features.size();
  if (batch == 0) return;
  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();

  std::vector<size_t> offsets(batch + 1, 0);
  for (size_t w = 0; w < batch; ++w) {
    offsets[w + 1] = offsets[w] + features[w].rows();
  }
  Matrix& x_all = c->Acquire(offsets[batch], features[0].cols());
  for (size_t w = 0; w < batch; ++w) {
    std::copy_n(features[w].data(), features[w].rows() * features[w].cols(),
                x_all.data() + offsets[w] * x_all.cols());
  }

  const Matrix& h = frozen_.stack.ForwardBatch(c, x_all, offsets);
  // The emission heads are row-local dot products (MatMulTransBInto),
  // so one stacked call over the slab equals per-window heads bit for
  // bit.
  Matrix& emissions_f = c->Acquire(offsets[batch], 2);
  Matrix& emissions_b = c->Acquire(offsets[batch], 2);
  frozen_.head_fwd.ForwardBatch(h, &emissions_f);
  frozen_.head_bwd.ForwardBatch(h, &emissions_b);

  // The CRF chains stay per-window: slice each window's emissions back
  // out and decode against its own threshold (batched windows may carry
  // different overload boosts).
  for (size_t w = 0; w < batch; ++w) {
    const size_t t_len = offsets[w + 1] - offsets[w];
    Matrix& ef = c->Acquire(t_len, 2);
    Matrix& eb = c->Acquire(t_len, 2);
    std::copy_n(emissions_f.data() + offsets[w] * 2, t_len * 2, ef.data());
    std::copy_n(emissions_b.data() + offsets[w] * 2, t_len * 2, eb.data());
    marks[w] = Threshold(crf_.Marginals(ef, eb), thresholds[w]);
  }
}

void EventNetworkFilter::MarkBatchWith(const EventStream& stream,
                                       std::span<const WindowRange> windows,
                                       InferenceContext* ctx,
                                       std::vector<int>* marks) const {
  if (windows.empty()) return;
  std::vector<Matrix> features;
  features.reserve(windows.size());
  {
    obs::TraceSpan feature_span(obs::StageFeatureBuild());
    for (const WindowRange& range : windows) {
      features.push_back(
          featurizer_->Encode(stream.View(range.begin, range.size())));
    }
  }
  const std::vector<double> thresholds(windows.size(), event_threshold_);
  MarkFeaturesBatchAt(features, ctx, thresholds, marks);
}

void EventNetworkFilter::MarkBatchOnline(std::span<const OnlineWindow> windows,
                                         InferenceContext* ctx,
                                         std::vector<int>* marks) const {
  if (windows.empty()) return;
  std::vector<Matrix> features;
  std::vector<double> thresholds;
  features.reserve(windows.size());
  thresholds.reserve(windows.size());
  {
    obs::TraceSpan feature_span(obs::StageFeatureBuild());
    for (const OnlineWindow& w : windows) {
      features.push_back(
          featurizer_->Encode(w.events->View(0, w.events->size())));
      thresholds.push_back(event_threshold_ + w.threshold_boost);
    }
  }
  MarkFeaturesBatchAt(features, ctx, thresholds, marks);
}

void EventNetworkFilter::MarkOnlineMultiHead(
    const EventStream& window, InferenceContext* ctx,
    std::span<const double> thresholds,
    std::vector<std::vector<int>>* marks) const {
  obs::TraceSpan feature_span(obs::StageFeatureBuild());
  Matrix features = featurizer_->Encode(window.View(0, window.size()));
  feature_span.Finish();

  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();
  const Matrix& h = frozen_.stack.Forward(c, features);
  Matrix& emissions_f = c->Acquire(features.rows(), 2);
  Matrix& emissions_b = c->Acquire(features.rows(), 2);
  frozen_.head_fwd.Forward(h, &emissions_f);
  frozen_.head_bwd.Forward(h, &emissions_b);
  const Matrix marginals = crf_.Marginals(emissions_f, emissions_b);
  marks->resize(thresholds.size());
  for (size_t q = 0; q < thresholds.size(); ++q) {
    (*marks)[q] = Threshold(marginals, thresholds[q]);
  }
}

void EventNetworkFilter::MarkBatchOnlineMultiHead(
    std::span<const OnlineWindow> windows, InferenceContext* ctx,
    std::span<const double> thresholds,
    std::vector<std::vector<std::vector<int>>>* marks) const {
  const size_t batch = windows.size();
  marks->assign(batch, {});
  if (batch == 0) return;
  std::vector<Matrix> features;
  features.reserve(batch);
  {
    obs::TraceSpan feature_span(obs::StageFeatureBuild());
    for (const OnlineWindow& w : windows) {
      features.push_back(
          featurizer_->Encode(w.events->View(0, w.events->size())));
    }
  }

  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();
  std::vector<size_t> offsets(batch + 1, 0);
  for (size_t w = 0; w < batch; ++w) {
    offsets[w + 1] = offsets[w] + features[w].rows();
  }
  Matrix& x_all = c->Acquire(offsets[batch], features[0].cols());
  for (size_t w = 0; w < batch; ++w) {
    std::copy_n(features[w].data(), features[w].rows() * features[w].cols(),
                x_all.data() + offsets[w] * x_all.cols());
  }
  const Matrix& h = frozen_.stack.ForwardBatch(c, x_all, offsets);
  Matrix& emissions_f = c->Acquire(offsets[batch], 2);
  Matrix& emissions_b = c->Acquire(offsets[batch], 2);
  frozen_.head_fwd.ForwardBatch(h, &emissions_f);
  frozen_.head_bwd.ForwardBatch(h, &emissions_b);

  for (size_t w = 0; w < batch; ++w) {
    const size_t t_len = offsets[w + 1] - offsets[w];
    Matrix& ef = c->Acquire(t_len, 2);
    Matrix& eb = c->Acquire(t_len, 2);
    std::copy_n(emissions_f.data() + offsets[w] * 2, t_len * 2, ef.data());
    std::copy_n(emissions_b.data() + offsets[w] * 2, t_len * 2, eb.data());
    const Matrix marginals = crf_.Marginals(ef, eb);
    (*marks)[w].resize(thresholds.size());
    for (size_t q = 0; q < thresholds.size(); ++q) {
      (*marks)[w][q] =
          Threshold(marginals, thresholds[q] + windows[w].threshold_boost);
    }
  }
}

std::vector<int> EventNetworkFilter::MarkFeaturesWith(
    const Matrix& features, InferenceContext* ctx) const {
  return MarkFeaturesAt(features, ctx, event_threshold_);
}

std::vector<int> EventNetworkFilter::MarkFeatures(
    const Matrix& features) const {
  return MarkFeaturesWith(features, nullptr);
}

std::vector<int> EventNetworkFilter::MarkFeaturesTape(
    const Matrix& features) const {
  obs::TraceSpan forward_span(obs::StageNnForwardTape());
  Tape tape;
  auto [emissions_f, emissions_b] = Emissions(&tape, features);
  return Threshold(crf_.Marginals(emissions_f.value(), emissions_b.value()),
                   event_threshold_);
}

std::vector<int> EventNetworkFilter::Mark(const EventStream& stream,
                                          WindowRange range) const {
  return MarkWith(stream, range, nullptr);
}

std::vector<int> EventNetworkFilter::MarkWith(const EventStream& stream,
                                              WindowRange range,
                                              InferenceContext* ctx) const {
  obs::TraceSpan feature_span(obs::StageFeatureBuild());
  Matrix features =
      featurizer_->Encode(stream.View(range.begin, range.size()));
  feature_span.Finish();
  return MarkFeaturesWith(features, ctx);
}

std::vector<int> EventNetworkFilter::MarkOnline(
    const EventStream& window, size_t stream_begin, InferenceContext* ctx,
    double threshold_boost) const {
  (void)stream_begin;  // content-based: marks don't depend on position
  obs::TraceSpan feature_span(obs::StageFeatureBuild());
  Matrix features = featurizer_->Encode(window.View(0, window.size()));
  feature_span.Finish();
  return MarkFeaturesAt(features, ctx, event_threshold_ + threshold_boost);
}

TrainResult EventNetworkFilter::Fit(const std::vector<Sample>& samples,
                                    const TrainConfig& config) {
  const TrainResult result = Train(this, samples, config);
  Refreeze();
  return result;
}

BinaryMetrics EventNetworkFilter::Score(
    const std::vector<Sample>& samples) const {
  BinaryMetrics metrics;
  for (const Sample& sample : samples) {
    metrics.Accumulate(MarkFeatures(sample.features), sample.labels);
  }
  return metrics;
}

}  // namespace dlacep
