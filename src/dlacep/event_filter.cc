#include "dlacep/event_filter.h"

namespace dlacep {

EventNetworkFilter::EventNetworkFilter(const Featurizer* featurizer,
                                       const NetworkConfig& network,
                                       double event_threshold)
    : featurizer_(featurizer),
      event_threshold_(event_threshold),
      init_rng_(network.seed),
      stack_("event.stack", featurizer->feature_dim(), network.hidden_dim,
             network.num_layers, &init_rng_),
      head_fwd_("event.head_fwd", stack_.out_dim(), 2, &init_rng_),
      head_bwd_("event.head_bwd", stack_.out_dim(), 2, &init_rng_),
      crf_("event.crf", 2, &init_rng_) {
  DLACEP_CHECK(featurizer_ != nullptr);
}

std::pair<Var, Var> EventNetworkFilter::Emissions(
    Tape* tape, const Matrix& features) const {
  Var h = stack_.Forward(tape, tape->Input(features));
  return {head_fwd_.Forward(tape, h), head_bwd_.Forward(tape, h)};
}

Var EventNetworkFilter::Loss(Tape* tape, const Sample& sample) {
  auto [emissions_f, emissions_b] = Emissions(tape, sample.features);
  return crf_.Nll(tape, emissions_f, emissions_b, sample.labels);
}

std::vector<Parameter*> EventNetworkFilter::Params() {
  std::vector<Parameter*> params = stack_.Params();
  for (Parameter* p : head_fwd_.Params()) params.push_back(p);
  for (Parameter* p : head_bwd_.Params()) params.push_back(p);
  for (Parameter* p : crf_.Params()) params.push_back(p);
  return params;
}

std::vector<int> EventNetworkFilter::MarkFeatures(
    const Matrix& features) const {
  Tape tape;
  auto [emissions_f, emissions_b] = Emissions(&tape, features);
  const Matrix marginals =
      crf_.Marginals(emissions_f.value(), emissions_b.value());
  std::vector<int> marks(features.rows());
  for (size_t t = 0; t < features.rows(); ++t) {
    marks[t] = marginals(t, 1) >= event_threshold_ ? 1 : 0;
  }
  return marks;
}

std::vector<int> EventNetworkFilter::Mark(const EventStream& stream,
                                          WindowRange range) const {
  return MarkFeatures(
      featurizer_->Encode(stream.View(range.begin, range.size())));
}

TrainResult EventNetworkFilter::Fit(const std::vector<Sample>& samples,
                                    const TrainConfig& config) {
  return Train(this, samples, config);
}

BinaryMetrics EventNetworkFilter::Score(
    const std::vector<Sample>& samples) const {
  BinaryMetrics metrics;
  for (const Sample& sample : samples) {
    metrics.Accumulate(MarkFeatures(sample.features), sample.labels);
  }
  return metrics;
}

}  // namespace dlacep
