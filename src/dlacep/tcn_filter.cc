#include "dlacep/tcn_filter.h"

namespace dlacep {

TcnEventFilter::TcnEventFilter(const Featurizer* featurizer,
                               const NetworkConfig& network,
                               double event_threshold, size_t kernel)
    : featurizer_(featurizer),
      event_threshold_(event_threshold),
      init_rng_(network.seed + 2),
      backbone_("tcn.stack", featurizer->feature_dim(),
                network.hidden_dim, network.num_layers, kernel,
                &init_rng_),
      head_fwd_("tcn.head_fwd", backbone_.out_dim(), 2, &init_rng_),
      head_bwd_("tcn.head_bwd", backbone_.out_dim(), 2, &init_rng_),
      crf_("tcn.crf", 2, &init_rng_) {
  DLACEP_CHECK(featurizer_ != nullptr);
}

std::pair<Var, Var> TcnEventFilter::Emissions(
    Tape* tape, const Matrix& features) const {
  Var h = backbone_.Forward(tape, tape->Input(features));
  return {head_fwd_.Forward(tape, h), head_bwd_.Forward(tape, h)};
}

Var TcnEventFilter::Loss(Tape* tape, const Sample& sample) {
  auto [emissions_f, emissions_b] = Emissions(tape, sample.features);
  return crf_.Nll(tape, emissions_f, emissions_b, sample.labels);
}

std::vector<Parameter*> TcnEventFilter::Params() {
  std::vector<Parameter*> params = backbone_.Params();
  for (Parameter* p : head_fwd_.Params()) params.push_back(p);
  for (Parameter* p : head_bwd_.Params()) params.push_back(p);
  for (Parameter* p : crf_.Params()) params.push_back(p);
  return params;
}

std::vector<int> TcnEventFilter::MarkFeatures(
    const Matrix& features) const {
  Tape tape;
  auto [emissions_f, emissions_b] = Emissions(&tape, features);
  const Matrix marginals =
      crf_.Marginals(emissions_f.value(), emissions_b.value());
  std::vector<int> marks(features.rows());
  for (size_t t = 0; t < features.rows(); ++t) {
    marks[t] = marginals(t, 1) >= event_threshold_ ? 1 : 0;
  }
  return marks;
}

std::vector<int> TcnEventFilter::Mark(const EventStream& stream,
                                      WindowRange range) const {
  return MarkFeatures(
      featurizer_->Encode(stream.View(range.begin, range.size())));
}

TrainResult TcnEventFilter::Fit(const std::vector<Sample>& samples,
                                const TrainConfig& config) {
  return Train(this, samples, config);
}

BinaryMetrics TcnEventFilter::Score(
    const std::vector<Sample>& samples) const {
  BinaryMetrics metrics;
  for (const Sample& sample : samples) {
    metrics.Accumulate(MarkFeatures(sample.features), sample.labels);
  }
  return metrics;
}

}  // namespace dlacep
