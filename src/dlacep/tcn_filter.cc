#include "dlacep/tcn_filter.h"

#include <algorithm>
#include <cmath>

#include "obs/stages.h"
#include "obs/trace.h"

namespace dlacep {

TcnEventFilter::TcnEventFilter(const Featurizer* featurizer,
                               const NetworkConfig& network,
                               double event_threshold, size_t kernel)
    : featurizer_(featurizer),
      event_threshold_(event_threshold),
      init_rng_(network.seed + 2),
      backbone_("tcn.stack", featurizer->feature_dim(),
                network.hidden_dim, network.num_layers, kernel,
                &init_rng_),
      head_fwd_("tcn.head_fwd", backbone_.out_dim(), 2, &init_rng_),
      head_bwd_("tcn.head_bwd", backbone_.out_dim(), 2, &init_rng_),
      crf_("tcn.crf", 2, &init_rng_) {
  DLACEP_CHECK(featurizer_ != nullptr);
  Refreeze();
}

void TcnEventFilter::Refreeze() {
  frozen_.backbone = Freeze(backbone_);
  frozen_.head_fwd = Freeze(head_fwd_);
  frozen_.head_bwd = Freeze(head_bwd_);
}

void TcnEventFilter::OnParamsChanged() { Refreeze(); }

std::pair<Var, Var> TcnEventFilter::Emissions(
    Tape* tape, const Matrix& features) const {
  Var h = backbone_.Forward(tape, tape->Input(features));
  return {head_fwd_.Forward(tape, h), head_bwd_.Forward(tape, h)};
}

Var TcnEventFilter::Loss(Tape* tape, const Sample& sample) {
  auto [emissions_f, emissions_b] = Emissions(tape, sample.features);
  return crf_.Nll(tape, emissions_f, emissions_b, sample.labels);
}

std::vector<Parameter*> TcnEventFilter::Params() {
  std::vector<Parameter*> params = backbone_.Params();
  for (Parameter* p : head_fwd_.Params()) params.push_back(p);
  for (Parameter* p : head_bwd_.Params()) params.push_back(p);
  for (Parameter* p : crf_.Params()) params.push_back(p);
  return params;
}

std::vector<int> TcnEventFilter::Threshold(const Matrix& marginals) const {
  std::vector<int> marks(marginals.rows());
  for (size_t t = 0; t < marginals.rows(); ++t) {
    const double score = marginals(t, 1);
    if (!std::isfinite(score)) {
      // Same contract as the BiLSTM event filter: a blown-up pass is
      // reported as a whole-window sentinel, never thresholded to 0.
      return std::vector<int>(marginals.rows(), kInvalidMark);
    }
    marks[t] = score >= event_threshold_ ? 1 : 0;
  }
  return marks;
}

std::vector<int> TcnEventFilter::MarkFeaturesWith(
    const Matrix& features, InferenceContext* ctx) const {
  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();
  const Matrix& h = frozen_.backbone.Forward(c, features);
  Matrix& emissions_f = c->Acquire(features.rows(), 2);
  Matrix& emissions_b = c->Acquire(features.rows(), 2);
  frozen_.head_fwd.Forward(h, &emissions_f);
  frozen_.head_bwd.Forward(h, &emissions_b);
  return Threshold(crf_.Marginals(emissions_f, emissions_b));
}

std::vector<int> TcnEventFilter::MarkFeatures(
    const Matrix& features) const {
  return MarkFeaturesWith(features, nullptr);
}

void TcnEventFilter::MarkBatchWith(const EventStream& stream,
                                   std::span<const WindowRange> windows,
                                   InferenceContext* ctx,
                                   std::vector<int>* marks) const {
  if (windows.empty()) return;
  std::vector<Matrix> features;
  features.reserve(windows.size());
  {
    obs::TraceSpan feature_span(obs::StageFeatureBuild());
    for (const WindowRange& range : windows) {
      features.push_back(
          featurizer_->Encode(stream.View(range.begin, range.size())));
    }
  }
  const size_t batch = windows.size();
  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();

  std::vector<size_t> offsets(batch + 1, 0);
  for (size_t w = 0; w < batch; ++w) {
    offsets[w + 1] = offsets[w] + features[w].rows();
  }
  Matrix& x_all = c->Acquire(offsets[batch], features[0].cols());
  for (size_t w = 0; w < batch; ++w) {
    std::copy_n(features[w].data(), features[w].rows() * features[w].cols(),
                x_all.data() + offsets[w] * x_all.cols());
  }

  const Matrix& h = frozen_.backbone.ForwardBatch(c, x_all, offsets);
  Matrix& emissions_f = c->Acquire(offsets[batch], 2);
  Matrix& emissions_b = c->Acquire(offsets[batch], 2);
  frozen_.head_fwd.ForwardBatch(h, &emissions_f);
  frozen_.head_bwd.ForwardBatch(h, &emissions_b);

  for (size_t w = 0; w < batch; ++w) {
    const size_t t_len = offsets[w + 1] - offsets[w];
    Matrix& ef = c->Acquire(t_len, 2);
    Matrix& eb = c->Acquire(t_len, 2);
    std::copy_n(emissions_f.data() + offsets[w] * 2, t_len * 2, ef.data());
    std::copy_n(emissions_b.data() + offsets[w] * 2, t_len * 2, eb.data());
    marks[w] = Threshold(crf_.Marginals(ef, eb));
  }
}

std::vector<int> TcnEventFilter::MarkFeaturesTape(
    const Matrix& features) const {
  obs::TraceSpan forward_span(obs::StageNnForwardTape());
  Tape tape;
  auto [emissions_f, emissions_b] = Emissions(&tape, features);
  return Threshold(crf_.Marginals(emissions_f.value(), emissions_b.value()));
}

std::vector<int> TcnEventFilter::Mark(const EventStream& stream,
                                      WindowRange range) const {
  return MarkWith(stream, range, nullptr);
}

std::vector<int> TcnEventFilter::MarkWith(const EventStream& stream,
                                          WindowRange range,
                                          InferenceContext* ctx) const {
  obs::TraceSpan feature_span(obs::StageFeatureBuild());
  Matrix features =
      featurizer_->Encode(stream.View(range.begin, range.size()));
  feature_span.Finish();
  return MarkFeaturesWith(features, ctx);
}

TrainResult TcnEventFilter::Fit(const std::vector<Sample>& samples,
                                const TrainConfig& config) {
  const TrainResult result = Train(this, samples, config);
  Refreeze();
  return result;
}

BinaryMetrics TcnEventFilter::Score(
    const std::vector<Sample>& samples) const {
  BinaryMetrics metrics;
  for (const Sample& sample : samples) {
    metrics.Accumulate(MarkFeatures(sample.features), sample.labels);
  }
  return metrics;
}

}  // namespace dlacep
