// Training-sample labeling (paper §4.3).
//
// Window samples are labeled by running an exact CEP evaluation over the
// sample span with the original pattern window constraint:
//  * event label 1 — the event participates in at least one full match
//    within the sample;
//  * window label 1 — the sample contains at least one full match.
//
// For patterns with a NEG operator the event labeling is additionally
// negation-aware (paper §4.4): events whose type is referenced under a
// NEG operator are labeled 1 as well, so the trained filter relays them
// and the downstream CEP engine can correctly suppress would-be false
// positives.

#ifndef DLACEP_DLACEP_LABELER_H_
#define DLACEP_DLACEP_LABELER_H_

#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "cep/engine.h"
#include "dlacep/assembler.h"
#include "dlacep/featurizer.h"
#include "nn/trainer.h"
#include "pattern/pattern.h"

namespace dlacep {

/// One labeled sample window.
struct LabeledSample {
  WindowRange range;
  std::vector<int> event_labels;  ///< per event of the sample
  int window_label = 0;
  size_t num_matches = 0;  ///< full matches inside the sample
};

class SampleLabeler {
 public:
  explicit SampleLabeler(const Pattern& pattern);

  /// Labels the events of stream[range] (exact CEP + negation awareness).
  /// Re-entrant: concurrent calls are serialized on the internal engine
  /// (OracleFilter::Mark runs under the pipeline's thread pool).
  LabeledSample Label(const EventStream& stream, WindowRange range) const;

 private:
  Pattern pattern_;
  std::set<TypeId> negated_types_;
  mutable std::mutex engine_mu_;  ///< guards engine_ (stateful stats)
  mutable std::unique_ptr<CepEngine> engine_;
};

/// The full labeled dataset of one (pattern, stream) pair, split into
/// train and test parts and pre-encoded for the two network kinds.
struct FilterDataset {
  std::vector<LabeledSample> train_raw;
  std::vector<LabeledSample> test_raw;
  std::vector<Sample> train_event;   ///< features + per-event labels
  std::vector<Sample> train_window;  ///< features + single window label
  std::vector<Sample> test_event;
  std::vector<Sample> test_window;
};

/// Assembles, labels, encodes, and splits the stream's sample windows.
/// The split is a random `train_fraction` / rest partition (paper:
/// 70/30). `negation_aware` controls the §4.4 labeling of negated types
/// (disable only for the false-positive ablation).
FilterDataset BuildFilterDataset(const Pattern& pattern,
                                 const EventStream& stream,
                                 const InputAssembler& assembler,
                                 const Featurizer& featurizer,
                                 double train_fraction, uint64_t seed,
                                 bool negation_aware = true);

}  // namespace dlacep

#endif  // DLACEP_DLACEP_LABELER_H_
