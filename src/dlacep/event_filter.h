// The event-network filter (paper §4.3, Fig 7): stacked BiLSTM feature
// extractor topped with a BI-CRF that labels every event of the input
// window as participating / not participating in a full match. The
// bidirectional CRF is fed by two separate linear emission heads (one per
// chain direction), and decoding takes the per-position argmax of the
// averaged posterior marginals against `event_threshold`.

#ifndef DLACEP_DLACEP_EVENT_FILTER_H_
#define DLACEP_DLACEP_EVENT_FILTER_H_

#include <memory>

#include "dlacep/config.h"
#include "dlacep/featurizer.h"
#include "dlacep/filter.h"
#include "nn/crf.h"
#include "nn/infer.h"

namespace dlacep {

class EventNetworkFilter : public TrainableFilter, public SequenceModel {
 public:
  EventNetworkFilter(const Featurizer* featurizer,
                     const NetworkConfig& network, double event_threshold);

  std::string name() const override { return "event-network"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override;
  std::vector<int> MarkWith(const EventStream& stream, WindowRange range,
                            InferenceContext* ctx) const override;
  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext* ctx,
                              double threshold_boost) const override;
  void MarkBatchWith(const EventStream& stream,
                     std::span<const WindowRange> windows,
                     InferenceContext* ctx,
                     std::vector<int>* marks) const override;
  void MarkBatchOnline(std::span<const OnlineWindow> windows,
                       InferenceContext* ctx,
                       std::vector<int>* marks) const override;
  /// Multi-head decoding for the serving layer (src/serve): featurize
  /// and run the trunk + CRF-marginal pass once, then decode the shared
  /// marginals against one threshold per registered query. (*marks)[q]
  /// equals MarkOnline(window, ., ctx, thresholds[q] - event_threshold)
  /// bit for bit — the trunk forward is query-independent.
  void MarkOnlineMultiHead(const EventStream& window, InferenceContext* ctx,
                           std::span<const double> thresholds,
                           std::vector<std::vector<int>>* marks) const;
  /// Batched multi-head: trunk + emission heads run once over the
  /// ForwardBatch slab (as MarkBatchOnline), then each window's
  /// marginals decode against every query threshold, the window's
  /// overload boost added to each. (*marks)[w][q] is window w under
  /// query q's threshold.
  void MarkBatchOnlineMultiHead(
      std::span<const OnlineWindow> windows, InferenceContext* ctx,
      std::span<const double> thresholds,
      std::vector<std::vector<std::vector<int>>>* marks) const;
  double event_threshold() const { return event_threshold_; }
  std::vector<int> MarkFeatures(const Matrix& features) const override;
  std::vector<int> MarkFeaturesWith(const Matrix& features,
                                    InferenceContext* ctx) const override;
  std::vector<int> MarkFeaturesTape(const Matrix& features) const override;
  void OnParamsChanged() override;

  TrainResult Fit(const std::vector<Sample>& samples,
                  const TrainConfig& config) override;

  BinaryMetrics Score(const std::vector<Sample>& samples) const override;

  // SequenceModel:
  Var Loss(Tape* tape, const Sample& sample) override;
  std::vector<Parameter*> Params() override;

 private:
  std::pair<Var, Var> Emissions(Tape* tape, const Matrix& features) const;
  std::vector<int> Threshold(const Matrix& marginals,
                             double threshold) const;
  std::vector<int> MarkFeaturesAt(const Matrix& features,
                                  InferenceContext* ctx,
                                  double threshold) const;
  /// Batched MarkFeaturesAt: stacks the feature matrices batch-major,
  /// runs the trunk + emission heads once over the slab, then decodes
  /// each window's CRF chain against its own threshold.
  void MarkFeaturesBatchAt(std::span<const Matrix> features,
                           InferenceContext* ctx,
                           std::span<const double> thresholds,
                           std::vector<int>* marks) const;
  void Refreeze();

  const Featurizer* featurizer_;  ///< not owned
  double event_threshold_;
  Rng init_rng_;  ///< declared before the layers it initializes
  StackedBiLstm stack_;
  Dense head_fwd_;
  Dense head_bwd_;
  BiCrf crf_;
  /// Forward-only weights repacked at freeze time (constructor, end of
  /// Fit, OnParamsChanged). Read-only during Mark — shared across the
  /// pipeline's worker threads.
  struct FrozenModel {
    StackedBiLstmInfer stack;
    DenseInfer head_fwd;
    DenseInfer head_bwd;
  } frozen_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_EVENT_FILTER_H_
