#include "dlacep/pipeline.h"

#include <algorithm>
#include <span>

#include "common/logging.h"
#include "dlacep/event_filter.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/window_filter.h"
#include "obs/stages.h"
#include "obs/trace.h"

namespace dlacep {

namespace {

InputAssembler MakeAssembler(const Pattern& pattern,
                             const DlacepConfig& config) {
  const size_t w = pattern.window().count_size();
  const size_t mark = config.mark_size != 0 ? config.mark_size : 2 * w;
  const size_t step = config.step_size != 0 ? config.step_size : w;
  return InputAssembler(mark, step);
}

}  // namespace

DlacepPipeline::DlacepPipeline(const Pattern& pattern,
                               std::unique_ptr<StreamFilter> filter,
                               const DlacepConfig& config)
    : pattern_(pattern),
      config_(config),
      assembler_(MakeAssembler(pattern, config)),
      filter_(std::move(filter)),
      extractor_(pattern_) {
  DLACEP_CHECK(filter_ != nullptr);
  DLACEP_CHECK(pattern_.window().kind == WindowKind::kCount);
}

ThreadPool* DlacepPipeline::FiltrationPool() {
  const size_t workers = ResolveNumThreads(config_.num_threads);
  if (workers <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(workers);
  return pool_.get();
}

PipelineResult DlacepPipeline::Evaluate(const EventStream& stream) {
  PipelineResult result;
  result.total_events = stream.size();

  // Filtration: every assembler window is an independent forward-only
  // inference (filters are const/re-entrant), so windows fan out over
  // the pool into per-window mark buffers. Each worker gets its own
  // InferenceContext scratch arena, so the network filters reuse their
  // activation buffers across windows instead of reallocating (or,
  // before the fast path existed, building a whole autograd tape).
  // filter_seconds stays wall clock: it brackets the whole fan-out.
  Stopwatch filter_watch;
  const std::vector<WindowRange> windows =
      assembler_.Windows(stream.size());
  std::vector<std::vector<int>> window_marks(windows.size());
  const StreamFilter& filter = *filter_;
  ThreadPool* pool = FiltrationPool();
  const size_t workers = pool != nullptr ? pool->num_threads() : 1;
  while (contexts_.size() < workers) {
    contexts_.push_back(std::make_unique<InferenceContext>());
  }
  const size_t batch_size = config_.batch_size > 1 ? config_.batch_size : 1;
  if (batch_size == 1) {
    ParallelForWorker(pool, windows.size(), [&](size_t worker, size_t i) {
      obs::TraceSpan mark_span(obs::StageWindowMark());
      window_marks[i] =
          filter.MarkWith(stream, windows[i], contexts_[worker].get());
    });
  } else {
    // Micro-batched filtration: consecutive windows are grouped into
    // fixed chunks of batch_size (tail chunk smaller) and each chunk is
    // one MarkBatchWith call — the NN trunk sees matrix-matrix work.
    // Chunk boundaries depend only on batch_size, never on the worker
    // count, so marks stay byte-identical across num_threads.
    const size_t num_batches = (windows.size() + batch_size - 1) / batch_size;
    ParallelForWorker(pool, num_batches, [&](size_t worker, size_t bi) {
      obs::TraceSpan mark_span(obs::StageWindowMark());
      const size_t begin = bi * batch_size;
      const size_t count = std::min(batch_size, windows.size() - begin);
      filter.MarkBatchWith(
          stream, std::span<const WindowRange>(windows.data() + begin, count),
          contexts_[worker].get(), window_marks.data() + begin);
    });
  }

  // Deterministic merge in window order: the concatenated mark sequence
  // is identical to what the sequential loop produced, regardless of
  // which worker finished first. Deduplicated marked events are counted
  // here, over stream positions, so that blanks the extractor later
  // drops still count as relayed (the paper's Ψ measures filtration,
  // not extraction).
  obs::TraceSpan merge_span(obs::StageWindowMerge());
  std::vector<const Event*> marked;
  std::vector<uint8_t> seen(stream.size(), 0);
  for (size_t i = 0; i < windows.size(); ++i) {
    const std::vector<int>& marks = window_marks[i];
    DLACEP_CHECK_EQ(marks.size(), windows[i].size());
    for (size_t t = 0; t < marks.size(); ++t) {
      if (marks[t] == 0) continue;
      const size_t pos = windows[i].begin + t;
      result.marked_ids.push_back(stream[pos].id);
      if (!seen[pos]) {
        seen[pos] = 1;
        ++result.marked_events;
        // First covering window only: with the default overlapping
        // geometry (mark = 2w, step = w) each position used to be
        // relayed once per covering window, roughly doubling the
        // extractor's input. The extractor sorts by id and drops
        // duplicates before evaluating (extractor.cc), so feeding it
        // deduplicated events changes neither the match set nor the
        // engine work counters — only the wasted copies
        // (tests/dlacep_pipeline_test.cc pins this). marked_ids stays
        // duplicate-inclusive by contract.
        marked.push_back(&stream[pos]);
      }
    }
  }
  merge_span.Finish();
  result.filter_seconds = filter_watch.ElapsedSeconds();

  // Extraction on the filtered stream.
  extractor_.ResetStats();
  Stopwatch cep_watch;
  const Status status = extractor_.Extract(std::move(marked),
                                           &result.matches);
  DLACEP_CHECK_MSG(status.ok(), status.ToString());
  result.cep_seconds = cep_watch.ElapsedSeconds();
  obs::StageCepEval()->Observe(result.cep_seconds);
  result.cep_stats = extractor_.stats();
  return result;
}

ComparisonResult DlacepPipeline::CompareWithEcep(const EventStream& stream,
                                                 EngineKind baseline) {
  ComparisonResult comparison;
  comparison.dlacep = Evaluate(stream);

  auto engine = CreateEngine(baseline, pattern_);
  DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
  Stopwatch watch;
  const Status status = engine.value()->Evaluate(
      std::span<const Event>(stream.events().data(), stream.size()),
      &comparison.exact_matches);
  DLACEP_CHECK_MSG(status.ok(), status.ToString());
  comparison.ecep_seconds = watch.ElapsedSeconds();
  comparison.ecep_stats = engine.value()->stats();
  comparison.quality =
      CompareMatchSets(comparison.exact_matches, comparison.dlacep.matches);
  return comparison;
}

const char* FilterKindName(FilterKind kind) {
  switch (kind) {
    case FilterKind::kEventNetwork: return "event-network";
    case FilterKind::kWindowNetwork: return "window-network";
    case FilterKind::kOracle: return "oracle";
    case FilterKind::kPassThrough: return "pass-through";
  }
  return "?";
}

BuiltDlacep BuildDlacep(const Pattern& pattern,
                        const EventStream& train_stream, FilterKind kind,
                        const DlacepConfig& config) {
  BuiltDlacep built;
  built.featurizer = std::make_unique<Featurizer>(pattern, train_stream);

  std::unique_ptr<StreamFilter> filter;
  if (kind == FilterKind::kOracle) {
    filter = std::make_unique<OracleFilter>(pattern);
  } else if (kind == FilterKind::kPassThrough) {
    filter = std::make_unique<PassThroughFilter>();
  } else {
    const InputAssembler assembler = MakeAssembler(pattern, config);
    Stopwatch label_watch;
    FilterDataset dataset = BuildFilterDataset(
        pattern, train_stream, assembler, *built.featurizer,
        config.train_fraction, config.split_seed,
        config.negation_aware_labeling);
    built.label_seconds = label_watch.ElapsedSeconds();

    if (config.oversample_positive > 1) {
      auto oversample = [&](std::vector<Sample>* samples) {
        const size_t original = samples->size();
        for (size_t i = 0; i < original; ++i) {
          // Copy: push_back below may reallocate and invalidate
          // references into the vector.
          const Sample sample = (*samples)[i];
          bool positive = false;
          for (int label : sample.labels) positive |= label != 0;
          if (!positive) continue;
          for (size_t r = 1; r < config.oversample_positive; ++r) {
            samples->push_back(sample);
          }
        }
      };
      oversample(&dataset.train_event);
      oversample(&dataset.train_window);
    }

    Stopwatch train_watch;
    if (kind == FilterKind::kEventNetwork) {
      auto event_filter = std::make_unique<EventNetworkFilter>(
          built.featurizer.get(), config.network, config.event_threshold);
      built.train_result =
          event_filter->Fit(dataset.train_event, config.train);
      built.test_metrics = event_filter->Score(dataset.test_event);
      filter = std::move(event_filter);
    } else {
      auto window_filter = std::make_unique<WindowNetworkFilter>(
          built.featurizer.get(), config.network, config.window_threshold);
      built.train_result =
          window_filter->Fit(dataset.train_window, config.train);
      built.test_metrics = window_filter->Score(dataset.test_window);
      filter = std::move(window_filter);
    }
    built.train_seconds = train_watch.ElapsedSeconds();
    DLACEP_LOG(Debug) << FilterKindName(kind) << " trained "
                      << built.train_result.epochs_run << " epochs, loss "
                      << built.train_result.final_loss << ", test F1 "
                      << built.test_metrics.f1();
  }
  built.pipeline =
      std::make_unique<DlacepPipeline>(pattern, std::move(filter), config);
  return built;
}

}  // namespace dlacep
