// The window-network filter (paper §4.3): stacked BiLSTM whose hidden
// sequence is max-pooled and classified by a linear layer with a sigmoid
// — a single applicable / not-applicable label per input window. An
// applicable window relays ALL of its events; an inapplicable one relays
// none. Coarser than the event network (lower filtering ratio, Fig 8)
// but cheaper to run and faster to train (§5.2 "Network training").

#ifndef DLACEP_DLACEP_WINDOW_FILTER_H_
#define DLACEP_DLACEP_WINDOW_FILTER_H_

#include "dlacep/config.h"
#include "dlacep/featurizer.h"
#include "dlacep/filter.h"
#include "nn/infer.h"
#include "nn/layers.h"

namespace dlacep {

class WindowNetworkFilter : public TrainableFilter, public SequenceModel {
 public:
  WindowNetworkFilter(const Featurizer* featurizer,
                      const NetworkConfig& network,
                      double window_threshold);

  std::string name() const override { return "window-network"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override;
  std::vector<int> MarkWith(const EventStream& stream, WindowRange range,
                            InferenceContext* ctx) const override;
  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext* ctx,
                              double threshold_boost) const override;
  void MarkBatchWith(const EventStream& stream,
                     std::span<const WindowRange> windows,
                     InferenceContext* ctx,
                     std::vector<int>* marks) const override;
  void MarkBatchOnline(std::span<const OnlineWindow> windows,
                       InferenceContext* ctx,
                       std::vector<int>* marks) const override;
  std::vector<int> MarkFeatures(const Matrix& features) const override;
  std::vector<int> MarkFeaturesWith(const Matrix& features,
                                    InferenceContext* ctx) const override;
  std::vector<int> MarkFeaturesTape(const Matrix& features) const override;
  void OnParamsChanged() override;

  TrainResult Fit(const std::vector<Sample>& samples,
                  const TrainConfig& config) override;

  BinaryMetrics Score(const std::vector<Sample>& samples) const override;

  // SequenceModel:
  Var Loss(Tape* tape, const Sample& sample) override;
  std::vector<Parameter*> Params() override;

  /// Raw sigmoid probability that the window is applicable (fast path).
  double WindowProbability(const Matrix& features) const;
  /// Same probability via the tape forward — the golden reference the
  /// equivalence suite pins WindowProbability() against.
  double WindowProbabilityTape(const Matrix& features) const;

  /// The single decision predicate shared by inference-time marking and
  /// training-time scoring, so a threshold/hysteresis change can never
  /// silently diverge between the two. `threshold_boost` is the
  /// overload-control increment (0 in normal operation).
  bool IsApplicable(double probability, double threshold_boost = 0.0) const {
    return probability >= window_threshold_ + threshold_boost;
  }

 private:
  Var Logit(Tape* tape, const Matrix& features) const;
  double ProbabilityWith(const Matrix& features, InferenceContext* ctx) const;
  /// Batched marking core: one trunk ForwardBatch over the stacked
  /// feature slab, per-window max pooling into a B×2H matrix, a single
  /// B-row head GEMM, then each window's sigmoid + threshold (with its
  /// own boost).
  void MarkFeaturesBatchAt(std::span<const Matrix> features,
                           InferenceContext* ctx,
                           std::span<const double> boosts,
                           std::vector<int>* marks) const;
  void Refreeze();

  const Featurizer* featurizer_;  ///< not owned
  double window_threshold_;
  Rng init_rng_;
  StackedBiLstm stack_;
  Dense head_;
  /// Forward-only weights repacked at freeze time (constructor, end of
  /// Fit, OnParamsChanged); read-only during Mark.
  struct FrozenModel {
    StackedBiLstmInfer stack;
    DenseInfer head;
  } frozen_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_WINDOW_FILTER_H_
