// A perfect-knowledge filter that marks exactly the ground-truth labels
// the SampleLabeler produces. It is the upper bound of what any trained
// filter can achieve (recall 1.0 by construction for NEG-free patterns)
// and is used by property tests and ablation benches to separate
// filtering-scheme effects from learning effects.

#ifndef DLACEP_DLACEP_ORACLE_FILTER_H_
#define DLACEP_DLACEP_ORACLE_FILTER_H_

#include "dlacep/filter.h"

namespace dlacep {

class OracleFilter : public StreamFilter {
 public:
  explicit OracleFilter(const Pattern& pattern) : labeler_(pattern) {}

  std::string name() const override { return "oracle"; }

  // Re-entrancy: SampleLabeler::Label serializes access to its internal
  // CEP engine, so concurrent Mark() calls from the parallel filtration
  // stage are safe (though the oracle itself won't scale with threads).
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return labeler_.Label(stream, range).event_labels;
  }

 private:
  SampleLabeler labeler_;
};

/// A filter that marks everything — DLACEP degenerates to plain ECEP plus
/// assembler overhead. Baseline for ablations.
class PassThroughFilter : public StreamFilter {
 public:
  std::string name() const override { return "pass-through"; }

  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    return std::vector<int>(range.size(), 1);
  }
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_ORACLE_FILTER_H_
