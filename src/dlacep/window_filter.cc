#include "dlacep/window_filter.h"

#include <algorithm>
#include <cmath>

#include "nn/ops.h"
#include "obs/stages.h"
#include "obs/trace.h"

namespace dlacep {

WindowNetworkFilter::WindowNetworkFilter(const Featurizer* featurizer,
                                         const NetworkConfig& network,
                                         double window_threshold)
    : featurizer_(featurizer),
      window_threshold_(window_threshold),
      init_rng_(network.seed + 1),
      stack_("window.stack", featurizer->feature_dim(), network.hidden_dim,
             network.num_layers, &init_rng_),
      head_("window.head", stack_.out_dim(), 1, &init_rng_) {
  DLACEP_CHECK(featurizer_ != nullptr);
  Refreeze();
}

void WindowNetworkFilter::Refreeze() {
  frozen_.stack = Freeze(stack_);
  frozen_.head = Freeze(head_);
}

void WindowNetworkFilter::OnParamsChanged() { Refreeze(); }

Var WindowNetworkFilter::Logit(Tape* tape,
                               const Matrix& features) const {
  Var h = stack_.Forward(tape, tape->Input(features));
  Var pooled = ops::MaxOverRows(h);
  return head_.Forward(tape, pooled);
}

Var WindowNetworkFilter::Loss(Tape* tape, const Sample& sample) {
  DLACEP_CHECK_EQ(sample.labels.size(), 1u);
  Matrix target(1, 1);
  target(0, 0) = static_cast<double>(sample.labels[0]);
  return ops::BceWithLogits(Logit(tape, sample.features), target);
}

std::vector<Parameter*> WindowNetworkFilter::Params() {
  std::vector<Parameter*> params = stack_.Params();
  for (Parameter* p : head_.Params()) params.push_back(p);
  return params;
}

double WindowNetworkFilter::ProbabilityWith(const Matrix& features,
                                            InferenceContext* ctx) const {
  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();
  const Matrix& h = frozen_.stack.Forward(c, features);
  // Column-wise max pooling over the hidden sequence, then the 1-unit
  // head: logit = pooled·W + b.
  Matrix& pooled = c->Acquire(1, h.cols());
  for (size_t j = 0; j < h.cols(); ++j) {
    double best = h(0, j);
    for (size_t i = 1; i < h.rows(); ++i) best = std::max(best, h(i, j));
    pooled(0, j) = best;
  }
  Matrix& logit = c->Acquire(1, 1);
  frozen_.head.Forward(pooled, &logit);
  return 1.0 / (1.0 + std::exp(-logit(0, 0)));
}

double WindowNetworkFilter::WindowProbability(
    const Matrix& features) const {
  return ProbabilityWith(features, nullptr);
}

double WindowNetworkFilter::WindowProbabilityTape(
    const Matrix& features) const {
  obs::TraceSpan forward_span(obs::StageNnForwardTape());
  Tape tape;
  const double logit = Logit(&tape, features).value()(0, 0);
  return 1.0 / (1.0 + std::exp(-logit));
}

namespace {

// A NaN probability would compare false against the threshold and mark
// the whole window inapplicable — a silent recall cliff. Map non-finite
// scores to the kInvalidMark sentinel instead.
std::vector<int> MarksForProbability(bool applicable, double probability,
                                     size_t n) {
  if (!std::isfinite(probability)) {
    return std::vector<int>(n, kInvalidMark);
  }
  return std::vector<int>(n, applicable ? 1 : 0);
}

}  // namespace

void WindowNetworkFilter::MarkFeaturesBatchAt(
    std::span<const Matrix> features, InferenceContext* ctx,
    std::span<const double> boosts, std::vector<int>* marks) const {
  const size_t batch = features.size();
  if (batch == 0) return;
  obs::TraceSpan forward_span(obs::StageNnForwardInfer());
  InferenceContext local;
  InferenceContext* c = ctx != nullptr ? ctx : &local;
  c->Reset();

  std::vector<size_t> offsets(batch + 1, 0);
  for (size_t w = 0; w < batch; ++w) {
    offsets[w + 1] = offsets[w] + features[w].rows();
  }
  Matrix& x_all = c->Acquire(offsets[batch], features[0].cols());
  for (size_t w = 0; w < batch; ++w) {
    std::copy_n(features[w].data(), features[w].rows() * features[w].cols(),
                x_all.data() + offsets[w] * x_all.cols());
  }

  const Matrix& h = frozen_.stack.ForwardBatch(c, x_all, offsets);
  // Per-window column max pooling into one B×2H matrix, so the 1-unit
  // head runs as a single B-row GEMM (row-local → bit-identical logits).
  Matrix& pooled = c->Acquire(batch, h.cols());
  for (size_t w = 0; w < batch; ++w) {
    for (size_t j = 0; j < h.cols(); ++j) {
      double best = h(offsets[w], j);
      for (size_t i = offsets[w] + 1; i < offsets[w + 1]; ++i) {
        best = std::max(best, h(i, j));
      }
      pooled(w, j) = best;
    }
  }
  Matrix& logits = c->Acquire(batch, 1);
  frozen_.head.ForwardBatch(pooled, &logits);
  for (size_t w = 0; w < batch; ++w) {
    const double p = 1.0 / (1.0 + std::exp(-logits(w, 0)));
    marks[w] = MarksForProbability(IsApplicable(p, boosts[w]), p,
                                   features[w].rows());
  }
}

void WindowNetworkFilter::MarkBatchWith(const EventStream& stream,
                                        std::span<const WindowRange> windows,
                                        InferenceContext* ctx,
                                        std::vector<int>* marks) const {
  if (windows.empty()) return;
  std::vector<Matrix> features;
  features.reserve(windows.size());
  {
    obs::TraceSpan feature_span(obs::StageFeatureBuild());
    for (const WindowRange& range : windows) {
      features.push_back(
          featurizer_->Encode(stream.View(range.begin, range.size())));
    }
  }
  const std::vector<double> boosts(windows.size(), 0.0);
  MarkFeaturesBatchAt(features, ctx, boosts, marks);
}

void WindowNetworkFilter::MarkBatchOnline(
    std::span<const OnlineWindow> windows, InferenceContext* ctx,
    std::vector<int>* marks) const {
  if (windows.empty()) return;
  std::vector<Matrix> features;
  std::vector<double> boosts;
  features.reserve(windows.size());
  boosts.reserve(windows.size());
  {
    obs::TraceSpan feature_span(obs::StageFeatureBuild());
    for (const OnlineWindow& w : windows) {
      features.push_back(
          featurizer_->Encode(w.events->View(0, w.events->size())));
      boosts.push_back(w.threshold_boost);
    }
  }
  MarkFeaturesBatchAt(features, ctx, boosts, marks);
}

std::vector<int> WindowNetworkFilter::MarkFeaturesWith(
    const Matrix& features, InferenceContext* ctx) const {
  const double p = ProbabilityWith(features, ctx);
  return MarksForProbability(IsApplicable(p), p, features.rows());
}

std::vector<int> WindowNetworkFilter::MarkFeatures(
    const Matrix& features) const {
  return MarkFeaturesWith(features, nullptr);
}

std::vector<int> WindowNetworkFilter::MarkFeaturesTape(
    const Matrix& features) const {
  const double p = WindowProbabilityTape(features);
  return MarksForProbability(IsApplicable(p), p, features.rows());
}

std::vector<int> WindowNetworkFilter::Mark(const EventStream& stream,
                                           WindowRange range) const {
  return MarkWith(stream, range, nullptr);
}

std::vector<int> WindowNetworkFilter::MarkWith(const EventStream& stream,
                                               WindowRange range,
                                               InferenceContext* ctx) const {
  obs::TraceSpan feature_span(obs::StageFeatureBuild());
  Matrix features =
      featurizer_->Encode(stream.View(range.begin, range.size()));
  feature_span.Finish();
  return MarkFeaturesWith(features, ctx);
}

std::vector<int> WindowNetworkFilter::MarkOnline(
    const EventStream& window, size_t stream_begin, InferenceContext* ctx,
    double threshold_boost) const {
  (void)stream_begin;  // content-based: marks don't depend on position
  obs::TraceSpan feature_span(obs::StageFeatureBuild());
  const Matrix features =
      featurizer_->Encode(window.View(0, window.size()));
  feature_span.Finish();
  const double p = ProbabilityWith(features, ctx);
  return MarksForProbability(IsApplicable(p, threshold_boost), p,
                             features.rows());
}

TrainResult WindowNetworkFilter::Fit(const std::vector<Sample>& samples,
                                     const TrainConfig& config) {
  const TrainResult result = Train(this, samples, config);
  Refreeze();
  return result;
}

BinaryMetrics WindowNetworkFilter::Score(
    const std::vector<Sample>& samples) const {
  BinaryMetrics metrics;
  for (const Sample& sample : samples) {
    const int predicted =
        IsApplicable(WindowProbability(sample.features)) ? 1 : 0;
    metrics.Accumulate({predicted}, {sample.labels[0]});
  }
  return metrics;
}

}  // namespace dlacep
