#include "dlacep/window_filter.h"

#include <cmath>

#include "nn/ops.h"

namespace dlacep {

WindowNetworkFilter::WindowNetworkFilter(const Featurizer* featurizer,
                                         const NetworkConfig& network,
                                         double window_threshold)
    : featurizer_(featurizer),
      window_threshold_(window_threshold),
      init_rng_(network.seed + 1),
      stack_("window.stack", featurizer->feature_dim(), network.hidden_dim,
             network.num_layers, &init_rng_),
      head_("window.head", stack_.out_dim(), 1, &init_rng_) {
  DLACEP_CHECK(featurizer_ != nullptr);
}

Var WindowNetworkFilter::Logit(Tape* tape,
                               const Matrix& features) const {
  Var h = stack_.Forward(tape, tape->Input(features));
  Var pooled = ops::MaxOverRows(h);
  return head_.Forward(tape, pooled);
}

Var WindowNetworkFilter::Loss(Tape* tape, const Sample& sample) {
  DLACEP_CHECK_EQ(sample.labels.size(), 1u);
  Matrix target(1, 1);
  target(0, 0) = static_cast<double>(sample.labels[0]);
  return ops::BceWithLogits(Logit(tape, sample.features), target);
}

std::vector<Parameter*> WindowNetworkFilter::Params() {
  std::vector<Parameter*> params = stack_.Params();
  for (Parameter* p : head_.Params()) params.push_back(p);
  return params;
}

double WindowNetworkFilter::WindowProbability(
    const Matrix& features) const {
  Tape tape;
  const double logit = Logit(&tape, features).value()(0, 0);
  return 1.0 / (1.0 + std::exp(-logit));
}

std::vector<int> WindowNetworkFilter::MarkFeatures(
    const Matrix& features) const {
  const int mark = IsApplicable(WindowProbability(features)) ? 1 : 0;
  return std::vector<int>(features.rows(), mark);
}

std::vector<int> WindowNetworkFilter::Mark(const EventStream& stream,
                                           WindowRange range) const {
  return MarkFeatures(
      featurizer_->Encode(stream.View(range.begin, range.size())));
}

TrainResult WindowNetworkFilter::Fit(const std::vector<Sample>& samples,
                                     const TrainConfig& config) {
  return Train(this, samples, config);
}

BinaryMetrics WindowNetworkFilter::Score(
    const std::vector<Sample>& samples) const {
  BinaryMetrics metrics;
  for (const Sample& sample : samples) {
    const int predicted =
        IsApplicable(WindowProbability(sample.features)) ? 1 : 0;
    metrics.Accumulate({predicted}, {sample.labels[0]});
  }
  return metrics;
}

}  // namespace dlacep
