// Time-based-window support via fixed-size padding (paper §4, §5.2).
//
// DLACEP's networks require fixed-length input sequences, so count-based
// windows are native. For time-based semantics the paper simulates
// fixed-size windows: the stream is partitioned into windows of varying
// (bounded) size and each window is padded to the maximum size with
// blank events, which the featurizer encodes with a dedicated blank
// flag and the engines ignore (they still consume id space, preserving
// the window arithmetic). This module provides the two partitioning
// strategies:
//
//  * PadTimeWindows — honest time semantics: cut a new window whenever
//    the next event's timestamp leaves the current window's span;
//  * PadRandomWindows — the paper's Fig 14 simulation protocol: window
//    sizes drawn uniformly from [max/2, max].

#ifndef DLACEP_DLACEP_PADDING_H_
#define DLACEP_DLACEP_PADDING_H_

#include <cstdint>

#include "stream/stream.h"

namespace dlacep {

/// Partitions `source` by timestamp span: each window holds consecutive
/// events whose timestamps fit within `time_span`, truncated at
/// `max_window` events, padded with blanks to exactly `max_window`.
EventStream PadTimeWindows(const EventStream& source, double time_span,
                           size_t max_window);

/// Partitions `source` into windows of uniformly random sizes in
/// [max_window/2, max_window], each padded to `max_window` (the Fig 14
/// protocol).
EventStream PadRandomWindows(const EventStream& source, size_t max_window,
                             uint64_t seed);

/// Fraction of blank (padding) events in a padded stream.
double PaddingRatio(const EventStream& stream);

}  // namespace dlacep

#endif  // DLACEP_DLACEP_PADDING_H_
