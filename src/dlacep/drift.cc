#include "dlacep/drift.h"

#include <cmath>

#include "common/timer.h"
#include "dlacep/extractor.h"
#include "dlacep/labeler.h"

namespace dlacep {

DriftMonitor::DriftMonitor(double reference_rate, double tolerance,
                           size_t window_budget)
    : reference_rate_(reference_rate),
      tolerance_(tolerance),
      window_budget_(window_budget) {
  DLACEP_CHECK_GT(window_budget_, 0u);
}

bool DriftMonitor::Observe(const std::vector<int>& marks) {
  size_t marked = 0;
  for (int m : marks) marked += m != 0 ? 1 : 0;
  history_.emplace_back(marked, marks.size());
  marked_sum_ += marked;
  total_sum_ += marks.size();
  while (history_.size() > window_budget_) {
    marked_sum_ -= history_.front().first;
    total_sum_ -= history_.front().second;
    history_.pop_front();
  }
  if (history_.size() < window_budget_) return false;  // warm-up
  return std::abs(observed_rate() - reference_rate_) > tolerance_;
}

void DriftMonitor::ResetReference() {
  reference_rate_ = observed_rate();
  history_.clear();
  marked_sum_ = 0;
  total_sum_ = 0;
}

double DriftMonitor::observed_rate() const {
  return total_sum_ == 0
             ? reference_rate_
             : static_cast<double>(marked_sum_) /
                   static_cast<double>(total_sum_);
}

AdaptiveResult EvaluateWithRetraining(
    const Pattern& pattern, TrainableFilter* filter,
    const Featurizer& featurizer, const EventStream& stream,
    DriftMonitor* monitor, size_t retrain_events,
    const DlacepConfig& config) {
  DLACEP_CHECK(filter != nullptr);
  DLACEP_CHECK(monitor != nullptr);
  AdaptiveResult result;

  const size_t w = pattern.window().count_size();
  const size_t mark = config.mark_size != 0 ? config.mark_size : 2 * w;
  const size_t step = config.step_size != 0 ? config.step_size : w;
  const InputAssembler assembler(mark, step);
  CepExtractor extractor(pattern);

  std::vector<const Event*> marked;
  for (const WindowRange& range : assembler.Windows(stream.size())) {
    const std::vector<int> marks = filter->Mark(stream, range);
    for (size_t t = 0; t < marks.size(); ++t) {
      if (marks[t] != 0) marked.push_back(&stream[range.begin + t]);
    }
    if (!monitor->Observe(marks)) continue;

    // Drift: relabel the trailing segment and fine-tune (warm start).
    ++result.drifts_detected;
    const size_t end = range.end;
    const size_t begin = end > retrain_events ? end - retrain_events : 0;
    if (end - begin < mark) {
      monitor->ResetReference();
      continue;
    }
    Stopwatch watch;
    const EventStream segment = stream.Slice(begin, end - begin);
    const FilterDataset dataset = BuildFilterDataset(
        pattern, segment, assembler, featurizer, /*train_fraction=*/1.0,
        config.split_seed, config.negation_aware_labeling);
    // The event network trains on per-event labels; the window network
    // would use dataset.train_window. We fine-tune on whichever label
    // shape the filter was built for by probing a sample.
    filter->Fit(dataset.train_event, config.train);
    ++result.retrainings;
    result.retrain_seconds += watch.ElapsedSeconds();
    monitor->ResetReference();
  }

  const Status status = extractor.Extract(std::move(marked),
                                          &result.matches);
  DLACEP_CHECK_MSG(status.ok(), status.ToString());
  return result;
}

}  // namespace dlacep
