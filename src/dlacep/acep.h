// The ACEP problem formalization (paper §3) as executable artifacts: the
// weighted objective function of Definition (3) and the Φ(W, R, SEL)
// complexity model of §3.2 used to predict when filtration-based ACEP
// beats exact CEP.

#ifndef DLACEP_DLACEP_ACEP_H_
#define DLACEP_DLACEP_ACEP_H_

#include <vector>

#include "cep/match.h"
#include "pattern/selectivity.h"

namespace dlacep {

/// The example objective of §3.1:
///   F = −w1 · |M ∩ M'| / |M ∪ M'|  −  w2 · t' / t
/// where t'/t is the ACEP-over-ECEP throughput ratio. Lower is better;
/// w1 + w2 must equal 1.
double AcepObjective(const MatchSet& exact, const MatchSet& approx,
                     double throughput_ratio, double w1, double w2);

/// Φ(W, R, SEL): the expected number of partial matches of all sizes
/// (1..n-1) plus full matches (size n) inside a count window of size W,
/// given per-position arrival rates r_i (events per stream event) and
/// pairwise predicate selectivities sel_{k,t}:
///   Φ = Σ_{i=1..n}  W^i · Π_{k≤i} r_k · Π_{k≤t≤i} sel_{k,t}
double PhiExpectedPartialMatches(size_t window,
                                 const std::vector<double>& rates,
                                 const std::vector<std::vector<double>>& sel);

/// C_ECEP for a plan over a stream sample: Φ with sampled statistics.
double EstimateEcepCost(const LinearPlan& plan,
                        std::span<const Event> sample, size_t window,
                        uint64_t seed);

/// C_ACEP = Φ(W, R_Ψ, SEL) + C_filter, where Ψ_i is the expected
/// filtering ratio of position i's type and `filter_cost` is the
/// (window-size-linear) filtration term.
double EstimateAcepCost(const LinearPlan& plan,
                        std::span<const Event> sample, size_t window,
                        const std::vector<double>& keep_ratio,
                        double filter_cost, uint64_t seed);

}  // namespace dlacep

#endif  // DLACEP_DLACEP_ACEP_H_
