#include "dlacep/featurizer.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace dlacep {

Featurizer::Featurizer(const Pattern& pattern,
                       const EventStream& train_stream)
    : Featurizer(pattern.PrimitiveTypeSets(), train_stream) {}

Featurizer::Featurizer(const std::vector<std::vector<TypeId>>& type_sets,
                       const EventStream& train_stream) {
  // Compact by membership signature: types that belong to exactly the
  // same primitive type sets are indistinguishable to the pattern and
  // share one one-hot slot (paper §4.3 — e.g. the 100 members of a T_100
  // position collapse into a single category).
  std::vector<std::vector<TypeId>> sets = type_sets;
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  DLACEP_CHECK_LE(sets.size(), 64u);
  std::set<TypeId> referenced;
  for (const auto& set : sets) {
    referenced.insert(set.begin(), set.end());
  }
  std::unordered_map<uint64_t, size_t> slot_of_signature;
  for (TypeId type : referenced) {
    uint64_t signature = 0;
    for (size_t s = 0; s < sets.size(); ++s) {
      if (std::binary_search(sets[s].begin(), sets[s].end(), type)) {
        signature |= uint64_t{1} << s;
      }
    }
    auto [it, inserted] =
        slot_of_signature.emplace(signature, slot_of_signature.size());
    type_slot_.emplace(type, it->second);
  }
  num_type_slots_ = slot_of_signature.size() + 1;  // + "other"
  num_attrs_ = train_stream.schema().num_attrs();
  attr_stats_.reserve(num_attrs_);
  log_attr_stats_.reserve(num_attrs_);
  for (size_t a = 0; a < num_attrs_; ++a) {
    attr_stats_.push_back(train_stream.ComputeAttrStats(a));
    // Fit the signed-log channel statistics.
    double sum = 0.0;
    double sum_sq = 0.0;
    size_t n = 0;
    for (const Event& e : train_stream) {
      if (e.is_blank()) continue;
      const double v = SignedLog(e.attr(a));
      sum += v;
      sum_sq += v * v;
      ++n;
    }
    AttrStats stats;
    if (n > 0) {
      stats.mean = sum / static_cast<double>(n);
      const double var =
          sum_sq / static_cast<double>(n) - stats.mean * stats.mean;
      stats.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
    log_attr_stats_.push_back(stats);
  }
  feature_dim_ = num_type_slots_ + 1 /*blank flag*/ + 2 * num_attrs_;
}

double Featurizer::SignedLog(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

Matrix Featurizer::Encode(std::span<const Event> window) const {
  Matrix features(window.size(), feature_dim_);
  for (size_t t = 0; t < window.size(); ++t) {
    const Event& e = window[t];
    if (e.is_blank()) {
      features(t, num_type_slots_) = 1.0;  // blank flag
      continue;
    }
    auto it = type_slot_.find(e.type);
    const size_t slot =
        it != type_slot_.end() ? it->second : num_type_slots_ - 1;
    features(t, slot) = 1.0;
    for (size_t a = 0; a < num_attrs_; ++a) {
      const AttrStats& stats = attr_stats_[a];
      features(t, num_type_slots_ + 1 + a) =
          (e.attr(a) - stats.mean) / stats.stddev;
      const AttrStats& log_stats = log_attr_stats_[a];
      features(t, num_type_slots_ + 1 + num_attrs_ + a) =
          (SignedLog(e.attr(a)) - log_stats.mean) / log_stats.stddev;
    }
  }
  return features;
}

}  // namespace dlacep
