#include "dlacep/acep.h"

#include <cmath>

namespace dlacep {

double AcepObjective(const MatchSet& exact, const MatchSet& approx,
                     double throughput_ratio, double w1, double w2) {
  DLACEP_CHECK_GE(w1, 0.0);
  DLACEP_CHECK_GE(w2, 0.0);
  DLACEP_CHECK_LE(std::abs(w1 + w2 - 1.0), 1e-9);
  const MatchSetMetrics metrics = CompareMatchSets(exact, approx);
  return -w1 * metrics.jaccard - w2 * throughput_ratio;
}

double PhiExpectedPartialMatches(
    size_t window, const std::vector<double>& rates,
    const std::vector<std::vector<double>>& sel) {
  const size_t n = rates.size();
  DLACEP_CHECK_EQ(sel.size(), n);
  double phi = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    double term = 1.0;
    for (size_t k = 0; k < i; ++k) {
      term *= static_cast<double>(window) * rates[k];
    }
    for (size_t k = 0; k < i; ++k) {
      for (size_t t = k; t < i; ++t) {
        term *= sel[k][t];
      }
    }
    phi += term;
  }
  return phi;
}

double EstimateEcepCost(const LinearPlan& plan,
                        std::span<const Event> sample, size_t window,
                        uint64_t seed) {
  const PlanStatistics stats = EstimatePlanStatistics(plan, sample, seed);
  return PhiExpectedPartialMatches(window, stats.rates, stats.pair_sel);
}

double EstimateAcepCost(const LinearPlan& plan,
                        std::span<const Event> sample, size_t window,
                        const std::vector<double>& keep_ratio,
                        double filter_cost, uint64_t seed) {
  PlanStatistics stats = EstimatePlanStatistics(plan, sample, seed);
  DLACEP_CHECK_EQ(keep_ratio.size(), stats.rates.size());
  for (size_t i = 0; i < stats.rates.size(); ++i) {
    DLACEP_CHECK_GE(keep_ratio[i], 0.0);
    DLACEP_CHECK_LE(keep_ratio[i], 1.0);
    stats.rates[i] *= keep_ratio[i];  // R_Ψ = (1 − Ψ_i)·r_i
  }
  return PhiExpectedPartialMatches(window, stats.rates, stats.pair_sel) +
         filter_cost;
}

}  // namespace dlacep
