#include "dlacep/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dlacep {

double MatchAttrVariance(const Match& match, const EventStream& stream,
                         size_t attr_index) {
  DLACEP_CHECK(!match.ids.empty());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (EventId id : match.ids) {
    // Event ids equal stream positions for unfiltered streams.
    DLACEP_CHECK_LT(id, stream.size());
    const double v = stream[static_cast<size_t>(id)].attr(attr_index);
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(match.ids.size());
  const double mean = sum / n;
  return std::max(0.0, sum_sq / n - mean * mean);
}

std::vector<VarianceBucket> VarianceDistribution(const MatchSet& exact,
                                                 const MatchSet& approx,
                                                 const EventStream& stream,
                                                 size_t attr_index,
                                                 size_t num_buckets) {
  DLACEP_CHECK_GT(num_buckets, 0u);
  std::vector<VarianceBucket> buckets(num_buckets);
  if (exact.empty()) return buckets;

  std::vector<std::pair<double, bool>> points;  // (variance, detected)
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Match& match : exact) {
    const double variance = MatchAttrVariance(match, stream, attr_index);
    points.emplace_back(variance, approx.Contains(match));
    lo = std::min(lo, variance);
    hi = std::max(hi, variance);
  }
  if (hi <= lo) hi = lo + 1.0;
  for (size_t b = 0; b < num_buckets; ++b) {
    buckets[b].lo = lo + (hi - lo) * static_cast<double>(b) /
                             static_cast<double>(num_buckets);
    buckets[b].hi = lo + (hi - lo) * static_cast<double>(b + 1) /
                             static_cast<double>(num_buckets);
  }
  for (const auto& [variance, detected] : points) {
    size_t b = static_cast<size_t>((variance - lo) / (hi - lo) *
                                   static_cast<double>(num_buckets));
    b = std::min(b, num_buckets - 1);
    if (detected) {
      ++buckets[b].detected;
    } else {
      ++buckets[b].undetected;
    }
  }
  return buckets;
}

VarianceSummary SummarizeVariance(const MatchSet& exact,
                                  const MatchSet& approx,
                                  const EventStream& stream,
                                  size_t attr_index) {
  VarianceSummary summary;
  double detected_sum = 0.0;
  double undetected_sum = 0.0;
  for (const Match& match : exact) {
    const double variance = MatchAttrVariance(match, stream, attr_index);
    if (approx.Contains(match)) {
      detected_sum += variance;
      ++summary.detected_count;
    } else {
      undetected_sum += variance;
      ++summary.undetected_count;
    }
  }
  if (summary.detected_count > 0) {
    summary.detected_mean =
        detected_sum / static_cast<double>(summary.detected_count);
  }
  if (summary.undetected_count > 0) {
    summary.undetected_mean =
        undetected_sum / static_cast<double>(summary.undetected_count);
  }
  return summary;
}

}  // namespace dlacep
