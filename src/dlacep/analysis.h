// Qualitative match analysis (paper §5.2, Fig 10): partition the matches
// DLACEP detected and missed by an attribute statistic (the paper uses
// the variance of the stock volume across the match's events) to reveal
// which matches the network finds hard.

#ifndef DLACEP_DLACEP_ANALYSIS_H_
#define DLACEP_DLACEP_ANALYSIS_H_

#include <vector>

#include "cep/match.h"
#include "stream/stream.h"

namespace dlacep {

/// Per-match variance of `attr_index` across the match's events.
double MatchAttrVariance(const Match& match, const EventStream& stream,
                         size_t attr_index);

struct VarianceBucket {
  double lo = 0.0;
  double hi = 0.0;
  size_t detected = 0;
  size_t undetected = 0;
};

/// Buckets `exact` matches by attribute variance into `num_buckets`
/// equal-width bins over the observed range, counting detected
/// (∈ approx) vs undetected matches per bin — the Fig 10 histogram.
std::vector<VarianceBucket> VarianceDistribution(const MatchSet& exact,
                                                 const MatchSet& approx,
                                                 const EventStream& stream,
                                                 size_t attr_index,
                                                 size_t num_buckets);

/// Mean variance of detected and undetected matches (the Fig 10 summary
/// statistic: missed matches exhibit significantly higher variance).
struct VarianceSummary {
  double detected_mean = 0.0;
  double undetected_mean = 0.0;
  size_t detected_count = 0;
  size_t undetected_count = 0;
};

VarianceSummary SummarizeVariance(const MatchSet& exact,
                                  const MatchSet& approx,
                                  const EventStream& stream,
                                  size_t attr_index);

}  // namespace dlacep

#endif  // DLACEP_DLACEP_ANALYSIS_H_
