#include "dlacep/multi_pattern.h"

#include <algorithm>
#include <span>

#include "common/timer.h"
#include "dlacep/extractor.h"
#include "dlacep/labeler.h"

namespace dlacep {

namespace {

size_t MaxWindow(const std::vector<Pattern>& patterns) {
  size_t w = 0;
  for (const Pattern& pattern : patterns) {
    DLACEP_CHECK(pattern.window().kind == WindowKind::kCount);
    w = std::max(w, pattern.window().count_size());
  }
  return w;
}

std::vector<std::vector<TypeId>> UnionTypeSets(
    const std::vector<Pattern>& patterns) {
  std::vector<std::vector<TypeId>> sets;
  for (const Pattern& pattern : patterns) {
    for (auto& set : pattern.PrimitiveTypeSets()) {
      sets.push_back(std::move(set));
    }
  }
  return sets;
}

}  // namespace

MultiPatternDlacep::MultiPatternDlacep(std::vector<Pattern> patterns,
                                       const EventStream& train_stream,
                                       const DlacepConfig& config)
    : patterns_(std::move(patterns)),
      config_(config),
      max_window_(MaxWindow(patterns_)) {
  DLACEP_CHECK(!patterns_.empty());
  featurizer_ = std::make_unique<Featurizer>(UnionTypeSets(patterns_),
                                             train_stream);

  // Unified labels: per-pattern datasets over the SAME assembler windows
  // and split seed, OR-ed together (an event is relevant if it serves any
  // pattern — §4.3).
  const size_t mark =
      config_.mark_size != 0 ? config_.mark_size : 2 * max_window_;
  const size_t step =
      config_.step_size != 0 ? config_.step_size : max_window_;
  const InputAssembler assembler(mark, step);

  std::vector<Sample> train;
  std::vector<Sample> test;
  for (size_t p = 0; p < patterns_.size(); ++p) {
    FilterDataset dataset = BuildFilterDataset(
        patterns_[p], train_stream, assembler, *featurizer_,
        config_.train_fraction, config_.split_seed,
        config_.negation_aware_labeling);
    if (p == 0) {
      train = std::move(dataset.train_event);
      test = std::move(dataset.test_event);
      continue;
    }
    DLACEP_CHECK_EQ(train.size(), dataset.train_event.size());
    for (size_t i = 0; i < train.size(); ++i) {
      for (size_t t = 0; t < train[i].labels.size(); ++t) {
        train[i].labels[t] |= dataset.train_event[i].labels[t];
      }
    }
    DLACEP_CHECK_EQ(test.size(), dataset.test_event.size());
    for (size_t i = 0; i < test.size(); ++i) {
      for (size_t t = 0; t < test[i].labels.size(); ++t) {
        test[i].labels[t] |= dataset.test_event[i].labels[t];
      }
    }
  }

  if (config_.oversample_positive > 1) {
    const size_t original = train.size();
    for (size_t i = 0; i < original; ++i) {
      const Sample sample = train[i];  // copy: push_back may reallocate
      bool positive = false;
      for (int label : sample.labels) positive |= label != 0;
      if (!positive) continue;
      for (size_t r = 1; r < config_.oversample_positive; ++r) {
        train.push_back(sample);
      }
    }
  }

  filter_ = std::make_unique<EventNetworkFilter>(
      featurizer_.get(), config_.network, config_.event_threshold);
  filter_->Fit(train, config_.train);
  test_metrics_ = filter_->Score(test);
}

MultiPatternResult MultiPatternDlacep::Evaluate(const EventStream& stream) {
  MultiPatternResult result;
  result.total_events = stream.size();

  const size_t mark =
      config_.mark_size != 0 ? config_.mark_size : 2 * max_window_;
  const size_t step =
      config_.step_size != 0 ? config_.step_size : max_window_;
  const InputAssembler assembler(mark, step);

  // Tape-free fast path: one InferenceContext scratch arena reused
  // across windows (MarkWith), and the cross-window batched trunk
  // (MarkBatchWith) when batch_size > 1 — same marks as the legacy
  // autograd-tape Mark, bit for bit (tests/extensions_test.cc).
  Stopwatch filter_watch;
  std::vector<const Event*> marked;
  InferenceContext ctx;
  const std::vector<WindowRange> windows = assembler.Windows(stream.size());
  const size_t batch = std::max<size_t>(config_.batch_size, 1);
  auto collect = [&](const WindowRange& range, const std::vector<int>& marks) {
    for (size_t t = 0; t < marks.size(); ++t) {
      if (marks[t] != 0) marked.push_back(&stream[range.begin + t]);
    }
  };
  if (batch > 1) {
    std::vector<std::vector<int>> marks(batch);
    for (size_t w = 0; w < windows.size(); w += batch) {
      const size_t n = std::min(batch, windows.size() - w);
      const std::span<const WindowRange> chunk(&windows[w], n);
      filter_->MarkBatchWith(stream, chunk, &ctx, marks.data());
      for (size_t i = 0; i < n; ++i) collect(chunk[i], marks[i]);
    }
  } else {
    for (const WindowRange& range : windows) {
      collect(range, filter_->MarkWith(stream, range, &ctx));
    }
  }
  result.filter_seconds = filter_watch.ElapsedSeconds();

  Stopwatch cep_watch;
  result.per_pattern.resize(patterns_.size());
  size_t marked_unique = 0;
  for (size_t p = 0; p < patterns_.size(); ++p) {
    CepExtractor extractor(patterns_[p]);
    const Status status =
        extractor.Extract(marked, &result.per_pattern[p]);
    DLACEP_CHECK_MSG(status.ok(), status.ToString());
    marked_unique = extractor.stats().events_processed;
  }
  result.marked_events = marked_unique;
  result.cep_seconds = cep_watch.ElapsedSeconds();
  return result;
}

}  // namespace dlacep
