// TCN-backed event filter — the alternative architecture the paper's
// preliminary experiments evaluated and rejected in favour of BiLSTM
// (§4.1: "BiLSTM was empirically shown to be superior to other
// approaches such as TCN"). Identical head (two linear emission layers
// + BI-CRF) and API to EventNetworkFilter; only the sequence backbone
// differs. bench_ablation_backbone reproduces the comparison.

#ifndef DLACEP_DLACEP_TCN_FILTER_H_
#define DLACEP_DLACEP_TCN_FILTER_H_

#include "dlacep/config.h"
#include "dlacep/featurizer.h"
#include "dlacep/filter.h"
#include "nn/crf.h"
#include "nn/infer.h"

namespace dlacep {

class TcnEventFilter : public TrainableFilter, public SequenceModel {
 public:
  TcnEventFilter(const Featurizer* featurizer,
                 const NetworkConfig& network, double event_threshold,
                 size_t kernel = 3);

  std::string name() const override { return "tcn-event-network"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override;
  std::vector<int> MarkWith(const EventStream& stream, WindowRange range,
                            InferenceContext* ctx) const override;
  /// Batched marking: the TCN trunk runs once over the stacked feature
  /// slab (loop-level fusion — see TcnInfer::ForwardBatch), the heads
  /// run as one slab-wide GEMM, and the CRF decodes per window. No
  /// MarkBatchOnline override: this filter keeps the base class's
  /// MarkOnline loop, matching its per-window MarkOnline (no threshold
  /// boost support either way).
  void MarkBatchWith(const EventStream& stream,
                     std::span<const WindowRange> windows,
                     InferenceContext* ctx,
                     std::vector<int>* marks) const override;
  std::vector<int> MarkFeatures(const Matrix& features) const override;
  std::vector<int> MarkFeaturesWith(const Matrix& features,
                                    InferenceContext* ctx) const override;
  std::vector<int> MarkFeaturesTape(const Matrix& features) const override;
  void OnParamsChanged() override;

  TrainResult Fit(const std::vector<Sample>& samples,
                  const TrainConfig& config) override;

  BinaryMetrics Score(const std::vector<Sample>& samples) const override;

  // SequenceModel:
  Var Loss(Tape* tape, const Sample& sample) override;
  std::vector<Parameter*> Params() override;

 private:
  std::pair<Var, Var> Emissions(Tape* tape, const Matrix& features) const;
  std::vector<int> Threshold(const Matrix& marginals) const;
  void Refreeze();

  const Featurizer* featurizer_;  ///< not owned
  double event_threshold_;
  Rng init_rng_;
  Tcn backbone_;
  Dense head_fwd_;
  Dense head_bwd_;
  BiCrf crf_;
  /// Forward-only weights repacked at freeze time (constructor, end of
  /// Fit, OnParamsChanged); read-only during Mark.
  struct FrozenModel {
    TcnInfer backbone;
    DenseInfer head_fwd;
    DenseInfer head_bwd;
  } frozen_;
};

}  // namespace dlacep

#endif  // DLACEP_DLACEP_TCN_FILTER_H_
