#include "dlacep/extractor.h"

#include <algorithm>

namespace dlacep {

CepExtractor::CepExtractor(const Pattern& pattern, EngineKind engine_kind,
                           const EngineOptions& options) {
  auto engine = CreateEngine(engine_kind, pattern, options);
  DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
  engine_ = std::move(engine).value();
}

Status CepExtractor::Extract(std::vector<const Event*> marked,
                             MatchSet* out) {
  DLACEP_CHECK(out != nullptr);
  // Duplicate marks (overlapping assembler windows) are erased before the
  // relay (paper §4.2) and arrival order restored.
  std::sort(marked.begin(), marked.end(),
            [](const Event* a, const Event* b) { return a->id < b->id; });
  marked.erase(std::unique(marked.begin(), marked.end(),
                           [](const Event* a, const Event* b) {
                             return a->id == b->id;
                           }),
               marked.end());
  std::vector<Event> filtered;
  filtered.reserve(marked.size());
  for (const Event* e : marked) {
    if (!e->is_blank()) filtered.push_back(*e);
  }
  return engine_->Evaluate(
      std::span<const Event>(filtered.data(), filtered.size()), out);
}

}  // namespace dlacep
