#include "dlacep/extractor.h"

#include <algorithm>

#include "obs/stages.h"

namespace dlacep {

CepExtractor::CepExtractor(const Pattern& pattern, EngineKind engine_kind,
                           const EngineOptions& options) {
  auto engine = CreateEngine(engine_kind, pattern, options);
  DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
  engine_ = std::move(engine).value();
  if (engine_kind == EngineKind::kAdaptive) {
    adaptive_ = static_cast<AdaptiveEngine*>(engine_.get());
    const std::string label = options.pattern_label;
    adaptive_->set_selection_hook([label](EngineKind kind) {
      obs::EngineSelected(EngineKindName(kind), label)->Increment();
    });
  }
}

Status CepExtractor::Extract(std::vector<const Event*> marked,
                             MatchSet* out) {
  DLACEP_CHECK(out != nullptr);
  // Duplicate marks (overlapping assembler windows) are erased before the
  // relay (paper §4.2) and arrival order restored.
  std::sort(marked.begin(), marked.end(),
            [](const Event* a, const Event* b) { return a->id < b->id; });
  marked.erase(std::unique(marked.begin(), marked.end(),
                           [](const Event* a, const Event* b) {
                             return a->id == b->id;
                           }),
               marked.end());
  std::vector<Event> filtered;
  filtered.reserve(marked.size());
  for (const Event* e : marked) {
    if (!e->is_blank()) filtered.push_back(*e);
  }
  const EngineStats before = engine_->stats();
  const size_t matches_before = out->size();
  const Status status = engine_->Evaluate(
      std::span<const Event>(filtered.data(), filtered.size()), out);
  // Engine stats accumulate across Evaluate() calls and reset between
  // runs; the labelled counters want the monotone per-call delta.
  const EngineStats& after = engine_->stats();
  const std::string& engine_name = engine_->name();
  obs::CepEvents(engine_name)
      ->Increment(after.events_processed - before.events_processed);
  obs::CepPartialMatches(engine_name)
      ->Increment(after.partial_matches - before.partial_matches);
  obs::CepPartialMatchesPruned(engine_name)
      ->Increment(after.partial_matches_pruned -
                  before.partial_matches_pruned);
  obs::CepTransitions(engine_name)
      ->Increment(after.transitions - before.transitions);
  obs::CepMatches(engine_name)->Increment(out->size() - matches_before);
  // Silent recall loss under the legacy storage cap is surfaced, not
  // swallowed: the counter feeds the CLI's end-of-run warning.
  obs::CepPartialMatchesDropped(engine_name)
      ->Increment(after.partial_matches_dropped -
                  before.partial_matches_dropped);
  obs::CepBudgetAborts(engine_name)
      ->Increment(after.budget_aborts - before.budget_aborts);
  return status;
}

}  // namespace dlacep
