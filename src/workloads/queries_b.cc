#include "workloads/queries_b.h"

#include "pattern/builder.h"

namespace dlacep {
namespace workloads {

Pattern QB1(std::shared_ptr<const Schema> schema, size_t window,
            double kLo, double kHi) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"), b.Prim("C", "c"),
                    b.Prim("D", "d"), b.Prim("E", "e"), b.Prim("F", "f"));
  // Note: the synthetic attribute is N(0,1)-distributed, so the paper's
  // multiplicative bands are applied to the shifted value via
  // coefficient bands on vol directly, exactly as written in Table 2.
  b.WhereBand("f", "c", "vol", kLo, kHi);
  b.WhereBand("f", "d", "vol", kLo, kHi);
  b.WhereBand("e", "a", "vol", kLo, kHi);
  b.WhereBand("e", "d", "vol", kLo, kHi);
  b.WhereCmp(0.4, "c", "vol", CmpOp::kLt, 1.0, "f");
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QB2(std::shared_ptr<const Schema> schema, size_t window,
            double kLo, double kHi) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"), b.Prim("C", "c"),
                    b.Prim("D", "d"), b.Prim("E", "e"));
  b.WhereBand("d", "a", "vol", kLo, kHi);
  b.WhereBand("d", "bb", "vol", kLo, kHi);
  b.WhereBand("e", "bb", "vol", kLo, kHi);
  b.WhereBand("e", "c", "vol", kLo, kHi);
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QB3(std::shared_ptr<const Schema> schema, size_t window,
            double kLo, double kHi) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"), b.Prim("C", "c"),
                    b.Prim("D", "d"));
  b.WhereBand("d", "a", "vol", kLo, kHi);
  b.WhereBand("d", "bb", "vol", kLo, kHi);
  b.WhereBand("d", "c", "vol", kLo, kHi);
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QBOfLength(std::shared_ptr<const Schema> schema, size_t length,
                   size_t window, double lo, double hi) {
  switch (length) {
    case 4: return QB3(std::move(schema), window, lo, hi);
    case 5: return QB2(std::move(schema), window, lo, hi);
    case 6: return QB1(std::move(schema), window, lo, hi);
    default:
      DLACEP_CHECK_MSG(false, "QBOfLength supports lengths 4..6");
  }
  __builtin_unreachable();
}

}  // namespace workloads
}  // namespace dlacep
