#include "workloads/queries_a.h"

#include "common/string_util.h"
#include "pattern/builder.h"

namespace dlacep {
namespace workloads {

std::vector<TypeId> TopK(size_t k) { return RankRange(0, k); }

std::vector<TypeId> RankRange(size_t lo, size_t hi) {
  DLACEP_CHECK_LT(lo, hi);
  std::vector<TypeId> types;
  types.reserve(hi - lo);
  for (size_t r = lo; r < hi; ++r) {
    types.push_back(static_cast<TypeId>(r));
  }
  return types;
}

namespace {

std::string V(size_t i) { return StrFormat("s%zu", i); }

// Adds α·V(i).vol < V(target).vol < β·V(i).vol.
void Band(PatternBuilder* b, size_t i, size_t target, double alpha,
          double beta) {
  b->Where(MakeBandCondition(b->Var(V(target)), 0, b->Var(V(i)), 0, alpha,
                             beta));
}

}  // namespace

Pattern QA1(std::shared_ptr<const Schema> schema, size_t j, size_t k,
            double alpha, double beta, size_t p_size, size_t window) {
  DLACEP_CHECK_GE(j, 2u);
  DLACEP_CHECK_LE(p_size, j - 1);
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= j; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(k), V(i)));
  }
  auto root = b.SeqOf(std::move(children));
  for (size_t i = 1; i <= p_size; ++i) {
    Band(&b, i, j, alpha, beta);
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA2(std::shared_ptr<const Schema> schema, size_t k, size_t window) {
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= 5; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(k), V(i)));
  }
  return b.BuildOrDie(b.SeqOf(std::move(children)),
                      WindowSpec::Count(window));
}

Pattern QA3(std::shared_ptr<const Schema> schema, size_t j, size_t k,
            size_t r, size_t p_size, size_t l, size_t m, double alpha,
            double beta, double gamma, size_t window) {
  DLACEP_CHECK_GE(j, 2u);
  DLACEP_CHECK_GE(r, 1u);
  DLACEP_CHECK_LE(r, j);
  DLACEP_CHECK_LE(p_size, r - 1);
  DLACEP_CHECK_GE(l, 1u);
  DLACEP_CHECK_LE(l, j);
  DLACEP_CHECK_GE(m, 1u);
  DLACEP_CHECK_LE(m, j);
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= j; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(k), V(i)));
  }
  auto root = b.SeqOf(std::move(children));
  for (size_t i = 1; i <= p_size; ++i) {
    Band(&b, i, r, alpha, beta);
  }
  b.Where(std::make_unique<CompareCondition>(
      Term::Attr(b.Var(V(l)), 0, gamma), CmpOp::kLt,
      Term::Attr(b.Var(V(m)), 0)));
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA4(std::shared_ptr<const Schema> schema, size_t j, size_t k,
            size_t p_size, size_t l, size_t m, double alpha, double beta,
            double gamma, double delta, size_t window) {
  DLACEP_CHECK_GE(j, 2u);
  DLACEP_CHECK_LE(p_size, j - 1);
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= j; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(k), V(i)));
  }
  auto root = b.SeqOf(std::move(children));
  for (size_t i = 1; i <= p_size; ++i) {
    Band(&b, i, j, alpha, beta);
  }
  b.Where(MakeBandCondition(b.Var(V(m)), 0, b.Var(V(l)), 0, gamma, delta));
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA5(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            size_t band, double alpha, double beta, size_t window,
            size_t max_reps) {
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= 5; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(base), V(i)));
  }
  for (size_t l = 1; l <= j; ++l) {
    children.push_back(b.Kleene(
        b.PrimAnyOfIds(RankRange(base + (l - 1) * band, base + l * band),
                       StrFormat("kc%zu", l)),
        1, max_reps));
  }
  auto root = b.SeqOf(std::move(children));
  for (size_t i = 1; i <= 4; ++i) {
    Band(&b, i, 5, alpha, beta);
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA6(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            double alpha, double beta, size_t window, size_t max_reps) {
  DLACEP_CHECK_GE(j, 2u);
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= j; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(base), V(i)));
  }
  auto root = b.Kleene(b.SeqOf(std::move(children)), 1, max_reps);
  for (size_t i = 1; i < j; ++i) {
    Band(&b, i, j, alpha, beta);
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

namespace {

// Shared body of QA7/QA8: SEQ(S_1..S_4, <negated part>, S_5).
Pattern NegTemplate(std::shared_ptr<const Schema> schema, size_t j,
                    size_t base, size_t band, double alpha, double beta,
                    size_t window, bool nested_seq) {
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 1; i <= 4; ++i) {
    children.push_back(b.PrimAnyOfIds(TopK(base), V(i)));
  }
  if (nested_seq) {
    std::vector<PatternBuilder::Node> neg_children;
    for (size_t l = 1; l <= j; ++l) {
      neg_children.push_back(b.PrimAnyOfIds(
          RankRange(base + (l - 1) * band, base + l * band),
          StrFormat("n%zu", l)));
    }
    children.push_back(b.Neg(b.SeqOf(std::move(neg_children))));
  } else {
    for (size_t l = 1; l <= j; ++l) {
      children.push_back(b.Neg(b.PrimAnyOfIds(
          RankRange(base + (l - 1) * band, base + l * band),
          StrFormat("n%zu", l))));
    }
  }
  children.push_back(b.PrimAnyOfIds(TopK(base), V(5)));
  auto root = b.SeqOf(std::move(children));
  for (size_t i = 1; i <= 4; ++i) {
    Band(&b, i, 5, alpha, beta);
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

}  // namespace

Pattern QA7(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            size_t band, double alpha, double beta, size_t window) {
  return NegTemplate(std::move(schema), j, base, band, alpha, beta, window,
                     /*nested_seq=*/false);
}

Pattern QA8(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            size_t band, double alpha, double beta, size_t window) {
  return NegTemplate(std::move(schema), j, base, band, alpha, beta, window,
                     /*nested_seq=*/true);
}

Pattern QA9(std::shared_ptr<const Schema> schema, size_t j, size_t k1,
            size_t k2, double alpha, double beta, double gamma,
            double delta, size_t window) {
  DLACEP_CHECK_GE(j, 2u);
  DLACEP_CHECK_LT(k1, k2);
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> seq1;
  std::vector<PatternBuilder::Node> seq2;
  for (size_t i = 1; i <= j; ++i) {
    seq1.push_back(b.PrimAnyOfIds(TopK(k1), V(i)));
    seq2.push_back(b.PrimAnyOfIds(RankRange(k1, k2),
                                  StrFormat("t%zu", i)));
  }
  auto root = b.Disj(b.SeqOf(std::move(seq1)), b.SeqOf(std::move(seq2)));
  for (size_t i = 1; i < j; ++i) {
    Band(&b, i, j, alpha, beta);
    b.Where(MakeBandCondition(b.Var(StrFormat("t%zu", j)), 0,
                              b.Var(StrFormat("t%zu", i)), 0, gamma,
                              delta));
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA10(std::shared_ptr<const Schema> schema, size_t j, size_t band,
             double alpha1, double alpha2, size_t window) {
  DLACEP_CHECK_GE(j, 2u);
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> branches;
  for (size_t l = 1; l <= j; ++l) {
    std::vector<PatternBuilder::Node> seq;
    for (size_t m = 1; m <= 4; ++m) {
      seq.push_back(b.PrimAnyOfIds(RankRange((l - 1) * band, l * band),
                                   StrFormat("b%zum%zu", l, m)));
    }
    branches.push_back(b.SeqOf(std::move(seq)));
  }
  auto root = b.DisjOf(std::move(branches));
  for (size_t l = 1; l <= j; ++l) {
    // Per-branch widening bands (the paper's α^r_1, α^r_2).
    const double lo = alpha1 / (1.0 + 0.1 * static_cast<double>(l - 1));
    const double hi = alpha2 * (1.0 + 0.1 * static_cast<double>(l - 1));
    for (size_t p = 1; p <= 3; ++p) {
      b.Where(MakeBandCondition(b.Var(StrFormat("b%zum4", l)), 0,
                                b.Var(StrFormat("b%zum%zu", l, p)), 0, lo,
                                hi));
    }
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA11(std::shared_ptr<const Schema> schema, bool conjunction,
             size_t band, double alpha, double beta, size_t window) {
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t t = 1; t <= 5; ++t) {
    children.push_back(b.PrimAnyOfIds(
        RankRange((t - 1) * band, t * band), V(t)));
  }
  auto root = conjunction ? b.ConjOf(std::move(children))
                          : b.SeqOf(std::move(children));
  for (size_t i = 1; i <= 4; ++i) {
    Band(&b, i, 5, alpha, beta);
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

Pattern QA12(std::shared_ptr<const Schema> schema, size_t band,
             double alpha, double beta, double gamma, double delta,
             size_t window) {
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> seq1;
  std::vector<PatternBuilder::Node> seq2;
  for (size_t t = 1; t <= 5; ++t) {
    seq1.push_back(b.PrimAnyOfIds(RankRange((t - 1) * band, t * band),
                                  V(t)));
    seq2.push_back(b.PrimAnyOfIds(RankRange((t - 1) * band, t * band),
                                  StrFormat("t%zu", t)));
  }
  auto root = b.Disj(b.SeqOf(std::move(seq1)), b.SeqOf(std::move(seq2)));
  for (size_t i = 1; i <= 4; ++i) {
    Band(&b, i, 5, alpha, beta);
    b.Where(MakeBandCondition(b.Var("t5"), 0, b.Var(StrFormat("t%zu", i)),
                              0, gamma, delta));
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

}  // namespace workloads
}  // namespace dlacep
