// The real-world (stock) query templates of Table 1, as C++ factories.
//
// Table 1 binds positions to T_k — "the set of the top k most prevalent
// stock identifiers". The stock simulator assigns type ids in prevalence
// rank order (see stream/stocksim.h), so T_k is the id range [0, k) and
// T_a/T_b is the range [b, a). Every factory takes the rank parameters
// explicitly; bench recipes scale the paper's ranks (100, 200, 40·t...)
// down proportionally to the simulated symbol universe and record the
// originals in comments/EXPERIMENTS.md.
//
// Unless a factory documents otherwise, the conditions are the band
// predicates of the templates: α·S_i.vol < S_target.vol < β·S_i.vol.

#ifndef DLACEP_WORKLOADS_QUERIES_A_H_
#define DLACEP_WORKLOADS_QUERIES_A_H_

#include <memory>
#include <vector>

#include "pattern/pattern.h"

namespace dlacep {
namespace workloads {

/// Type ids of the top-k most prevalent symbols: [0, k).
std::vector<TypeId> TopK(size_t k);

/// Type ids of prevalence ranks [lo, hi) — the template notation
/// T_hi / T_lo.
std::vector<TypeId> RankRange(size_t lo, size_t hi);

/// Q^A_1: SEQ(S_1..S_j), all S_t ∈ T_k, band conditions from the first
/// `p_size` positions to S_j. More k ⇒ more partial matches; larger
/// β−α or smaller p_size ⇒ more full matches.
Pattern QA1(std::shared_ptr<const Schema> schema, size_t j, size_t k,
            double alpha, double beta, size_t p_size, size_t window);

/// Q^A_2: SEQ(S_1..S_5), all S_t ∈ T_k, no value conditions — almost
/// every partial match completes to a full match.
Pattern QA2(std::shared_ptr<const Schema> schema, size_t k, size_t window);

/// Q^A_3: SEQ(S_1..S_j) in T_k; band conditions from the first `p_size`
/// positions to S_r; plus one one-sided condition γ·S_l.vol < S_m.vol.
Pattern QA3(std::shared_ptr<const Schema> schema, size_t j, size_t k,
            size_t r, size_t p_size, size_t l, size_t m, double alpha,
            double beta, double gamma, size_t window);

/// Q^A_4: SEQ(S_1..S_j) in T_k; band conditions to S_j over the first
/// `p_size` positions plus a second band γ..δ between S_l and S_m.
Pattern QA4(std::shared_ptr<const Schema> schema, size_t j, size_t k,
            size_t p_size, size_t l, size_t m, double alpha, double beta,
            double gamma, double delta, size_t window);

/// Q^A_5: SEQ(S_1..S_5, KC(S'_1)...KC(S'_j)); the five positives are in
/// T_base, the l-th Kleene position accepts ranks
/// [base + (l-1)·band, base + l·band); band conditions from the
/// positives to S_5. `max_reps` bounds KC enumeration.
Pattern QA5(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            size_t band, double alpha, double beta, size_t window,
            size_t max_reps = 3);

/// Q^A_6: KC(SEQ(S_1..S_j)) with all positions in T_base and band
/// conditions from the first j-1 positions to S_j.
Pattern QA6(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            double alpha, double beta, size_t window, size_t max_reps = 3);

/// Q^A_7: SEQ(S_1..S_4, NEG(S'_1)...NEG(S'_j), S_5) — j negated
/// primitives between the 4th and 5th positives; positives in T_base,
/// the l-th negated position accepting ranks
/// [base + (l-1)·band, base + l·band); band conditions to S_5.
Pattern QA7(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            size_t band, double alpha, double beta, size_t window);

/// Q^A_8: SEQ(S_1..S_4, NEG(SEQ(S'_1..S'_j)), S_5) — one negated
/// sub-sequence of length j.
Pattern QA8(std::shared_ptr<const Schema> schema, size_t j, size_t base,
            size_t band, double alpha, double beta, size_t window);

/// Q^A_9: DISJ(SEQ_1(S_1..S_j), SEQ_2(S'_1..S'_j)) — SEQ_1 in T_k1,
/// SEQ_2 in T_k2/T_k1; band conditions within each branch.
Pattern QA9(std::shared_ptr<const Schema> schema, size_t j, size_t k1,
            size_t k2, double alpha, double beta, double gamma,
            double delta, size_t window);

/// Q^A_10: DISJ of j sequences of length 4; branch l accepts ranks
/// [(l-1)·band, l·band); per-branch band conditions to the branch's
/// 4th position with widening (α_1, α_2) per branch.
Pattern QA10(std::shared_ptr<const Schema> schema, size_t j, size_t band,
             double alpha1, double alpha2, size_t window);

/// Q^A_11: CONJ or SEQ of five positions with disjoint rank bands of
/// width `band` (position t accepts ranks [(t-1)·band, t·band)); band
/// conditions from the first four positions to S_5.
Pattern QA11(std::shared_ptr<const Schema> schema, bool conjunction,
             size_t band, double alpha, double beta, size_t window);

/// Q^A_12: DISJ of two Q^A_11-style sequences over the same rank bands
/// with different band widths (α..β and γ..δ).
Pattern QA12(std::shared_ptr<const Schema> schema, size_t band,
             double alpha, double beta, double gamma, double delta,
             size_t window);

}  // namespace workloads
}  // namespace dlacep

#endif  // DLACEP_WORKLOADS_QUERIES_A_H_
