// Scaled dataset recipes shared by benches and examples.
//
// The paper's experiments use a 689M-event NASDAQ dataset, windows of
// W = 150, and 2500+ symbols; this reproduction scales everything so the
// whole study runs on one CPU core (paper originals recorded in
// EXPERIMENTS.md). Symbol ranks scale 10:1 (T_100 → T_10).

#ifndef DLACEP_WORKLOADS_RECIPES_H_
#define DLACEP_WORKLOADS_RECIPES_H_

#include "dlacep/config.h"
#include "stream/generator.h"
#include "stream/stocksim.h"

namespace dlacep {
namespace workloads {

/// Symbol universe of the scaled stock simulation (paper: 2500+).
inline constexpr size_t kNumSymbols = 64;

/// Default scaled pattern window (paper: W = 150).
inline constexpr size_t kDefaultWindow = 30;

/// Training / evaluation stream lengths (paper: 20K-40K samples of 300
/// events each).
inline constexpr size_t kTrainEvents = 6000;
inline constexpr size_t kTestEvents = 4000;

/// The standard stock streams (same generator configuration, disjoint
/// seeds for train and test).
StockSimConfig StockConfig(size_t num_events, uint64_t seed);
EventStream StockTrainStream();
EventStream StockTestStream();

/// Synthetic streams for the Table 2 / Fig 13 experiments. A fresh
/// dataset per (window, pattern length) pair, as in the paper.
EventStream SyntheticStream(size_t num_events, uint64_t seed);

/// The shared scaled DLACEP configuration used by benches: hidden 12,
/// 1 BiLSTM layer (paper: 75 / 3), with the tuned training schedule.
DlacepConfig BenchConfig();

/// A faster configuration for the heaviest sweeps.
DlacepConfig FastBenchConfig();

}  // namespace workloads
}  // namespace dlacep

#endif  // DLACEP_WORKLOADS_RECIPES_H_
