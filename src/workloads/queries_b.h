// The synthetic query templates of Table 2 plus the Fig 13 length sweep.
// The synthetic schema names its 15 types A..O and carries one "vol"
// attribute sampled from N(0, 1).

#ifndef DLACEP_WORKLOADS_QUERIES_B_H_
#define DLACEP_WORKLOADS_QUERIES_B_H_

#include <memory>

#include "pattern/pattern.h"

namespace dlacep {
namespace workloads {

/// Q^B_1: SEQ(A,B,C,D,E,F) WHERE 0.85·X.vol < F.vol < 1.15·X.vol for
/// X ∈ {C,D}; 0.85·X.vol < E.vol < 1.15·X.vol for X ∈ {A,D};
/// 0.4·C.vol < F.vol. Largest amount of partial matches, few completed.
Pattern QB1(std::shared_ptr<const Schema> schema, size_t window,
            double lo = 0.85, double hi = 1.15);

/// Q^B_2: SEQ(A,B,C,D,E) WHERE bands D vs {A,B} and E vs {B,C}.
Pattern QB2(std::shared_ptr<const Schema> schema, size_t window,
            double lo = 0.85, double hi = 1.15);

/// Q^B_3: SEQ(A,B,C,D) WHERE bands D vs {A,B,C}.
Pattern QB3(std::shared_ptr<const Schema> schema, size_t window,
            double lo = 0.85, double hi = 1.15);

/// The Fig 13 family: SEQ of `length` ∈ {4,5,6} positions with the
/// Table 2 style band conditions (QB3 / QB2 / QB1 respectively).
Pattern QBOfLength(std::shared_ptr<const Schema> schema, size_t length,
                   size_t window, double lo = 0.85, double hi = 1.15);

}  // namespace workloads
}  // namespace dlacep

#endif  // DLACEP_WORKLOADS_QUERIES_B_H_
