#include "workloads/recipes.h"

namespace dlacep {
namespace workloads {

StockSimConfig StockConfig(size_t num_events, uint64_t seed) {
  StockSimConfig config;
  config.num_events = num_events;
  config.num_symbols = kNumSymbols;
  config.seed = seed;
  return config;
}

EventStream StockTrainStream() {
  return GenerateStockStream(StockConfig(kTrainEvents, 1001));
}

EventStream StockTestStream() {
  return GenerateStockStream(StockConfig(kTestEvents, 2002));
}

EventStream SyntheticStream(size_t num_events, uint64_t seed) {
  SyntheticConfig config;
  config.num_events = num_events;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DlacepConfig BenchConfig() {
  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 30;
  config.event_threshold = 0.35;
  return config;
}

DlacepConfig FastBenchConfig() {
  DlacepConfig config;
  config.network.hidden_dim = 10;
  config.network.num_layers = 1;
  config.train.max_epochs = 20;
  config.event_threshold = 0.35;
  return config;
}

}  // namespace workloads
}  // namespace dlacep
