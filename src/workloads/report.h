// Bench harness: runs a (pattern, train stream, test stream, filter)
// experiment and prints paper-style rows — throughput gain over ECEP,
// recall / F1 / FN%, filtering ratio, and the §3.2 partial-match
// counters.

#ifndef DLACEP_WORKLOADS_REPORT_H_
#define DLACEP_WORKLOADS_REPORT_H_

#include <functional>
#include <string>

#include "dlacep/pipeline.h"

namespace dlacep {
namespace workloads {

/// One measured row of an experiment.
struct ExperimentRow {
  std::string label;
  std::string filter;
  double throughput_gain = 0.0;
  double recall = 1.0;
  double precision = 1.0;
  double f1 = 1.0;
  double fn_pct = 0.0;
  double filtering_ratio = 0.0;
  uint64_t ecep_partial_matches = 0;
  uint64_t acep_partial_matches = 0;
  size_t exact_matches = 0;
  size_t emitted_matches = 0;
  double train_seconds = 0.0;
  double entity_f1 = 1.0;  ///< filter-network test F1 (events/windows)
  size_t train_epochs = 0;
};

/// Trains (when applicable) a DLACEP system on `train` and measures it
/// against ECEP on `test`.
ExperimentRow RunDlacepExperiment(const std::string& label,
                                  const Pattern& pattern,
                                  const EventStream& train,
                                  const EventStream& test, FilterKind kind,
                                  const DlacepConfig& config);

/// Measures a bare engine (for Fig 12's ECEP-optimization baselines):
/// gain is measured against the NFA ECEP baseline on the same stream.
ExperimentRow RunEngineExperiment(const std::string& label,
                                  const Pattern& pattern,
                                  const EventStream& test,
                                  EngineKind engine);

/// Table printing.
void PrintHeader(const std::string& title);
void PrintRow(const ExperimentRow& row);
void PrintFooter();

/// Observer invoked with every row passed to PrintRow, in addition to
/// the table output — the hook the benches' shared --json reporter uses
/// to capture measurements without changing any bench logic. Pass
/// nullptr to clear.
using RowObserver = std::function<void(const ExperimentRow&)>;
void SetRowObserver(RowObserver observer);

}  // namespace workloads
}  // namespace dlacep

#endif  // DLACEP_WORKLOADS_REPORT_H_
