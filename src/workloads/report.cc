#include "workloads/report.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace dlacep {
namespace workloads {

namespace {
RowObserver& Observer() {
  static RowObserver observer;
  return observer;
}
}  // namespace

void SetRowObserver(RowObserver observer) {
  Observer() = std::move(observer);
}

ExperimentRow RunDlacepExperiment(const std::string& label,
                                  const Pattern& pattern,
                                  const EventStream& train,
                                  const EventStream& test, FilterKind kind,
                                  const DlacepConfig& config) {
  ExperimentRow row;
  row.label = label;
  row.filter = FilterKindName(kind);

  BuiltDlacep built = BuildDlacep(pattern, train, kind, config);
  row.train_seconds = built.train_seconds;
  row.entity_f1 = built.test_metrics.f1();
  row.train_epochs = built.train_result.epochs_run;

  const ComparisonResult comparison =
      built.pipeline->CompareWithEcep(test);
  row.throughput_gain = comparison.throughput_gain();
  row.recall = comparison.quality.recall;
  row.precision = comparison.quality.precision;
  row.f1 = comparison.quality.f1;
  row.fn_pct = comparison.quality.false_negative_pct;
  row.filtering_ratio = comparison.dlacep.filtering_ratio();
  row.ecep_partial_matches = comparison.ecep_stats.partial_matches;
  row.acep_partial_matches = comparison.dlacep.cep_stats.partial_matches;
  row.exact_matches = comparison.exact_matches.size();
  row.emitted_matches = comparison.dlacep.matches.size();
  return row;
}

ExperimentRow RunEngineExperiment(const std::string& label,
                                  const Pattern& pattern,
                                  const EventStream& test,
                                  EngineKind engine) {
  ExperimentRow row;
  row.label = label;
  row.filter = EngineKindName(engine);

  const std::span<const Event> span(test.events().data(), test.size());

  auto baseline = CreateEngine(EngineKind::kNfa, pattern);
  DLACEP_CHECK_MSG(baseline.ok(), baseline.status().ToString());
  MatchSet exact;
  DLACEP_CHECK(baseline.value()->Evaluate(span, &exact).ok());
  const double baseline_seconds = baseline.value()->stats().elapsed_seconds;
  row.ecep_partial_matches = baseline.value()->stats().partial_matches;
  row.exact_matches = exact.size();

  auto candidate = CreateEngine(engine, pattern);
  DLACEP_CHECK_MSG(candidate.ok(), candidate.status().ToString());
  MatchSet matches;
  DLACEP_CHECK(candidate.value()->Evaluate(span, &matches).ok());
  row.acep_partial_matches = candidate.value()->stats().partial_matches;
  row.emitted_matches = matches.size();

  const MatchSetMetrics quality = CompareMatchSets(exact, matches);
  row.recall = quality.recall;
  row.precision = quality.precision;
  row.f1 = quality.f1;
  row.fn_pct = quality.false_negative_pct;
  row.throughput_gain =
      baseline_seconds /
      std::max(candidate.value()->stats().elapsed_seconds, 1e-9);
  return row;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf(
      "%-34s %-15s %10s %7s %7s %7s %9s %12s %12s %8s %8s\n",
      "experiment", "filter/engine", "tp-gain", "recall", "prec", "FN%",
      "filt%", "PM(ecep)", "PM(acep)", "matches", "trainF1");
}

void PrintRow(const ExperimentRow& row) {
  std::printf(
      "%-34s %-15s %10.2f %7.3f %7.3f %7.2f %8.1f%% %12llu %12llu "
      "%8zu %8.3f\n",
      row.label.c_str(), row.filter.c_str(), row.throughput_gain,
      row.recall, row.precision, row.fn_pct, row.filtering_ratio * 100.0,
      static_cast<unsigned long long>(row.ecep_partial_matches),
      static_cast<unsigned long long>(row.acep_partial_matches),
      row.emitted_matches, row.entity_f1);
  std::fflush(stdout);
  if (Observer()) Observer()(row);
}

void PrintFooter() { std::printf("\n"); }

}  // namespace workloads
}  // namespace dlacep
