#include "nn/infer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "obs/stages.h"
#include "obs/trace.h"

#if defined(DLACEP_HAVE_MVEC) && defined(__x86_64__)
#define DLACEP_VECTOR_CELL 1
#include <immintrin.h>
// glibc's AVX2 vector exp (libmvec, <= 4 ulp): five transcendentals per
// hidden unit per step make the scalar cell update as expensive as the
// GEMMs, so the fused cell processes four lanes per exp call where the
// CPU allows. Selected once at runtime; the scalar path remains the
// portable fallback.
extern "C" __m256d _ZGVdN4v_exp(__m256d);
extern "C" __m512d _ZGVeN8v_exp(__m512d);
#endif

namespace dlacep {

namespace {

inline double SigmoidScalar(double v) { return 1.0 / (1.0 + std::exp(-v)); }

#ifdef DLACEP_VECTOR_CELL

__attribute__((target("avx2,fma"))) inline __m256d VecSigmoid(__m256d v) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d e = _ZGVdN4v_exp(_mm256_sub_pd(_mm256_setzero_pd(), v));
  return _mm256_div_pd(one, _mm256_add_pd(one, e));
}

// tanh(x) = 1 - 2/(exp(2x) + 1); saturates to ±1 when exp over/underflows.
__attribute__((target("avx2,fma"))) inline __m256d VecTanh(__m256d v) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d e = _ZGVdN4v_exp(_mm256_mul_pd(two, v));
  return _mm256_sub_pd(one, _mm256_div_pd(two, _mm256_add_pd(e, one)));
}

/// One LSTM cell update over all H lanes: reads the fused gate row
/// g = [i|f|g|o] (1×4H pre-activations), advances c/h state in place,
/// and writes h_t to `orow`.
__attribute__((target("avx2,fma"))) void CellUpdateAvx2(const double* g,
                                                        size_t h, double* cs,
                                                        double* hs,
                                                        double* orow) {
  size_t j = 0;
  for (; j + 4 <= h; j += 4) {
    const __m256d i_gate = VecSigmoid(_mm256_loadu_pd(g + j));
    const __m256d f_gate = VecSigmoid(_mm256_loadu_pd(g + h + j));
    const __m256d g_gate = VecTanh(_mm256_loadu_pd(g + 2 * h + j));
    const __m256d o_gate = VecSigmoid(_mm256_loadu_pd(g + 3 * h + j));
    const __m256d c_t = _mm256_add_pd(
        _mm256_mul_pd(f_gate, _mm256_loadu_pd(cs + j)),
        _mm256_mul_pd(i_gate, g_gate));
    const __m256d h_t = _mm256_mul_pd(o_gate, VecTanh(c_t));
    _mm256_storeu_pd(cs + j, c_t);
    _mm256_storeu_pd(hs + j, h_t);
    _mm256_storeu_pd(orow + j, h_t);
  }
  for (; j < h; ++j) {
    const double i_gate = SigmoidScalar(g[j]);
    const double f_gate = SigmoidScalar(g[h + j]);
    const double g_gate = std::tanh(g[2 * h + j]);
    const double o_gate = SigmoidScalar(g[3 * h + j]);
    const double c_t = f_gate * cs[j] + i_gate * g_gate;
    const double h_t = o_gate * std::tanh(c_t);
    cs[j] = c_t;
    hs[j] = h_t;
    orow[j] = h_t;
  }
}

/// The recurrent gate update g += h_prev·Wh (1×H times H×4H) with the
/// 1×4H destination held in registers across the whole reduction: four
/// accumulators per 16-lane chunk, one broadcast + four FMAs per Wh
/// row segment. The generic GEMM path reloads the C row once per
/// k-block; at T calls per sequence that memory traffic dominates, so
/// the recurrence gets its own kernel.
__attribute__((target("avx2,fma"))) void RecurrentUpdateAvx2(
    const double* hs, const double* wh, double* g, size_t h, size_t n) {
  size_t j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    __m256d acc0 = _mm256_loadu_pd(g + j0);
    __m256d acc1 = _mm256_loadu_pd(g + j0 + 4);
    __m256d acc2 = _mm256_loadu_pd(g + j0 + 8);
    __m256d acc3 = _mm256_loadu_pd(g + j0 + 12);
    for (size_t k = 0; k < h; ++k) {
      const __m256d a = _mm256_set1_pd(hs[k]);
      const double* row = wh + k * n + j0;
      acc0 = _mm256_fmadd_pd(a, _mm256_loadu_pd(row), acc0);
      acc1 = _mm256_fmadd_pd(a, _mm256_loadu_pd(row + 4), acc1);
      acc2 = _mm256_fmadd_pd(a, _mm256_loadu_pd(row + 8), acc2);
      acc3 = _mm256_fmadd_pd(a, _mm256_loadu_pd(row + 12), acc3);
    }
    _mm256_storeu_pd(g + j0, acc0);
    _mm256_storeu_pd(g + j0 + 4, acc1);
    _mm256_storeu_pd(g + j0 + 8, acc2);
    _mm256_storeu_pd(g + j0 + 12, acc3);
  }
  for (; j0 + 4 <= n; j0 += 4) {
    __m256d acc = _mm256_loadu_pd(g + j0);
    for (size_t k = 0; k < h; ++k) {
      acc = _mm256_fmadd_pd(_mm256_set1_pd(hs[k]),
                            _mm256_loadu_pd(wh + k * n + j0), acc);
    }
    _mm256_storeu_pd(g + j0, acc);
  }
  for (; j0 < n; ++j0) {
    double sum = g[j0];
    for (size_t k = 0; k < h; ++k) sum += hs[k] * wh[k * n + j0];
    g[j0] = sum;
  }
}

// 512-bit twins of the two kernels above: same per-element operation
// order (the k reduction stays serial), twice the lanes and half the
// exp calls. Worth a separate clone pair because libmvec's zmm exp is
// a distinct symbol and can't be reached from the ymm code path.
__attribute__((target("avx512f"))) inline __m512d VecSigmoid512(__m512d v) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d e = _ZGVeN8v_exp(_mm512_sub_pd(_mm512_setzero_pd(), v));
  return _mm512_div_pd(one, _mm512_add_pd(one, e));
}

__attribute__((target("avx512f"))) inline __m512d VecTanh512(__m512d v) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d two = _mm512_set1_pd(2.0);
  const __m512d e = _ZGVeN8v_exp(_mm512_mul_pd(two, v));
  return _mm512_sub_pd(one, _mm512_div_pd(two, _mm512_add_pd(e, one)));
}

__attribute__((target("avx512f"))) void CellUpdateAvx512(const double* g,
                                                         size_t h, double* cs,
                                                         double* hs,
                                                         double* orow) {
  size_t j = 0;
  for (; j + 8 <= h; j += 8) {
    const __m512d i_gate = VecSigmoid512(_mm512_loadu_pd(g + j));
    const __m512d f_gate = VecSigmoid512(_mm512_loadu_pd(g + h + j));
    const __m512d g_gate = VecTanh512(_mm512_loadu_pd(g + 2 * h + j));
    const __m512d o_gate = VecSigmoid512(_mm512_loadu_pd(g + 3 * h + j));
    const __m512d c_t = _mm512_add_pd(
        _mm512_mul_pd(f_gate, _mm512_loadu_pd(cs + j)),
        _mm512_mul_pd(i_gate, g_gate));
    const __m512d h_t = _mm512_mul_pd(o_gate, VecTanh512(c_t));
    _mm512_storeu_pd(cs + j, c_t);
    _mm512_storeu_pd(hs + j, h_t);
    _mm512_storeu_pd(orow + j, h_t);
  }
  for (; j < h; ++j) {
    const double i_gate = SigmoidScalar(g[j]);
    const double f_gate = SigmoidScalar(g[h + j]);
    const double g_gate = std::tanh(g[2 * h + j]);
    const double o_gate = SigmoidScalar(g[3 * h + j]);
    const double c_t = f_gate * cs[j] + i_gate * g_gate;
    const double h_t = o_gate * std::tanh(c_t);
    cs[j] = c_t;
    hs[j] = h_t;
    orow[j] = h_t;
  }
}

__attribute__((target("avx512f"))) void RecurrentUpdateAvx512(
    const double* hs, const double* wh, double* g, size_t h, size_t n) {
  size_t j0 = 0;
  for (; j0 + 32 <= n; j0 += 32) {
    __m512d acc0 = _mm512_loadu_pd(g + j0);
    __m512d acc1 = _mm512_loadu_pd(g + j0 + 8);
    __m512d acc2 = _mm512_loadu_pd(g + j0 + 16);
    __m512d acc3 = _mm512_loadu_pd(g + j0 + 24);
    for (size_t k = 0; k < h; ++k) {
      const __m512d a = _mm512_set1_pd(hs[k]);
      const double* row = wh + k * n + j0;
      acc0 = _mm512_fmadd_pd(a, _mm512_loadu_pd(row), acc0);
      acc1 = _mm512_fmadd_pd(a, _mm512_loadu_pd(row + 8), acc1);
      acc2 = _mm512_fmadd_pd(a, _mm512_loadu_pd(row + 16), acc2);
      acc3 = _mm512_fmadd_pd(a, _mm512_loadu_pd(row + 24), acc3);
    }
    _mm512_storeu_pd(g + j0, acc0);
    _mm512_storeu_pd(g + j0 + 8, acc1);
    _mm512_storeu_pd(g + j0 + 16, acc2);
    _mm512_storeu_pd(g + j0 + 24, acc3);
  }
  for (; j0 + 8 <= n; j0 += 8) {
    __m512d acc = _mm512_loadu_pd(g + j0);
    for (size_t k = 0; k < h; ++k) {
      acc = _mm512_fmadd_pd(_mm512_set1_pd(hs[k]),
                            _mm512_loadu_pd(wh + k * n + j0), acc);
    }
    _mm512_storeu_pd(g + j0, acc);
  }
  for (; j0 < n; ++j0) {
    double sum = g[j0];
    for (size_t k = 0; k < h; ++k) sum += hs[k] * wh[k * n + j0];
    g[j0] = sum;
  }
}

bool CpuHasAvx2Fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

bool CpuHasAvx512() {
  static const bool ok = __builtin_cpu_supports("avx512f") && CpuHasAvx2Fma();
  return ok;
}

#endif  // DLACEP_VECTOR_CELL

void CellUpdateScalar(const double* g, size_t h, double* cs, double* hs,
                      double* orow) {
  for (size_t j = 0; j < h; ++j) {
    const double i_gate = SigmoidScalar(g[j]);
    const double f_gate = SigmoidScalar(g[h + j]);
    const double g_gate = std::tanh(g[2 * h + j]);
    const double o_gate = SigmoidScalar(g[3 * h + j]);
    const double c_t = f_gate * cs[j] + i_gate * g_gate;
    const double h_t = o_gate * std::tanh(c_t);
    cs[j] = c_t;
    hs[j] = h_t;
    orow[j] = h_t;
  }
}

using CellUpdateFn = void (*)(const double*, size_t, double*, double*,
                              double*);

CellUpdateFn PickCellUpdate() {
#ifdef DLACEP_VECTOR_CELL
  if (CpuHasAvx512()) return CellUpdateAvx512;
  if (CpuHasAvx2Fma()) return CellUpdateAvx2;
#endif
  return CellUpdateScalar;
}

#ifdef DLACEP_VECTOR_CELL
using RecurrentFn = void (*)(const double*, const double*, double*, size_t,
                             size_t);

RecurrentFn PickRecurrentUpdate() {
  if (CpuHasAvx512()) return RecurrentUpdateAvx512;
  if (CpuHasAvx2Fma()) return RecurrentUpdateAvx2;
  return nullptr;  // fall back to the shared GEMM kernel
}
#endif

Matrix Transposed(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      out(j, i) = m(i, j);
    }
  }
  return out;
}

}  // namespace

namespace {

// Process-wide fault hook (fault-injection harness only). Both words are
// published/consumed with acquire/release so a hook installed on one
// thread is seen consistently by worker-thread Reset() calls.
std::atomic<bool (*)(void*)> g_fault_hook{nullptr};
std::atomic<void*> g_fault_hook_ctx{nullptr};

}  // namespace

void SetInferenceFaultHook(bool (*hook)(void* ctx), void* ctx) {
  g_fault_hook_ctx.store(ctx, std::memory_order_release);
  g_fault_hook.store(hook, std::memory_order_release);
}

void InferenceContext::Reset() {
  next_ = 0;
  poison_ = false;
  if (auto* hook = g_fault_hook.load(std::memory_order_acquire)) {
    poison_ = hook(g_fault_hook_ctx.load(std::memory_order_acquire));
  }
}

Matrix& InferenceContext::Acquire(size_t rows, size_t cols) {
  if (next_ == pool_.size()) pool_.emplace_back();
  Matrix& m = pool_[next_++];
  m.Resize(rows, cols);
  return m;
}

void DenseInfer::Forward(const Matrix& x, Matrix* out) const {
  MatMulTransBInto(x, wt, out, /*accumulate=*/false);
  const size_t n = out->cols();
  const double* bias = b.data();
  for (size_t i = 0; i < out->rows(); ++i) {
    double* row = out->data() + i * n;
    for (size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
}

void LstmInfer::ForwardInto(InferenceContext* ctx, const Matrix& x,
                            bool reverse, Matrix* out, size_t col) const {
  const size_t t_steps = x.rows();
  DLACEP_CHECK_GT(t_steps, 0u);
  DLACEP_CHECK_EQ(x.cols(), in_dim);
  DLACEP_CHECK_EQ(out->rows(), t_steps);
  DLACEP_CHECK_LE(col + hidden, out->cols());
  const size_t h = hidden;

  // Input projection for the whole sequence in one blocked GEMM — the
  // recurrence only depends on it row by row, so there is no reason to
  // pay matrix-vector arithmetic intensity T times.
  Matrix& xproj = ctx->Acquire(t_steps, 4 * h);
  {
    obs::TraceSpan gemm_span(obs::StageNnGemm());
    MatMulInto(x, wx, &xproj, /*accumulate=*/false);
  }

  Matrix& gates = ctx->Acquire(1, 4 * h);
  Matrix& h_state = ctx->Acquire(1, h);
  Matrix& c_state = ctx->Acquire(1, h);
  h_state.Fill(0.0);
  c_state.Fill(0.0);

  double* g = gates.data();
  double* hs = h_state.data();
  double* cs = c_state.data();
  const double* bias = b.data();
  const size_t out_stride = out->cols();
  const CellUpdateFn cell_update = PickCellUpdate();
#ifdef DLACEP_VECTOR_CELL
  const RecurrentFn recurrent_update = PickRecurrentUpdate();
#endif

  // One span over the whole recurrence, not per step: the per-step cell
  // work is far below clock resolution and a clock read per step would
  // dominate it.
  obs::TraceSpan cell_span(obs::StageNnCell());
  for (size_t step = 0; step < t_steps; ++step) {
    const size_t t = reverse ? t_steps - 1 - step : step;
    // One fused pass fills all four gates: g = x_t·Wx (precomputed) +
    // h·Wh + b. The recurrent term is a 1×H · H×4H product accumulated
    // in place — an axpy over Wh rows, vectorized across the 4H gate
    // lanes, with a register-resident destination where the CPU allows.
    const double* xrow = xproj.data() + t * 4 * h;
    for (size_t gi = 0; gi < 4 * h; ++gi) g[gi] = xrow[gi] + bias[gi];
#ifdef DLACEP_VECTOR_CELL
    if (recurrent_update != nullptr) {
      recurrent_update(hs, wh.data(), g, h, 4 * h);
    } else {
      MatMulInto(h_state, wh, &gates, /*accumulate=*/true);
    }
#else
    MatMulInto(h_state, wh, &gates, /*accumulate=*/true);
#endif
    cell_update(g, h, cs, hs, out->data() + t * out_stride + col);
  }
}

void LstmInfer::ForwardBatchInto(InferenceContext* ctx, const Matrix& x_all,
                                 std::span<const size_t> offsets, bool reverse,
                                 Matrix* out_all, size_t col) const {
  DLACEP_CHECK_GE(offsets.size(), 2u);
  const size_t batch = offsets.size() - 1;
  const size_t total = offsets[batch];
  DLACEP_CHECK_EQ(offsets[0], 0u);
  DLACEP_CHECK_EQ(x_all.rows(), total);
  DLACEP_CHECK_EQ(x_all.cols(), in_dim);
  DLACEP_CHECK_EQ(out_all->rows(), total);
  DLACEP_CHECK_LE(col + hidden, out_all->cols());
  const size_t h = hidden;

  // One input projection for every window in the batch: ΣT rows through
  // the register-tiled GEMM instead of B matrix-vector-shaped calls.
  Matrix& xproj = ctx->Acquire(total, 4 * h);
  {
    obs::TraceSpan gemm_span(obs::StageNnGemmBatched());
    MatMulInto(x_all, wx, &xproj, /*accumulate=*/false);
  }

#ifdef DLACEP_VECTOR_CELL
  // With the specialized recurrent kernel available, the lockstep GEMM
  // below loses: its register-resident 1×4H destination beats a
  // B×H · H×4H MatMulInto at these hidden sizes, and lockstep pays
  // dead-row zero fills plus strided xproj walks on top. Run the batch
  // window-major instead — the exact per-step recurrence arithmetic of
  // ForwardInto, still fed by the one hoisted ΣT×in projection GEMM
  // above, with weights and scratch hot across all B windows. (Only
  // the projection rows can differ from per-window, by GEMM tile-edge
  // rounding — within the tested 1e-9 envelope.)
  if (const RecurrentFn recurrent_fn = PickRecurrentUpdate()) {
    const double* bias_row = b.data();
    const size_t out_cols = out_all->cols();
    const CellUpdateFn cell_fn = PickCellUpdate();
    Matrix& gates1 = ctx->Acquire(1, 4 * h);
    Matrix& h1 = ctx->Acquire(1, h);
    Matrix& c1 = ctx->Acquire(1, h);
    double* g = gates1.data();
    double* hs = h1.data();
    double* cs = c1.data();
    obs::TraceSpan cell_span(obs::StageNnCell());
    for (size_t w = 0; w < batch; ++w) {
      DLACEP_CHECK_LT(offsets[w], offsets[w + 1]);  // no empty windows
      const size_t t_len = offsets[w + 1] - offsets[w];
      h1.Fill(0.0);
      c1.Fill(0.0);
      for (size_t step = 0; step < t_len; ++step) {
        const size_t t = reverse ? t_len - 1 - step : step;
        const double* xrow = xproj.data() + (offsets[w] + t) * 4 * h;
        for (size_t gi = 0; gi < 4 * h; ++gi) g[gi] = xrow[gi] + bias_row[gi];
        recurrent_fn(hs, wh.data(), g, h, 4 * h);
        cell_fn(g, h, cs, hs,
                out_all->data() + (offsets[w] + t) * out_cols + col);
      }
    }
    return;
  }
#endif

  // Lockstep recurrence: one B×H hidden/cell state pair advanced for
  // all windows at once, so the recurrent term becomes a single
  // B×H · H×4H GEMM per time step — matrix-matrix work even though
  // each window alone would only offer a 1×H row.
  Matrix& gates = ctx->Acquire(batch, 4 * h);
  Matrix& h_state = ctx->Acquire(batch, h);
  Matrix& c_state = ctx->Acquire(batch, h);
  h_state.Fill(0.0);
  c_state.Fill(0.0);

  size_t t_max = 0;
  for (size_t w = 0; w < batch; ++w) {
    DLACEP_CHECK_LT(offsets[w], offsets[w + 1]);  // no empty windows
    t_max = std::max(t_max, offsets[w + 1] - offsets[w]);
  }

  const double* bias = b.data();
  const size_t out_stride = out_all->cols();
  const CellUpdateFn cell_update = PickCellUpdate();

  obs::TraceSpan cell_span(obs::StageNnCell());
  for (size_t step = 0; step < t_max; ++step) {
    // Fill the fused gate rows: an active window gets bias + its
    // precomputed projection row; a window already past its last step
    // gets zeros so the shared recurrent GEMM below stays finite (the
    // garbage it accumulates there is never read — the cell update for
    // that row is skipped, leaving its h/c state untouched).
    for (size_t w = 0; w < batch; ++w) {
      double* g = gates.data() + w * 4 * h;
      const size_t t_len = offsets[w + 1] - offsets[w];
      if (step >= t_len) {
        for (size_t gi = 0; gi < 4 * h; ++gi) g[gi] = 0.0;
        continue;
      }
      const size_t t = reverse ? t_len - 1 - step : step;
      const double* xrow = xproj.data() + (offsets[w] + t) * 4 * h;
      for (size_t gi = 0; gi < 4 * h; ++gi) g[gi] = xrow[gi] + bias[gi];
    }
    MatMulInto(h_state, wh, &gates, /*accumulate=*/true);
    for (size_t w = 0; w < batch; ++w) {
      const size_t t_len = offsets[w + 1] - offsets[w];
      if (step >= t_len) continue;
      const size_t t = reverse ? t_len - 1 - step : step;
      cell_update(gates.data() + w * 4 * h, h, c_state.data() + w * h,
                  h_state.data() + w * h,
                  out_all->data() + (offsets[w] + t) * out_stride + col);
    }
  }
}

void BiLstmInfer::Forward(InferenceContext* ctx, const Matrix& x,
                          Matrix* out) const {
  fwd.ForwardInto(ctx, x, /*reverse=*/false, out, 0);
  bwd.ForwardInto(ctx, x, /*reverse=*/true, out, fwd.hidden);
}

void BiLstmInfer::ForwardBatch(InferenceContext* ctx, const Matrix& x_all,
                               std::span<const size_t> offsets,
                               Matrix* out_all) const {
  fwd.ForwardBatchInto(ctx, x_all, offsets, /*reverse=*/false, out_all, 0);
  bwd.ForwardBatchInto(ctx, x_all, offsets, /*reverse=*/true, out_all,
                       fwd.hidden);
}

const Matrix& StackedBiLstmInfer::Forward(InferenceContext* ctx,
                                          const Matrix& x) const {
  DLACEP_CHECK(!layers.empty());
  const Matrix* cur = &x;
  Matrix* last = nullptr;
  for (const BiLstmInfer& layer : layers) {
    Matrix& out = ctx->Acquire(cur->rows(), 2 * layer.fwd.hidden);
    layer.Forward(ctx, *cur, &out);
    cur = &out;
    last = &out;
  }
  if (ctx->poisoned()) {
    // Fault injection: a poisoned pass leaves with a blown-up trunk
    // activation, which the heads/CRF propagate to non-finite scores.
    last->Fill(std::numeric_limits<double>::quiet_NaN());
  }
  return *last;
}

const Matrix& StackedBiLstmInfer::ForwardBatch(
    InferenceContext* ctx, const Matrix& x_all,
    std::span<const size_t> offsets) const {
  DLACEP_CHECK(!layers.empty());
  obs::NnBatchWindows()->Observe(static_cast<double>(offsets.size() - 1));
  const Matrix* cur = &x_all;
  Matrix* last = nullptr;
  for (const BiLstmInfer& layer : layers) {
    Matrix& out = ctx->Acquire(cur->rows(), 2 * layer.fwd.hidden);
    layer.ForwardBatch(ctx, *cur, offsets, &out);
    cur = &out;
    last = &out;
  }
  if (ctx->poisoned()) {
    // A poisoned pass invalidates the whole batch: every window in it
    // gets a NaN trunk activation and will be marked kInvalidMark.
    last->Fill(std::numeric_limits<double>::quiet_NaN());
  }
  return *last;
}

const Matrix& TcnInfer::Forward(InferenceContext* ctx,
                                const Matrix& x) const {
  DLACEP_CHECK(!layers.empty());
  const ptrdiff_t center = static_cast<ptrdiff_t>(kernel / 2);
  const size_t t_steps = x.rows();
  const Matrix* cur = &x;
  Matrix* last = nullptr;
  size_t dilation = 1;
  for (const Layer& layer : layers) {
    const size_t d_in = cur->cols();
    const size_t d_out = layer.b.cols();
    DLACEP_CHECK_EQ(layer.wt.cols(), kernel * d_in);
    Matrix& out = ctx->Acquire(t_steps, d_out);
    const double* bias = layer.b.data();
    for (size_t t = 0; t < t_steps; ++t) {
      double* orow = out.data() + t * d_out;
      for (size_t o = 0; o < d_out; ++o) orow[o] = bias[o];
      for (size_t k = 0; k < kernel; ++k) {
        const ptrdiff_t src =
            static_cast<ptrdiff_t>(t) +
            (static_cast<ptrdiff_t>(k) - center) *
                static_cast<ptrdiff_t>(dilation);
        if (src < 0 || src >= static_cast<ptrdiff_t>(t_steps)) continue;
        const double* xrow =
            cur->data() + static_cast<size_t>(src) * d_in;
        for (size_t o = 0; o < d_out; ++o) {
          const double* w = layer.wt.data() + o * (kernel * d_in) + k * d_in;
          double sum = 0.0;
          for (size_t i = 0; i < d_in; ++i) sum += xrow[i] * w[i];
          orow[o] += sum;
        }
      }
      for (size_t o = 0; o < d_out; ++o) orow[o] = std::max(0.0, orow[o]);
    }
    cur = &out;
    last = &out;
    dilation *= 2;
  }
  if (ctx->poisoned()) {
    last->Fill(std::numeric_limits<double>::quiet_NaN());
  }
  return *last;
}

const Matrix& TcnInfer::ForwardBatch(InferenceContext* ctx,
                                     const Matrix& x_all,
                                     std::span<const size_t> offsets) const {
  DLACEP_CHECK(!layers.empty());
  const size_t batch = offsets.size() - 1;
  DLACEP_CHECK_GE(offsets.size(), 2u);
  DLACEP_CHECK_EQ(offsets[0], 0u);
  DLACEP_CHECK_EQ(x_all.rows(), offsets[batch]);
  obs::NnBatchWindows()->Observe(static_cast<double>(batch));
  // Loop-level fusion: the convolution is position-local, so the batch
  // win is keeping each layer's weights cache-warm across all B windows
  // in one pass. Boundary clamps stay window-local — row (offsets[w]+t)
  // below runs exactly the per-window Forward arithmetic for step t of
  // window w, so the stacked result matches it bit for bit.
  const ptrdiff_t center = static_cast<ptrdiff_t>(kernel / 2);
  const Matrix* cur = &x_all;
  Matrix* last = nullptr;
  size_t dilation = 1;
  for (const Layer& layer : layers) {
    const size_t d_in = cur->cols();
    const size_t d_out = layer.b.cols();
    DLACEP_CHECK_EQ(layer.wt.cols(), kernel * d_in);
    Matrix& out = ctx->Acquire(x_all.rows(), d_out);
    const double* bias = layer.b.data();
    for (size_t w = 0; w < batch; ++w) {
      const size_t begin = offsets[w];
      const size_t t_steps = offsets[w + 1] - begin;
      for (size_t t = 0; t < t_steps; ++t) {
        double* orow = out.data() + (begin + t) * d_out;
        for (size_t o = 0; o < d_out; ++o) orow[o] = bias[o];
        for (size_t k = 0; k < kernel; ++k) {
          const ptrdiff_t src =
              static_cast<ptrdiff_t>(t) +
              (static_cast<ptrdiff_t>(k) - center) *
                  static_cast<ptrdiff_t>(dilation);
          if (src < 0 || src >= static_cast<ptrdiff_t>(t_steps)) continue;
          const double* xrow =
              cur->data() + (begin + static_cast<size_t>(src)) * d_in;
          for (size_t o = 0; o < d_out; ++o) {
            const double* wrow =
                layer.wt.data() + o * (kernel * d_in) + k * d_in;
            double sum = 0.0;
            for (size_t i = 0; i < d_in; ++i) sum += xrow[i] * wrow[i];
            orow[o] += sum;
          }
        }
        for (size_t o = 0; o < d_out; ++o) orow[o] = std::max(0.0, orow[o]);
      }
    }
    cur = &out;
    last = &out;
    dilation *= 2;
  }
  if (ctx->poisoned()) {
    last->Fill(std::numeric_limits<double>::quiet_NaN());
  }
  return *last;
}

DenseInfer Freeze(const Dense& layer) {
  DenseInfer frozen;
  frozen.wt = Transposed(layer.weight());
  frozen.b = layer.bias();
  return frozen;
}

LstmInfer Freeze(const Lstm& layer) {
  LstmInfer frozen;
  frozen.in_dim = layer.wx().rows();
  frozen.hidden = layer.hidden_dim();
  frozen.wx = layer.wx();
  frozen.wh = layer.wh();
  frozen.b = layer.bias();
  return frozen;
}

BiLstmInfer Freeze(const BiLstm& layer) {
  BiLstmInfer frozen;
  frozen.fwd = Freeze(layer.fwd());
  frozen.bwd = Freeze(layer.bwd());
  return frozen;
}

StackedBiLstmInfer Freeze(const StackedBiLstm& layer) {
  StackedBiLstmInfer frozen;
  frozen.layers.reserve(layer.num_layers());
  for (size_t i = 0; i < layer.num_layers(); ++i) {
    frozen.layers.push_back(Freeze(layer.layer(i)));
  }
  return frozen;
}

TcnInfer Freeze(const Tcn& layer) {
  TcnInfer frozen;
  frozen.kernel = layer.kernel();
  frozen.layers.reserve(layer.num_layers());
  for (size_t i = 0; i < layer.num_layers(); ++i) {
    TcnInfer::Layer l;
    l.wt = Transposed(layer.weight(i));
    l.b = layer.bias(i);
    frozen.layers.push_back(std::move(l));
  }
  return frozen;
}

}  // namespace dlacep
