#include "nn/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dlacep {

GradCheckResult CheckGradients(
    const std::vector<Parameter*>& params,
    const std::function<double()>& loss_fn,
    const std::function<void()>& loss_and_backward, double epsilon,
    double tolerance) {
  GradCheckResult result;

  for (Parameter* p : params) p->ZeroGrad();
  loss_and_backward();

  for (Parameter* p : params) {
    for (size_t i = 0; i < p->value.rows(); ++i) {
      for (size_t j = 0; j < p->value.cols(); ++j) {
        const double original = p->value(i, j);
        p->value(i, j) = original + epsilon;
        const double plus = loss_fn();
        p->value(i, j) = original - epsilon;
        const double minus = loss_fn();
        p->value(i, j) = original;

        const double numeric = (plus - minus) / (2.0 * epsilon);
        const double analytic = p->grad(i, j);
        const double abs_err = std::abs(numeric - analytic);
        const double denom =
            std::max({std::abs(numeric), std::abs(analytic), 1.0});
        const double rel_err = abs_err / denom;
        if (rel_err > result.worst_rel_error) {
          result.worst_rel_error = rel_err;
          result.worst_abs_error = abs_err;
          result.worst_location =
              StrFormat("%s(%zu,%zu): analytic=%g numeric=%g",
                        p->name.c_str(), i, j, analytic, numeric);
        }
      }
    }
  }
  result.ok = result.worst_rel_error <= tolerance;
  return result;
}

}  // namespace dlacep
