#include "nn/trainer.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace dlacep {

TrainResult Train(SequenceModel* model, const std::vector<Sample>& samples,
                  const TrainConfig& config) {
  DLACEP_CHECK(model != nullptr);
  DLACEP_CHECK(!samples.empty());
  TrainResult result;

  std::vector<Parameter*> params = model->Params();
  for (Parameter* p : params) p->ZeroGrad();
  Adam optimizer(params, config.lr_initial);
  const LrSchedule schedule(config.lr_initial, config.lr_final,
                            config.max_epochs);
  Rng rng(config.shuffle_seed);

  double reference_loss = std::numeric_limits<double>::infinity();
  size_t stable_epochs = 0;

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    optimizer.set_learning_rate(schedule.At(epoch));
    const std::vector<size_t> order = rng.Permutation(samples.size());

    double epoch_loss = 0.0;
    size_t in_batch = 0;
    for (size_t k = 0; k < order.size(); ++k) {
      const Sample& sample = samples[order[k]];
      Tape tape;
      Var loss = model->Loss(&tape, sample);
      epoch_loss += loss.value()(0, 0);
      tape.Backward(loss);
      ++in_batch;
      if (in_batch == config.batch_size || k + 1 == order.size()) {
        // Mean gradient over the batch, then clip — keeps the step scale
        // independent of the batch size.
        const double inv = 1.0 / static_cast<double>(in_batch);
        for (Parameter* p : params) {
          for (size_t i = 0; i < p->grad.rows(); ++i) {
            for (size_t j = 0; j < p->grad.cols(); ++j) {
              p->grad(i, j) *= inv;
            }
          }
        }
        ClipGradNorm(params, config.grad_clip);
        optimizer.Step();
        in_batch = 0;
      }
    }
    epoch_loss /= static_cast<double>(samples.size());
    result.loss_history.push_back(epoch_loss);
    result.final_loss = epoch_loss;
    result.epochs_run = epoch + 1;

    if (config.verbose) {
      DLACEP_LOG(Info) << "epoch " << epoch << " loss " << epoch_loss
                       << " lr " << optimizer.learning_rate();
    }
    if (config.on_epoch && !config.on_epoch(epoch, epoch_loss)) {
      break;
    }

    // Convergence: the loss has stayed inside a band of width
    // `convergence_band` around the reference for N consecutive epochs.
    if (std::abs(epoch_loss - reference_loss) <= config.convergence_band) {
      ++stable_epochs;
      if (stable_epochs >= config.convergence_epochs) {
        result.converged = true;
        break;
      }
    } else {
      reference_loss = epoch_loss;
      stable_epochs = 0;
    }
  }
  return result;
}

}  // namespace dlacep
