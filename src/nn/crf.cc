#include "nn/crf.h"

#include <algorithm>
#include <cmath>

namespace dlacep {

namespace {

// Numerically stable log(Σ exp(v_i)) over a raw vector.
double LogSumExp(const std::vector<double>& v) {
  double m = v[0];
  for (double x : v) m = std::max(m, x);
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - m);
  return m + std::log(sum);
}

}  // namespace

Matrix ReverseRows(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      out(m.rows() - 1 - i, j) = m(i, j);
    }
  }
  return out;
}

LinearChainCrf::LinearChainCrf(std::string name, size_t num_tags, Rng* rng)
    : num_tags_(num_tags),
      transitions_(name + ".trans",
                   Matrix::Randn(num_tags, num_tags, 0.1, rng)),
      start_(name + ".start", Matrix::Randn(1, num_tags, 0.1, rng)),
      end_(name + ".end", Matrix::Randn(1, num_tags, 0.1, rng)) {}

Var LinearChainCrf::Nll(Tape* tape, Var emissions,
                        const std::vector<int>& labels) {
  const size_t t_steps = emissions.value().rows();
  DLACEP_CHECK_EQ(emissions.value().cols(), num_tags_);
  DLACEP_CHECK_EQ(labels.size(), t_steps);

  Var trans = tape->Param(&transitions_);
  Var start = tape->Param(&start_);
  Var end = tape->Param(&end_);

  // Gold-path score.
  std::vector<std::pair<size_t, size_t>> emit_picks;
  emit_picks.reserve(t_steps);
  for (size_t t = 0; t < t_steps; ++t) {
    DLACEP_CHECK_GE(labels[t], 0);
    DLACEP_CHECK_LT(static_cast<size_t>(labels[t]), num_tags_);
    emit_picks.emplace_back(t, static_cast<size_t>(labels[t]));
  }
  Var score = ops::PickSum(emissions, std::move(emit_picks));
  if (t_steps > 1) {
    std::vector<std::pair<size_t, size_t>> trans_picks;
    trans_picks.reserve(t_steps - 1);
    for (size_t t = 1; t < t_steps; ++t) {
      trans_picks.emplace_back(static_cast<size_t>(labels[t - 1]),
                               static_cast<size_t>(labels[t]));
    }
    score = ops::Add(score, ops::PickSum(trans, std::move(trans_picks)));
  }
  score = ops::Add(score,
                   ops::PickSum(start, {{0, static_cast<size_t>(labels[0])}}));
  score = ops::Add(
      score,
      ops::PickSum(end, {{0, static_cast<size_t>(labels[t_steps - 1])}}));

  // Partition function by the forward algorithm (on the tape).
  Var alpha = ops::Add(ops::SliceRows(emissions, 0, 1), start);  // 1×K
  for (size_t t = 1; t < t_steps; ++t) {
    // M[i][j] = alpha[i] + trans[i][j]; next alpha[j] = LSE_i M[i][j].
    Var m = ops::AddBroadcastCol(trans, ops::Transpose(alpha));
    alpha = ops::Add(ops::LogSumExpOverRows(m),
                     ops::SliceRows(emissions, t, 1));
  }
  Var log_z = ops::LogSumExpOverCols(ops::Add(alpha, end));  // 1×1

  return ops::Sub(log_z, score);
}

std::vector<int> LinearChainCrf::Viterbi(const Matrix& emissions) const {
  const size_t t_steps = emissions.rows();
  const size_t k = num_tags_;
  DLACEP_CHECK_EQ(emissions.cols(), k);
  DLACEP_CHECK_GT(t_steps, 0u);

  std::vector<std::vector<double>> delta(t_steps,
                                         std::vector<double>(k, 0.0));
  std::vector<std::vector<int>> psi(t_steps, std::vector<int>(k, 0));
  for (size_t j = 0; j < k; ++j) {
    delta[0][j] = start_.value(0, j) + emissions(0, j);
  }
  for (size_t t = 1; t < t_steps; ++t) {
    for (size_t j = 0; j < k; ++j) {
      double best = delta[t - 1][0] + transitions_.value(0, j);
      int best_i = 0;
      for (size_t i = 1; i < k; ++i) {
        const double cand = delta[t - 1][i] + transitions_.value(i, j);
        if (cand > best) {
          best = cand;
          best_i = static_cast<int>(i);
        }
      }
      delta[t][j] = best + emissions(t, j);
      psi[t][j] = best_i;
    }
  }
  size_t last = 0;
  double best = delta[t_steps - 1][0] + end_.value(0, 0);
  for (size_t j = 1; j < k; ++j) {
    const double cand = delta[t_steps - 1][j] + end_.value(0, j);
    if (cand > best) {
      best = cand;
      last = j;
    }
  }
  std::vector<int> labels(t_steps);
  labels[t_steps - 1] = static_cast<int>(last);
  for (size_t t = t_steps - 1; t > 0; --t) {
    labels[t - 1] = psi[t][static_cast<size_t>(labels[t])];
  }
  return labels;
}

Matrix LinearChainCrf::Marginals(const Matrix& emissions) const {
  const size_t t_steps = emissions.rows();
  const size_t k = num_tags_;
  DLACEP_CHECK_EQ(emissions.cols(), k);

  std::vector<std::vector<double>> alpha(t_steps, std::vector<double>(k));
  std::vector<std::vector<double>> beta(t_steps, std::vector<double>(k));
  for (size_t j = 0; j < k; ++j) {
    alpha[0][j] = start_.value(0, j) + emissions(0, j);
    beta[t_steps - 1][j] = end_.value(0, j);
  }
  std::vector<double> scratch(k);
  for (size_t t = 1; t < t_steps; ++t) {
    for (size_t j = 0; j < k; ++j) {
      for (size_t i = 0; i < k; ++i) {
        scratch[i] = alpha[t - 1][i] + transitions_.value(i, j);
      }
      alpha[t][j] = LogSumExp(scratch) + emissions(t, j);
    }
  }
  for (size_t t = t_steps - 1; t > 0; --t) {
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        scratch[j] = transitions_.value(i, j) + emissions(t, j) +
                     beta[t][j];
      }
      beta[t - 1][i] = LogSumExp(scratch);
    }
  }
  for (size_t j = 0; j < k; ++j) {
    scratch[j] = alpha[t_steps - 1][j] + end_.value(0, j);
  }
  const double log_z = LogSumExp(scratch);

  Matrix marginals(t_steps, k);
  for (size_t t = 0; t < t_steps; ++t) {
    for (size_t j = 0; j < k; ++j) {
      marginals(t, j) = std::exp(alpha[t][j] + beta[t][j] - log_z);
    }
  }
  return marginals;
}

BiCrf::BiCrf(std::string name, size_t num_tags, Rng* rng)
    : fwd_(name + ".fwd", num_tags, rng), bwd_(name + ".bwd", num_tags, rng) {}

Var BiCrf::Nll(Tape* tape, Var emissions_fwd, Var emissions_bwd,
               const std::vector<int>& labels) {
  Var nll_fwd = fwd_.Nll(tape, emissions_fwd, labels);

  // The backward chain sees the sequence reversed.
  const size_t t_steps = labels.size();
  std::vector<int> reversed_labels(labels.rbegin(), labels.rend());
  std::vector<Var> reversed_rows;
  reversed_rows.reserve(t_steps);
  for (size_t t = 0; t < t_steps; ++t) {
    reversed_rows.push_back(
        ops::SliceRows(emissions_bwd, t_steps - 1 - t, 1));
  }
  Var reversed = ops::ConcatRows(reversed_rows);
  Var nll_bwd = bwd_.Nll(tape, reversed, reversed_labels);
  return ops::Add(nll_fwd, nll_bwd);
}

Matrix BiCrf::Marginals(const Matrix& emissions_fwd,
                        const Matrix& emissions_bwd) const {
  const Matrix fwd_marg = fwd_.Marginals(emissions_fwd);
  const Matrix bwd_marg =
      ReverseRows(bwd_.Marginals(ReverseRows(emissions_bwd)));
  Matrix avg(fwd_marg.rows(), fwd_marg.cols());
  for (size_t i = 0; i < avg.rows(); ++i) {
    for (size_t j = 0; j < avg.cols(); ++j) {
      avg(i, j) = 0.5 * (fwd_marg(i, j) + bwd_marg(i, j));
    }
  }
  return avg;
}

std::vector<int> BiCrf::Decode(const Matrix& emissions_fwd,
                               const Matrix& emissions_bwd) const {
  const Matrix marginals = Marginals(emissions_fwd, emissions_bwd);
  std::vector<int> labels(marginals.rows());
  for (size_t t = 0; t < marginals.rows(); ++t) {
    size_t best = 0;
    for (size_t j = 1; j < marginals.cols(); ++j) {
      if (marginals(t, j) > marginals(t, best)) best = j;
    }
    labels[t] = static_cast<int>(best);
  }
  return labels;
}

std::vector<Parameter*> BiCrf::Params() {
  std::vector<Parameter*> params = fwd_.Params();
  for (Parameter* p : bwd_.Params()) params.push_back(p);
  return params;
}

}  // namespace dlacep
