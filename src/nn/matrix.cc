#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/string_util.h"

namespace dlacep {

Matrix Matrix::Randn(size_t rows, size_t cols, double stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Row(const std::vector<double>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

void Matrix::AddInPlace(const Matrix& other) {
  DLACEP_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AxpyInPlace(double scale, const Matrix& other) {
  DLACEP_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

double Matrix::Norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  DLACEP_CHECK(SameShape(other));
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::string Matrix::ShapeString() const {
  return StrFormat("%zux%zu", rows_, cols_);
}

namespace {

// Reduction-dimension block size: four active B rows plus the C row of
// each pass stay resident in L1 across the j sweep.
constexpr size_t kBlockK = 64;

#if defined(__x86_64__)

// Explicit 512-bit micro-kernel for C += A·B on multi-row products.
// The auto-vectorized path below tops out streaming the C rows through
// memory once per k-block; here a 4×32 C tile lives in sixteen zmm
// accumulators across the *entire* k reduction — per k step: four B
// loads, four A broadcasts, sixteen FMAs. Per-element accumulation is
// still serial in k, the same order as the scalar path. Only used when
// m >= 4: single-row products (the tape's per-step matvecs) are better
// served by the row-sweep path, which reads B exactly once.
__attribute__((target("avx512f"))) void MatMulTileAvx512(
    const double* ad, const double* bd, double* cd, size_t m4, size_t kk,
    size_t n) {
  // j-panel outer, i-tile inner: the kk×32 B panel stays hot in L1/L2
  // while the A rows stream past it.
  size_t j = 0;
  for (; j + 32 <= n; j += 32) {
    for (size_t i = 0; i + 4 <= m4; i += 4) {
      const double* ar0 = ad + i * kk;
      const double* ar1 = ar0 + kk;
      const double* ar2 = ar1 + kk;
      const double* ar3 = ar2 + kk;
      double* c0 = cd + i * n + j;
      double* c1 = c0 + n;
      double* c2 = c1 + n;
      double* c3 = c2 + n;
      __m512d acc00 = _mm512_loadu_pd(c0);
      __m512d acc01 = _mm512_loadu_pd(c0 + 8);
      __m512d acc02 = _mm512_loadu_pd(c0 + 16);
      __m512d acc03 = _mm512_loadu_pd(c0 + 24);
      __m512d acc10 = _mm512_loadu_pd(c1);
      __m512d acc11 = _mm512_loadu_pd(c1 + 8);
      __m512d acc12 = _mm512_loadu_pd(c1 + 16);
      __m512d acc13 = _mm512_loadu_pd(c1 + 24);
      __m512d acc20 = _mm512_loadu_pd(c2);
      __m512d acc21 = _mm512_loadu_pd(c2 + 8);
      __m512d acc22 = _mm512_loadu_pd(c2 + 16);
      __m512d acc23 = _mm512_loadu_pd(c2 + 24);
      __m512d acc30 = _mm512_loadu_pd(c3);
      __m512d acc31 = _mm512_loadu_pd(c3 + 8);
      __m512d acc32 = _mm512_loadu_pd(c3 + 16);
      __m512d acc33 = _mm512_loadu_pd(c3 + 24);
      for (size_t k = 0; k < kk; ++k) {
        const double* bp = bd + k * n + j;
        const __m512d b0 = _mm512_loadu_pd(bp);
        const __m512d b1 = _mm512_loadu_pd(bp + 8);
        const __m512d b2 = _mm512_loadu_pd(bp + 16);
        const __m512d b3 = _mm512_loadu_pd(bp + 24);
        const __m512d av0 = _mm512_set1_pd(ar0[k]);
        acc00 = _mm512_fmadd_pd(av0, b0, acc00);
        acc01 = _mm512_fmadd_pd(av0, b1, acc01);
        acc02 = _mm512_fmadd_pd(av0, b2, acc02);
        acc03 = _mm512_fmadd_pd(av0, b3, acc03);
        const __m512d av1 = _mm512_set1_pd(ar1[k]);
        acc10 = _mm512_fmadd_pd(av1, b0, acc10);
        acc11 = _mm512_fmadd_pd(av1, b1, acc11);
        acc12 = _mm512_fmadd_pd(av1, b2, acc12);
        acc13 = _mm512_fmadd_pd(av1, b3, acc13);
        const __m512d av2 = _mm512_set1_pd(ar2[k]);
        acc20 = _mm512_fmadd_pd(av2, b0, acc20);
        acc21 = _mm512_fmadd_pd(av2, b1, acc21);
        acc22 = _mm512_fmadd_pd(av2, b2, acc22);
        acc23 = _mm512_fmadd_pd(av2, b3, acc23);
        const __m512d av3 = _mm512_set1_pd(ar3[k]);
        acc30 = _mm512_fmadd_pd(av3, b0, acc30);
        acc31 = _mm512_fmadd_pd(av3, b1, acc31);
        acc32 = _mm512_fmadd_pd(av3, b2, acc32);
        acc33 = _mm512_fmadd_pd(av3, b3, acc33);
      }
      _mm512_storeu_pd(c0, acc00);
      _mm512_storeu_pd(c0 + 8, acc01);
      _mm512_storeu_pd(c0 + 16, acc02);
      _mm512_storeu_pd(c0 + 24, acc03);
      _mm512_storeu_pd(c1, acc10);
      _mm512_storeu_pd(c1 + 8, acc11);
      _mm512_storeu_pd(c1 + 16, acc12);
      _mm512_storeu_pd(c1 + 24, acc13);
      _mm512_storeu_pd(c2, acc20);
      _mm512_storeu_pd(c2 + 8, acc21);
      _mm512_storeu_pd(c2 + 16, acc22);
      _mm512_storeu_pd(c2 + 24, acc23);
      _mm512_storeu_pd(c3, acc30);
      _mm512_storeu_pd(c3 + 8, acc31);
      _mm512_storeu_pd(c3 + 16, acc32);
      _mm512_storeu_pd(c3 + 24, acc33);
    }
  }
  for (; j + 8 <= n; j += 8) {
    for (size_t i = 0; i + 4 <= m4; i += 4) {
      const double* ar0 = ad + i * kk;
      const double* ar1 = ar0 + kk;
      const double* ar2 = ar1 + kk;
      const double* ar3 = ar2 + kk;
      double* c0 = cd + i * n + j;
      double* c1 = c0 + n;
      double* c2 = c1 + n;
      double* c3 = c2 + n;
      __m512d acc0 = _mm512_loadu_pd(c0);
      __m512d acc1 = _mm512_loadu_pd(c1);
      __m512d acc2 = _mm512_loadu_pd(c2);
      __m512d acc3 = _mm512_loadu_pd(c3);
      for (size_t k = 0; k < kk; ++k) {
        const __m512d b0 = _mm512_loadu_pd(bd + k * n + j);
        acc0 = _mm512_fmadd_pd(_mm512_set1_pd(ar0[k]), b0, acc0);
        acc1 = _mm512_fmadd_pd(_mm512_set1_pd(ar1[k]), b0, acc1);
        acc2 = _mm512_fmadd_pd(_mm512_set1_pd(ar2[k]), b0, acc2);
        acc3 = _mm512_fmadd_pd(_mm512_set1_pd(ar3[k]), b0, acc3);
      }
      _mm512_storeu_pd(c0, acc0);
      _mm512_storeu_pd(c1, acc1);
      _mm512_storeu_pd(c2, acc2);
      _mm512_storeu_pd(c3, acc3);
    }
  }
  for (; j < n; ++j) {
    for (size_t i = 0; i < m4; ++i) {
      const double* arow = ad + i * kk;
      double sum = cd[i * n + j];
      for (size_t k = 0; k < kk; ++k) sum += arow[k] * bd[k * n + j];
      cd[i * n + j] = sum;
    }
  }
}

bool GemmHasAvx512() {
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
}

#endif  // __x86_64__

}  // namespace

// Function multiversioning for the GEMM kernels: the portable scalar
// build stays the default, and on x86-64 ELF targets the compiler also
// emits an AVX2+FMA clone selected once at load time via ifunc. Both
// the tape ops and the inference fast path call these same symbols, so
// whichever clone the loader picks is used consistently process-wide —
// results stay deterministic on a given machine. Disabled under
// sanitizers (ifunc resolvers run before their runtimes initialize).
#if defined(__x86_64__) && defined(__ELF__) && !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DLACEP_GEMM_CLONES
#endif
#endif
#ifndef DLACEP_GEMM_CLONES
#define DLACEP_GEMM_CLONES \
  __attribute__(                                                         \
      (target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#endif
#endif
#ifndef DLACEP_GEMM_CLONES
#define DLACEP_GEMM_CLONES
#endif

Matrix MatMulPlain(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatMulInto(a, b, &out, /*accumulate=*/true);
  return out;
}

DLACEP_GEMM_CLONES void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                bool accumulate) {
  DLACEP_CHECK(out != nullptr);
  DLACEP_CHECK_EQ(a.cols(), b.rows());
  DLACEP_CHECK_EQ(out->rows(), a.rows());
  DLACEP_CHECK_EQ(out->cols(), b.cols());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b.cols();
  if (!accumulate) out->Fill(0.0);
  const double* ad = a.data();
  const double* bd = b.data();
  double* cd = out->data();
  size_t row0 = 0;
#if defined(__x86_64__)
  if (m >= 4 && n >= 8 && GemmHasAvx512()) {
    const size_t m4 = m & ~static_cast<size_t>(3);
    MatMulTileAvx512(ad, bd, cd, m4, kk, n);
    if (m4 == m) return;
    row0 = m4;  // leftover rows (< 4) fall through to the row sweep
  }
#endif
  for (size_t kb = 0; kb < kk; kb += kBlockK) {
    const size_t kend = std::min(kk, kb + kBlockK);
    // 4×4 register tile: four A rows share each loaded B row, so the
    // j sweep does 32 flops per 4 B loads instead of 8. Per-element
    // accumulation order matches the single-row path below — i-blocking
    // never reassociates a C entry's sum.
    size_t i = row0;
    for (; i + 4 <= m; i += 4) {
      const double* ar0 = ad + i * kk;
      const double* ar1 = ar0 + kk;
      const double* ar2 = ar1 + kk;
      const double* ar3 = ar2 + kk;
      double* c0 = cd + i * n;
      double* c1 = c0 + n;
      double* c2 = c1 + n;
      double* c3 = c2 + n;
      size_t k = kb;
      for (; k + 4 <= kend; k += 4) {
        const double a00 = ar0[k], a01 = ar0[k + 1], a02 = ar0[k + 2],
                     a03 = ar0[k + 3];
        const double a10 = ar1[k], a11 = ar1[k + 1], a12 = ar1[k + 2],
                     a13 = ar1[k + 3];
        const double a20 = ar2[k], a21 = ar2[k + 1], a22 = ar2[k + 2],
                     a23 = ar2[k + 3];
        const double a30 = ar3[k], a31 = ar3[k + 1], a32 = ar3[k + 2],
                     a33 = ar3[k + 3];
        const double* b0 = bd + k * n;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        for (size_t j = 0; j < n; ++j) {
          const double bv0 = b0[j];
          const double bv1 = b1[j];
          const double bv2 = b2[j];
          const double bv3 = b3[j];
          c0[j] += a00 * bv0 + a01 * bv1 + a02 * bv2 + a03 * bv3;
          c1[j] += a10 * bv0 + a11 * bv1 + a12 * bv2 + a13 * bv3;
          c2[j] += a20 * bv0 + a21 * bv1 + a22 * bv2 + a23 * bv3;
          c3[j] += a30 * bv0 + a31 * bv1 + a32 * bv2 + a33 * bv3;
        }
      }
      for (; k < kend; ++k) {
        const double a0 = ar0[k];
        const double a1 = ar1[k];
        const double a2 = ar2[k];
        const double a3 = ar3[k];
        const double* brow = bd + k * n;
        for (size_t j = 0; j < n; ++j) {
          const double bv = brow[j];
          c0[j] += a0 * bv;
          c1[j] += a1 * bv;
          c2[j] += a2 * bv;
          c3[j] += a3 * bv;
        }
      }
    }
    for (; i < m; ++i) {
      const double* arow = ad + i * kk;
      double* crow = cd + i * n;
      size_t k = kb;
      for (; k + 4 <= kend; k += 4) {
        const double a0 = arow[k];
        const double a1 = arow[k + 1];
        const double a2 = arow[k + 2];
        const double a3 = arow[k + 3];
        const double* b0 = bd + k * n;
        const double* b1 = b0 + n;
        const double* b2 = b1 + n;
        const double* b3 = b2 + n;
        for (size_t j = 0; j < n; ++j) {
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
      }
      for (; k < kend; ++k) {
        const double ak = arow[k];
        const double* brow = bd + k * n;
        for (size_t j = 0; j < n; ++j) crow[j] += ak * brow[j];
      }
    }
  }
}

DLACEP_GEMM_CLONES void MatMulTransBInto(const Matrix& a, const Matrix& b_t, Matrix* out,
                      bool accumulate) {
  DLACEP_CHECK(out != nullptr);
  DLACEP_CHECK_EQ(a.cols(), b_t.cols());
  DLACEP_CHECK_EQ(out->rows(), a.rows());
  DLACEP_CHECK_EQ(out->cols(), b_t.rows());
  const size_t m = a.rows();
  const size_t kk = a.cols();
  const size_t n = b_t.rows();
  const double* ad = a.data();
  const double* bd = b_t.data();
  double* cd = out->data();
  for (size_t i = 0; i < m; ++i) {
    const double* arow = ad + i * kk;
    double* crow = cd + i * n;
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = bd + j * kk;
      const double* b1 = b0 + kk;
      const double* b2 = b1 + kk;
      const double* b3 = b2 + kk;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (size_t k = 0; k < kk; ++k) {
        const double av = arow[k];
        s0 += av * b0[k];
        s1 += av * b1[k];
        s2 += av * b2[k];
        s3 += av * b3[k];
      }
      if (accumulate) {
        crow[j] += s0;
        crow[j + 1] += s1;
        crow[j + 2] += s2;
        crow[j + 3] += s3;
      } else {
        crow[j] = s0;
        crow[j + 1] = s1;
        crow[j + 2] = s2;
        crow[j + 3] = s3;
      }
    }
    for (; j < n; ++j) {
      const double* brow = bd + j * kk;
      double sum = 0.0;
      for (size_t k = 0; k < kk; ++k) sum += arow[k] * brow[k];
      if (accumulate) {
        crow[j] += sum;
      } else {
        crow[j] = sum;
      }
    }
  }
}

DLACEP_GEMM_CLONES void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out,
                      bool accumulate) {
  DLACEP_CHECK(out != nullptr);
  DLACEP_CHECK_EQ(a.rows(), b.rows());
  DLACEP_CHECK_EQ(out->rows(), a.cols());
  DLACEP_CHECK_EQ(out->cols(), b.cols());
  const size_t m = a.cols();
  const size_t kk = a.rows();
  const size_t n = b.cols();
  if (!accumulate) out->Fill(0.0);
  const double* ad = a.data();
  const double* bd = b.data();
  double* cd = out->data();
  size_t k = 0;
  for (; k + 4 <= kk; k += 4) {
    const double* ar0 = ad + k * m;
    const double* ar1 = ar0 + m;
    const double* ar2 = ar1 + m;
    const double* ar3 = ar2 + m;
    const double* br0 = bd + k * n;
    const double* br1 = br0 + n;
    const double* br2 = br1 + n;
    const double* br3 = br2 + n;
    for (size_t i = 0; i < m; ++i) {
      const double a0 = ar0[i];
      const double a1 = ar1[i];
      const double a2 = ar2[i];
      const double a3 = ar3[i];
      double* crow = cd + i * n;
      for (size_t j = 0; j < n; ++j) {
        crow[j] += a0 * br0[j] + a1 * br1[j] + a2 * br2[j] + a3 * br3[j];
      }
    }
  }
  for (; k < kk; ++k) {
    const double* arow = ad + k * m;
    const double* brow = bd + k * n;
    for (size_t i = 0; i < m; ++i) {
      const double aki = arow[i];
      double* crow = cd + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

}  // namespace dlacep
