#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dlacep {

Matrix Matrix::Randn(size_t rows, size_t cols, double stddev, Rng* rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng* rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Uniform(-limit, limit);
  return m;
}

Matrix Matrix::Row(const std::vector<double>& values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

void Matrix::AddInPlace(const Matrix& other) {
  DLACEP_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AxpyInPlace(double scale, const Matrix& other) {
  DLACEP_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

double Matrix::Norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  DLACEP_CHECK(SameShape(other));
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::string Matrix::ShapeString() const {
  return StrFormat("%zux%zu", rows_, cols_);
}

Matrix MatMulPlain(const Matrix& a, const Matrix& b) {
  DLACEP_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

}  // namespace dlacep
