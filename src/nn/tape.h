// Reverse-mode automatic differentiation on matrices.
//
// A Tape records a computation graph of matrix operations. Var is a
// lightweight handle (tape pointer + node index). Calling Backward() on a
// scalar (1×1) Var runs the recorded backward closures in reverse order,
// accumulating gradients; Parameter leaves additionally flush their
// gradient into an external accumulator, which is how batch-gradient
// accumulation across samples works (one tape per sample, shared
// Parameter structs).
//
// The op vocabulary (ops.h) is exactly what stacked BiLSTM + CRF models
// need; every op's gradient is verified against finite differences in
// tests/autograd_test.cc.

#ifndef DLACEP_NN_TAPE_H_
#define DLACEP_NN_TAPE_H_

#include <deque>
#include <functional>
#include <vector>

#include "nn/matrix.h"

namespace dlacep {

/// A model parameter: value plus gradient accumulator. `grad` is
/// mutable so that a const-qualified forward pass (inference) can still
/// hand the parameter to a tape that may later run Backward(); only
/// training — which is single-threaded — actually writes it. During
/// inference, concurrent tapes read `value` only, which makes the whole
/// forward path re-entrant as long as no optimizer step runs.
struct Parameter {
  std::string name;
  Matrix value;
  mutable Matrix grad;

  Parameter() = default;
  Parameter(std::string name_in, Matrix value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
};

class Tape;

/// Handle to a node of a tape's computation graph.
class Var {
 public:
  Var() = default;
  Var(Tape* tape, int id) : tape_(tape), id_(id) {}

  bool valid() const { return tape_ != nullptr; }
  int id() const { return id_; }
  Tape* tape() const { return tape_; }

  const Matrix& value() const;

 private:
  Tape* tape_ = nullptr;
  int id_ = -1;
};

/// The recorded computation graph of one forward pass.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// A constant leaf (no gradient flows out of the tape).
  Var Input(Matrix value);

  /// A parameter leaf; Backward() adds its gradient into `param->grad`
  /// (a mutable accumulator — see Parameter). Taking the parameter by
  /// const pointer keeps layer Forward() methods const-qualified and
  /// safe to call concurrently at inference time.
  Var Param(const Parameter* param);

  /// Runs backpropagation from `loss` (must be 1×1).
  void Backward(Var loss);

  /// Internal node construction — used by the ops in ops.h.
  Var MakeNode(Matrix value, std::function<void(Tape*, int)> backward);

  const Matrix& ValueOf(int id) const;
  Matrix& GradOf(int id);

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    std::function<void(Tape*, int)> backward;  // null for leaves
    const Parameter* param = nullptr;          // set for Param leaves
  };
  // Deque, not vector: Var::value() hands out references into the node
  // store, and later ops keep appending nodes — references must stay
  // stable across growth.
  std::deque<Node> nodes_;
};

}  // namespace dlacep

#endif  // DLACEP_NN_TAPE_H_
