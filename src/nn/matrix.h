// Dense row-major matrix of doubles — the numeric carrier of the nn
// library. Double precision keeps finite-difference gradient checks tight
// at the small model sizes this reproduction uses.

#ifndef DLACEP_NN_MATRIX_H_
#define DLACEP_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dlacep {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) {
    return Matrix(rows, cols, 0.0);
  }
  /// Gaussian init with the given stddev.
  static Matrix Randn(size_t rows, size_t cols, double stddev, Rng* rng);
  /// Glorot/Xavier-uniform init for a (fan_in × fan_out) weight.
  static Matrix Xavier(size_t rows, size_t cols, Rng* rng);
  /// 1×n row from a std::vector.
  static Matrix Row(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Element access sits on the innermost loops of every layer; bounds
  // checks are compiled out of release builds (NDEBUG).
  double& operator()(size_t r, size_t c) {
#ifndef NDEBUG
    DLACEP_CHECK_LT(r, rows_);
    DLACEP_CHECK_LT(c, cols_);
#endif
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
#ifndef NDEBUG
    DLACEP_CHECK_LT(r, rows_);
    DLACEP_CHECK_LT(c, cols_);
#endif
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double value) { data_.assign(data_.size(), value); }

  /// Reshapes to rows×cols reusing the existing storage where possible
  /// (shrinking never reallocates). Contents are unspecified afterwards;
  /// callers must overwrite every entry or Fill(). This is what lets the
  /// inference scratch arena recycle buffers across windows of varying
  /// sequence length without churning the allocator.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);
  /// this += scale * other (same shape).
  void AxpyInPlace(double scale, const Matrix& other);
  /// Frobenius norm.
  double Norm() const;
  /// Sum of all entries.
  double Sum() const;
  /// Elementwise maximum absolute difference against `other`.
  double MaxAbsDiff(const Matrix& other) const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a × b (plain, non-autograd product). Implemented on top of
/// MatMulInto.
Matrix MatMulPlain(const Matrix& a, const Matrix& b);

// Shared GEMM kernels. All three write into a caller-provided,
// pre-shaped output: with accumulate=false the output is overwritten,
// with accumulate=true the product is added on top (the shape gradient
// accumulation needs). The inner loops are cache-blocked over the
// reduction dimension and register-tiled (four reduction rows live in
// registers per pass), which is what both the tape ops and the
// forward-only inference path run on.

/// out (+)= a × b. a: M×K, b: K×N, out: M×N.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                bool accumulate = false);

/// out (+)= a × bᵗ where `b_t` is stored already transposed (N×K).
/// Every output entry is a dot product of two contiguous rows — the
/// layout the inference path repacks weights into at freeze time.
void MatMulTransBInto(const Matrix& a, const Matrix& b_t, Matrix* out,
                      bool accumulate = false);

/// out (+)= aᵗ × b where `a` is stored untransposed (K×M), b: K×N.
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out,
                      bool accumulate = false);

}  // namespace dlacep

#endif  // DLACEP_NN_MATRIX_H_
