// Finite-difference gradient verification for tests.

#ifndef DLACEP_NN_GRAD_CHECK_H_
#define DLACEP_NN_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "nn/tape.h"

namespace dlacep {

struct GradCheckResult {
  bool ok = true;
  double worst_abs_error = 0.0;
  double worst_rel_error = 0.0;
  std::string worst_location;
};

/// Verifies the analytic gradients of `params` against central finite
/// differences of `loss_fn` (which must rebuild the forward pass from the
/// current parameter values and return the scalar loss). Each call must
/// be side-effect free. `loss_and_backward` must run one forward +
/// backward pass, leaving gradients accumulated in the parameters.
GradCheckResult CheckGradients(
    const std::vector<Parameter*>& params,
    const std::function<double()>& loss_fn,
    const std::function<void()>& loss_and_backward, double epsilon = 1e-5,
    double tolerance = 1e-6);

}  // namespace dlacep

#endif  // DLACEP_NN_GRAD_CHECK_H_
