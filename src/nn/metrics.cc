#include "nn/metrics.h"

#include "common/status.h"

namespace dlacep {

void BinaryMetrics::Accumulate(const std::vector<int>& predicted,
                               const std::vector<int>& expected) {
  DLACEP_CHECK_EQ(predicted.size(), expected.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    const bool p = predicted[i] != 0;
    const bool e = expected[i] != 0;
    if (p && e) {
      ++true_positives;
    } else if (p && !e) {
      ++false_positives;
    } else if (!p && e) {
      ++false_negatives;
    } else {
      ++true_negatives;
    }
  }
}

}  // namespace dlacep
