#include "nn/ops.h"

#include <algorithm>
#include <cmath>

namespace dlacep {
namespace ops {

namespace {
void CheckSameTape(Var a, Var b) {
  DLACEP_CHECK(a.valid() && b.valid());
  DLACEP_CHECK(a.tape() == b.tape());
}
}  // namespace

Var MatMul(Var a, Var b) {
  CheckSameTape(a, b);
  Tape* tape = a.tape();
  Matrix value = MatMulPlain(a.value(), b.value());
  const int ia = a.id();
  const int ib = b.id();
  return tape->MakeNode(std::move(value), [ia, ib](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& av = t->ValueOf(ia);
    const Matrix& bv = t->ValueOf(ib);
    // da += dc · bᵗ; bv is stored row-major K×N, exactly the transposed
    // layout MatMulTransBInto expects for the right operand.
    MatMulTransBInto(dc, bv, &t->GradOf(ia), /*accumulate=*/true);
    // db += aᵗ · dc.
    MatMulTransAInto(av, dc, &t->GradOf(ib), /*accumulate=*/true);
  });
}

Var Add(Var a, Var b) {
  CheckSameTape(a, b);
  DLACEP_CHECK(a.value().SameShape(b.value()));
  Matrix value = a.value();
  value.AddInPlace(b.value());
  const int ia = a.id();
  const int ib = b.id();
  return a.tape()->MakeNode(std::move(value), [ia, ib](Tape* t, int self) {
    t->GradOf(ia).AddInPlace(t->GradOf(self));
    t->GradOf(ib).AddInPlace(t->GradOf(self));
  });
}

Var Sub(Var a, Var b) {
  CheckSameTape(a, b);
  DLACEP_CHECK(a.value().SameShape(b.value()));
  Matrix value = a.value();
  value.AxpyInPlace(-1.0, b.value());
  const int ia = a.id();
  const int ib = b.id();
  return a.tape()->MakeNode(std::move(value), [ia, ib](Tape* t, int self) {
    t->GradOf(ia).AddInPlace(t->GradOf(self));
    t->GradOf(ib).AxpyInPlace(-1.0, t->GradOf(self));
  });
}

Var Mul(Var a, Var b) {
  CheckSameTape(a, b);
  DLACEP_CHECK(a.value().SameShape(b.value()));
  Matrix value = a.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) *= b.value()(i, j);
    }
  }
  const int ia = a.id();
  const int ib = b.id();
  return a.tape()->MakeNode(std::move(value), [ia, ib](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& av = t->ValueOf(ia);
    const Matrix& bv = t->ValueOf(ib);
    Matrix& da = t->GradOf(ia);
    Matrix& db = t->GradOf(ib);
    for (size_t i = 0; i < dc.rows(); ++i) {
      for (size_t j = 0; j < dc.cols(); ++j) {
        da(i, j) += dc(i, j) * bv(i, j);
        db(i, j) += dc(i, j) * av(i, j);
      }
    }
  });
}

Var Scale(Var a, double scale) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) value(i, j) *= scale;
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value),
                            [ia, scale](Tape* t, int self) {
                              t->GradOf(ia).AxpyInPlace(scale,
                                                        t->GradOf(self));
                            });
}

Var AddBroadcastRow(Var m, Var row) {
  CheckSameTape(m, row);
  DLACEP_CHECK_EQ(row.value().rows(), 1u);
  DLACEP_CHECK_EQ(row.value().cols(), m.value().cols());
  Matrix value = m.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) += row.value()(0, j);
    }
  }
  const int im = m.id();
  const int ir = row.id();
  return m.tape()->MakeNode(std::move(value), [im, ir](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    t->GradOf(im).AddInPlace(dc);
    Matrix& dr = t->GradOf(ir);
    for (size_t i = 0; i < dc.rows(); ++i) {
      for (size_t j = 0; j < dc.cols(); ++j) {
        dr(0, j) += dc(i, j);
      }
    }
  });
}

Var AddBroadcastCol(Var m, Var col) {
  CheckSameTape(m, col);
  DLACEP_CHECK_EQ(col.value().cols(), 1u);
  DLACEP_CHECK_EQ(col.value().rows(), m.value().rows());
  Matrix value = m.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) += col.value()(i, 0);
    }
  }
  const int im = m.id();
  const int ic = col.id();
  return m.tape()->MakeNode(std::move(value), [im, ic](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    t->GradOf(im).AddInPlace(dc);
    Matrix& dcol = t->GradOf(ic);
    for (size_t i = 0; i < dc.rows(); ++i) {
      for (size_t j = 0; j < dc.cols(); ++j) {
        dcol(i, 0) += dc(i, j);
      }
    }
  });
}

Var Sigmoid(Var a) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) = 1.0 / (1.0 + std::exp(-value(i, j)));
    }
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& y = t->ValueOf(self);
    Matrix& da = t->GradOf(ia);
    for (size_t i = 0; i < dc.rows(); ++i) {
      for (size_t j = 0; j < dc.cols(); ++j) {
        da(i, j) += dc(i, j) * y(i, j) * (1.0 - y(i, j));
      }
    }
  });
}

Var Tanh(Var a) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) = std::tanh(value(i, j));
    }
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& y = t->ValueOf(self);
    Matrix& da = t->GradOf(ia);
    for (size_t i = 0; i < dc.rows(); ++i) {
      for (size_t j = 0; j < dc.cols(); ++j) {
        da(i, j) += dc(i, j) * (1.0 - y(i, j) * y(i, j));
      }
    }
  });
}

Var Relu(Var a) {
  Matrix value = a.value();
  for (size_t i = 0; i < value.rows(); ++i) {
    for (size_t j = 0; j < value.cols(); ++j) {
      value(i, j) = std::max(0.0, value(i, j));
    }
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& av = t->ValueOf(ia);
    Matrix& da = t->GradOf(ia);
    for (size_t i = 0; i < dc.rows(); ++i) {
      for (size_t j = 0; j < dc.cols(); ++j) {
        if (av(i, j) > 0.0) da(i, j) += dc(i, j);
      }
    }
  });
}

Var SliceRows(Var a, size_t from, size_t count) {
  const Matrix& av = a.value();
  DLACEP_CHECK_LE(from + count, av.rows());
  Matrix value(count, av.cols());
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = 0; j < av.cols(); ++j) {
      value(i, j) = av(from + i, j);
    }
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value),
                            [ia, from](Tape* t, int self) {
                              const Matrix& dc = t->GradOf(self);
                              Matrix& da = t->GradOf(ia);
                              for (size_t i = 0; i < dc.rows(); ++i) {
                                for (size_t j = 0; j < dc.cols(); ++j) {
                                  da(from + i, j) += dc(i, j);
                                }
                              }
                            });
}

Var SliceCols(Var a, size_t from, size_t count) {
  const Matrix& av = a.value();
  DLACEP_CHECK_LE(from + count, av.cols());
  Matrix value(av.rows(), count);
  for (size_t i = 0; i < av.rows(); ++i) {
    for (size_t j = 0; j < count; ++j) {
      value(i, j) = av(i, from + j);
    }
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value),
                            [ia, from](Tape* t, int self) {
                              const Matrix& dc = t->GradOf(self);
                              Matrix& da = t->GradOf(ia);
                              for (size_t i = 0; i < dc.rows(); ++i) {
                                for (size_t j = 0; j < dc.cols(); ++j) {
                                  da(i, from + j) += dc(i, j);
                                }
                              }
                            });
}

Var ConcatRows(const std::vector<Var>& parts) {
  DLACEP_CHECK(!parts.empty());
  Tape* tape = parts[0].tape();
  size_t rows = 0;
  const size_t cols = parts[0].value().cols();
  std::vector<int> ids;
  std::vector<size_t> offsets;
  for (const Var& part : parts) {
    DLACEP_CHECK(part.tape() == tape);
    DLACEP_CHECK_EQ(part.value().cols(), cols);
    offsets.push_back(rows);
    rows += part.value().rows();
    ids.push_back(part.id());
  }
  Matrix value(rows, cols);
  for (size_t p = 0; p < parts.size(); ++p) {
    const Matrix& pv = parts[p].value();
    for (size_t i = 0; i < pv.rows(); ++i) {
      for (size_t j = 0; j < cols; ++j) {
        value(offsets[p] + i, j) = pv(i, j);
      }
    }
  }
  return tape->MakeNode(
      std::move(value), [ids, offsets](Tape* t, int self) {
        const Matrix& dc = t->GradOf(self);
        for (size_t p = 0; p < ids.size(); ++p) {
          Matrix& dp = t->GradOf(ids[p]);
          for (size_t i = 0; i < dp.rows(); ++i) {
            for (size_t j = 0; j < dp.cols(); ++j) {
              dp(i, j) += dc(offsets[p] + i, j);
            }
          }
        }
      });
}

Var ConcatCols(const std::vector<Var>& parts) {
  DLACEP_CHECK(!parts.empty());
  Tape* tape = parts[0].tape();
  size_t cols = 0;
  const size_t rows = parts[0].value().rows();
  std::vector<int> ids;
  std::vector<size_t> offsets;
  for (const Var& part : parts) {
    DLACEP_CHECK(part.tape() == tape);
    DLACEP_CHECK_EQ(part.value().rows(), rows);
    offsets.push_back(cols);
    cols += part.value().cols();
    ids.push_back(part.id());
  }
  Matrix value(rows, cols);
  for (size_t p = 0; p < parts.size(); ++p) {
    const Matrix& pv = parts[p].value();
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < pv.cols(); ++j) {
        value(i, offsets[p] + j) = pv(i, j);
      }
    }
  }
  return tape->MakeNode(
      std::move(value), [ids, offsets](Tape* t, int self) {
        const Matrix& dc = t->GradOf(self);
        for (size_t p = 0; p < ids.size(); ++p) {
          Matrix& dp = t->GradOf(ids[p]);
          for (size_t i = 0; i < dp.rows(); ++i) {
            for (size_t j = 0; j < dp.cols(); ++j) {
              dp(i, j) += dc(i, offsets[p] + j);
            }
          }
        }
      });
}

Var Transpose(Var a) {
  const Matrix& av = a.value();
  Matrix value(av.cols(), av.rows());
  for (size_t i = 0; i < av.rows(); ++i) {
    for (size_t j = 0; j < av.cols(); ++j) {
      value(j, i) = av(i, j);
    }
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    Matrix& da = t->GradOf(ia);
    for (size_t i = 0; i < da.rows(); ++i) {
      for (size_t j = 0; j < da.cols(); ++j) {
        da(i, j) += dc(j, i);
      }
    }
  });
}

Var MaxOverRows(Var a) {
  const Matrix& av = a.value();
  DLACEP_CHECK_GT(av.rows(), 0u);
  Matrix value(1, av.cols());
  std::vector<size_t> argmax(av.cols(), 0);
  for (size_t j = 0; j < av.cols(); ++j) {
    double best = av(0, j);
    for (size_t i = 1; i < av.rows(); ++i) {
      if (av(i, j) > best) {
        best = av(i, j);
        argmax[j] = i;
      }
    }
    value(0, j) = best;
  }
  const int ia = a.id();
  return a.tape()->MakeNode(
      std::move(value), [ia, argmax = std::move(argmax)](Tape* t, int self) {
        const Matrix& dc = t->GradOf(self);
        Matrix& da = t->GradOf(ia);
        for (size_t j = 0; j < argmax.size(); ++j) {
          da(argmax[j], j) += dc(0, j);
        }
      });
}

Var SumAll(Var a) {
  Matrix value(1, 1);
  value(0, 0) = a.value().Sum();
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const double d = t->GradOf(self)(0, 0);
    Matrix& da = t->GradOf(ia);
    for (size_t i = 0; i < da.rows(); ++i) {
      for (size_t j = 0; j < da.cols(); ++j) {
        da(i, j) += d;
      }
    }
  });
}

Var MeanAll(Var a) {
  const double n = static_cast<double>(a.value().size());
  return Scale(SumAll(a), 1.0 / n);
}

Var PickSum(Var a, std::vector<std::pair<size_t, size_t>> entries) {
  Matrix value(1, 1);
  for (const auto& [r, c] : entries) {
    value(0, 0) += a.value()(r, c);
  }
  const int ia = a.id();
  return a.tape()->MakeNode(
      std::move(value),
      [ia, entries = std::move(entries)](Tape* t, int self) {
        const double d = t->GradOf(self)(0, 0);
        Matrix& da = t->GradOf(ia);
        for (const auto& [r, c] : entries) {
          da(r, c) += d;
        }
      });
}

Var LogSumExpOverRows(Var a) {
  const Matrix& av = a.value();
  Matrix value(1, av.cols());
  for (size_t j = 0; j < av.cols(); ++j) {
    double m = av(0, j);
    for (size_t i = 1; i < av.rows(); ++i) m = std::max(m, av(i, j));
    double sum = 0.0;
    for (size_t i = 0; i < av.rows(); ++i) sum += std::exp(av(i, j) - m);
    value(0, j) = m + std::log(sum);
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& y = t->ValueOf(self);
    const Matrix& av = t->ValueOf(ia);
    Matrix& da = t->GradOf(ia);
    for (size_t j = 0; j < av.cols(); ++j) {
      for (size_t i = 0; i < av.rows(); ++i) {
        da(i, j) += dc(0, j) * std::exp(av(i, j) - y(0, j));
      }
    }
  });
}

Var LogSumExpOverCols(Var a) {
  const Matrix& av = a.value();
  Matrix value(av.rows(), 1);
  for (size_t i = 0; i < av.rows(); ++i) {
    double m = av(i, 0);
    for (size_t j = 1; j < av.cols(); ++j) m = std::max(m, av(i, j));
    double sum = 0.0;
    for (size_t j = 0; j < av.cols(); ++j) sum += std::exp(av(i, j) - m);
    value(i, 0) = m + std::log(sum);
  }
  const int ia = a.id();
  return a.tape()->MakeNode(std::move(value), [ia](Tape* t, int self) {
    const Matrix& dc = t->GradOf(self);
    const Matrix& y = t->ValueOf(self);
    const Matrix& av = t->ValueOf(ia);
    Matrix& da = t->GradOf(ia);
    for (size_t i = 0; i < av.rows(); ++i) {
      for (size_t j = 0; j < av.cols(); ++j) {
        da(i, j) += dc(i, 0) * std::exp(av(i, j) - y(i, 0));
      }
    }
  });
}

Var BceWithLogits(Var logits, const Matrix& targets) {
  const Matrix& z = logits.value();
  DLACEP_CHECK(z.SameShape(targets));
  const double n = static_cast<double>(z.size());
  Matrix value(1, 1);
  double loss = 0.0;
  for (size_t i = 0; i < z.rows(); ++i) {
    for (size_t j = 0; j < z.cols(); ++j) {
      const double zv = z(i, j);
      const double y = targets(i, j);
      // max(z,0) - z*y + log(1 + exp(-|z|)) — the stable formulation.
      loss += std::max(zv, 0.0) - zv * y + std::log1p(std::exp(-std::abs(zv)));
    }
  }
  value(0, 0) = loss / n;
  const int il = logits.id();
  return logits.tape()->MakeNode(
      std::move(value), [il, targets, n](Tape* t, int self) {
        const double d = t->GradOf(self)(0, 0);
        const Matrix& z = t->ValueOf(il);
        Matrix& dz = t->GradOf(il);
        for (size_t i = 0; i < z.rows(); ++i) {
          for (size_t j = 0; j < z.cols(); ++j) {
            const double sig = 1.0 / (1.0 + std::exp(-z(i, j)));
            dz(i, j) += d * (sig - targets(i, j)) / n;
          }
        }
      });
}

Var Conv1D(Var x, Var w, size_t kernel, size_t dilation) {
  CheckSameTape(x, w);
  const Matrix& xv = x.value();
  const Matrix& wv = w.value();
  DLACEP_CHECK_GE(kernel, 1u);
  DLACEP_CHECK_GE(dilation, 1u);
  const size_t t_steps = xv.rows();
  const size_t d_in = xv.cols();
  DLACEP_CHECK_EQ(wv.rows(), kernel * d_in);
  const size_t d_out = wv.cols();
  const ptrdiff_t center = static_cast<ptrdiff_t>(kernel / 2);

  Matrix value(t_steps, d_out);
  for (size_t t = 0; t < t_steps; ++t) {
    for (size_t k = 0; k < kernel; ++k) {
      const ptrdiff_t src =
          static_cast<ptrdiff_t>(t) +
          (static_cast<ptrdiff_t>(k) - center) *
              static_cast<ptrdiff_t>(dilation);
      if (src < 0 || src >= static_cast<ptrdiff_t>(t_steps)) continue;
      for (size_t o = 0; o < d_out; ++o) {
        double sum = 0.0;
        for (size_t i = 0; i < d_in; ++i) {
          sum += xv(static_cast<size_t>(src), i) * wv(k * d_in + i, o);
        }
        value(t, o) += sum;
      }
    }
  }
  const int ix = x.id();
  const int iw = w.id();
  return x.tape()->MakeNode(
      std::move(value),
      [ix, iw, kernel, dilation, center](Tape* tape, int self) {
        const Matrix& dc = tape->GradOf(self);
        const Matrix& xv = tape->ValueOf(ix);
        const Matrix& wv = tape->ValueOf(iw);
        Matrix& dx = tape->GradOf(ix);
        Matrix& dw = tape->GradOf(iw);
        const size_t t_steps = xv.rows();
        const size_t d_in = xv.cols();
        const size_t d_out = wv.cols();
        for (size_t t = 0; t < t_steps; ++t) {
          for (size_t k = 0; k < kernel; ++k) {
            const ptrdiff_t src =
                static_cast<ptrdiff_t>(t) +
                (static_cast<ptrdiff_t>(k) - center) *
                    static_cast<ptrdiff_t>(dilation);
            if (src < 0 || src >= static_cast<ptrdiff_t>(t_steps)) {
              continue;
            }
            for (size_t o = 0; o < d_out; ++o) {
              const double g = dc(t, o);
              if (g == 0.0) continue;
              for (size_t i = 0; i < d_in; ++i) {
                dx(static_cast<size_t>(src), i) += g * wv(k * d_in + i, o);
                dw(k * d_in + i, o) += g * xv(static_cast<size_t>(src), i);
              }
            }
          }
        }
      });
}

}  // namespace ops
}  // namespace dlacep
