// Binary save/load of model parameters.
//
// Format: magic "DLNN" + version, then per parameter: name length, name,
// rows, cols, row-major doubles. Loading matches parameters by name and
// fails when a stored parameter is missing or shaped differently —
// retraining on a changed architecture should be explicit, not silent.

#ifndef DLACEP_NN_SERIALIZE_H_
#define DLACEP_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tape.h"

namespace dlacep {

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

}  // namespace dlacep

#endif  // DLACEP_NN_SERIALIZE_H_
