// Binary save/load of model parameters.
//
// Format v2: magic "DLNN" + version, then a payload of per-parameter
// records (name length, name, rows, cols, row-major doubles), followed by
// a CRC32 of the payload. Loading matches parameters by name and fails
// when a stored parameter is missing or shaped differently — retraining
// on a changed architecture should be explicit, not silent. Loads are
// staged: no parameter is overwritten until the whole file validates
// (checksum, shape bounds, finite weights), so a corrupt file can never
// leave the model half-updated. Legacy v1 files (no checksum) still load,
// with a warning.

#ifndef DLACEP_NN_SERIALIZE_H_
#define DLACEP_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tape.h"

namespace dlacep {

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

}  // namespace dlacep

#endif  // DLACEP_NN_SERIALIZE_H_
