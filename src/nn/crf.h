// Linear-chain conditional random fields (Lafferty et al. '01) and the
// bidirectional BI-CRF variant (Panchendrarajan & Amaresan '19) used by
// DLACEP's event-network output layer (paper §4.3, Fig 7).
//
// The CRF models a joint label distribution over a sequence given
// per-step emission scores:
//   score(y) = start[y_0] + Σ_t emit[t][y_t] + Σ_t trans[y_{t-1}][y_t]
//            + end[y_{T-1}]
// Training minimizes the negative log-likelihood logZ − score(y*), with
// logZ computed by the forward algorithm on the tape (fully
// differentiable). Decoding uses Viterbi; posterior marginals come from
// the forward-backward algorithm in plain (non-tape) arithmetic.

#ifndef DLACEP_NN_CRF_H_
#define DLACEP_NN_CRF_H_

#include <string>
#include <vector>

#include "nn/layers.h"

namespace dlacep {

class LinearChainCrf : public Module {
 public:
  /// K = number of tags (DLACEP uses K = 2: participates / does not).
  LinearChainCrf(std::string name, size_t num_tags, Rng* rng);

  /// Negative log-likelihood of `labels` (length T, values in [0, K))
  /// given `emissions` (T×K). Differentiable in both the emissions and
  /// the CRF parameters.
  Var Nll(Tape* tape, Var emissions, const std::vector<int>& labels);

  /// Most probable tag sequence (plain arithmetic).
  std::vector<int> Viterbi(const Matrix& emissions) const;

  /// Posterior marginals P(y_t = k | x) as a T×K matrix (plain
  /// forward-backward).
  Matrix Marginals(const Matrix& emissions) const;

  std::vector<Parameter*> Params() override {
    return {&transitions_, &start_, &end_};
  }

  size_t num_tags() const { return num_tags_; }

 private:
  size_t num_tags_;
  Parameter transitions_;  ///< K×K, [from][to]
  Parameter start_;        ///< 1×K
  Parameter end_;          ///< 1×K
};

/// Bidirectional CRF: one chain over the sequence left-to-right and an
/// independent chain right-to-left, each with its own parameters. The
/// training loss is the sum of the two NLLs ("maximizes the likelihood
/// probability sums of correct sequences ... for both forward and
/// backward CRF layers", paper §5.1); decoding takes the per-position
/// argmax of the averaged posterior marginals.
class BiCrf : public Module {
 public:
  BiCrf(std::string name, size_t num_tags, Rng* rng);

  /// Sum of forward-chain NLL on (emissions_fwd, labels) and
  /// backward-chain NLL on the reversed sequence.
  Var Nll(Tape* tape, Var emissions_fwd, Var emissions_bwd,
          const std::vector<int>& labels);

  /// Averaged-marginal decode. Both emission matrices are in input
  /// (left-to-right) row order.
  std::vector<int> Decode(const Matrix& emissions_fwd,
                          const Matrix& emissions_bwd) const;

  /// Averaged posterior marginals, T×K, rows in input order.
  Matrix Marginals(const Matrix& emissions_fwd,
                   const Matrix& emissions_bwd) const;

  std::vector<Parameter*> Params() override;

 private:
  LinearChainCrf fwd_;
  LinearChainCrf bwd_;
};

/// Reverses the row order of a matrix (helper for BI-CRF).
Matrix ReverseRows(const Matrix& m);

}  // namespace dlacep

#endif  // DLACEP_NN_CRF_H_
