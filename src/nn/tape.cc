#include "nn/tape.h"

namespace dlacep {

const Matrix& Var::value() const {
  DLACEP_CHECK(tape_ != nullptr);
  return tape_->ValueOf(id_);
}

Var Tape::Input(Matrix value) {
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size() - 1));
}

Var Tape::Param(const Parameter* param) {
  DLACEP_CHECK(param != nullptr);
  Node node;
  node.value = param->value;
  node.grad = Matrix(node.value.rows(), node.value.cols());
  node.param = param;
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size() - 1));
}

Var Tape::MakeNode(Matrix value,
                   std::function<void(Tape*, int)> backward) {
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var(this, static_cast<int>(nodes_.size() - 1));
}

void Tape::Backward(Var loss) {
  DLACEP_CHECK(loss.tape() == this);
  DLACEP_CHECK_EQ(ValueOf(loss.id()).rows(), 1u);
  DLACEP_CHECK_EQ(ValueOf(loss.id()).cols(), 1u);
  GradOf(loss.id())(0, 0) = 1.0;
  // Nodes were appended in topological (forward) order; walk backwards.
  for (int i = loss.id(); i >= 0; --i) {
    Node& node = nodes_[static_cast<size_t>(i)];
    if (node.backward) {
      node.backward(this, i);
    }
    if (node.param != nullptr) {
      node.param->grad.AddInPlace(node.grad);
    }
  }
}

const Matrix& Tape::ValueOf(int id) const {
  DLACEP_CHECK_GE(id, 0);
  DLACEP_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)].value;
}

Matrix& Tape::GradOf(int id) {
  DLACEP_CHECK_GE(id, 0);
  DLACEP_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  return nodes_[static_cast<size_t>(id)].grad;
}

}  // namespace dlacep
