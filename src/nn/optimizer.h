// Gradient-descent optimizers and learning-rate scheduling.

#ifndef DLACEP_NN_OPTIMIZER_H_
#define DLACEP_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "nn/tape.h"

namespace dlacep {

/// Rescales all gradients so their global L2 norm does not exceed
/// `max_norm` (essential for LSTM training stability). Returns the norm
/// before clipping.
double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

/// Optimizer interface: Step() consumes the accumulated gradients of the
/// registered parameters and zeroes them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Parameter*> params_;
  double learning_rate_ = 1e-3;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double learning_rate,
      double momentum = 0.0);

  void Step() override;

 private:
  double momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba '15) — the default for all DLACEP networks.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double learning_rate,
       double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8);

  void Step() override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// The paper's "dynamic learning rate" (§5.1): the rate decays from
/// `initial` to `final_rate` over the course of training; we interpolate
/// geometrically per epoch.
class LrSchedule {
 public:
  LrSchedule(double initial, double final_rate, size_t total_epochs)
      : initial_(initial),
        final_(final_rate),
        total_epochs_(total_epochs == 0 ? 1 : total_epochs) {}

  double At(size_t epoch) const;

 private:
  double initial_;
  double final_;
  size_t total_epochs_;
};

}  // namespace dlacep

#endif  // DLACEP_NN_OPTIMIZER_H_
