// Classification metrics: precision, recall, F1 over binary labels
// (paper §4.3 "Training evaluation").

#ifndef DLACEP_NN_METRICS_H_
#define DLACEP_NN_METRICS_H_

#include <cstddef>
#include <vector>

namespace dlacep {

struct BinaryMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
  size_t true_negatives = 0;

  double precision() const {
    const size_t denom = true_positives + false_positives;
    return denom == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double recall() const {
    const size_t denom = true_positives + false_negatives;
    return denom == 0 ? 1.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double accuracy() const {
    const size_t total = true_positives + false_positives +
                         false_negatives + true_negatives;
    return total == 0
               ? 1.0
               : static_cast<double>(true_positives + true_negatives) /
                     static_cast<double>(total);
  }

  /// Accumulates another batch of predictions (labels in {0,1}).
  void Accumulate(const std::vector<int>& predicted,
                  const std::vector<int>& expected);
};

}  // namespace dlacep

#endif  // DLACEP_NN_METRICS_H_
