#include "nn/optimizer.h"

#include <cmath>

namespace dlacep {

double ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  double total = 0.0;
  for (const Parameter* p : params) {
    const double n = p->grad.Norm();
    total += n * n;
  }
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0) {
    const double scale = max_norm / total;
    for (Parameter* p : params) {
      for (size_t i = 0; i < p->grad.rows(); ++i) {
        for (size_t j = 0; j < p->grad.cols(); ++j) {
          p->grad(i, j) *= scale;
        }
      }
    }
  }
  return total;
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate,
         double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  learning_rate_ = learning_rate;
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    Matrix& vel = velocity_[k];
    for (size_t i = 0; i < p->value.rows(); ++i) {
      for (size_t j = 0; j < p->value.cols(); ++j) {
        vel(i, j) = momentum_ * vel(i, j) - learning_rate_ * p->grad(i, j);
        p->value(i, j) += vel(i, j);
      }
    }
    p->ZeroGrad();
  }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate,
           double beta1, double beta2, double epsilon)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  learning_rate_ = learning_rate;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Parameter* p = params_[k];
    for (size_t i = 0; i < p->value.rows(); ++i) {
      for (size_t j = 0; j < p->value.cols(); ++j) {
        const double g = p->grad(i, j);
        m_[k](i, j) = beta1_ * m_[k](i, j) + (1.0 - beta1_) * g;
        v_[k](i, j) = beta2_ * v_[k](i, j) + (1.0 - beta2_) * g * g;
        const double m_hat = m_[k](i, j) / bias1;
        const double v_hat = v_[k](i, j) / bias2;
        p->value(i, j) -=
            learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      }
    }
    p->ZeroGrad();
  }
}

double LrSchedule::At(size_t epoch) const {
  if (epoch >= total_epochs_) return final_;
  const double frac =
      static_cast<double>(epoch) / static_cast<double>(total_epochs_);
  return initial_ * std::pow(final_ / initial_, frac);
}

}  // namespace dlacep
