// Forward-only inference engine: the tape-free fast path of the nn
// library.
//
// The autograd Tape (tape.h) is built for training: every op allocates a
// node, a gradient matrix, and a backward closure. None of that is
// needed to *run* a trained network, yet the DLACEP filtration stage
// calls the forward pass once per assembler window — millions of times
// per stream at production scale. This header provides the inference
// counterpart of each layer in layers.h:
//
//  * Frozen cells (`DenseInfer`, `LstmInfer`, `BiLstmInfer`,
//    `StackedBiLstmInfer`, `TcnInfer`) hold the layer's weights repacked
//    at freeze time into the layout its forward kernel wants: Dense and
//    TCN weights transposed so every output entry is a dot product of
//    contiguous rows (the layout MatMulTransBInto runs on); LSTM weights
//    kept gate-concatenated so the whole-sequence input projection is
//    one register-tiled GEMM and one fused pass per step fills a single
//    reused 1×4H gate row. Freeze() snapshots the current parameter
//    values; a frozen cell does not track later parameter updates.
//
//  * `InferenceContext` is a reusable scratch arena. Activations and
//    gate rows are acquired from it in a deterministic per-model order,
//    so after the first window every buffer is already allocated at the
//    right capacity and subsequent windows run allocation-free. One
//    context per thread: contexts are not synchronized, the frozen
//    weights they read are shared and immutable.
//
//  * `ForwardBatch` entry points run B windows per call on one stacked
//    batch-major feature slab: the rows of window b occupy
//    [offsets[b], offsets[b+1]) of an ΣT×D input, `offsets` being the
//    B+1 exclusive prefix sums of the window lengths (offsets[0] = 0).
//    Batching converts the per-window matrix-vector work — the LSTM
//    recurrence above all — into matrix-matrix calls on the same
//    register-tiled kernels (one B×H·H×4H GEMM per time step instead
//    of B separate 1×H·H×4H products), and amortizes the hoisted input
//    projection into a single ΣT-row GEMM. Dense and TCN forwards are
//    row-local, so their batched results are the per-window results
//    bit for bit; the LSTM's stacked GEMMs may reassociate additions
//    across row-block boundaries, so batched activations match the
//    per-window path to <= 1e-9, not bitwise — thresholded marks stay
//    byte-identical (the same contract the tape/fast split already
//    relies on).
//
// The tape forward remains the golden reference: both paths must agree
// to <= 1e-9 elementwise (tests/infer_equivalence_test.cc).

#ifndef DLACEP_NN_INFER_H_
#define DLACEP_NN_INFER_H_

#include <deque>
#include <span>
#include <vector>

#include "nn/layers.h"
#include "nn/matrix.h"

namespace dlacep {

/// Reusable per-thread scratch arena for forward-only passes. Reset()
/// rewinds the cursor; Acquire() hands out the next buffer slot,
/// reshaped to the requested size with its previous contents
/// unspecified. Because a frozen model acquires buffers in the same
/// order on every call, slot i always serves the same activation and
/// its capacity converges after the first (largest) window.
class InferenceContext {
 public:
  InferenceContext() = default;
  InferenceContext(const InferenceContext&) = delete;
  InferenceContext& operator=(const InferenceContext&) = delete;

  /// Rewinds the arena; previously acquired references become free for
  /// reuse (call once at the top of each forward pass). Consults the
  /// process-wide inference fault hook (see SetInferenceFaultHook), which
  /// is how the fault-injection harness poisons a forward pass.
  void Reset();

  /// Next scratch buffer, reshaped to rows×cols. Contents unspecified —
  /// the producer must overwrite (or Fill) every entry. References stay
  /// valid until the slot is re-acquired after a Reset().
  Matrix& Acquire(size_t rows, size_t cols);

  size_t num_buffers() const { return pool_.size(); }

  /// True when the current forward pass was poisoned by the fault hook.
  /// The trunk Forward implementations consult this and NaN-fill their
  /// output activation, simulating a numeric blow-up.
  bool poisoned() const { return poison_; }

 private:
  // Deque, not vector: Acquire hands out references while later calls
  // keep appending slots — references must survive growth (same
  // reasoning as Tape's node store).
  std::deque<Matrix> pool_;
  size_t next_ = 0;
  // Set per forward pass by Reset() when the fault hook fires.
  bool poison_ = false;
};

/// Installs a process-wide fault hook consulted at every
/// InferenceContext::Reset(). When the hook returns true, that forward
/// pass is poisoned: the trunk's output activation is NaN-filled, which
/// propagates through heads/CRF into non-finite scores and the
/// kInvalidMark sentinel. Pass nullptr to clear. For fault-injection
/// tests only — not a production API. The hook must be thread-safe:
/// inference contexts reset concurrently on worker threads.
void SetInferenceFaultHook(bool (*hook)(void* ctx), void* ctx);

/// Frozen Dense: y = x·W + b with W stored transposed (out×in).
struct DenseInfer {
  Matrix wt;  ///< out×in
  Matrix b;   ///< 1×out
  /// out must be pre-shaped N×out_dim; fully overwritten.
  void Forward(const Matrix& x, Matrix* out) const;
  /// Batched forward over a stacked slab. Dense is row-local (every
  /// output row is a dot product of its own input row), so this IS
  /// Forward on the concatenated rows — bit-identical to B separate
  /// per-window calls. Kept as a named entry point so call sites read
  /// batch-shaped.
  void ForwardBatch(const Matrix& x_all, Matrix* out_all) const {
    Forward(x_all, out_all);
  }
};

/// Frozen LSTM cell. The input projection for the whole sequence is
/// hoisted out of the recurrence and computed as one blocked GEMM
/// (T×in · wxtᵗ → T×4H, all four gates [i|f|g|o] side by side); the
/// per-step work is then a single fused pass over a reused 1×4H gate
/// row: bias + precomputed input projection + h·Wh (a 1×H·H×4H GEMM on
/// the shared blocked kernel) followed by the elementwise cell update.
struct LstmInfer {
  size_t in_dim = 0;
  size_t hidden = 0;
  Matrix wx;  ///< in×4H  (snapshot of Lstm's Wx: the hoisted T×in·in×4H
              ///<         projection rides the register-tiled MatMulInto)
  Matrix wh;  ///< H×4H   (snapshot of Lstm's Wh: the recurrent update is
              ///<         an axpy over rows, vectorized across gates)
  Matrix b;   ///< 1×4H
  /// Runs the recurrence over x (T×in) and writes hidden state rows
  /// into columns [col, col+H) of `out` (T×C, C >= col+H), rows aligned
  /// to input order (reverse=true scans right-to-left, like the tape
  /// path). Scratch (gates, h, c) comes from `ctx`.
  void ForwardInto(InferenceContext* ctx, const Matrix& x, bool reverse,
                   Matrix* out, size_t col) const;
  /// Batched recurrence over B windows stacked in x_all (ΣT×in, window
  /// b at rows [offsets[b], offsets[b+1]), all lengths > 0). The B
  /// hidden/cell states advance in lockstep, so the recurrent term is
  /// one B×H·H×4H GEMM per time step; windows shorter than the batch
  /// maximum simply stop participating (their gate rows are zeroed so
  /// the shared GEMM stays finite, and their cell update is skipped).
  /// Output rows land at the same offsets in out_all (ΣT×C).
  void ForwardBatchInto(InferenceContext* ctx, const Matrix& x_all,
                        std::span<const size_t> offsets, bool reverse,
                        Matrix* out_all, size_t col) const;
};

/// Frozen BiLSTM: forward and backward cells writing the two halves of
/// one T×2H output slab — no concat op, no intermediate copies.
struct BiLstmInfer {
  LstmInfer fwd;
  LstmInfer bwd;
  /// out must be pre-shaped T×2H; fully overwritten.
  void Forward(InferenceContext* ctx, const Matrix& x, Matrix* out) const;
  /// Batched twin of Forward over a stacked slab (see ForwardBatchInto).
  void ForwardBatch(InferenceContext* ctx, const Matrix& x_all,
                    std::span<const size_t> offsets, Matrix* out_all) const;
};

/// Frozen stacked BiLSTM. Returns the last layer's T×2H activation,
/// which lives in `ctx` until the next Reset().
struct StackedBiLstmInfer {
  std::vector<BiLstmInfer> layers;
  const Matrix& Forward(InferenceContext* ctx, const Matrix& x) const;
  /// Batched forward over B windows stacked in x_all (batch-major, B+1
  /// prefix-sum `offsets`). Returns the last layer's ΣT×2H slab; window
  /// b's activation occupies rows [offsets[b], offsets[b+1]). Observes
  /// the batch-size histogram (obs::NnBatchWindows).
  const Matrix& ForwardBatch(InferenceContext* ctx, const Matrix& x_all,
                             std::span<const size_t> offsets) const;
};

/// Frozen TCN: centered dilated Conv1D + bias + ReLU per layer, with
/// each layer's (K·D_in)×hidden weight transposed to hidden×(K·D_in) so
/// tap k of output channel o is a contiguous row segment.
struct TcnInfer {
  struct Layer {
    Matrix wt;  ///< hidden×(K·D_in)
    Matrix b;   ///< 1×hidden
  };
  size_t kernel = 0;
  std::vector<Layer> layers;
  /// Returns the last layer's T×hidden activation (lives in `ctx`).
  const Matrix& Forward(InferenceContext* ctx, const Matrix& x) const;
  /// Batched forward over B stacked windows. Convolutions are
  /// position-local, so batching here is loop-level fusion over the
  /// slab with window-local boundary clamps: one pass keeps the layer
  /// weights cache-warm across all B windows, and every output row is
  /// the same arithmetic as the per-window Forward. Returns the last
  /// layer's ΣT×hidden slab. Observes the batch-size histogram.
  const Matrix& ForwardBatch(InferenceContext* ctx, const Matrix& x_all,
                             std::span<const size_t> offsets) const;
};

// Freeze-time repacking: snapshot the layer's current parameter values
// into the transposed/fused inference layout. Call again after any
// parameter mutation (training step, LoadParameters) that should be
// visible to inference.
DenseInfer Freeze(const Dense& layer);
LstmInfer Freeze(const Lstm& layer);
BiLstmInfer Freeze(const BiLstm& layer);
StackedBiLstmInfer Freeze(const StackedBiLstm& layer);
TcnInfer Freeze(const Tcn& layer);

}  // namespace dlacep

#endif  // DLACEP_NN_INFER_H_
