// Neural-network layers: Dense, LSTM, BiLSTM, stacked BiLSTM.
//
// All layers operate on whole sequences represented as T×D matrices (one
// row per time step) and process one sequence at a time; batching is done
// by gradient accumulation across samples (see trainer.h). This matches
// the paper's setting, where an input sample is a window of 2·W events.
//
// Forward() is const and re-entrant: it only reads parameter values and
// records nodes on the caller-owned tape, so any number of threads may
// run forward passes concurrently (one tape per thread) as long as no
// optimizer step mutates the parameters — the contract the parallel
// filtration stage of DlacepPipeline relies on.

#ifndef DLACEP_NN_LAYERS_H_
#define DLACEP_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/ops.h"
#include "nn/tape.h"

namespace dlacep {

/// Anything owning trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  /// Pointers to every trainable parameter (stable across calls).
  virtual std::vector<Parameter*> Params() = 0;
};

/// Fully connected layer: y = x · W + b.
class Dense : public Module {
 public:
  Dense(std::string name, size_t in_dim, size_t out_dim, Rng* rng);

  /// x: N×in → N×out.
  Var Forward(Tape* tape, Var x) const;

  std::vector<Parameter*> Params() override { return {&w_, &b_}; }

  size_t in_dim() const { return w_.value.rows(); }
  size_t out_dim() const { return w_.value.cols(); }

  // Current parameter values — what Freeze() repacks for the
  // forward-only inference path (nn/infer.h).
  const Matrix& weight() const { return w_.value; }
  const Matrix& bias() const { return b_.value; }

 private:
  Parameter w_;
  Parameter b_;
};

/// Single-direction LSTM over a sequence (Hochreiter & Schmidhuber '97).
/// Gate layout in the fused weight matrices: [i | f | g | o].
class Lstm : public Module {
 public:
  Lstm(std::string name, size_t in_dim, size_t hidden_dim, Rng* rng);

  /// x_seq: T×in. Returns the hidden sequence T×H. When `reverse` is
  /// true the sequence is processed right-to-left and the output rows are
  /// realigned to input order (row t is the state after seeing t..T-1).
  Var Forward(Tape* tape, Var x_seq, bool reverse = false) const;

  std::vector<Parameter*> Params() override { return {&wx_, &wh_, &b_}; }

  size_t hidden_dim() const { return hidden_dim_; }

  // Current parameter values, for freeze-time repacking (nn/infer.h).
  const Matrix& wx() const { return wx_.value; }
  const Matrix& wh() const { return wh_.value; }
  const Matrix& bias() const { return b_.value; }

 private:
  size_t hidden_dim_;
  Parameter wx_;  ///< in×4H
  Parameter wh_;  ///< H×4H
  Parameter b_;   ///< 1×4H
};

/// Bidirectional LSTM: forward and backward passes concatenated per time
/// step (T×2H output), the architecture DLACEP's filters rely on (§4.1).
class BiLstm : public Module {
 public:
  BiLstm(std::string name, size_t in_dim, size_t hidden_dim, Rng* rng);

  Var Forward(Tape* tape, Var x_seq) const;

  std::vector<Parameter*> Params() override;

  size_t out_dim() const { return 2 * fwd_.hidden_dim(); }

  const Lstm& fwd() const { return fwd_; }
  const Lstm& bwd() const { return bwd_; }

 private:
  Lstm fwd_;
  Lstm bwd_;
};

/// A stack of BiLSTM layers (paper default: 3 layers, hidden 75; this
/// reproduction scales the defaults down — see dlacep/config.h).
class StackedBiLstm : public Module {
 public:
  StackedBiLstm(std::string name, size_t in_dim, size_t hidden_dim,
                size_t num_layers, Rng* rng);

  Var Forward(Tape* tape, Var x_seq) const;

  std::vector<Parameter*> Params() override;

  size_t out_dim() const;
  size_t num_layers() const { return layers_.size(); }
  const BiLstm& layer(size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<BiLstm>> layers_;
};

/// Temporal convolutional network: a stack of centered dilated Conv1D +
/// bias + ReLU blocks with dilation doubling per layer (1, 2, 4, ...).
/// The alternative filter backbone the paper's preliminary experiments
/// compared against BiLSTM (§4.1) — non-causal so that, like the
/// BiLSTM, every position sees both past and future context.
class Tcn : public Module {
 public:
  Tcn(std::string name, size_t in_dim, size_t hidden_dim,
      size_t num_layers, size_t kernel, Rng* rng);

  /// x_seq: T×in → T×hidden.
  Var Forward(Tape* tape, Var x_seq) const;

  std::vector<Parameter*> Params() override;

  size_t out_dim() const { return hidden_dim_; }
  size_t receptive_field() const;
  size_t kernel() const { return kernel_; }
  size_t num_layers() const { return weights_.size(); }
  const Matrix& weight(size_t layer) const { return weights_[layer].value; }
  const Matrix& bias(size_t layer) const { return biases_[layer].value; }

 private:
  size_t hidden_dim_;
  size_t kernel_;
  std::vector<Parameter> weights_;  ///< (K·D_l)×hidden per layer
  std::vector<Parameter> biases_;   ///< 1×hidden per layer
};

}  // namespace dlacep

#endif  // DLACEP_NN_LAYERS_H_
