#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <unordered_map>

namespace dlacep {

namespace {
constexpr char kMagic[4] = {'D', 'L', 'N', 'N'};
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Parameter* p : params) {
    const uint64_t name_len = p->name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rows = p->value.rows();
    const uint64_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(rows * cols * sizeof(double)));
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a DLNN parameter file: " + path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported DLNN version");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));

  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) by_name.emplace(p->name, p);

  size_t loaded = 0;
  for (uint64_t k = 0; k < count; ++k) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) {
      return Status::InvalidArgument("corrupt DLNN file: " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t rows = 0;
    uint64_t cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in) return Status::InvalidArgument("corrupt DLNN file: " + path);
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("unknown parameter in file: " + name);
    }
    Parameter* p = it->second;
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return Status::InvalidArgument("shape mismatch for parameter " +
                                     name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(rows * cols * sizeof(double)));
    if (!in) return Status::InvalidArgument("truncated DLNN file: " + path);
    ++loaded;
  }
  if (loaded != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch when loading " + path);
  }
  return Status::Ok();
}

}  // namespace dlacep
