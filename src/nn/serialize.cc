#include "nn/serialize.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/logging.h"
#include "nn/matrix.h"

namespace dlacep {

namespace {

constexpr char kMagic[4] = {'D', 'L', 'N', 'N'};
constexpr uint32_t kVersion = 2;

// Sanity bounds applied before any allocation driven by file contents. A
// bit-flipped dimension field must not turn into a multi-gigabyte alloc.
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxDim = 1ull << 20;
constexpr uint64_t kMaxElems = 1ull << 26;  // 64 Mi doubles = 512 MiB

void AppendRaw(std::string* buf, const void* data, size_t len) {
  buf->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendScalar(std::string* buf, T v) {
  AppendRaw(buf, &v, sizeof(v));
}

// Cursor over an in-memory payload; every read is bounds-checked so a
// truncated file fails cleanly instead of reading past the buffer.
class Reader {
 public:
  Reader(const char* data, size_t len) : data_(data), len_(len) {}

  bool Read(void* out, size_t n) {
    if (n > len_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadScalar(T* out) {
    return Read(out, sizeof(T));
  }

  bool ReadString(std::string* out, size_t n) {
    if (n > len_ - pos_) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == len_; }

 private:
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

Status ParsePayload(const std::string& path, Reader* reader,
                    const std::vector<Parameter*>& params,
                    std::unordered_map<std::string, Matrix>* staged) {
  uint64_t count = 0;
  if (!reader->ReadScalar(&count)) {
    return Status::InvalidArgument("truncated DLNN file: " + path);
  }
  std::unordered_map<std::string, Parameter*> by_name;
  for (Parameter* p : params) by_name.emplace(p->name, p);

  for (uint64_t k = 0; k < count; ++k) {
    uint64_t name_len = 0;
    if (!reader->ReadScalar(&name_len) || name_len > kMaxNameLen) {
      return Status::InvalidArgument("corrupt DLNN file: " + path);
    }
    std::string name;
    if (!reader->ReadString(&name, name_len)) {
      return Status::InvalidArgument("truncated DLNN file: " + path);
    }
    uint64_t rows = 0;
    uint64_t cols = 0;
    if (!reader->ReadScalar(&rows) || !reader->ReadScalar(&cols)) {
      return Status::InvalidArgument("truncated DLNN file: " + path);
    }
    if (rows > kMaxDim || cols > kMaxDim || rows * cols > kMaxElems) {
      return Status::InvalidArgument("implausible parameter shape for " +
                                     name + " in " + path);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("unknown parameter in file: " + name);
    }
    const Parameter* p = it->second;
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return Status::InvalidArgument("shape mismatch for parameter " + name);
    }
    if (staged->count(name) != 0) {
      return Status::InvalidArgument("duplicate parameter in file: " + name);
    }
    Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    if (!reader->Read(m.data(), rows * cols * sizeof(double))) {
      return Status::InvalidArgument("truncated DLNN file: " + path);
    }
    const double* values = m.data();
    for (uint64_t i = 0; i < rows * cols; ++i) {
      if (!std::isfinite(values[i])) {
        return Status::InvalidArgument("non-finite weight in parameter " +
                                       name + " of " + path);
      }
    }
    staged->emplace(std::move(name), std::move(m));
  }
  if (staged->size() != params.size()) {
    return Status::InvalidArgument("parameter count mismatch when loading " +
                                   path);
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::string payload;
  AppendScalar<uint64_t>(&payload, params.size());
  for (const Parameter* p : params) {
    AppendScalar<uint64_t>(&payload, p->name.size());
    AppendRaw(&payload, p->name.data(), p->name.size());
    const uint64_t rows = p->value.rows();
    const uint64_t cols = p->value.cols();
    AppendScalar<uint64_t>(&payload, rows);
    AppendScalar<uint64_t>(&payload, cols);
    AppendRaw(&payload, p->value.data(), rows * cols * sizeof(double));
  }
  const uint32_t crc = Crc32(payload.data(), payload.size());

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a DLNN parameter file: " + path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || (version != 1 && version != kVersion)) {
    return Status::InvalidArgument("unsupported DLNN version");
  }

  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (version == 1) {
    DLACEP_LOG(Warning) << "loading legacy DLNN v1 file (no checksum): "
                        << path;
  } else {
    if (body.size() < sizeof(uint32_t)) {
      return Status::InvalidArgument("truncated DLNN file: " + path);
    }
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, body.data() + body.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    body.resize(body.size() - sizeof(uint32_t));
    const uint32_t actual_crc = Crc32(body.data(), body.size());
    if (actual_crc != stored_crc) {
      return Status::InvalidArgument("checksum mismatch in DLNN file: " +
                                     path);
    }
  }

  Reader reader(body.data(), body.size());
  // Stage everything first; parameters are only overwritten after the whole
  // file validates, so a corrupt file leaves the model untouched.
  std::unordered_map<std::string, Matrix> staged;
  DLACEP_RETURN_IF_ERROR(ParsePayload(path, &reader, params, &staged));

  for (Parameter* p : params) {
    auto it = staged.find(p->name);
    if (it == staged.end()) {
      return Status::InvalidArgument("missing parameter " + p->name +
                                     " in " + path);
    }
    p->value = std::move(it->second);
  }
  return Status::Ok();
}

}  // namespace dlacep
