// Differentiable matrix operations over Tape Vars.
//
// All binary ops require operands on the same tape. Gradients of every op
// are verified against finite differences in tests/autograd_test.cc.

#ifndef DLACEP_NN_OPS_H_
#define DLACEP_NN_OPS_H_

#include <utility>
#include <vector>

#include "nn/tape.h"

namespace dlacep {
namespace ops {

/// c = a × b.
Var MatMul(Var a, Var b);

/// Elementwise ops (same shape).
Var Add(Var a, Var b);
Var Sub(Var a, Var b);
Var Mul(Var a, Var b);

/// c = scale * a.
Var Scale(Var a, double scale);

/// c = m + row (row broadcast over every row of m; row is 1×C).
Var AddBroadcastRow(Var m, Var row);
/// c = m + col (col broadcast over every column of m; col is R×1).
Var AddBroadcastCol(Var m, Var col);

/// Pointwise nonlinearities.
Var Sigmoid(Var a);
Var Tanh(Var a);
Var Relu(Var a);

/// Row / column slices: rows [from, from+count), cols [from, from+count).
Var SliceRows(Var a, size_t from, size_t count);
Var SliceCols(Var a, size_t from, size_t count);

/// Vertical / horizontal concatenation.
Var ConcatRows(const std::vector<Var>& parts);
Var ConcatCols(const std::vector<Var>& parts);

/// c = a^T.
Var Transpose(Var a);

/// Column-wise max pooling: 1×C row of per-column maxima. Gradient flows
/// to the (first) argmax entry of each column.
Var MaxOverRows(Var a);

/// Scalar reductions (1×1 results).
Var SumAll(Var a);
Var MeanAll(Var a);

/// Sum of selected entries (r, c) of `a`, as a 1×1 scalar. Entries may
/// repeat; each occurrence contributes once.
Var PickSum(Var a, std::vector<std::pair<size_t, size_t>> entries);

/// Numerically stable log-sum-exp reducing over rows (result 1×C) or
/// over columns (result R×1).
Var LogSumExpOverRows(Var a);
Var LogSumExpOverCols(Var a);

/// Mean binary-cross-entropy-with-logits loss: targets in {0,1}, same
/// shape as logits; result 1×1. Numerically stable formulation.
Var BceWithLogits(Var logits, const Matrix& targets);

/// Centered dilated 1-D convolution over a sequence.
/// x: T×Din; w: (K·Din)×Dout with tap k occupying rows
/// [k·Din, (k+1)·Din); result: T×Dout with
///   out[t] = Σ_k x[t + (k − K/2)·dilation] · w_k
/// (zero padding outside the sequence). The building block of the TCN
/// alternative filter backbone (paper §4.1 preliminary comparison).
Var Conv1D(Var x, Var w, size_t kernel, size_t dilation);

}  // namespace ops
}  // namespace dlacep

#endif  // DLACEP_NN_OPS_H_
