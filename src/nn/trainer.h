// Generic training loop for sequence-labeling models, implementing the
// paper's protocol (§5.1): varying batch size, dynamic learning rate
// (1e-3 → 1e-4), and a convergence rule — stop at the first epoch in
// which the loss has stayed within a 0.01 band for 5 consecutive epochs.

#ifndef DLACEP_NN_TRAINER_H_
#define DLACEP_NN_TRAINER_H_

#include <functional>
#include <vector>

#include "nn/optimizer.h"
#include "nn/tape.h"

namespace dlacep {

/// One training sample: a feature sequence (T×D) and either T per-event
/// labels (event network) or a single window label (window network).
struct Sample {
  Matrix features;
  std::vector<int> labels;
};

/// The trainable-model contract the trainer understands.
class SequenceModel {
 public:
  virtual ~SequenceModel() = default;

  /// Builds the forward graph for one sample and returns its scalar loss.
  virtual Var Loss(Tape* tape, const Sample& sample) = 0;

  virtual std::vector<Parameter*> Params() = 0;
};

struct TrainConfig {
  size_t max_epochs = 30;
  size_t batch_size = 16;      ///< samples per optimizer step
  double lr_initial = 1e-3;    ///< paper: 0.001 decaying to 0.0001
  double lr_final = 1e-4;
  double grad_clip = 5.0;
  /// Convergence: loss stays within `convergence_band` of the running
  /// reference for `convergence_epochs` consecutive epochs (paper §5.1).
  double convergence_band = 0.01;
  size_t convergence_epochs = 5;
  uint64_t shuffle_seed = 13;
  bool verbose = false;
  /// Invoked after every epoch with (epoch, mean loss); may be empty.
  /// Returning false stops training early (used by the Fig 11 epoch
  /// sweep to snapshot intermediate models).
  std::function<bool(size_t, double)> on_epoch;
};

struct TrainResult {
  size_t epochs_run = 0;
  double final_loss = 0.0;
  bool converged = false;
  std::vector<double> loss_history;
};

/// Runs mini-batch Adam over `samples` until convergence or max_epochs.
TrainResult Train(SequenceModel* model, const std::vector<Sample>& samples,
                  const TrainConfig& config);

}  // namespace dlacep

#endif  // DLACEP_NN_TRAINER_H_
