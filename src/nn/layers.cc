#include "nn/layers.h"

namespace dlacep {

using ops::Add;
using ops::AddBroadcastRow;
using ops::ConcatCols;
using ops::ConcatRows;
using ops::MatMul;
using ops::Mul;
using ops::Sigmoid;
using ops::SliceCols;
using ops::SliceRows;
using ops::Tanh;

Dense::Dense(std::string name, size_t in_dim, size_t out_dim, Rng* rng)
    : w_(name + ".W", Matrix::Xavier(in_dim, out_dim, rng)),
      b_(name + ".b", Matrix::Zeros(1, out_dim)) {}

Var Dense::Forward(Tape* tape, Var x) const {
  Var w = tape->Param(&w_);
  Var b = tape->Param(&b_);
  return AddBroadcastRow(MatMul(x, w), b);
}

Lstm::Lstm(std::string name, size_t in_dim, size_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      wx_(name + ".Wx", Matrix::Xavier(in_dim, 4 * hidden_dim, rng)),
      wh_(name + ".Wh", Matrix::Xavier(hidden_dim, 4 * hidden_dim, rng)),
      b_(name + ".b", Matrix::Zeros(1, 4 * hidden_dim)) {
  // Standard trick: bias the forget gate open so gradients flow early in
  // training.
  for (size_t j = 0; j < hidden_dim; ++j) {
    b_.value(0, hidden_dim + j) = 1.0;
  }
}

Var Lstm::Forward(Tape* tape, Var x_seq, bool reverse) const {
  const size_t t_steps = x_seq.value().rows();
  DLACEP_CHECK_GT(t_steps, 0u);
  const size_t h = hidden_dim_;

  Var wx = tape->Param(&wx_);
  Var wh = tape->Param(&wh_);
  Var b = tape->Param(&b_);

  Var h_prev = tape->Input(Matrix::Zeros(1, h));
  Var c_prev = tape->Input(Matrix::Zeros(1, h));

  std::vector<Var> outputs(t_steps);
  for (size_t step = 0; step < t_steps; ++step) {
    const size_t t = reverse ? t_steps - 1 - step : step;
    Var x_t = SliceRows(x_seq, t, 1);
    // gates = x_t·Wx + h_prev·Wh + b, fused as one 1×4H row.
    Var gates =
        AddBroadcastRow(Add(MatMul(x_t, wx), MatMul(h_prev, wh)), b);
    Var i_gate = Sigmoid(SliceCols(gates, 0, h));
    Var f_gate = Sigmoid(SliceCols(gates, h, h));
    Var g_gate = Tanh(SliceCols(gates, 2 * h, h));
    Var o_gate = Sigmoid(SliceCols(gates, 3 * h, h));
    Var c_t = Add(Mul(f_gate, c_prev), Mul(i_gate, g_gate));
    Var h_t = Mul(o_gate, Tanh(c_t));
    outputs[t] = h_t;
    h_prev = h_t;
    c_prev = c_t;
  }
  return ConcatRows(outputs);
}

BiLstm::BiLstm(std::string name, size_t in_dim, size_t hidden_dim, Rng* rng)
    : fwd_(name + ".fwd", in_dim, hidden_dim, rng),
      bwd_(name + ".bwd", in_dim, hidden_dim, rng) {}

Var BiLstm::Forward(Tape* tape, Var x_seq) const {
  Var forward = fwd_.Forward(tape, x_seq, /*reverse=*/false);
  Var backward = bwd_.Forward(tape, x_seq, /*reverse=*/true);
  return ConcatCols({forward, backward});
}

std::vector<Parameter*> BiLstm::Params() {
  std::vector<Parameter*> params = fwd_.Params();
  for (Parameter* p : bwd_.Params()) params.push_back(p);
  return params;
}

StackedBiLstm::StackedBiLstm(std::string name, size_t in_dim,
                             size_t hidden_dim, size_t num_layers,
                             Rng* rng) {
  DLACEP_CHECK_GE(num_layers, 1u);
  size_t dim = in_dim;
  for (size_t layer = 0; layer < num_layers; ++layer) {
    layers_.push_back(std::make_unique<BiLstm>(
        name + ".l" + std::to_string(layer), dim, hidden_dim, rng));
    dim = 2 * hidden_dim;
  }
}

Var StackedBiLstm::Forward(Tape* tape, Var x_seq) const {
  Var out = x_seq;
  for (const auto& layer : layers_) {
    out = layer->Forward(tape, out);
  }
  return out;
}

std::vector<Parameter*> StackedBiLstm::Params() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Params()) params.push_back(p);
  }
  return params;
}

size_t StackedBiLstm::out_dim() const {
  return layers_.back()->out_dim();
}

Tcn::Tcn(std::string name, size_t in_dim, size_t hidden_dim,
         size_t num_layers, size_t kernel, Rng* rng)
    : hidden_dim_(hidden_dim), kernel_(kernel) {
  DLACEP_CHECK_GE(num_layers, 1u);
  DLACEP_CHECK_GE(kernel, 1u);
  size_t dim = in_dim;
  for (size_t layer = 0; layer < num_layers; ++layer) {
    weights_.emplace_back(
        name + ".w" + std::to_string(layer),
        Matrix::Xavier(kernel * dim, hidden_dim, rng));
    biases_.emplace_back(name + ".b" + std::to_string(layer),
                         Matrix::Zeros(1, hidden_dim));
    dim = hidden_dim;
  }
}

Var Tcn::Forward(Tape* tape, Var x_seq) const {
  Var out = x_seq;
  size_t dilation = 1;
  for (size_t layer = 0; layer < weights_.size(); ++layer) {
    Var w = tape->Param(&weights_[layer]);
    Var b = tape->Param(&biases_[layer]);
    out = ops::Relu(ops::AddBroadcastRow(
        ops::Conv1D(out, w, kernel_, dilation), b));
    dilation *= 2;
  }
  return out;
}

std::vector<Parameter*> Tcn::Params() {
  std::vector<Parameter*> params;
  for (size_t layer = 0; layer < weights_.size(); ++layer) {
    params.push_back(&weights_[layer]);
    params.push_back(&biases_[layer]);
  }
  return params;
}

size_t Tcn::receptive_field() const {
  // Centered kernel K with dilations 1, 2, ..., 2^(L-1):
  // field = 1 + (K - 1) * (2^L - 1).
  const size_t layers = weights_.size();
  return 1 + (kernel_ - 1) * ((size_t{1} << layers) - 1);
}

}  // namespace dlacep
