#include "cep/match.h"

#include <algorithm>
#include <sstream>

namespace dlacep {

Match::Match(std::vector<EventId> ids_in) : ids(std::move(ids_in)) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

EventId Match::IdSpan() const {
  if (ids.empty()) return 0;
  return ids.back() - ids.front();
}

std::string Match::ToString() const {
  std::ostringstream out;
  out << '{';
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ',';
    out << ids[i];
  }
  out << '}';
  return out.str();
}

Match MatchFromBinding(const Binding& binding) {
  std::vector<EventId> ids;
  for (const Event* e : binding.AllEvents()) ids.push_back(e->id);
  return Match(std::move(ids));
}

bool MatchSet::Insert(Match match) {
  return matches_.insert(std::move(match)).second;
}

void MatchSet::Merge(const MatchSet& other) {
  matches_.insert(other.matches_.begin(), other.matches_.end());
}

size_t MatchSet::IntersectionSize(const MatchSet& other) const {
  const MatchSet* small = this;
  const MatchSet* large = &other;
  if (small->size() > large->size()) std::swap(small, large);
  size_t common = 0;
  for (const Match& m : *small) {
    if (large->Contains(m)) ++common;
  }
  return common;
}

MatchSetMetrics CompareMatchSets(const MatchSet& exact,
                                 const MatchSet& approx) {
  MatchSetMetrics metrics;
  metrics.exact_count = exact.size();
  metrics.approx_count = approx.size();
  metrics.common_count = exact.IntersectionSize(approx);
  metrics.recall =
      exact.empty() ? 1.0
                    : static_cast<double>(metrics.common_count) /
                          static_cast<double>(exact.size());
  metrics.precision =
      approx.empty() ? 1.0
                     : static_cast<double>(metrics.common_count) /
                           static_cast<double>(approx.size());
  metrics.f1 = (metrics.recall + metrics.precision) > 0
                   ? 2.0 * metrics.precision * metrics.recall /
                         (metrics.precision + metrics.recall)
                   : 0.0;
  const size_t union_count =
      exact.size() + approx.size() - metrics.common_count;
  metrics.jaccard = union_count == 0
                        ? 1.0
                        : static_cast<double>(metrics.common_count) /
                              static_cast<double>(union_count);
  metrics.false_negative_pct = (1.0 - metrics.recall) * 100.0;
  return metrics;
}

}  // namespace dlacep
