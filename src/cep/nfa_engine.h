// NFA-based evaluation engine — the paper's baseline ECEP mechanism
// (§2.1, Fig 2).
//
// Each stored partial match is an automaton "prefix": a partial
// assignment of events to plan positions. Under skip-till-any-match,
// every arriving event may extend every stored partial match (creating a
// copy — the original remains stored) or start a new one. This is the
// mechanism whose partial-match count explodes exponentially with the
// window size, motivating DLACEP.
//
// Supports the full pattern class of pattern.h: SEQ/CONJ/DISJ branches,
// KC positions, top-level KC(SEQ) group repetition, and NEG sub-patterns
// (checked at emission against the evaluated span).

#ifndef DLACEP_CEP_NFA_ENGINE_H_
#define DLACEP_CEP_NFA_ENGINE_H_

#include <vector>

#include "cep/engine.h"

namespace dlacep {

class NfaEngine : public CepEngine {
 public:
  /// Fails (kUnimplemented / kInvalidArgument) when the pattern is
  /// outside the supported class.
  static StatusOr<std::unique_ptr<NfaEngine>> Create(
      const Pattern& pattern, const EngineOptions& options);

  std::string name() const override { return "nfa"; }

  Status Evaluate(std::span<const Event> events, MatchSet* out) override;

 private:
  NfaEngine(Pattern pattern, EngineOptions options);

  /// One automaton prefix.
  struct PartialMatch {
    uint64_t mask = 0;    ///< positions filled in the current repetition
    uint32_t reps = 0;    ///< completed group repetitions
    Binding binding;
    EventId first_id = 0;
    double first_ts = 0.0;
  };

  void EvaluatePlan(const LinearPlan& plan, std::span<const Event> events,
                    MatchSet* out, EngineBudget* budget);

  /// Prunes conditions made checkable by binding `var`; returns false
  /// when the candidate partial match is contradicted.
  bool PassesPruning(const LinearPlan& plan, const Binding& binding,
                     VarId var) const;

  /// Emits the match if the partial match is complete and valid.
  void MaybeEmit(const LinearPlan& plan, const PartialMatch& pm,
                 std::span<const Event> events, MatchSet* out);

  Pattern pattern_;
  EngineOptions options_;
  std::vector<LinearPlan> plans_;
  uint64_t full_mask_ = 0;  // per-plan value computed during evaluation
};

}  // namespace dlacep

#endif  // DLACEP_CEP_NFA_ENGINE_H_
