#include "cep/lazy_engine.h"

#include <algorithm>
#include <cmath>

#include "stream/window.h"

namespace dlacep {

LazyEngine::LazyEngine(Pattern pattern, EngineOptions options)
    : pattern_(std::move(pattern)), options_(options) {}

StatusOr<std::unique_ptr<LazyEngine>> LazyEngine::Create(
    const Pattern& pattern, const EngineOptions& options) {
  std::unique_ptr<LazyEngine> engine(new LazyEngine(pattern, options));
  auto plans = CompilePlans(engine->pattern_);
  if (!plans.ok()) return plans.status();
  engine->plans_ = std::move(plans).value();
  for (const LinearPlan& plan : engine->plans_) {
    if (plan.group_repeat || !plan.negs.empty()) {
      return Status::Unimplemented(
          "lazy engine supports SEQ/CONJ/DISJ of primitives only");
    }
    for (const PlanPosition& pos : plan.positions) {
      if (pos.kleene) {
        return Status::Unimplemented(
            "lazy engine does not support Kleene closure");
      }
    }
  }
  return engine;
}

namespace {

/// Backtracking join over one plan in least-frequent-type-first order.
class LazySearch {
 public:
  LazySearch(const LinearPlan& plan, const Pattern& pattern,
             std::span<const Event> events,
             const std::vector<std::pair<int32_t, double>>& frequencies,
             EngineStats* stats, MatchSet* out, EngineBudget* budget)
      : plan_(plan),
        pattern_(pattern),
        events_(events),
        stats_(stats),
        out_(out),
        budget_(budget),
        binding_(pattern.num_vars()),
        bound_(plan.num_positions(), nullptr) {
    candidates_.resize(plan_.num_positions());
    for (const Event& e : events_) {
      if (e.is_blank()) continue;
      for (size_t p = 0; p < plan_.num_positions(); ++p) {
        if (plan_.positions[p].Matches(e.type)) {
          candidates_[p].push_back(&e);
        }
      }
    }
    // Lazy evaluation order: ascending frequency of the position's
    // accepted types. With an external estimate installed the chain is
    // ordered by the estimated per-position rate (the decayed runtime
    // counts outlive any one span); otherwise the span's own bucket
    // sizes stand in. Both orderings are deterministic (stable sort,
    // position index breaking ties) and affect pruning only.
    order_.resize(plan_.num_positions());
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    if (frequencies.empty()) {
      std::stable_sort(order_.begin(), order_.end(),
                       [&](size_t a, size_t b) {
                         return candidates_[a].size() <
                                candidates_[b].size();
                       });
    } else {
      std::vector<double> weight(plan_.num_positions(), 0.0);
      for (size_t p = 0; p < plan_.num_positions(); ++p) {
        for (const auto& [type, count] : frequencies) {
          if (plan_.positions[p].Matches(type)) weight[p] += count;
        }
      }
      std::stable_sort(order_.begin(), order_.end(),
                       [&](size_t a, size_t b) {
                         return weight[a] < weight[b];
                       });
    }
  }

  void Run() { Rec(0); }

 private:
  bool AlreadyBound(const Event* e) const {
    for (const Event* b : bound_) {
      if (b == e) return true;
    }
    return false;
  }

  void Rec(size_t order_index) {
    if (budget_->exceeded()) return;
    if (order_index == order_.size()) {
      for (const Condition* condition : plan_.pos_conditions) {
        if (!condition->Eval(binding_)) return;
      }
      if (!FitsWindow(binding_.AllEvents(), pattern_.window())) return;
      ++stats_->matches_emitted;
      out_->Insert(MatchFromBinding(binding_));
      return;
    }
    const size_t p = order_[order_index];
    const PlanPosition& pos = plan_.positions[p];
    const auto& bucket = candidates_[p];
    if (bucket.empty()) return;

    // Id bounds from the precedence relation against bound positions.
    EventId lb = 0;
    bool has_lb = false;
    EventId ub = ~EventId{0};
    bool has_ub = false;
    for (size_t q = 0; q < plan_.num_positions(); ++q) {
      const Event* bq = bound_[q];
      if (bq == nullptr) continue;
      if ((plan_.preds[p] >> q) & 1) {  // q must precede p
        if (!has_lb || bq->id >= lb) {
          lb = bq->id + 1;
          has_lb = true;
        }
      }
      if ((plan_.preds[q] >> p) & 1) {  // p must precede q
        if (!has_ub || bq->id <= ub) {
          ub = bq->id == 0 ? 0 : bq->id - 1;
          has_ub = true;
          if (bq->id == 0) return;  // nothing can precede id 0
        }
      }
    }
    // Count-window bounds against everything bound so far.
    const WindowSpec& window = pattern_.window();
    if (window.kind == WindowKind::kCount) {
      const EventId w = static_cast<EventId>(window.count_size()) - 1;
      for (const Event* b : bound_) {
        if (b == nullptr) continue;
        if (b->id > w) lb = std::max(lb, b->id - w);
        ub = std::min(ub, b->id + w);
      }
    }
    if (lb > ub) return;

    auto it = std::lower_bound(
        bucket.begin(), bucket.end(), lb,
        [](const Event* e, EventId id) { return e->id < id; });
    for (; it != bucket.end() && (*it)->id <= ub; ++it) {
      if (!budget_->OnWork()) return;
      const Event* e = *it;
      // Each examined candidate is one chain step; it either prunes or
      // survives as a search node, so (like the NFA's edge traversals)
      // transitions == partial_matches + partial_matches_pruned.
      ++stats_->transitions;
      if (AlreadyBound(e)) {
        ++stats_->partial_matches_pruned;
        continue;
      }
      if (window.kind == WindowKind::kTime) {
        bool ok = true;
        for (const Event* b : bound_) {
          if (b != nullptr &&
              std::abs(b->timestamp - e->timestamp) > window.size) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          ++stats_->partial_matches_pruned;
          continue;
        }
      }
      binding_.Bind(pos.var, e);
      bound_[p] = e;
      bool pass = true;
      for (const Condition* condition : plan_.pos_conditions) {
        bool references = false;
        for (VarId v : condition->Vars()) {
          if (v == pos.var) {
            references = true;
            break;
          }
        }
        if (!references) continue;
        if (!ReadyForPruningEval(*condition, binding_, pattern_)) continue;
        if (!condition->Eval(binding_)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        ++stats_->partial_matches;  // a surviving search node
        if (!budget_->OnPartialMatch()) return;
        Rec(order_index + 1);
      } else {
        ++stats_->partial_matches_pruned;
      }
      bound_[p] = nullptr;
      binding_.Unbind(pos.var);
    }
  }

  const LinearPlan& plan_;
  const Pattern& pattern_;
  std::span<const Event> events_;
  EngineStats* stats_;
  MatchSet* out_;
  EngineBudget* budget_;
  Binding binding_;
  std::vector<const Event*> bound_;  ///< per plan position
  std::vector<std::vector<const Event*>> candidates_;  ///< per position
  std::vector<size_t> order_;
};

}  // namespace

void LazyEngine::EvaluatePlan(const LinearPlan& plan,
                              std::span<const Event> events, MatchSet* out,
                              EngineBudget* budget) {
  LazySearch search(plan, pattern_, events, type_frequencies_, &stats_, out,
                    budget);
  search.Run();
}

Status LazyEngine::Evaluate(std::span<const Event> events, MatchSet* out) {
  DLACEP_CHECK(out != nullptr);
  Stopwatch watch;
  EngineBudget budget(options_);
  const bool budgeted =
      options_.partial_match_budget > 0 || options_.deadline_seconds > 0.0;
  MatchSet local;
  MatchSet* sink = budgeted ? &local : out;
  for (const LinearPlan& plan : plans_) {
    EvaluatePlan(plan, events, sink, &budget);
    if (budget.exceeded()) break;
  }
  stats_.events_processed += events.size();
  ++stats_.evaluations;
  stats_.elapsed_seconds += watch.ElapsedSeconds();
  if (budget.exceeded()) {
    ++stats_.budget_aborts;
    return budget.ToStatus("lazy");
  }
  if (budgeted) out->Merge(local);
  return Status::Ok();
}

}  // namespace dlacep
