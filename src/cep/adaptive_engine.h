// Runtime-adaptive engine selection (ROADMAP item 4).
//
// AdaptiveEngine is a CepEngine that owns one instance of every static
// engine the pattern supports (the NFA always; the tree and lazy
// engines when the pattern is inside their SEQ/CONJ/DISJ-of-primitives
// class) and delegates each Evaluate() to the currently cheapest one.
//
// The cost model ranks candidates by expected work per event. For an
// engine that has already run, the observed EngineStats estimate
// (transitions + partial_matches) / events_processed is used directly.
// For one that hasn't, an analytic estimate from the runtime per-type
// frequency counts stands in: prefix products of expected per-window
// position counts — in chain order for the NFA (eager prefixes), in
// ascending-frequency order for the lazy engine (the chain-automaton
// reordering), ascending with a join-materialization surcharge for the
// tree — scaled by the incumbent's observed/analytic ratio so the two
// kinds of estimate share units. A challenger must undercut the
// incumbent by the hysteresis factor before the selection switches.
//
// Re-evaluation cadence: every adaptive_reselect_windows observations.
// An observation is either an explicit ObserveWindow() call (the online
// runtime feeds each router-closed window — deterministic, off the
// worker threads) or, when no caller ever feeds windows, each
// Evaluate() span observes itself (the batch extractor and the serving
// chunk loop). Both observation streams are pure functions of the event
// stream, and the delegate merges matches the same way it would
// standalone, so adaptive runs — including budget aborts, which are the
// selected delegate's verbatim — stay byte-identical to every static
// engine.
//
// Snapshot()/Restore() persist the selection + frequency state for the
// checkpoint path: a resumed run re-observes the remaining windows from
// the same counters and lands on the same final selection.

#ifndef DLACEP_CEP_ADAPTIVE_ENGINE_H_
#define DLACEP_CEP_ADAPTIVE_ENGINE_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cep/engine.h"
#include "cep/frequency.h"
#include "cep/lazy_engine.h"

namespace dlacep {

/// Checkpoint-serializable selector state.
struct AdaptiveSnapshot {
  int32_t selected = 0;  ///< EngineKind of the current selection
  uint64_t windows_observed = 0;
  uint64_t switches = 0;
  uint8_t external_feed = 0;
  std::vector<std::pair<int32_t, double>> frequencies;
};

class AdaptiveEngine : public CepEngine {
 public:
  /// Never fails on a validated pattern: shapes outside the tree/lazy
  /// class simply leave the NFA as the only candidate.
  static StatusOr<std::unique_ptr<AdaptiveEngine>> Create(
      const Pattern& pattern, const EngineOptions& options);

  std::string name() const override { return "adaptive"; }

  Status Evaluate(std::span<const Event> events, MatchSet* out) override;

  /// Feeds one closed window into the frequency estimator and, every
  /// adaptive_reselect_windows observations, re-evaluates the engine
  /// choice. Calling this puts the selector into external-feed mode:
  /// Evaluate() stops observing its own spans.
  void ObserveWindow(std::span<const Event> events);

  /// Called with the chosen kind after every (re)selection decision,
  /// switch or not — the owner publishes it to obs. Runs on the thread
  /// that triggered the decision.
  void set_selection_hook(std::function<void(EngineKind)> hook) {
    hook_ = std::move(hook);
  }

  EngineKind selected_kind() const {
    return candidates_[selected_].kind;
  }
  uint64_t switches() const { return switches_; }
  uint64_t windows_observed() const { return windows_observed_; }

  std::vector<EngineKind> candidate_kinds() const;

  AdaptiveSnapshot Snapshot() const;
  Status Restore(const AdaptiveSnapshot& snapshot);

 private:
  struct Candidate {
    EngineKind kind;
    std::unique_ptr<CepEngine> engine;
    LazyEngine* lazy = nullptr;  ///< typed alias when kind == kLazy
  };

  AdaptiveEngine(Pattern pattern, EngineOptions options);

  /// Cost-model pass: pick the cheapest candidate (with hysteresis),
  /// decay the frequency counts, push the fresh estimate into the lazy
  /// chain, and fire the selection hook.
  void Reselect();
  double CostOf(const Candidate& candidate, double calibration) const;
  double AnalyticCost(EngineKind kind) const;

  Pattern pattern_;
  EngineOptions options_;
  std::vector<LinearPlan> plans_;
  std::vector<Candidate> candidates_;
  TypeFrequencyEstimator frequencies_;
  size_t selected_ = 0;  ///< index into candidates_; 0 is the NFA
  uint64_t windows_observed_ = 0;
  uint64_t switches_ = 0;
  bool external_feed_ = false;
  std::function<void(EngineKind)> hook_;
};

}  // namespace dlacep

#endif  // DLACEP_CEP_ADAPTIVE_ENGINE_H_
