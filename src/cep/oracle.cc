#include "cep/oracle.h"

#include <algorithm>
#include <vector>

#include "pattern/plan.h"
#include "stream/window.h"

namespace dlacep {

namespace {

/// Shared enumeration state for one plan.
class OracleSearch {
 public:
  OracleSearch(const LinearPlan& plan, std::span<const Event> events,
               const std::function<void(const Binding&)>& on_match)
      : plan_(plan),
        events_(events),
        on_match_(on_match),
        binding_(plan.pattern->num_vars()) {
    // Candidate events per plan position, ascending id (the span is
    // already sorted).
    candidates_.resize(plan_.num_positions());
    for (const Event& e : events_) {
      if (e.is_blank()) continue;
      for (size_t p = 0; p < plan_.num_positions(); ++p) {
        if (plan_.positions[p].Matches(e.type)) {
          candidates_[p].push_back(&e);
        }
      }
    }
  }

  void Run() {
    const size_t reps = plan_.group_repeat ? plan_.group_max_reps : 1;
    RecPosition(0, /*rep=*/0, /*max_reps=*/reps, /*rep_floor=*/0);
  }

 private:
  static size_t FirstAfter(const std::vector<const Event*>& bucket,
                           EventId floor) {
    auto it = std::upper_bound(
        bucket.begin(), bucket.end(), floor,
        [](EventId id, const Event* e) { return id < e->id; });
    return static_cast<size_t>(it - bucket.begin());
  }

  bool AlreadyBound(const Event* e) const {
    for (const auto& slot : binding_.slots) {
      for (const Event* bound : slot) {
        if (bound == e) return true;
      }
    }
    return false;
  }

  /// Window prune: would adding `e` necessarily break the window?
  bool BreaksWindow(const Event& e) const {
    const WindowSpec& window = plan_.pattern->window();
    bool any = false;
    EventId lo_id = e.id, hi_id = e.id;
    double lo_ts = e.timestamp, hi_ts = e.timestamp;
    for (const auto& slot : binding_.slots) {
      for (const Event* bound : slot) {
        any = true;
        lo_id = std::min(lo_id, bound->id);
        hi_id = std::max(hi_id, bound->id);
        lo_ts = std::min(lo_ts, bound->timestamp);
        hi_ts = std::max(hi_ts, bound->timestamp);
      }
    }
    if (!any) return false;
    if (window.kind == WindowKind::kCount) {
      return hi_id - lo_id > static_cast<EventId>(window.count_size()) - 1;
    }
    return hi_ts - lo_ts > window.size;
  }

  /// Floor imposed on position `index` in repetition `rep` by precedence
  /// (all events bound to predecessor positions) and by the previous
  /// repetition (`rep_floor` for the first position of a repetition).
  EventId FloorFor(size_t index, size_t rep, EventId rep_floor) const {
    EventId floor = 0;
    if (rep > 0 && index == 0) floor = rep_floor;
    const uint64_t preds = plan_.preds[index];
    for (size_t j = 0; j < plan_.num_positions(); ++j) {
      if (!((preds >> j) & 1)) continue;
      const VarId v = plan_.positions[j].var;
      if (!binding_.IsBound(v)) continue;
      for (const Event* e : binding_.Of(v)) {
        floor = std::max(floor, e->id);
      }
    }
    return floor;
  }

  /// Emits the current complete assignment if all final checks pass.
  void EmitIfValid() {
    for (const Condition* condition : plan_.pos_conditions) {
      if (!condition->Eval(binding_)) return;
    }
    const std::vector<const Event*> all = binding_.AllEvents();
    if (!FitsWindow(all, plan_.pattern->window())) return;
    if (ViolatesNegation(plan_, binding_, events_)) return;
    on_match_(binding_);
  }

  /// Tries every assignment of positions [index..) within repetition
  /// `rep`; `max_reps` bounds group repetitions; `rep_floor` is the last
  /// event id of the previous repetition.
  void RecPosition(size_t index, size_t rep, size_t max_reps,
                   EventId rep_floor) {
    if (index == plan_.num_positions()) {
      // Repetition complete.
      const size_t done = rep + 1;
      if (!plan_.group_repeat) {
        EmitIfValid();
        return;
      }
      if (done >= plan_.group_min_reps) EmitIfValid();
      if (done < max_reps) {
        // Events of the next repetition must follow everything bound in
        // this one; the chain within a repetition makes the last
        // position's event the maximum.
        EventId next_floor = 0;
        for (const auto& slot : binding_.slots) {
          for (const Event* e : slot) {
            next_floor = std::max(next_floor, e->id);
          }
        }
        RecPosition(0, rep + 1, max_reps, next_floor);
      }
      return;
    }

    const PlanPosition& pos = plan_.positions[index];
    const std::vector<const Event*>& bucket = candidates_[index];
    if (bucket.empty()) return;
    const EventId floor = FloorFor(index, rep, rep_floor);
    const size_t start =
        (floor == 0 && rep == 0 && plan_.preds[index] == 0)
            ? 0
            : FirstAfter(bucket, floor);

    if (!pos.kleene) {
      for (size_t i = start; i < bucket.size(); ++i) {
        const Event* e = bucket[i];
        if (AlreadyBound(e) || BreaksWindow(*e)) continue;
        binding_.Bind(pos.var, e);
        RecPosition(index + 1, rep, max_reps, rep_floor);
        binding_.Unbind(pos.var);
      }
      return;
    }
    // Kleene position: absorb an ascending run of 1..max_reps events.
    RecKleene(index, rep, max_reps, rep_floor, start, 0, bucket);
  }

  void RecKleene(size_t index, size_t rep, size_t max_reps,
                 EventId rep_floor, size_t bucket_start, size_t absorbed,
                 const std::vector<const Event*>& bucket) {
    const PlanPosition& pos = plan_.positions[index];
    if (absorbed >= pos.min_reps) {
      RecPosition(index + 1, rep, max_reps, rep_floor);
    }
    if (absorbed >= pos.max_reps) return;
    for (size_t i = bucket_start; i < bucket.size(); ++i) {
      const Event* e = bucket[i];
      if (AlreadyBound(e) || BreaksWindow(*e)) continue;
      binding_.Bind(pos.var, e);
      RecKleene(index, rep, max_reps, rep_floor, i + 1, absorbed + 1,
                bucket);
      binding_.Unbind(pos.var);
    }
  }

  const LinearPlan& plan_;
  std::span<const Event> events_;
  const std::function<void(const Binding&)>& on_match_;
  Binding binding_;
  std::vector<std::vector<const Event*>> candidates_;  ///< per position
};

}  // namespace

void ForEachMatch(const Pattern& pattern, std::span<const Event> events,
                  const std::function<void(const Binding&)>& on_match) {
  auto plans = CompilePlans(pattern);
  DLACEP_CHECK_MSG(plans.ok(), plans.status().ToString());
  for (const LinearPlan& plan : plans.value()) {
    OracleSearch search(plan, events, on_match);
    search.Run();
  }
}

MatchSet EnumerateAllMatches(const Pattern& pattern,
                             std::span<const Event> events) {
  MatchSet out;
  ForEachMatch(pattern, events, [&out](const Binding& binding) {
    out.Insert(MatchFromBinding(binding));
  });
  return out;
}

}  // namespace dlacep
