// Brute-force match enumerator.
//
// A deliberately naive, clearly-correct implementation of the match
// semantics (see pattern/pattern.h): recursively enumerate every
// assignment of stream events to plan positions, check every constraint
// at the end. Exponential — use only on small spans. It is the ground
// truth that the production engines are property-tested against, and the
// labeling oracle for DLACEP training samples.

#ifndef DLACEP_CEP_ORACLE_H_
#define DLACEP_CEP_ORACLE_H_

#include <functional>
#include <span>

#include "cep/match.h"
#include "pattern/pattern.h"

namespace dlacep {

/// Enumerates every full match of `pattern` within `events` (sorted by
/// id). Deduplicated by event-id set.
MatchSet EnumerateAllMatches(const Pattern& pattern,
                             std::span<const Event> events);

/// Like EnumerateAllMatches but invokes `on_match` with the full binding
/// of each (pre-deduplication) match. Used by the DLACEP labeler, which
/// needs the bound events, not just their ids.
void ForEachMatch(const Pattern& pattern, std::span<const Event> events,
                  const std::function<void(const Binding&)>& on_match);

}  // namespace dlacep

#endif  // DLACEP_CEP_ORACLE_H_
