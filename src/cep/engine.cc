#include "cep/engine.h"

#include "cep/adaptive_engine.h"
#include "cep/lazy_engine.h"
#include "cep/nfa_engine.h"
#include "cep/tree_engine.h"

namespace dlacep {

Status EngineBudget::ToStatus(const char* engine) const {
  std::string msg(engine);
  if (pm_budget_ > 0 && pm_created_ > pm_budget_) {
    msg += ": partial-match budget of " + std::to_string(pm_budget_) +
           " exhausted";
  } else {
    msg += ": deadline of " + std::to_string(deadline_seconds_) +
           "s exceeded";
  }
  return Status::BudgetExceeded(std::move(msg));
}

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNfa: return "nfa";
    case EngineKind::kTree: return "zstream-tree";
    case EngineKind::kLazy: return "lazy";
    case EngineKind::kAdaptive: return "adaptive";
  }
  return "?";
}

StatusOr<std::unique_ptr<CepEngine>> CreateEngine(
    EngineKind kind, const Pattern& pattern, const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kNfa: {
      auto engine = NfaEngine::Create(pattern, options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<CepEngine>(std::move(engine).value());
    }
    case EngineKind::kTree: {
      auto engine = TreeEngine::Create(pattern, options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<CepEngine>(std::move(engine).value());
    }
    case EngineKind::kLazy: {
      auto engine = LazyEngine::Create(pattern, options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<CepEngine>(std::move(engine).value());
    }
    case EngineKind::kAdaptive: {
      auto engine = AdaptiveEngine::Create(pattern, options);
      if (!engine.ok()) return engine.status();
      return std::unique_ptr<CepEngine>(std::move(engine).value());
    }
  }
  return Status::InvalidArgument("unknown engine kind");
}

}  // namespace dlacep
