// Lazy (frequency-ordered) evaluation engine — the second ECEP
// optimization baseline of Fig 12, after Kolchinsky, Sharfman & Schuster
// (DEBS'15): instead of extending prefixes in arrival order, events are
// buffered and the pattern is instantiated starting from the *least
// frequent* event type, which usually prunes the search drastically.
//
// The implementation buffers the span, orders plan positions by ascending
// type frequency, and runs a backtracking join in that order; each search
// node (candidate binding extension) counts as a partial match.
//
// Chain ordering: by default each Evaluate() orders positions by the
// candidate-bucket sizes of the span at hand. A caller running a
// longer-lived frequency estimate (the adaptive selector's decayed
// per-type counts) can instead install it with SetTypeFrequencies();
// the chain is then reordered by the estimated rate of each position's
// accepted types — the lazy chain-automaton reordering step. Either
// ordering only changes how the search is pruned, never the match set.
//
// Supported pattern class: same as the tree engine — DISJ branches of
// SEQ / CONJ over primitives.

#ifndef DLACEP_CEP_LAZY_ENGINE_H_
#define DLACEP_CEP_LAZY_ENGINE_H_

#include <utility>
#include <vector>

#include "cep/engine.h"

namespace dlacep {

class LazyEngine : public CepEngine {
 public:
  static StatusOr<std::unique_ptr<LazyEngine>> Create(
      const Pattern& pattern, const EngineOptions& options);

  std::string name() const override { return "lazy"; }

  Status Evaluate(std::span<const Event> events, MatchSet* out) override;

  /// Installs (replaces) the external per-type frequency estimate that
  /// drives chain ordering; an empty vector reverts to per-span bucket
  /// sizes. Entries are (type, decayed count), types unique.
  void SetTypeFrequencies(
      std::vector<std::pair<int32_t, double>> frequencies) {
    type_frequencies_ = std::move(frequencies);
  }

 private:
  LazyEngine(Pattern pattern, EngineOptions options);

  void EvaluatePlan(const LinearPlan& plan, std::span<const Event> events,
                    MatchSet* out, EngineBudget* budget);

  Pattern pattern_;
  EngineOptions options_;
  std::vector<LinearPlan> plans_;
  std::vector<std::pair<int32_t, double>> type_frequencies_;
};

}  // namespace dlacep

#endif  // DLACEP_CEP_LAZY_ENGINE_H_
