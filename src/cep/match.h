// Matches and match sets.
//
// A match is identified by the set of event ids of its (positively) bound
// events — the paper's Definition (4) output is "a set of event subsets".
// MatchSet deduplicates by that identity and offers the set-similarity
// metrics used throughout the evaluation (recall, precision, F1,
// Jaccard).

#ifndef DLACEP_CEP_MATCH_H_
#define DLACEP_CEP_MATCH_H_

#include <set>
#include <string>
#include <vector>

#include "pattern/condition.h"
#include "stream/event.h"

namespace dlacep {

/// One full pattern match: the sorted ids of its constituent events.
struct Match {
  std::vector<EventId> ids;

  Match() = default;
  explicit Match(std::vector<EventId> ids_in);

  /// Window span: max id - min id (0 for singletons/empty).
  EventId IdSpan() const;

  bool operator==(const Match& other) const { return ids == other.ids; }
  bool operator<(const Match& other) const { return ids < other.ids; }

  std::string ToString() const;
};

/// Builds a match from the positively bound variables of a binding.
Match MatchFromBinding(const Binding& binding);

/// A deduplicated set of matches.
class MatchSet {
 public:
  /// Inserts a match; returns true when it was not present yet.
  bool Insert(Match match);

  /// Inserts every match of `other`.
  void Merge(const MatchSet& other);

  bool Contains(const Match& match) const {
    return matches_.count(match) > 0;
  }
  size_t size() const { return matches_.size(); }
  bool empty() const { return matches_.empty(); }

  std::set<Match>::const_iterator begin() const { return matches_.begin(); }
  std::set<Match>::const_iterator end() const { return matches_.end(); }

  /// |this ∩ other|.
  size_t IntersectionSize(const MatchSet& other) const;

 private:
  std::set<Match> matches_;
};

/// Set-similarity metrics between an exact match set and an approximate
/// one (paper §4.3 and §5.1).
struct MatchSetMetrics {
  double recall = 1.0;     ///< |exact ∩ approx| / |exact|
  double precision = 1.0;  ///< |exact ∩ approx| / |approx|
  double f1 = 1.0;
  double jaccard = 1.0;    ///< |∩| / |∪|
  double false_negative_pct = 0.0;  ///< the paper's FN% (Fig 11)
  size_t exact_count = 0;
  size_t approx_count = 0;
  size_t common_count = 0;
};

/// Computes the metrics; empty exact and approx sets score 1.0 across
/// the board.
MatchSetMetrics CompareMatchSets(const MatchSet& exact,
                                 const MatchSet& approx);

}  // namespace dlacep

#endif  // DLACEP_CEP_MATCH_H_
