#include "cep/adaptive_engine.h"

#include <algorithm>

#include "cep/nfa_engine.h"
#include "cep/tree_engine.h"

namespace dlacep {

namespace {

// Per-event surcharge factors of the analytic estimates: the lazy
// engine pays candidate buffering and binary searches per chain step,
// the tree additionally materializes intermediate join items. On a
// uniform stream (where ordering buys nothing) they make the NFA the
// stable default; under skew the reordered prefix products dominate
// them by orders of magnitude.
constexpr double kLazySurcharge = 1.15;
constexpr double kTreeSurcharge = 1.35;

// Prefix products are clamped so a pathological estimate can't reach
// inf and poison the comparison.
constexpr double kCostCap = 1e18;

}  // namespace

AdaptiveEngine::AdaptiveEngine(Pattern pattern, EngineOptions options)
    : pattern_(std::move(pattern)), options_(std::move(options)) {}

StatusOr<std::unique_ptr<AdaptiveEngine>> AdaptiveEngine::Create(
    const Pattern& pattern, const EngineOptions& options) {
  std::unique_ptr<AdaptiveEngine> engine(
      new AdaptiveEngine(pattern, options));
  auto plans = CompilePlans(engine->pattern_);
  if (!plans.ok()) return plans.status();
  engine->plans_ = std::move(plans).value();

  // The NFA handles every validated pattern and anchors the candidate
  // set at index 0 — the initial selection before any traffic is seen.
  auto nfa = NfaEngine::Create(engine->pattern_, options);
  if (!nfa.ok()) return nfa.status();
  Candidate base;
  base.kind = EngineKind::kNfa;
  base.engine = std::move(nfa).value();
  engine->candidates_.push_back(std::move(base));

  // Tree and lazy join the pool only when the pattern is inside their
  // supported class; Kleene/NEG/group-repeat shapes degrade to an
  // NFA-only pool instead of failing the adaptive engine.
  auto tree = TreeEngine::Create(engine->pattern_, options);
  if (tree.ok()) {
    Candidate c;
    c.kind = EngineKind::kTree;
    c.engine = std::move(tree).value();
    engine->candidates_.push_back(std::move(c));
  }
  auto lazy = LazyEngine::Create(engine->pattern_, options);
  if (lazy.ok()) {
    Candidate c;
    c.kind = EngineKind::kLazy;
    c.engine = std::move(lazy).value();
    c.lazy = static_cast<LazyEngine*>(c.engine.get());
    engine->candidates_.push_back(std::move(c));
  }
  return engine;
}

std::vector<EngineKind> AdaptiveEngine::candidate_kinds() const {
  std::vector<EngineKind> kinds;
  kinds.reserve(candidates_.size());
  for (const Candidate& c : candidates_) kinds.push_back(c.kind);
  return kinds;
}

double AdaptiveEngine::AnalyticCost(EngineKind kind) const {
  const double window =
      pattern_.window().kind == WindowKind::kCount
          ? static_cast<double>(pattern_.window().count_size())
          : 100.0;
  const double total = std::max(frequencies_.total(), 1.0);
  double cost = 0.0;
  for (const LinearPlan& plan : plans_) {
    // Expected events per window accepted by each position.
    std::vector<double> rates;
    rates.reserve(plan.num_positions());
    for (const PlanPosition& pos : plan.positions) {
      double weight = 0.0;
      if (frequencies_.empty()) {
        weight = 1.0;  // flat prior: every engine ranks by its surcharge
      } else {
        for (const TypeId type : pos.types) {
          weight += frequencies_.count(type);
        }
      }
      rates.push_back(window * weight / total);
    }
    // The NFA extends prefixes in chain order; the lazy and tree
    // engines are free to instantiate rarest-first, which is exactly
    // what minimizes the prefix-product sum below.
    if (kind != EngineKind::kNfa) {
      std::sort(rates.begin(), rates.end());
    }
    double work = window;  // every engine scans the span once
    double prefix = 1.0;
    for (const double rate : rates) {
      prefix = std::min(kCostCap, prefix * std::max(rate, 1e-6));
      work = std::min(kCostCap, work + prefix);
    }
    cost += work;
  }
  double per_event = cost / window;
  if (kind == EngineKind::kLazy) per_event *= kLazySurcharge;
  if (kind == EngineKind::kTree) per_event *= kTreeSurcharge;
  return per_event;
}

double AdaptiveEngine::CostOf(const Candidate& candidate,
                              double calibration) const {
  const EngineStats& s = candidate.engine->stats();
  if (s.evaluations > 0 && s.events_processed > 0) {
    // The engine has run: trust the measured work per event (the
    // per-evaluate estimate normalized by span size).
    return static_cast<double>(s.transitions + s.partial_matches) /
           static_cast<double>(s.events_processed);
  }
  return AnalyticCost(candidate.kind) * calibration;
}

void AdaptiveEngine::Reselect() {
  // Calibrate analytic estimates against the incumbent's measurements
  // (when it has any), so observed and modelled costs share units and
  // a systematic model error common to all engines cancels.
  const Candidate& incumbent = candidates_[selected_];
  double calibration = 1.0;
  const EngineStats& istats = incumbent.engine->stats();
  if (istats.evaluations > 0 && istats.events_processed > 0) {
    const double analytic = AnalyticCost(incumbent.kind);
    const double observed = CostOf(incumbent, 1.0);
    if (analytic > 0.0 && observed > 0.0) {
      calibration = std::clamp(observed / analytic, 0.1, 10.0);
    }
  }

  const double incumbent_cost = CostOf(incumbent, calibration);
  size_t best = selected_;
  // A challenger must beat the incumbent by the hysteresis margin.
  double best_cost = incumbent_cost * options_.adaptive_hysteresis;
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (i == selected_) continue;
    const double cost = CostOf(candidates_[i], calibration);
    if (cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  if (best != selected_) {
    selected_ = best;
    ++switches_;
  }

  // Age the estimate and push the fresh chain ordering into the lazy
  // candidate (reordering is a no-op while it isn't selected).
  frequencies_.Decay();
  for (Candidate& c : candidates_) {
    if (c.lazy != nullptr) c.lazy->SetTypeFrequencies(frequencies_.Snapshot());
  }
  if (hook_) hook_(candidates_[selected_].kind);
}

void AdaptiveEngine::ObserveWindow(std::span<const Event> events) {
  external_feed_ = true;
  frequencies_.ObserveSpan(events);
  ++windows_observed_;
  const size_t k = std::max<size_t>(1, options_.adaptive_reselect_windows);
  if (windows_observed_ % k == 0) Reselect();
}

Status AdaptiveEngine::Evaluate(std::span<const Event> events,
                                MatchSet* out) {
  DLACEP_CHECK(out != nullptr);
  if (!external_feed_) {
    // No router is feeding windows (batch extraction, serving chunks):
    // each evaluated span is one observation, and the very first span
    // already informs the selection so a single batch Evaluate() still
    // benefits from the cost model.
    frequencies_.ObserveSpan(events);
    ++windows_observed_;
    const size_t k = std::max<size_t>(1, options_.adaptive_reselect_windows);
    if (windows_observed_ == 1 || windows_observed_ % k == 0) Reselect();
  }
  Candidate& c = candidates_[selected_];
  // Delegate verbatim — `out` semantics, all-or-nothing budget aborts,
  // and reusability after an abort are exactly the selected engine's.
  const EngineStats before = c.engine->stats();
  const Status status = c.engine->Evaluate(events, out);
  const EngineStats& after = c.engine->stats();
  stats_.events_processed += after.events_processed - before.events_processed;
  stats_.partial_matches += after.partial_matches - before.partial_matches;
  stats_.matches_emitted += after.matches_emitted - before.matches_emitted;
  stats_.partial_matches_dropped +=
      after.partial_matches_dropped - before.partial_matches_dropped;
  stats_.transitions += after.transitions - before.transitions;
  stats_.partial_matches_pruned +=
      after.partial_matches_pruned - before.partial_matches_pruned;
  stats_.budget_aborts += after.budget_aborts - before.budget_aborts;
  stats_.evaluations += after.evaluations - before.evaluations;
  stats_.elapsed_seconds += after.elapsed_seconds - before.elapsed_seconds;
  return status;
}

AdaptiveSnapshot AdaptiveEngine::Snapshot() const {
  AdaptiveSnapshot snap;
  snap.selected = static_cast<int32_t>(selected_kind());
  snap.windows_observed = windows_observed_;
  snap.switches = switches_;
  snap.external_feed = external_feed_ ? 1 : 0;
  snap.frequencies = frequencies_.Snapshot();
  return snap;
}

Status AdaptiveEngine::Restore(const AdaptiveSnapshot& snapshot) {
  size_t index = candidates_.size();
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (static_cast<int32_t>(candidates_[i].kind) == snapshot.selected) {
      index = i;
      break;
    }
  }
  if (index == candidates_.size()) {
    return Status::FailedPrecondition(
        "checkpointed engine selection is not a candidate for this "
        "pattern");
  }
  selected_ = index;
  windows_observed_ = snapshot.windows_observed;
  switches_ = snapshot.switches;
  external_feed_ = snapshot.external_feed != 0;
  frequencies_.Restore(snapshot.frequencies);
  for (Candidate& c : candidates_) {
    if (c.lazy != nullptr) c.lazy->SetTypeFrequencies(frequencies_.Snapshot());
  }
  return Status::Ok();
}

}  // namespace dlacep
