#include "cep/nfa_engine.h"

#include <algorithm>

namespace dlacep {

NfaEngine::NfaEngine(Pattern pattern, EngineOptions options)
    : pattern_(std::move(pattern)), options_(options) {}

StatusOr<std::unique_ptr<NfaEngine>> NfaEngine::Create(
    const Pattern& pattern, const EngineOptions& options) {
  std::unique_ptr<NfaEngine> engine(new NfaEngine(pattern, options));
  auto plans = CompilePlans(engine->pattern_);
  if (!plans.ok()) return plans.status();
  engine->plans_ = std::move(plans).value();
  return engine;
}

bool NfaEngine::PassesPruning(const LinearPlan& plan, const Binding& binding,
                              VarId var) const {
  for (const Condition* condition : plan.pos_conditions) {
    bool references = false;
    for (VarId v : condition->Vars()) {
      if (v == var) {
        references = true;
        break;
      }
    }
    if (!references) continue;
    if (!ReadyForPruningEval(*condition, binding, pattern_)) continue;
    if (!condition->Eval(binding)) return false;
  }
  return true;
}

void NfaEngine::MaybeEmit(const LinearPlan& plan, const PartialMatch& pm,
                          std::span<const Event> events, MatchSet* out) {
  if (pm.mask != full_mask_) return;
  // Kleene positions must have reached their minimum absorption.
  for (size_t i = 0; i < plan.num_positions(); ++i) {
    const PlanPosition& pos = plan.positions[i];
    if (pos.kleene &&
        pm.binding.Of(pos.var).size() < pos.min_reps * (pm.reps + 1)) {
      return;
    }
  }
  if (plan.group_repeat && pm.reps + 1 < plan.group_min_reps) return;
  // Full condition check (covers aligned-Kleene semantics that pruning
  // skips mid-repetition).
  for (const Condition* condition : plan.pos_conditions) {
    if (!condition->Eval(pm.binding)) return;
  }
  if (!FitsWindow(pm.binding.AllEvents(), pattern_.window())) return;
  if (ViolatesNegation(plan, pm.binding, events)) return;
  ++stats_.matches_emitted;
  out->Insert(MatchFromBinding(pm.binding));
}

void NfaEngine::EvaluatePlan(const LinearPlan& plan,
                             std::span<const Event> events, MatchSet* out,
                             EngineBudget* budget) {
  const size_t n = plan.num_positions();
  full_mask_ = n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  const WindowSpec& window = pattern_.window();

  std::vector<PartialMatch> storage;

  for (const Event& e : events) {
    if (e.is_blank()) continue;
    if (budget->exceeded()) return;

    auto is_expired = [&](const PartialMatch& pm) {
      // Extensions only add events at or after `e`, so a prefix whose
      // anchor is out of `e`'s window range can never complete.
      if (window.kind == WindowKind::kCount) {
        return e.id - pm.first_id >
               static_cast<EventId>(window.count_size()) - 1;
      }
      return e.timestamp - pm.first_ts > window.size;
    };

    const size_t stored_before = storage.size();
    std::vector<PartialMatch> created;

    auto try_store = [&](PartialMatch&& pm) {
      ++stats_.partial_matches;
      if (!budget->OnPartialMatch()) return;
      if (storage.size() + created.size() >= options_.max_partial_matches) {
        ++stats_.partial_matches_dropped;
        return;
      }
      MaybeEmit(plan, pm, events, out);
      created.push_back(std::move(pm));
    };

    // Extend every live stored prefix (skip-till-any-match keeps the
    // original stored), compacting expired prefixes away in the same
    // pass. Only prefixes created before this event are candidates;
    // `stored_before` freezes the range.
    size_t write = 0;
    for (size_t s = 0; s < stored_before; ++s) {
      if (!budget->OnWork()) return;
      if (is_expired(storage[s])) continue;
      if (write != s) storage[write] = std::move(storage[s]);
      const PartialMatch& pm = storage[write];
      ++write;
      for (size_t p = 0; p < n; ++p) {
        const PlanPosition& pos = plan.positions[p];
        if (!pos.Matches(e.type)) continue;
        const bool filled = (pm.mask >> p) & 1;
        if (!filled) {
          // Fill a fresh position: all predecessors must be filled.
          if ((plan.preds[p] & pm.mask) != plan.preds[p]) continue;
          PartialMatch next = pm;
          next.mask |= uint64_t{1} << p;
          next.binding.Bind(pos.var, &e);
          // Every candidate below counts as one transition and either
          // prunes or reaches try_store, so across a run
          // transitions == partial_matches + partial_matches_pruned.
          ++stats_.transitions;
          if (!PassesPruning(plan, next.binding, pos.var)) {
            ++stats_.partial_matches_pruned;
            continue;
          }
          try_store(std::move(next));
        } else if (pos.kleene) {
          // Absorb another event into a Kleene position, allowed only
          // while no successor position has been filled yet.
          const size_t limit = pos.max_reps * (pm.reps + 1);
          if (pm.binding.Of(pos.var).size() >= limit) continue;
          bool successor_filled = false;
          for (size_t q = 0; q < n; ++q) {
            if (((plan.preds[q] >> p) & 1) && ((pm.mask >> q) & 1)) {
              successor_filled = true;
              break;
            }
          }
          if (successor_filled) continue;
          PartialMatch next = pm;
          next.binding.Bind(pos.var, &e);
          ++stats_.transitions;
          if (!PassesPruning(plan, next.binding, pos.var)) {
            ++stats_.partial_matches_pruned;
            continue;
          }
          try_store(std::move(next));
        }
      }
      // Group repetition: a complete prefix may loop back to position 0.
      if (plan.group_repeat && pm.mask == full_mask_ &&
          pm.reps + 1 < plan.group_max_reps &&
          plan.positions[0].Matches(e.type)) {
        PartialMatch next = pm;
        next.mask = uint64_t{1} << 0;
        next.reps = pm.reps + 1;
        next.binding.Bind(plan.positions[0].var, &e);
        ++stats_.transitions;
        if (PassesPruning(plan, next.binding, plan.positions[0].var)) {
          try_store(std::move(next));
        } else {
          ++stats_.partial_matches_pruned;
        }
      }
    }

    storage.resize(write);

    // Start fresh prefixes at positions with no predecessors.
    for (size_t p = 0; p < n; ++p) {
      const PlanPosition& pos = plan.positions[p];
      if (!pos.Matches(e.type) || plan.preds[p] != 0) continue;
      PartialMatch pm;
      pm.mask = uint64_t{1} << p;
      pm.binding = Binding(pattern_.num_vars());
      pm.binding.Bind(pos.var, &e);
      pm.first_id = e.id;
      pm.first_ts = e.timestamp;
      ++stats_.transitions;
      if (!PassesPruning(plan, pm.binding, pos.var)) {
        ++stats_.partial_matches_pruned;
        continue;
      }
      try_store(std::move(pm));
    }

    for (PartialMatch& pm : created) {
      storage.push_back(std::move(pm));
    }
  }
}

Status NfaEngine::Evaluate(std::span<const Event> events, MatchSet* out) {
  DLACEP_CHECK(out != nullptr);
  Stopwatch watch;
  EngineBudget budget(options_);
  // With a budget armed, emit into a local set so an abort leaves `out`
  // untouched: callers see all-or-nothing per Evaluate() call.
  const bool budgeted =
      options_.partial_match_budget > 0 || options_.deadline_seconds > 0.0;
  MatchSet local;
  MatchSet* sink = budgeted ? &local : out;
  for (const LinearPlan& plan : plans_) {
    EvaluatePlan(plan, events, sink, &budget);
    if (budget.exceeded()) break;
  }
  stats_.events_processed += events.size();
  ++stats_.evaluations;
  stats_.elapsed_seconds += watch.ElapsedSeconds();
  if (budget.exceeded()) {
    ++stats_.budget_aborts;
    return budget.ToStatus("nfa");
  }
  if (budgeted) out->Merge(local);
  return Status::Ok();
}

}  // namespace dlacep
