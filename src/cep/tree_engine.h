// ZStream-style tree evaluation engine (Mei & Madden, SIGMOD'09) — one of
// the two state-of-the-art ECEP optimization baselines the paper compares
// against (Fig 12).
//
// The plan's positions become the leaves of a binary join tree. A
// dynamic-programming search over contiguous position intervals picks the
// tree shape minimizing a CPU cost model fed by sampled arrival rates and
// predicate selectivities. Intermediate join results are the engine's
// partial matches.
//
// Supported pattern class: DISJ branches of SEQ / CONJ over primitives
// (no KC, no NEG, no group repetition) — exactly the class ZStream
// handles and the class exercised by the paper's Fig 12 queries.

#ifndef DLACEP_CEP_TREE_ENGINE_H_
#define DLACEP_CEP_TREE_ENGINE_H_

#include <vector>

#include "cep/engine.h"
#include "pattern/selectivity.h"

namespace dlacep {

class TreeEngine : public CepEngine {
 public:
  static StatusOr<std::unique_ptr<TreeEngine>> Create(
      const Pattern& pattern, const EngineOptions& options);

  std::string name() const override { return "zstream-tree"; }

  Status Evaluate(std::span<const Event> events, MatchSet* out) override;

  /// The chosen join order for plan `plan_index`, rendered as a
  /// parenthesized expression over position indexes (for tests/logs).
  std::string PlanTreeString(size_t plan_index) const;

 private:
  TreeEngine(Pattern pattern, EngineOptions options);

  /// A node of the chosen binary join tree over positions [lo, hi].
  struct TreeNode {
    size_t lo = 0;
    size_t hi = 0;
    int left = -1;   ///< index into nodes_, -1 for leaves
    int right = -1;
    /// Conditions first fully evaluable at this node.
    std::vector<const Condition*> conditions;
  };

  /// Per-plan compiled tree.
  struct PlanTree {
    std::vector<TreeNode> nodes;  ///< nodes_[root] is the last entry
    int root = -1;
    bool ordered = false;  ///< SEQ (ordered) vs CONJ (unordered)
  };

  /// An intermediate join result: events for positions [lo, hi].
  struct Item {
    Binding binding;
    EventId min_id = 0;
    EventId max_id = 0;
    double min_ts = 0.0;
    double max_ts = 0.0;
  };

  void BuildTree(const LinearPlan& plan, const PlanStatistics& stats,
                 PlanTree* tree) const;
  std::vector<Item> EvalNode(const LinearPlan& plan, const PlanTree& tree,
                             int node_index, std::span<const Event> events,
                             EngineBudget* budget);
  void EvaluatePlan(size_t plan_index, std::span<const Event> events,
                    MatchSet* out, EngineBudget* budget);

  Pattern pattern_;
  EngineOptions options_;
  std::vector<LinearPlan> plans_;
  std::vector<PlanTree> trees_;
  bool trees_built_ = false;
};

}  // namespace dlacep

#endif  // DLACEP_CEP_TREE_ENGINE_H_
