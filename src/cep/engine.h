// The CEP evaluation-engine interface.
//
// All engines consume a finite span of events (sorted by arrival id) and
// produce the deduplicated set of full matches. Each engine counts the
// partial matches it creates — the paper's §3.2 cost measure C_ECEP — so
// benches can report both wall-clock throughput and the analytic cost.

#ifndef DLACEP_CEP_ENGINE_H_
#define DLACEP_CEP_ENGINE_H_

#include <memory>
#include <span>
#include <string>

#include "cep/match.h"
#include "common/timer.h"
#include "pattern/pattern.h"
#include "pattern/plan.h"

namespace dlacep {

/// Counters accumulated across Evaluate() calls (ResetStats() clears).
struct EngineStats {
  uint64_t events_processed = 0;
  /// Partial matches created: NFA prefixes, tree intermediate join
  /// results, or lazy search nodes — the engine's unit of work.
  uint64_t partial_matches = 0;
  /// Full matches emitted before deduplication.
  uint64_t matches_emitted = 0;
  /// Partial matches dropped by the storage cap (0 in normal operation).
  uint64_t partial_matches_dropped = 0;
  /// Extension attempts: candidate (partial match, event) combinations
  /// the engine examined — NFA edge traversals, tree join probes, lazy
  /// chain steps. The per-operator cost the latency histograms can't
  /// see (many attempts never create a partial match).
  uint64_t transitions = 0;
  /// Candidates rejected by a pruning check (time-window, predicate, or
  /// contiguity) before becoming partial matches.
  uint64_t partial_matches_pruned = 0;
  double elapsed_seconds = 0.0;

  double throughput() const {
    return Throughput(static_cast<double>(events_processed),
                      elapsed_seconds);
  }
};

/// Evaluation-engine base. Implementations are single-threaded (matching
/// the paper's single-core measurement protocol) and keep no state across
/// Evaluate() calls except the stats counters.
class CepEngine {
 public:
  virtual ~CepEngine() = default;

  virtual std::string name() const = 0;

  /// Evaluates `events` (sorted by id) and merges all full matches into
  /// `out`. Timing and counters accumulate into stats().
  virtual Status Evaluate(std::span<const Event> events, MatchSet* out) = 0;

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

 protected:
  EngineStats stats_;
};

enum class EngineKind {
  kNfa,    ///< skip-till-any-match NFA (the baseline ECEP mechanism)
  kTree,   ///< ZStream-style cost-based tree engine
  kLazy,   ///< lazy (frequency-ordered) evaluation
};

const char* EngineKindName(EngineKind kind);

/// Tuning knobs common to all engines.
struct EngineOptions {
  /// Safety cap on simultaneously stored partial matches (per plan).
  /// Exceeding it drops the newest candidates and counts them in
  /// partial_matches_dropped rather than aborting the run.
  size_t max_partial_matches = 50'000'000;
  /// Sample size for selectivity estimation (tree engine cost model).
  size_t selectivity_samples = 1000;
  uint64_t seed = 42;
};

/// Creates an engine for `pattern`. The pattern is copied; the engine
/// owns everything it needs. Fails when the pattern shape is outside the
/// engine's supported class (see each engine's header).
StatusOr<std::unique_ptr<CepEngine>> CreateEngine(
    EngineKind kind, const Pattern& pattern,
    const EngineOptions& options = EngineOptions{});

}  // namespace dlacep

#endif  // DLACEP_CEP_ENGINE_H_
