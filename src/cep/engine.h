// The CEP evaluation-engine interface.
//
// All engines consume a finite span of events (sorted by arrival id) and
// produce the deduplicated set of full matches. Each engine counts the
// partial matches it creates — the paper's §3.2 cost measure C_ECEP — so
// benches can report both wall-clock throughput and the analytic cost.

#ifndef DLACEP_CEP_ENGINE_H_
#define DLACEP_CEP_ENGINE_H_

#include <memory>
#include <span>
#include <string>

#include "cep/match.h"
#include "common/timer.h"
#include "pattern/pattern.h"
#include "pattern/plan.h"

namespace dlacep {

/// Counters accumulated across Evaluate() calls (ResetStats() clears).
struct EngineStats {
  uint64_t events_processed = 0;
  /// Partial matches created: NFA prefixes, tree intermediate join
  /// results, or lazy search nodes — the engine's unit of work.
  uint64_t partial_matches = 0;
  /// Full matches emitted before deduplication.
  uint64_t matches_emitted = 0;
  /// Partial matches dropped by the storage cap (0 in normal operation).
  uint64_t partial_matches_dropped = 0;
  /// Extension attempts: candidate (partial match, event) combinations
  /// the engine examined — NFA edge traversals, tree join probes, lazy
  /// chain steps. The per-operator cost the latency histograms can't
  /// see (many attempts never create a partial match).
  uint64_t transitions = 0;
  /// Candidates rejected by a pruning check (time-window, predicate, or
  /// contiguity) before becoming partial matches.
  uint64_t partial_matches_pruned = 0;
  /// Evaluate() calls aborted with kBudgetExceeded (partial-match budget
  /// or wall-clock deadline). The engine stays reusable after an abort.
  uint64_t budget_aborts = 0;
  /// Evaluate() calls completed or aborted — the denominator of the
  /// per-evaluate work estimate the adaptive selector's cost model
  /// consumes.
  uint64_t evaluations = 0;
  double elapsed_seconds = 0.0;

  double throughput() const {
    return Throughput(static_cast<double>(events_processed),
                      elapsed_seconds);
  }

  /// Observed work (extension attempts + stored partials) per Evaluate()
  /// call; 0 until the engine has run once.
  double work_per_evaluate() const {
    return evaluations == 0
               ? 0.0
               : static_cast<double>(transitions + partial_matches) /
                     static_cast<double>(evaluations);
  }
};

/// Evaluation-engine base. Implementations are single-threaded (matching
/// the paper's single-core measurement protocol) and keep no state across
/// Evaluate() calls except the stats counters.
class CepEngine {
 public:
  virtual ~CepEngine() = default;

  virtual std::string name() const = 0;

  /// Evaluates `events` (sorted by id) and merges all full matches into
  /// `out`. Timing and counters accumulate into stats().
  virtual Status Evaluate(std::span<const Event> events, MatchSet* out) = 0;

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

 protected:
  EngineStats stats_;
};

enum class EngineKind {
  kNfa,       ///< skip-till-any-match NFA (the baseline ECEP mechanism)
  kTree,      ///< ZStream-style cost-based tree engine
  kLazy,      ///< lazy (frequency-ordered) evaluation
  kAdaptive,  ///< runtime-adaptive selection over the static engines
};

const char* EngineKindName(EngineKind kind);

/// Tuning knobs common to all engines.
struct EngineOptions {
  /// Safety cap on simultaneously stored partial matches (per plan).
  /// Exceeding it drops the newest candidates and counts them in
  /// partial_matches_dropped rather than aborting the run.
  size_t max_partial_matches = 50'000'000;
  /// Hard budget on partial matches created in one Evaluate() call,
  /// summed across plans. 0 disables. Unlike max_partial_matches (which
  /// truncates silently and loses recall), exhausting this budget aborts
  /// the call with kBudgetExceeded: no partial output is merged, the
  /// abort is deterministic (counted work, not wall clock), and the
  /// engine remains reusable — the next Evaluate() starts fresh.
  uint64_t partial_match_budget = 0;
  /// Wall-clock deadline for one Evaluate() call, in seconds. 0
  /// disables. Checked cooperatively every ~1k work units, so an abort
  /// is prompt but the exact abort point is timing-dependent — callers
  /// needing determinism should gate on partial_match_budget instead.
  double deadline_seconds = 0.0;
  /// Sample size for selectivity estimation (tree engine cost model).
  size_t selectivity_samples = 1000;
  uint64_t seed = 42;

  // --- Adaptive selection (EngineKind::kAdaptive) --------------------
  /// Windows observed between cost-model re-evaluations (the "K" of the
  /// online reselection cadence). Also the decay period of the type
  /// frequency estimator.
  size_t adaptive_reselect_windows = 16;
  /// A challenger engine must undercut the incumbent's modelled cost by
  /// this factor before the selector switches — hysteresis against
  /// flapping on near-ties.
  double adaptive_hysteresis = 0.9;
  /// Label for dlacep_engine_selected_total{engine,pattern}; callers
  /// that serve several patterns set a distinguishing name here.
  std::string pattern_label = "query";
};

/// Per-Evaluate() cooperative budget tracker shared by all engines.
///
/// Engines call OnPartialMatch() for every partial match they create and
/// OnWork() for every extension attempt; both return false once a budget
/// is blown, after which the engine unwinds promptly (checking
/// exceeded() at loop heads) and returns ToStatus(). The partial-match
/// budget is a deterministic counter; the deadline samples the wall
/// clock only every kDeadlineCheckInterval work units to keep the hot
/// path free of clock reads.
class EngineBudget {
 public:
  explicit EngineBudget(const EngineOptions& options)
      : pm_budget_(options.partial_match_budget),
        deadline_seconds_(options.deadline_seconds) {}

  bool OnPartialMatch() {
    if (pm_budget_ > 0 && ++pm_created_ > pm_budget_) exceeded_ = true;
    return !exceeded_;
  }

  bool OnWork() {
    if (deadline_seconds_ > 0.0 &&
        (++work_ % kDeadlineCheckInterval) == 0 &&
        watch_.ElapsedSeconds() > deadline_seconds_) {
      exceeded_ = true;
    }
    return !exceeded_;
  }

  bool exceeded() const { return exceeded_; }

  /// The kBudgetExceeded status describing which budget blew.
  Status ToStatus(const char* engine) const;

 private:
  static constexpr uint64_t kDeadlineCheckInterval = 1024;

  const uint64_t pm_budget_;
  const double deadline_seconds_;
  Stopwatch watch_;
  uint64_t pm_created_ = 0;
  uint64_t work_ = 0;
  bool exceeded_ = false;
};

/// Creates an engine for `pattern`. The pattern is copied; the engine
/// owns everything it needs. Fails when the pattern shape is outside the
/// engine's supported class (see each engine's header).
StatusOr<std::unique_ptr<CepEngine>> CreateEngine(
    EngineKind kind, const Pattern& pattern,
    const EngineOptions& options = EngineOptions{});

}  // namespace dlacep

#endif  // DLACEP_CEP_ENGINE_H_
