// Runtime per-type frequency estimation for lazy chain ordering and the
// adaptive engine selector.
//
// The estimator keeps one decayed count per event type: Observe() adds
// the event's weight, Decay() multiplies every count by a fixed factor.
// The adaptive selector calls Decay() once per reselection period, so
// recent traffic dominates while the estimate never forgets a type
// entirely. Everything is plain counter arithmetic on an ordered map —
// no wall clock, no randomness — so two runs fed the same event
// sequence produce bit-identical estimates, which is what keeps
// adaptive engine selection (and checkpoint resume) deterministic.

#ifndef DLACEP_CEP_FREQUENCY_H_
#define DLACEP_CEP_FREQUENCY_H_

#include <map>
#include <span>
#include <utility>
#include <vector>

#include "stream/event.h"

namespace dlacep {

class TypeFrequencyEstimator {
 public:
  explicit TypeFrequencyEstimator(double decay = 0.5) : decay_(decay) {}

  void Observe(TypeId type, double weight = 1.0) {
    counts_[type] += weight;
    total_ += weight;
  }

  /// Adds one count per non-blank event in `events`.
  void ObserveSpan(std::span<const Event> events) {
    for (const Event& e : events) {
      if (!e.is_blank()) Observe(e.type);
    }
  }

  /// Halves (by default) every count; called once per estimation period.
  void Decay() {
    total_ = 0.0;
    for (auto& [type, count] : counts_) {
      count *= decay_;
      total_ += count;
    }
  }

  double count(TypeId type) const {
    const auto it = counts_.find(type);
    return it == counts_.end() ? 0.0 : it->second;
  }

  double total() const { return total_; }
  bool empty() const { return counts_.empty(); }

  /// Deterministic (type-ascending) snapshot, checkpoint-serializable.
  std::vector<std::pair<int32_t, double>> Snapshot() const {
    return {counts_.begin(), counts_.end()};
  }

  void Restore(std::span<const std::pair<int32_t, double>> entries) {
    counts_.clear();
    total_ = 0.0;
    for (const auto& [type, count] : entries) {
      counts_[type] = count;
      total_ += count;
    }
  }

 private:
  double decay_;
  double total_ = 0.0;
  std::map<TypeId, double> counts_;  ///< ordered for determinism
};

}  // namespace dlacep

#endif  // DLACEP_CEP_FREQUENCY_H_
