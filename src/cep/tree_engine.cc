#include "cep/tree_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>
#include <sstream>

namespace dlacep {

TreeEngine::TreeEngine(Pattern pattern, EngineOptions options)
    : pattern_(std::move(pattern)), options_(options) {}

StatusOr<std::unique_ptr<TreeEngine>> TreeEngine::Create(
    const Pattern& pattern, const EngineOptions& options) {
  std::unique_ptr<TreeEngine> engine(new TreeEngine(pattern, options));
  auto plans = CompilePlans(engine->pattern_);
  if (!plans.ok()) return plans.status();
  engine->plans_ = std::move(plans).value();
  for (const LinearPlan& plan : engine->plans_) {
    if (plan.group_repeat || !plan.negs.empty()) {
      return Status::Unimplemented(
          "tree engine supports SEQ/CONJ/DISJ of primitives only");
    }
    for (const PlanPosition& pos : plan.positions) {
      if (pos.kleene) {
        return Status::Unimplemented(
            "tree engine does not support Kleene closure");
      }
    }
  }
  engine->trees_.resize(engine->plans_.size());
  return engine;
}

namespace {

// Variables covered by positions [lo, hi] of a plan.
std::set<VarId> VarsOf(const LinearPlan& plan, size_t lo, size_t hi) {
  std::set<VarId> vars;
  for (size_t i = lo; i <= hi; ++i) vars.insert(plan.positions[i].var);
  return vars;
}

bool Subset(const std::vector<VarId>& needles, const std::set<VarId>& hay) {
  for (VarId v : needles) {
    if (hay.find(v) == hay.end()) return false;
  }
  return true;
}

}  // namespace

void TreeEngine::BuildTree(const LinearPlan& plan,
                           const PlanStatistics& stats,
                           PlanTree* tree) const {
  const size_t n = plan.num_positions();
  tree->ordered = n > 1 && plan.preds[1] != 0;

  // Expected cardinality of the join of positions [i, j] per §3.2 /
  // ZStream's CPU cost model: product of expected leaf counts, pairwise
  // selectivities, a window co-occurrence factor, and (for SEQ) the
  // probability that the events arrive in position order.
  const double window_frac =
      pattern_.window().kind == WindowKind::kCount
          ? std::min(1.0, pattern_.window().size / 1000.0)
          : 0.5;  // coarse default for time windows
  auto cardinality = [&](size_t i, size_t j) {
    double card = 1.0;
    for (size_t k = i; k <= j; ++k) {
      card *= stats.rates[k] * 1000.0 * stats.pair_sel[k][k];
    }
    for (size_t a = i; a <= j; ++a) {
      for (size_t b = a + 1; b <= j; ++b) {
        card *= stats.pair_sel[a][b];
      }
    }
    const size_t m = j - i + 1;
    card *= std::pow(window_frac, static_cast<double>(m - 1));
    if (tree->ordered) {
      double fact = 1.0;
      for (size_t k = 2; k <= m; ++k) fact *= static_cast<double>(k);
      card /= fact;
    }
    return card;
  };

  // Dynamic program over contiguous intervals (ZStream's plan search).
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<int>> split(n, std::vector<int>(n, -1));
  for (size_t i = 0; i < n; ++i) cost[i][i] = cardinality(i, i);
  for (size_t len = 2; len <= n; ++len) {
    for (size_t i = 0; i + len - 1 < n; ++i) {
      const size_t j = i + len - 1;
      double best = std::numeric_limits<double>::infinity();
      int best_k = static_cast<int>(i);
      for (size_t k = i; k < j; ++k) {
        const double c = cost[i][k] + cost[k + 1][j];
        if (c < best) {
          best = c;
          best_k = static_cast<int>(k);
        }
      }
      cost[i][j] = best + cardinality(i, j);
      split[i][j] = best_k;
    }
  }

  // Materialize the tree bottom-up and attach conditions at the lowest
  // node where all their variables are available.
  std::function<int(size_t, size_t)> build = [&](size_t lo,
                                                 size_t hi) -> int {
    TreeNode node;
    node.lo = lo;
    node.hi = hi;
    if (lo != hi) {
      const size_t k = static_cast<size_t>(split[lo][hi]);
      node.left = build(lo, k);
      node.right = build(k + 1, hi);
    }
    const std::set<VarId> here = VarsOf(plan, lo, hi);
    for (const Condition* condition : plan.pos_conditions) {
      if (!Subset(condition->Vars(), here)) continue;
      if (lo != hi) {
        const TreeNode& left = tree->nodes[static_cast<size_t>(node.left)];
        const TreeNode& right =
            tree->nodes[static_cast<size_t>(node.right)];
        if (Subset(condition->Vars(), VarsOf(plan, left.lo, left.hi)) ||
            Subset(condition->Vars(), VarsOf(plan, right.lo, right.hi))) {
          continue;  // already checked below
        }
      }
      node.conditions.push_back(condition);
    }
    tree->nodes.push_back(std::move(node));
    return static_cast<int>(tree->nodes.size() - 1);
  };
  tree->root = build(0, n - 1);
}

std::vector<TreeEngine::Item> TreeEngine::EvalNode(
    const LinearPlan& plan, const PlanTree& tree, int node_index,
    std::span<const Event> events, EngineBudget* budget) {
  const TreeNode& node = tree.nodes[static_cast<size_t>(node_index)];
  const WindowSpec& window = pattern_.window();
  std::vector<Item> out;

  auto fits_window = [&](const Item& item) {
    if (window.kind == WindowKind::kCount) {
      return item.max_id - item.min_id <=
             static_cast<EventId>(window.count_size()) - 1;
    }
    return item.max_ts - item.min_ts <= window.size;
  };

  if (node.lo == node.hi) {
    const PlanPosition& pos = plan.positions[node.lo];
    for (const Event& e : events) {
      if (!pos.Matches(e.type)) continue;
      // Each type-matching leaf candidate is one transition; it either
      // prunes on its leaf conditions or becomes a stored item, so
      // transitions == partial_matches + partial_matches_pruned holds
      // for the tree engine with transitions counting leaf candidates
      // plus join probes.
      ++stats_.transitions;
      Item item;
      item.binding = Binding(pattern_.num_vars());
      item.binding.Bind(pos.var, &e);
      item.min_id = item.max_id = e.id;
      item.min_ts = item.max_ts = e.timestamp;
      bool pass = true;
      for (const Condition* condition : node.conditions) {
        if (!condition->Eval(item.binding)) {
          pass = false;
          break;
        }
      }
      if (!pass) {
        ++stats_.partial_matches_pruned;
        continue;
      }
      ++stats_.partial_matches;
      if (!budget->OnPartialMatch()) return out;
      out.push_back(std::move(item));
    }
    return out;
  }

  const std::vector<Item> left =
      EvalNode(plan, tree, node.left, events, budget);
  if (budget->exceeded()) return out;
  const std::vector<Item> right =
      EvalNode(plan, tree, node.right, events, budget);
  if (budget->exceeded()) return out;
  const size_t merged_positions = node.hi - node.lo + 1;

  for (const Item& l : left) {
    if (budget->exceeded()) return out;
    for (const Item& r : right) {
      if (!budget->OnWork()) return out;
      // Every join probe is one transition; every rejection below is a
      // prune, keeping the work identity exact for join nodes too.
      ++stats_.transitions;
      if (tree.ordered && l.max_id >= r.min_id) {
        ++stats_.partial_matches_pruned;
        continue;
      }
      Item item;
      item.min_id = std::min(l.min_id, r.min_id);
      item.max_id = std::max(l.max_id, r.max_id);
      item.min_ts = std::min(l.min_ts, r.min_ts);
      item.max_ts = std::max(l.max_ts, r.max_ts);
      if (!fits_window(item)) {
        ++stats_.partial_matches_pruned;
        continue;
      }
      item.binding = l.binding;
      for (size_t v = 0; v < r.binding.slots.size(); ++v) {
        for (const Event* e : r.binding.slots[v]) {
          item.binding.Bind(static_cast<VarId>(v), e);
        }
      }
      // Distinctness (relevant for unordered CONJ joins): every position
      // must contribute its own event.
      if (!tree.ordered &&
          MatchFromBinding(item.binding).ids.size() != merged_positions) {
        ++stats_.partial_matches_pruned;
        continue;
      }
      bool pass = true;
      for (const Condition* condition : node.conditions) {
        if (!condition->Eval(item.binding)) {
          pass = false;
          break;
        }
      }
      if (!pass) {
        ++stats_.partial_matches_pruned;
        continue;
      }
      ++stats_.partial_matches;
      if (!budget->OnPartialMatch()) return out;
      if (out.size() < options_.max_partial_matches) {
        out.push_back(std::move(item));
      } else {
        ++stats_.partial_matches_dropped;
      }
    }
  }
  return out;
}

void TreeEngine::EvaluatePlan(size_t plan_index,
                              std::span<const Event> events, MatchSet* out,
                              EngineBudget* budget) {
  const LinearPlan& plan = plans_[plan_index];
  const PlanTree& tree = trees_[plan_index];
  std::vector<Item> items = EvalNode(plan, tree, tree.root, events, budget);
  if (budget->exceeded()) return;
  for (const Item& item : items) {
    bool pass = true;
    for (const Condition* condition : plan.pos_conditions) {
      if (!condition->Eval(item.binding)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++stats_.matches_emitted;
    out->Insert(MatchFromBinding(item.binding));
  }
}

Status TreeEngine::Evaluate(std::span<const Event> events, MatchSet* out) {
  DLACEP_CHECK(out != nullptr);
  Stopwatch watch;
  if (!trees_built_) {
    // ZStream derives its plan from workload statistics; sample them from
    // the first evaluated span.
    for (size_t i = 0; i < plans_.size(); ++i) {
      const PlanStatistics stats = EstimatePlanStatistics(
          plans_[i], events, options_.seed, options_.selectivity_samples);
      BuildTree(plans_[i], stats, &trees_[i]);
    }
    trees_built_ = true;
  }
  EngineBudget budget(options_);
  const bool budgeted =
      options_.partial_match_budget > 0 || options_.deadline_seconds > 0.0;
  MatchSet local;
  MatchSet* sink = budgeted ? &local : out;
  for (size_t i = 0; i < plans_.size(); ++i) {
    EvaluatePlan(i, events, sink, &budget);
    if (budget.exceeded()) break;
  }
  stats_.events_processed += events.size();
  ++stats_.evaluations;
  stats_.elapsed_seconds += watch.ElapsedSeconds();
  if (budget.exceeded()) {
    ++stats_.budget_aborts;
    return budget.ToStatus("zstream-tree");
  }
  if (budgeted) out->Merge(local);
  return Status::Ok();
}

std::string TreeEngine::PlanTreeString(size_t plan_index) const {
  DLACEP_CHECK_LT(plan_index, trees_.size());
  const PlanTree& tree = trees_[plan_index];
  if (tree.root < 0) return "<unbuilt>";
  std::function<void(int, std::ostringstream&)> render =
      [&](int index, std::ostringstream& os) {
        const TreeNode& node = tree.nodes[static_cast<size_t>(index)];
        if (node.lo == node.hi) {
          os << node.lo;
          return;
        }
        os << '(';
        render(node.left, os);
        os << ' ';
        render(node.right, os);
        os << ')';
      };
  std::ostringstream os;
  render(tree.root, os);
  return os.str();
}

}  // namespace dlacep
