#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace dlacep {
namespace obs {

namespace {

std::atomic<bool> g_enabled{true};

// Threads claim stripes round-robin at first use; the index is stable
// for the thread's lifetime, so a given worker always hits the same
// cache line of a given instrument.
std::atomic<size_t> g_next_shard{0};

size_t ClaimShard() {
  return g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

// Escapes a label value for Prometheus text exposition.
std::string EscapeLabel(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabel(v);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same, but with a `le` bucket bound appended (histogram exposition).
std::string RenderBucketLabels(const Labels& labels, const std::string& le) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabel(v);
    out += "\"";
  }
  if (!first) out += ",";
  out += "le=\"" + le + "\"}";
  return out;
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(k);
    out += "\":\"";
    out += JsonEscape(v);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string JsonDouble(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

size_t ThisThreadShard() {
  thread_local size_t shard = ClaimShard();
  return shard;
}

bool MetricsEnabled() {
#ifdef DLACEP_NO_METRICS
  return false;
#else
  return g_enabled.load(std::memory_order_relaxed);
#endif
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
#ifndef DLACEP_NO_METRICS
  if (!MetricsEnabled()) return;
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
#else
  (void)delta;
#endif
}

Histogram::Histogram(HistogramOptions options)
    : min_value_(options.min_value), num_buckets_(options.num_buckets) {
  shards_.reserve(kMetricShards);
  for (size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(num_buckets_ + 1));
  }
}

size_t Histogram::BucketIndex(double value) const {
  // Bucket 0 covers (-inf, min_value]; NaN compares false and also
  // lands there rather than corrupting the overflow bucket.
  if (!(value > min_value_)) return 0;
  int exp = 0;
  double m = std::frexp(value / min_value_, &exp);
  // value/min = m·2^exp, m ∈ [0.5, 1): ceil(log2) is exp, except when
  // the ratio is an exact power of two (m == 0.5), where it is exp-1.
  size_t idx = (m == 0.5) ? static_cast<size_t>(exp - 1)
                          : static_cast<size_t>(exp);
  return std::min(idx, num_buckets_);  // num_buckets_ == overflow bucket
}

double Histogram::BucketBound(size_t i) const {
  if (i >= num_buckets_) return std::numeric_limits<double>::infinity();
  return min_value_ * std::ldexp(1.0, static_cast<int>(i));
}

void Histogram::ObserveAlways(double value) {
  Shard& s = *shards_[ThisThreadShard()];
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double cur = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(cur, cur + value,
                                      std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_)
    total += s->count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const auto& s : shards_)
    total += s->sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(num_buckets_ + 1, 0);
  for (const auto& s : shards_) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += s->buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: smallest bucket whose cumulative count reaches
  // ceil(q·total) (at least 1).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) return BucketBound(i);
  }
  return BucketBound(counts.size() - 1);
}

void Histogram::Reset() {
  for (auto& s : shards_) {
    for (auto& b : s->buckets) b.store(0, std::memory_order_relaxed);
    s->count.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) {
    if (e.name == name && e.labels == labels) return e.instrument.get();
  }
  counters_.push_back({name, labels, help, std::make_unique<Counter>()});
  return counters_.back().instrument.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : gauges_) {
    if (e.name == name && e.labels == labels) return e.instrument.get();
  }
  gauges_.push_back({name, labels, help, std::make_unique<Gauge>()});
  return gauges_.back().instrument.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::string& help,
                                         HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : histograms_) {
    if (e.name == name && e.labels == labels) return e.instrument.get();
  }
  histograms_.push_back(
      {name, labels, help, std::make_unique<Histogram>(options)});
  return histograms_.back().instrument.get();
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : counters_) e.instrument->Reset();
  for (auto& e : gauges_) e.instrument->Reset();
  for (auto& e : histograms_) e.instrument->Reset();
}

namespace {

// Orders entry indices so all samples of one family (same name) sit
// together, families in first-registration order — the exposition
// format forbids a family appearing twice.
template <typename Entries>
std::vector<size_t> FamilyOrder(const Entries& entries) {
  std::vector<size_t> order;
  order.reserve(entries.size());
  std::vector<uint8_t> emitted(entries.size(), 0);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (emitted[i]) continue;
    for (size_t j = i; j < entries.size(); ++j) {
      if (!emitted[j] && entries[j].name == entries[i].name) {
        emitted[j] = 1;
        order.push_back(j);
      }
    }
  }
  return order;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  std::string last;
  auto header = [&](const std::string& name, const std::string& help,
                    const char* type) {
    if (name == last) return;
    last = name;
    if (!help.empty()) os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
  };
  for (size_t i : FamilyOrder(counters_)) {
    const auto& e = counters_[i];
    header(e.name, e.help, "counter");
    os << e.name << RenderLabels(e.labels) << " " << e.instrument->Value()
       << "\n";
  }
  last.clear();
  for (size_t i : FamilyOrder(gauges_)) {
    const auto& e = gauges_[i];
    header(e.name, e.help, "gauge");
    os << e.name << RenderLabels(e.labels) << " "
       << FormatDouble(e.instrument->Value()) << "\n";
  }
  last.clear();
  for (size_t i : FamilyOrder(histograms_)) {
    const auto& e = histograms_[i];
    header(e.name, e.help, "histogram");
    const std::vector<uint64_t> counts = e.instrument->BucketCounts();
    uint64_t cum = 0;
    for (size_t b = 0; b < counts.size(); ++b) {
      cum += counts[b];
      os << e.name << "_bucket"
         << RenderBucketLabels(e.labels,
                               FormatDouble(e.instrument->BucketBound(b)))
         << " " << cum << "\n";
    }
    os << e.name << "_sum" << RenderLabels(e.labels) << " "
       << FormatDouble(e.instrument->Sum()) << "\n";
    os << e.name << "_count" << RenderLabels(e.labels) << " " << cum << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& e : counters_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"labels\":"
       << JsonLabels(e.labels) << ",\"value\":" << e.instrument->Value() << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& e : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"labels\":"
       << JsonLabels(e.labels)
       << ",\"value\":" << JsonDouble(e.instrument->Value()) << "}";
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& e : histograms_) {
    if (!first) os << ",";
    first = false;
    const std::vector<uint64_t> counts = e.instrument->BucketCounts();
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"labels\":"
       << JsonLabels(e.labels) << ",\"count\":" << e.instrument->Count()
       << ",\"sum\":" << JsonDouble(e.instrument->Sum())
       << ",\"p50\":" << JsonDouble(e.instrument->Quantile(0.5))
       << ",\"p99\":" << JsonDouble(e.instrument->Quantile(0.99))
       << ",\"buckets\":[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) os << ",";
      os << "{\"le\":" << JsonDouble(e.instrument->BucketBound(i))
         << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace dlacep
