// Scoped stage timers feeding the per-stage latency histograms.
//
// A TraceSpan brackets one pipeline stage execution (one window marked,
// one merge, one checkpoint write, ...) and records the elapsed wall
// time into a Histogram on destruction. When metrics are disabled the
// span disarms at construction and never reads the clock, so the
// instrumented hot paths pay a single branch.

#ifndef DLACEP_OBS_TRACE_H_
#define DLACEP_OBS_TRACE_H_

#include <chrono>

#include "obs/metrics.h"

namespace dlacep {
namespace obs {

/// RAII timer: records `now - construction` seconds into `sink` when it
/// goes out of scope. Pass nullptr (or disable metrics) to no-op.
class TraceSpan {
 public:
  explicit TraceSpan(Histogram* sink)
#ifndef DLACEP_NO_METRICS
      : sink_(MetricsEnabled() ? sink : nullptr) {
    if (sink_ != nullptr) start_ = Clock::now();
  }
#else
      : sink_(nullptr) {
    (void)sink;
  }
#endif

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { Finish(); }

  /// Records and disarms early (before scope exit).
  void Finish() {
#ifndef DLACEP_NO_METRICS
    if (sink_ == nullptr) return;
    sink_->Observe(
        std::chrono::duration<double>(Clock::now() - start_).count());
    sink_ = nullptr;
#endif
  }

  /// Discards the measurement (e.g. the stage aborted).
  void Cancel() { sink_ = nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* sink_;
#ifndef DLACEP_NO_METRICS
  Clock::time_point start_;
#endif
};

/// Seconds on the same monotonic clock TraceSpan uses — for manual
/// timestamping (e.g. stamping an event at queue push so queue-wait can
/// be measured at pop).
inline double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace dlacep

#endif  // DLACEP_OBS_TRACE_H_
