// Well-known instrument handles for the DLACEP pipeline.
//
// Instrumented code never pays a registry lookup on the hot path: each
// accessor below resolves its instrument once (function-local static)
// and returns the cached pointer forever after. The full metric naming
// scheme is documented in docs/ARCHITECTURE.md; the short version:
//
//   dlacep_stage_latency_seconds{stage=...}   per-stage latency histograms
//   dlacep_runtime_events_total{result=...}   event accounting counters
//   dlacep_runtime_windows_total{kind=...}    window outcome counters
//   dlacep_runtime_health_total{event=...}    health guard counters
//   dlacep_overload_transitions_total{from,to}
//   dlacep_cep_*_total{engine=...}            CEP engine work counters
//   dlacep_queue_depth / dlacep_overload_level / ... gauges
//
// TouchStandardMetrics() eagerly registers every family above so an
// exposition scrape always contains the complete schema, even when a
// run never exercised a path (e.g. the NN forward stages under the
// pass-through filter).

#ifndef DLACEP_OBS_STAGES_H_
#define DLACEP_OBS_STAGES_H_

#include "obs/metrics.h"

namespace dlacep {
namespace obs {

// --- Stage latency histograms (dlacep_stage_latency_seconds) ---------
Histogram* StageQueueWait();      ///< ingest push -> assembler pop
Histogram* StageFeatureBuild();   ///< featurizer Encode
Histogram* StageNnForwardInfer(); ///< frozen fast-path forward (per window)
Histogram* StageNnForwardTape();  ///< tape forward (per window)
Histogram* StageNnGemm();         ///< hoisted LSTM input-projection GEMM
Histogram* StageNnGemmBatched();  ///< cross-window batched projection GEMM
Histogram* StageNnCell();         ///< LSTM per-step recurrence loop
Histogram* StageWindowMark();     ///< one window (or micro-batch) marked
Histogram* StageWindowMerge();    ///< one window merged (dedup + store)
Histogram* StageCepEval();        ///< CEP engine Evaluate
Histogram* StageCheckpointWrite();///< checkpoint serialization + write

// --- Runtime counters ------------------------------------------------
// dlacep_runtime_events_total{result=ingested|dropped|relayed|filtered|
//                                    quarantined}
Counter* EventsIngested();
Counter* EventsDropped();
Counter* EventsRelayed();
Counter* EventsFiltered();
Counter* EventsQuarantined();

// dlacep_runtime_windows_total{kind=closed|boosted|shed|quarantined|
//                                   degraded|timed_out}
Counter* WindowsClosed();
Counter* WindowsBoosted();
Counter* WindowsShed();
Counter* WindowsQuarantined();
Counter* WindowsDegraded();

// dlacep_runtime_health_total{event=violation|degrade|recovery|
//                                   probe_run|probe_passed}
Counter* HealthViolations();
Counter* HealthDegrades();
Counter* HealthRecoveries();
Counter* ProbesRun();
Counter* ProbesPassed();

// dlacep_runtime_checkpoints_total
Counter* CheckpointsWritten();

// dlacep_overload_transitions_total{from="L",to="L"} — one counter per
// (from, to) level pair, created on demand.
Counter* OverloadTransitions(int from, int to);

// --- CEP engine counters (labelled by engine name) -------------------
// dlacep_cep_events_total / dlacep_cep_partial_matches_total /
// dlacep_cep_partial_matches_pruned_total / dlacep_cep_transitions_total /
// dlacep_cep_matches_total, each {engine="nfa"|"tree"|"lazy"}.
Counter* CepEvents(const std::string& engine);
Counter* CepPartialMatches(const std::string& engine);
Counter* CepPartialMatchesPruned(const std::string& engine);
Counter* CepTransitions(const std::string& engine);
Counter* CepMatches(const std::string& engine);
/// dlacep_cep_partial_matches_dropped_total{engine}: partial matches
/// silently truncated by the legacy storage cap — nonzero means the run
/// may have lost recall (the CLI warns at end of run).
Counter* CepPartialMatchesDropped(const std::string& engine);
/// dlacep_cep_budget_aborts_total{engine}: Evaluate() calls aborted
/// with kBudgetExceeded under a cooperative engine budget.
Counter* CepBudgetAborts(const std::string& engine);
/// dlacep_engine_selected_total{engine,pattern}: adaptive-selection
/// decisions — one increment per cost-model (re)evaluation, labelled
/// with the engine it settled on, so the decision trail of an adaptive
/// run is observable and replayable from a scrape.
Counter* EngineSelected(const std::string& engine,
                        const std::string& pattern);

// --- Sharded runtime (labelled {shard="k"}) --------------------------
// dlacep_shard_windows_total{shard}: windows marked by shard k.
// dlacep_shard_ring_depth{shard}: work-ring depth, set by the router at
// each dispatch.
// dlacep_shard_mark_latency_seconds{shard}: wall time of each filter
// call (solo window or micro-batch) on shard k.
// Small shard indices resolve through a lock-free cache; larger ones
// fall back to the registry lookup.
Counter* ShardWindowsMarked(size_t shard);
Gauge* ShardRingDepth(size_t shard);
Histogram* ShardMarkLatency(size_t shard);

// --- Batched inference -----------------------------------------------
/// dlacep_nn_batch_windows — windows per batched trunk forward
/// (geometric buckets from 1), observed once per ForwardBatch call.
/// Batch size 1 means the batched entry point ran on a single window;
/// the legacy per-window Forward never observes this histogram.
Histogram* NnBatchWindows();

// --- Multi-query serving (src/serve) ---------------------------------
// dlacep_registry_queries: queries currently registered.
// dlacep_registry_snapshots_total: snapshot swaps (one per mutation).
// dlacep_query_matches_total{query} / dlacep_query_marked_events_total
// {query}: per-query serving results, labelled by the registered name.
// dlacep_serve_engines_total{result=run|shared|guard_pruned|type_pruned}:
// shared-CEP plan outcomes — how many per-query engine evaluations
// actually ran vs. were served from a structural twin or pruned.
Gauge* RegistryQueries();
Counter* RegistrySnapshots();
Counter* QueryMatches(const std::string& query);
Counter* QueryMarkedEvents(const std::string& query);
Counter* ServeEnginesRun();
Counter* ServeEnginesShared();
Counter* ServeEnginesGuardPruned();
Counter* ServeEnginesTypePruned();

// --- Per-query fault isolation (src/serve breaker + fair share) ------
// dlacep_query_breaker_trips_total{query} / dlacep_query_budget_aborts_
// total{query}: circuit-breaker activity per registered query name.
// dlacep_query_breaker_state{query}: 0=healthy 1=tripped 2=probing.
// dlacep_query_extract_cost{query}: accumulated fair-share extraction
// cost (engine runs + partial-match work) for the last Run().
// dlacep_serve_extract_chunks_total{result=run|skipped|aborted}: chunk
// outcomes of the fair-share extraction scheduler.
Counter* QueryBreakerTrips(const std::string& query);
Counter* QueryBudgetAborts(const std::string& query);
Gauge* QueryBreakerState(const std::string& query);
Gauge* QueryExtractCost(const std::string& query);
Counter* ServeChunksRun();
Counter* ServeChunksSkipped();
Counter* ServeChunksAborted();

// --- Gauges ----------------------------------------------------------
Gauge* QueueDepth();       ///< dlacep_queue_depth (events waiting)
Gauge* QueueCapacity();    ///< dlacep_queue_capacity
Gauge* OverloadLevel();    ///< dlacep_overload_level (0..3)
Gauge* HealthDegraded();   ///< dlacep_health_degraded (0/1)
Gauge* WindowsInFlight();  ///< dlacep_windows_in_flight

/// Eagerly registers every family above (including the common overload
/// transition pairs and all three CEP engine label values) so a scrape
/// emits the complete schema regardless of which paths ran.
void TouchStandardMetrics();

}  // namespace obs
}  // namespace dlacep

#endif  // DLACEP_OBS_STAGES_H_
