// Metrics exposition to files: one-shot writes and a periodic
// background exporter (the `--metrics_out` / `--metrics_every` CLI
// flags).
//
// Format is chosen by extension: a path ending in ".json" gets the
// unified bench_json-style document
//
//   {"bench": "<tag>", "rows": [], "metrics": [], "registry": {...}}
//
// (so the same tooling reads bench output and runtime scrapes);
// anything else gets Prometheus text exposition. Writes go through a
// temp file + rename so a scraper never sees a torn file.

#ifndef DLACEP_OBS_EXPORT_H_
#define DLACEP_OBS_EXPORT_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace dlacep {
namespace obs {

/// Writes the global registry to `path` (format by extension, see
/// above). Returns false on I/O failure.
bool WriteMetricsFile(const std::string& path,
                      const std::string& tag = "dlacep_cli");

/// Periodic exporter: writes `path` every `period_seconds` on a
/// background thread, and once more (final snapshot) at destruction.
/// period_seconds <= 0 disables the thread — only the exit write runs.
class MetricsExporter {
 public:
  MetricsExporter(std::string path, double period_seconds,
                  std::string tag = "dlacep_cli");
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Stops the background thread and writes the final snapshot (also
  /// called by the destructor; idempotent). Returns the final write's
  /// success.
  bool Flush();

 private:
  std::string path_;
  std::string tag_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool flushed_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace dlacep

#endif  // DLACEP_OBS_EXPORT_H_
