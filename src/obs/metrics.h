// Low-overhead metrics: named counters, gauges, and log-bucketed
// histograms behind a process-global registry.
//
// Design constraints, in order:
//
//  1. The hot path (one worker marking one window) must pay roughly one
//     relaxed atomic RMW per recorded fact. Counters and histogram
//     buckets are therefore striped across kMetricShards cache-line
//     aligned cells; each thread hashes to a stable shard, so
//     concurrent workers touch distinct cache lines and never contend.
//     Values are summed only on scrape, which is rare and slow-path.
//
//  2. Instruments are created once (registry lookup under a mutex) and
//     then held by pointer. Lookups are not hot: callers cache the
//     pointer — see obs/stages.h for the process-wide handles the
//     pipeline uses. Registered instruments are never destroyed before
//     process exit, so cached pointers stay valid forever.
//
//  3. Everything must compile away. Building with -DDLACEP_NO_METRICS=ON
//     defines the macro of the same name and turns every mutation into
//     an empty inline; the runtime kill switch (MetricsRegistry::
//     SetEnabled(false)) covers the measured-overhead bench, which needs
//     on/off rows from one binary.
//
// Histograms use log2 buckets exactly like runtime/stats.h's
// LatencyHistogram: bucket i counts observations in
// (min_value·2^(i-1), min_value·2^i], with an underflow first bucket and
// a +Inf overflow last bucket. Quantile() is nearest-rank over bucket
// counts and returns the bucket's upper bound, i.e. it is exact to one
// bucket — the property tests/obs_test.cc pins down.

#ifndef DLACEP_OBS_METRICS_H_
#define DLACEP_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dlacep {
namespace obs {

/// Number of stripes per counter/histogram. Threads hash to a stable
/// stripe; 16 is comfortably above the worker counts the runtime uses.
inline constexpr size_t kMetricShards = 16;

/// Stable per-thread shard index in [0, kMetricShards).
size_t ThisThreadShard();

/// True when metric mutation is live. Compiled out entirely under
/// DLACEP_NO_METRICS; otherwise a relaxed atomic read of the runtime
/// kill switch.
bool MetricsEnabled();

/// Sorted key=value label set. Instruments are identified by
/// (name, labels); the registry treats the pair as the primary key.
using Labels = std::map<std::string, std::string>;

namespace internal {
struct alignas(64) ShardCell {
  std::atomic<uint64_t> v{0};
};
}  // namespace internal

/// Monotonic counter, striped across shards. Increment is one relaxed
/// fetch_add on this thread's stripe.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
#ifndef DLACEP_NO_METRICS
    if (!MetricsEnabled()) return;
    shards_[ThisThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  /// Sum over all stripes (scrape path).
  uint64_t Value() const;

  /// Zeroes all stripes. Scrape-path only; racing increments may be
  /// lost, which is fine for the test-reset use case.
  void Reset();

 private:
  internal::ShardCell shards_[kMetricShards];
};

/// Point-in-time value. A single atomic<double>; Set is a relaxed
/// store, Add is a CAS loop (atomic<double>::fetch_add is not portable
/// pre-C++20 libstdc++ everywhere we build).
class Gauge {
 public:
  void Set(double value) {
#ifndef DLACEP_NO_METRICS
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  void Add(double delta);

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  /// Upper bound of the first (underflow) bucket. Defaults match
  /// runtime/stats.h's LatencyHistogram: 1µs lower resolution bound.
  double min_value = 1e-6;
  /// Finite buckets; bucket i (0-based) has upper bound
  /// min_value·2^i, plus one +Inf overflow bucket on top.
  size_t num_buckets = 27;
};

/// Log2-bucketed histogram, striped like Counter. Observe is one
/// relaxed fetch_add plus a frexp to pick the bucket.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void Observe(double value) {
#ifndef DLACEP_NO_METRICS
    if (!MetricsEnabled()) return;
    ObserveAlways(value);
#else
    (void)value;
#endif
  }

  /// Index of the bucket `value` lands in (exposed for tests).
  size_t BucketIndex(double value) const;

  /// Upper bound of finite bucket i; the last bucket's bound is +Inf.
  double BucketBound(size_t i) const;

  size_t num_buckets() const { return num_buckets_ + 1; }

  /// Aggregated count of finite+overflow observations.
  uint64_t Count() const;

  /// Sum of observed values (for Prometheus `_sum`).
  double Sum() const;

  /// Aggregated per-bucket counts (scrape path).
  std::vector<uint64_t> BucketCounts() const;

  /// Nearest-rank quantile (q in [0,1]) over bucket counts; returns the
  /// selected bucket's upper bound, so the estimate is within one
  /// bucket of exact. Returns 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  void ObserveAlways(double value);

  double min_value_;
  size_t num_buckets_;  // finite buckets; +1 overflow stored on top
  struct Shard {
    explicit Shard(size_t n) : buckets(n) {}
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Process-global instrument registry. GetCounter/GetGauge/GetHistogram
/// find-or-create by (name, labels) under a mutex and hand back a
/// pointer that stays valid for the life of the process — cache it.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "",
                          HistogramOptions options = {});

  /// Prometheus text exposition (HELP/TYPE + samples; histograms as
  /// cumulative `_bucket{le=...}` plus `_sum`/`_count`).
  std::string RenderPrometheus() const;

  /// JSON object with the same content, embeddable in bench_json
  /// reports: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string RenderJson() const;

  /// Zeroes every registered instrument (instruments themselves stay
  /// registered, so cached pointers remain valid). Test helper: the
  /// registry is process-global while RuntimeStats is per-run.
  void ResetValues();

  /// Runtime kill switch for the measured-overhead bench. Mutations
  /// become no-ops when disabled; scrape still works.
  static void SetEnabled(bool enabled);

 private:
  MetricsRegistry() = default;

  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<T> instrument;
  };

  mutable std::mutex mu_;
  // Deques-of-entries semantics via vector<unique_ptr>: pointers handed
  // out never move.
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace dlacep

#endif  // DLACEP_OBS_METRICS_H_
