#include "obs/stages.h"

#include <string>

namespace dlacep {
namespace obs {

namespace {

constexpr char kStageLatency[] = "dlacep_stage_latency_seconds";
constexpr char kStageHelp[] =
    "Per-stage wall-clock latency of the DLACEP pipeline";

Histogram* Stage(const char* stage) {
  return MetricsRegistry::Global().GetHistogram(kStageLatency,
                                                {{"stage", stage}},
                                                kStageHelp);
}

constexpr char kEventsTotal[] = "dlacep_runtime_events_total";
constexpr char kEventsHelp[] =
    "Event accounting: relayed+filtered+dropped+quarantined == ingested";

Counter* Events(const char* result) {
  return MetricsRegistry::Global().GetCounter(kEventsTotal,
                                              {{"result", result}},
                                              kEventsHelp);
}

constexpr char kWindowsTotal[] = "dlacep_runtime_windows_total";
constexpr char kWindowsHelp[] = "Window outcomes in the online runtime";

Counter* Windows(const char* kind) {
  return MetricsRegistry::Global().GetCounter(kWindowsTotal,
                                              {{"kind", kind}},
                                              kWindowsHelp);
}

constexpr char kHealthTotal[] = "dlacep_runtime_health_total";
constexpr char kHealthHelp[] = "Health guard events in the online runtime";

Counter* Health(const char* event) {
  return MetricsRegistry::Global().GetCounter(kHealthTotal,
                                              {{"event", event}},
                                              kHealthHelp);
}

constexpr char kCepHelp[] = "CEP engine work counters";

Counter* Cep(const char* what, const std::string& engine) {
  return MetricsRegistry::Global().GetCounter(
      std::string("dlacep_cep_") + what + "_total", {{"engine", engine}},
      kCepHelp);
}

}  // namespace

#define DLACEP_OBS_STAGE(fn, name)                    \
  Histogram* fn() {                                   \
    static Histogram* h = Stage(name);                \
    return h;                                         \
  }

DLACEP_OBS_STAGE(StageQueueWait, "queue_wait")
DLACEP_OBS_STAGE(StageFeatureBuild, "feature_build")
DLACEP_OBS_STAGE(StageNnForwardInfer, "nn_forward_infer")
DLACEP_OBS_STAGE(StageNnForwardTape, "nn_forward_tape")
DLACEP_OBS_STAGE(StageNnGemm, "nn_gemm")
DLACEP_OBS_STAGE(StageNnGemmBatched, "nn_gemm_batched")
DLACEP_OBS_STAGE(StageNnCell, "nn_cell")
DLACEP_OBS_STAGE(StageWindowMark, "window_mark")
DLACEP_OBS_STAGE(StageWindowMerge, "window_merge")
DLACEP_OBS_STAGE(StageCepEval, "cep_eval")
DLACEP_OBS_STAGE(StageCheckpointWrite, "checkpoint_write")

#undef DLACEP_OBS_STAGE

#define DLACEP_OBS_COUNTER(fn, maker, label) \
  Counter* fn() {                            \
    static Counter* c = maker(label);        \
    return c;                                \
  }

DLACEP_OBS_COUNTER(EventsIngested, Events, "ingested")
DLACEP_OBS_COUNTER(EventsDropped, Events, "dropped")
DLACEP_OBS_COUNTER(EventsRelayed, Events, "relayed")
DLACEP_OBS_COUNTER(EventsFiltered, Events, "filtered")
DLACEP_OBS_COUNTER(EventsQuarantined, Events, "quarantined")

DLACEP_OBS_COUNTER(WindowsClosed, Windows, "closed")
DLACEP_OBS_COUNTER(WindowsBoosted, Windows, "boosted")
DLACEP_OBS_COUNTER(WindowsShed, Windows, "shed")
DLACEP_OBS_COUNTER(WindowsQuarantined, Windows, "quarantined")
DLACEP_OBS_COUNTER(WindowsDegraded, Windows, "degraded")

DLACEP_OBS_COUNTER(HealthViolations, Health, "violation")
DLACEP_OBS_COUNTER(HealthDegrades, Health, "degrade")
DLACEP_OBS_COUNTER(HealthRecoveries, Health, "recovery")
DLACEP_OBS_COUNTER(ProbesRun, Health, "probe_run")
DLACEP_OBS_COUNTER(ProbesPassed, Health, "probe_passed")

#undef DLACEP_OBS_COUNTER

Counter* CheckpointsWritten() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dlacep_runtime_checkpoints_total", {},
      "Checkpoints written by the online runtime");
  return c;
}

Counter* OverloadTransitions(int from, int to) {
  // Levels are small (0..3 today); cache pointers so the overload
  // controller's transition path stays lookup-free. Racy init is fine:
  // the registry find-or-create is idempotent.
  static constexpr int kMaxLevel = 8;
  static std::atomic<Counter*> cache[kMaxLevel][kMaxLevel] = {};
  auto make = [](int f, int t) {
    return MetricsRegistry::Global().GetCounter(
        "dlacep_overload_transitions_total",
        {{"from", std::to_string(f)}, {"to", std::to_string(t)}},
        "Overload controller level transitions");
  };
  if (from < 0 || from >= kMaxLevel || to < 0 || to >= kMaxLevel) {
    return make(from, to);
  }
  Counter* c = cache[from][to].load(std::memory_order_acquire);
  if (c == nullptr) {
    c = make(from, to);
    cache[from][to].store(c, std::memory_order_release);
  }
  return c;
}

Counter* CepEvents(const std::string& engine) {
  return Cep("events", engine);
}
Counter* CepPartialMatches(const std::string& engine) {
  return Cep("partial_matches", engine);
}
Counter* CepPartialMatchesPruned(const std::string& engine) {
  return Cep("partial_matches_pruned", engine);
}
Counter* CepTransitions(const std::string& engine) {
  return Cep("transitions", engine);
}
Counter* CepMatches(const std::string& engine) {
  return Cep("matches", engine);
}
Counter* CepPartialMatchesDropped(const std::string& engine) {
  return Cep("partial_matches_dropped", engine);
}
Counter* CepBudgetAborts(const std::string& engine) {
  return Cep("budget_aborts", engine);
}

// Selection decisions are per (engine, pattern) and happen once per
// reselection period, not per event — the registry find-or-create per
// call is fine.
Counter* EngineSelected(const std::string& engine,
                        const std::string& pattern) {
  return MetricsRegistry::Global().GetCounter(
      "dlacep_engine_selected_total",
      {{"engine", engine}, {"pattern", pattern}},
      "Adaptive engine-selection decisions by chosen engine");
}

namespace {

// Shard label values are small dense integers; cache the resolved
// instruments for the first kMaxCachedShards like OverloadTransitions
// does, so the per-dispatch gauge set stays lookup-free. Racy init is
// fine: registry find-or-create is idempotent.
constexpr size_t kMaxCachedShards = 32;

template <typename T, typename Make>
T* CachedShardInstrument(std::atomic<T*>* cache, size_t shard,
                         const Make& make) {
  if (shard >= kMaxCachedShards) return make(shard);
  T* instrument = cache[shard].load(std::memory_order_acquire);
  if (instrument == nullptr) {
    instrument = make(shard);
    cache[shard].store(instrument, std::memory_order_release);
  }
  return instrument;
}

}  // namespace

Counter* ShardWindowsMarked(size_t shard) {
  static std::atomic<Counter*> cache[kMaxCachedShards] = {};
  return CachedShardInstrument(cache, shard, [](size_t s) {
    return MetricsRegistry::Global().GetCounter(
        "dlacep_shard_windows_total", {{"shard", std::to_string(s)}},
        "Windows marked per shard in the sharded runtime");
  });
}

Gauge* ShardRingDepth(size_t shard) {
  static std::atomic<Gauge*> cache[kMaxCachedShards] = {};
  return CachedShardInstrument(cache, shard, [](size_t s) {
    return MetricsRegistry::Global().GetGauge(
        "dlacep_shard_ring_depth", {{"shard", std::to_string(s)}},
        "Windows waiting in a shard's work ring");
  });
}

Histogram* ShardMarkLatency(size_t shard) {
  static std::atomic<Histogram*> cache[kMaxCachedShards] = {};
  return CachedShardInstrument(cache, shard, [](size_t s) {
    return MetricsRegistry::Global().GetHistogram(
        "dlacep_shard_mark_latency_seconds",
        {{"shard", std::to_string(s)}},
        "Per-filter-call wall time on a shard worker");
  });
}

Histogram* NnBatchWindows() {
  // Buckets 1, 2, 4, ... — batch sizes are small powers of two in
  // practice, and the geometric ladder keeps the histogram compact.
  static Histogram* h = MetricsRegistry::Global().GetHistogram(
      "dlacep_nn_batch_windows", {},
      "Windows per batched NN trunk forward",
      HistogramOptions{/*min_value=*/1.0, /*num_buckets=*/12});
  return h;
}

Gauge* RegistryQueries() {
  static Gauge* g = MetricsRegistry::Global().GetGauge(
      "dlacep_registry_queries", {},
      "Queries currently registered in the serving registry");
  return g;
}

Counter* RegistrySnapshots() {
  static Counter* c = MetricsRegistry::Global().GetCounter(
      "dlacep_registry_snapshots_total", {},
      "Registry snapshot swaps (one per register/unregister)");
  return c;
}

// Per-query instruments are labelled by the registered query name —
// dynamic label values, so these go through the registry's
// find-or-create every call. They are touched once per run at result
// publication, not on the hot path.
Counter* QueryMatches(const std::string& query) {
  return MetricsRegistry::Global().GetCounter(
      "dlacep_query_matches_total", {{"query", query}},
      "Matches extracted per registered query");
}

Counter* QueryMarkedEvents(const std::string& query) {
  return MetricsRegistry::Global().GetCounter(
      "dlacep_query_marked_events_total", {{"query", query}},
      "Deduplicated marked events per registered query");
}

Counter* QueryBreakerTrips(const std::string& query) {
  return MetricsRegistry::Global().GetCounter(
      "dlacep_query_breaker_trips_total", {{"query", query}},
      "Circuit-breaker trips per registered query");
}

Counter* QueryBudgetAborts(const std::string& query) {
  return MetricsRegistry::Global().GetCounter(
      "dlacep_query_budget_aborts_total", {{"query", query}},
      "Engine budget aborts attributed to a registered query");
}

Gauge* QueryBreakerState(const std::string& query) {
  return MetricsRegistry::Global().GetGauge(
      "dlacep_query_breaker_state", {{"query", query}},
      "Breaker state per query: 0=healthy 1=tripped 2=probing");
}

Gauge* QueryExtractCost(const std::string& query) {
  return MetricsRegistry::Global().GetGauge(
      "dlacep_query_extract_cost", {{"query", query}},
      "Fair-share extraction cost (runs + partial-match work) last run");
}

namespace {

constexpr char kServeEnginesTotal[] = "dlacep_serve_engines_total";
constexpr char kServeEnginesHelp[] =
    "Shared-CEP plan outcomes per query evaluation";

Counter* ServeEngines(const char* result) {
  return MetricsRegistry::Global().GetCounter(kServeEnginesTotal,
                                              {{"result", result}},
                                              kServeEnginesHelp);
}

}  // namespace

#define DLACEP_OBS_COUNTER(fn, maker, label) \
  Counter* fn() {                            \
    static Counter* c = maker(label);        \
    return c;                                \
  }

DLACEP_OBS_COUNTER(ServeEnginesRun, ServeEngines, "run")
DLACEP_OBS_COUNTER(ServeEnginesShared, ServeEngines, "shared")
DLACEP_OBS_COUNTER(ServeEnginesGuardPruned, ServeEngines, "guard_pruned")
DLACEP_OBS_COUNTER(ServeEnginesTypePruned, ServeEngines, "type_pruned")

#undef DLACEP_OBS_COUNTER

namespace {

constexpr char kServeChunksTotal[] = "dlacep_serve_extract_chunks_total";
constexpr char kServeChunksHelp[] =
    "Fair-share extraction scheduler chunk outcomes";

Counter* ServeChunks(const char* result) {
  return MetricsRegistry::Global().GetCounter(kServeChunksTotal,
                                              {{"result", result}},
                                              kServeChunksHelp);
}

}  // namespace

#define DLACEP_OBS_COUNTER(fn, maker, label) \
  Counter* fn() {                            \
    static Counter* c = maker(label);        \
    return c;                                \
  }

DLACEP_OBS_COUNTER(ServeChunksRun, ServeChunks, "run")
DLACEP_OBS_COUNTER(ServeChunksSkipped, ServeChunks, "skipped")
DLACEP_OBS_COUNTER(ServeChunksAborted, ServeChunks, "aborted")

#undef DLACEP_OBS_COUNTER

#define DLACEP_OBS_GAUGE(fn, name, help)                          \
  Gauge* fn() {                                                   \
    static Gauge* g =                                             \
        MetricsRegistry::Global().GetGauge(name, {}, help);       \
    return g;                                                     \
  }

DLACEP_OBS_GAUGE(QueueDepth, "dlacep_queue_depth",
                 "Events waiting in the ingest queue")
DLACEP_OBS_GAUGE(QueueCapacity, "dlacep_queue_capacity",
                 "Ingest queue capacity")
DLACEP_OBS_GAUGE(OverloadLevel, "dlacep_overload_level",
                 "Current overload controller level (0=normal)")
DLACEP_OBS_GAUGE(HealthDegraded, "dlacep_health_degraded",
                 "1 while the runtime is in degraded mode")
DLACEP_OBS_GAUGE(WindowsInFlight, "dlacep_windows_in_flight",
                 "Windows closed but not yet merged")

#undef DLACEP_OBS_GAUGE

void TouchStandardMetrics() {
  StageQueueWait();
  StageFeatureBuild();
  StageNnForwardInfer();
  StageNnForwardTape();
  StageNnGemm();
  StageNnGemmBatched();
  StageNnCell();
  StageWindowMark();
  StageWindowMerge();
  StageCepEval();
  StageCheckpointWrite();

  EventsIngested();
  EventsDropped();
  EventsRelayed();
  EventsFiltered();
  EventsQuarantined();

  WindowsClosed();
  WindowsBoosted();
  WindowsShed();
  WindowsQuarantined();
  WindowsDegraded();

  HealthViolations();
  HealthDegrades();
  HealthRecoveries();
  ProbesRun();
  ProbesPassed();
  CheckpointsWritten();

  // Adjacent level pairs plus the degraded jumps the health guard uses.
  for (int level = 0; level < 3; ++level) {
    OverloadTransitions(level, level + 1);
    OverloadTransitions(level + 1, level);
  }
  OverloadTransitions(0, 3);
  OverloadTransitions(3, 0);

  for (const char* engine : {"nfa", "zstream-tree", "lazy", "adaptive"}) {
    CepEvents(engine);
    CepPartialMatches(engine);
    CepPartialMatchesPruned(engine);
    CepTransitions(engine);
    CepMatches(engine);
    CepPartialMatchesDropped(engine);
    CepBudgetAborts(engine);
    EngineSelected(engine, "default");
  }

  NnBatchWindows();

  RegistryQueries();
  RegistrySnapshots();
  ServeEnginesRun();
  ServeEnginesShared();
  ServeEnginesGuardPruned();
  ServeEnginesTypePruned();
  ServeChunksRun();
  ServeChunksSkipped();
  ServeChunksAborted();

  QueueDepth();
  QueueCapacity();
  OverloadLevel();
  HealthDegraded();
  WindowsInFlight();
}

}  // namespace obs
}  // namespace dlacep
