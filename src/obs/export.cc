#include "obs/export.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace dlacep {
namespace obs {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool WriteWholeFile(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

bool WriteMetricsFile(const std::string& path, const std::string& tag) {
  std::string body;
  if (EndsWith(path, ".json")) {
    body = "{\n  \"bench\": \"" + tag +
           "\",\n  \"rows\": [],\n  \"metrics\": [],\n  \"registry\": " +
           MetricsRegistry::Global().RenderJson() + "\n}\n";
  } else {
    body = MetricsRegistry::Global().RenderPrometheus();
  }
  return WriteWholeFile(path, body);
}

MetricsExporter::MetricsExporter(std::string path, double period_seconds,
                                 std::string tag)
    : path_(std::move(path)), tag_(std::move(tag)) {
  if (period_seconds <= 0) return;
  thread_ = std::thread([this, period_seconds] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto period = std::chrono::duration<double>(period_seconds);
    while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
      lock.unlock();
      WriteMetricsFile(path_, tag_);
      lock.lock();
    }
  });
}

bool MetricsExporter::Flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (flushed_) return true;
    flushed_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  return WriteMetricsFile(path_, tag_);
}

MetricsExporter::~MetricsExporter() { Flush(); }

}  // namespace obs
}  // namespace dlacep
