#include "serve/server.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "dlacep/extractor.h"
#include "obs/stages.h"

namespace dlacep {
namespace serve {

size_t MultiQueryResult::total_matches() const {
  size_t total = 0;
  for (const QueryResult& query : queries) total += query.matches.size();
  return total;
}

double MultiQueryResult::events_per_sec() const {
  const double seconds = stats.elapsed_seconds + stats.extract_seconds;
  return seconds > 0.0
             ? static_cast<double>(stats.events_appended) / seconds
             : 0.0;
}

MultiQueryServer::MultiQueryServer(QueryRegistry* registry,
                                   const StreamFilter* base,
                                   const EventNetworkFilter* heads,
                                   const ServeConfig& config)
    : registry_(registry), config_(config), filter_(registry, base, heads) {}

Status MultiQueryServer::Run(StreamSource* source, MultiQueryResult* result) {
  *result = MultiQueryResult{};
  const auto start_snapshot = registry_->Acquire();
  if (start_snapshot->queries.empty()) {
    return Status::FailedPrecondition(
        "cannot serve: no queries registered");
  }

  OnlineConfig online = config_.online;
  if (online.mark_size == 0) online.mark_size = 2 * start_snapshot->max_window;
  if (online.step_size == 0) online.step_size = start_snapshot->max_window;
  online.collect_relayed = true;
  online.skip_extraction = true;

  filter_.ResetRecording();
  // Any registered pattern works as the runtime's geometry anchor (the
  // assembler uses the explicit mark/step above; the built-in extractor
  // is skipped).
  OnlineDlacep runtime(*start_snapshot->queries[0].pattern, &filter_,
                       online);
  OnlineResult raw;
  Status run_status = runtime.Run(source, &raw);
  if (!run_status.ok()) return run_status;

  // Extraction serves whatever is registered when the stream ends.
  const auto end_snapshot = registry_->Acquire();
  Stopwatch extract_watch;
  Status extract_status = ExtractShared(*end_snapshot, raw, result);
  if (!extract_status.ok()) return extract_status;
  raw.stats.extract_seconds = extract_watch.ElapsedSeconds();
  obs::StageCepEval()->Observe(raw.stats.extract_seconds);
  raw.stats.matches = result->total_matches();
  result->stats = std::move(raw.stats);

  for (const QueryResult& query : result->queries) {
    obs::QueryMatches(query.name)->Increment(query.matches.size());
    obs::QueryMarkedEvents(query.name)->Increment(query.marked_events);
  }
  obs::ServeEnginesRun()->Increment(result->sharing.engines_run);
  obs::ServeEnginesShared()->Increment(result->sharing.engines_shared);
  obs::ServeEnginesGuardPruned()->Increment(result->sharing.guard_pruned);
  obs::ServeEnginesTypePruned()->Increment(result->sharing.type_pruned);
  return Status::Ok();
}

Status MultiQueryServer::ExtractShared(const RegistrySnapshot& snapshot,
                                       const OnlineResult& raw,
                                       MultiQueryResult* result) {
  const std::map<QueryId, std::vector<EventId>> recorded =
      filter_.RecordedMarks();

  std::unordered_map<EventId, const Event*> by_id;
  by_id.reserve(raw.relayed_events.size());
  for (const Event& event : raw.relayed_events) {
    by_id.emplace(event.id, &event);
  }

  // Events relayed without a usable per-query decode — shed-fallback
  // marks, and every event of a quarantined/degraded window — belong to
  // every query (the single-query runtime's recall-1.0 fallback, per
  // query). Attribution is recorded at mark time, before the health
  // guard's quarantine verdict at window close, so a quarantined
  // window's events can carry stale per-query marks: strip those here —
  // the window-level recall-1.0 contract supersedes the decode.
  std::unordered_set<EventId> attributed;
  for (const auto& [id, ids] : recorded) {
    attributed.insert(ids.begin(), ids.end());
  }
  for (const EventId id : raw.quarantined_ids) attributed.erase(id);
  std::vector<EventId> unattributed;
  for (const Event& event : raw.relayed_events) {
    if (attributed.find(event.id) == attributed.end()) {
      unattributed.push_back(event.id);
    }
  }
  std::sort(unattributed.begin(), unattributed.end());

  // Per-query extraction inputs, deduplicated across queries: twins
  // (and guard sharers) with the same id set share one entry.
  struct EventSet {
    std::vector<const Event*> events;  ///< ascending id
    std::unordered_set<TypeId> types;
  };
  std::vector<EventSet> sets;
  std::map<std::vector<EventId>, size_t> set_index;
  std::vector<size_t> query_set(snapshot.queries.size());

  result->queries.resize(snapshot.queries.size());
  for (size_t q = 0; q < snapshot.queries.size(); ++q) {
    const QueryEntry& entry = snapshot.queries[q];
    std::vector<EventId> ids;
    const auto it = recorded.find(entry.id);
    if (it != recorded.end()) {
      ids.resize(it->second.size() + unattributed.size());
      ids.erase(std::set_union(it->second.begin(), it->second.end(),
                               unattributed.begin(), unattributed.end(),
                               ids.begin()),
                ids.end());
    } else {
      ids = unattributed;
    }

    result->queries[q].id = entry.id;
    result->queries[q].name = entry.name;
    result->queries[q].marked_events = ids.size();

    auto [set_it, inserted] = set_index.emplace(std::move(ids),
                                                sets.size());
    if (inserted) {
      EventSet set;
      set.events.reserve(set_it->first.size());
      for (const EventId id : set_it->first) {
        const auto event_it = by_id.find(id);
        DLACEP_CHECK(event_it != by_id.end());
        set.events.push_back(event_it->second);
        set.types.insert(event_it->second->type);
      }
      sets.push_back(std::move(set));
    }
    query_set[q] = set_it->second;
  }

  // Witness results are a property of (guard, event set): cache across
  // groups sharing a prefix.
  std::map<std::pair<int, size_t>, bool> witness_cache;

  for (const SharedGroup& group : snapshot.plan.groups) {
    std::map<size_t, std::vector<size_t>> partitions;
    for (const size_t member : group.members) {
      partitions[query_set[member]].push_back(member);
    }
    for (const auto& [set_id, members] : partitions) {
      ++result->sharing.partitions;
      const EventSet& set = sets[set_id];

      bool occupied = true;
      for (const std::vector<TypeId>& required : group.required_types) {
        bool present = false;
        for (const TypeId type : required) {
          present |= set.types.find(type) != set.types.end();
        }
        if (!present) {
          occupied = false;
          break;
        }
      }
      if (!occupied) {
        result->sharing.type_pruned += members.size();
        continue;  // every member's MatchSet stays empty
      }

      if (group.guard >= 0) {
        const std::pair<int, size_t> key(group.guard, set_id);
        auto cached = witness_cache.find(key);
        if (cached == witness_cache.end()) {
          ++result->sharing.guard_checks;
          cached = witness_cache
                       .emplace(key, SeqPrefixWitness(
                                         snapshot.plan.guards[static_cast<
                                             size_t>(group.guard)],
                                         set.events))
                       .first;
        }
        if (!cached->second) {
          result->sharing.guard_pruned += members.size();
          continue;
        }
      }

      const QueryEntry& canonical = snapshot.queries[members[0]];
      CepExtractor extractor(*canonical.pattern, canonical.engine);
      MatchSet shared;
      const Status status = extractor.Extract(set.events, &shared);
      if (!status.ok()) return status;
      ++result->sharing.engines_run;
      result->sharing.engines_shared += members.size() - 1;
      for (size_t i = 0; i < members.size(); ++i) {
        result->queries[members[i]].matches.Merge(shared);
        result->queries[members[i]].shared = i > 0;
      }
    }
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace dlacep
