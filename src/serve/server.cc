#include "serve/server.h"

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cep/engine.h"
#include "common/timer.h"
#include "obs/stages.h"

namespace dlacep {
namespace serve {

size_t MultiQueryResult::total_matches() const {
  size_t total = 0;
  for (const QueryResult& query : queries) total += query.matches.size();
  return total;
}

double MultiQueryResult::events_per_sec() const {
  const double seconds = stats.elapsed_seconds + stats.extract_seconds;
  return seconds > 0.0
             ? static_cast<double>(stats.events_appended) / seconds
             : 0.0;
}

MultiQueryServer::MultiQueryServer(QueryRegistry* registry,
                                   const StreamFilter* base,
                                   const EventNetworkFilter* heads,
                                   const ServeConfig& config)
    : registry_(registry), config_(config), filter_(registry, base, heads) {}

Status MultiQueryServer::Run(StreamSource* source, MultiQueryResult* result) {
  *result = MultiQueryResult{};
  const auto start_snapshot = registry_->Acquire();
  if (start_snapshot->queries.empty()) {
    return Status::FailedPrecondition(
        "cannot serve: no queries registered");
  }

  OnlineConfig online = config_.online;
  if (online.mark_size == 0) online.mark_size = 2 * start_snapshot->max_window;
  if (online.step_size == 0) online.step_size = start_snapshot->max_window;
  online.collect_relayed = true;
  online.skip_extraction = true;

  filter_.ResetRecording();
  // Any registered pattern works as the runtime's geometry anchor (the
  // assembler uses the explicit mark/step above; the built-in extractor
  // is skipped).
  OnlineDlacep runtime(*start_snapshot->queries[0].pattern, &filter_,
                       online);
  OnlineResult raw;
  Status run_status = runtime.Run(source, &raw);
  if (!run_status.ok()) return run_status;

  // Extraction serves whatever is registered when the stream ends.
  const auto end_snapshot = registry_->Acquire();
  Stopwatch extract_watch;
  Status extract_status = ExtractShared(*end_snapshot, raw, result);
  if (!extract_status.ok()) return extract_status;
  raw.stats.extract_seconds = extract_watch.ElapsedSeconds();
  obs::StageCepEval()->Observe(raw.stats.extract_seconds);
  raw.stats.matches = result->total_matches();
  raw.stats.cep_partial_matches_dropped =
      result->sharing.partial_matches_dropped;
  result->stats = std::move(raw.stats);

  for (const QueryResult& query : result->queries) {
    obs::QueryMatches(query.name)->Increment(query.matches.size());
    obs::QueryMarkedEvents(query.name)->Increment(query.marked_events);
    obs::QueryBudgetAborts(query.name)->Increment(query.budget_aborts);
    obs::QueryBreakerTrips(query.name)->Increment(query.breaker_trips);
    obs::QueryBreakerState(query.name)
        ->Set(static_cast<double>(query.breaker_state));
    obs::QueryExtractCost(query.name)
        ->Set(static_cast<double>(query.extract_cost));
  }
  obs::ServeEnginesRun()->Increment(result->sharing.engines_run);
  obs::ServeEnginesShared()->Increment(result->sharing.engines_shared);
  obs::ServeEnginesGuardPruned()->Increment(result->sharing.guard_pruned);
  obs::ServeEnginesTypePruned()->Increment(result->sharing.type_pruned);
  obs::ServeChunksRun()->Increment(result->sharing.chunks_run);
  obs::ServeChunksSkipped()->Increment(result->sharing.chunks_skipped);
  obs::ServeChunksAborted()->Increment(result->sharing.budget_aborts);
  return Status::Ok();
}

Status MultiQueryServer::ExtractShared(const RegistrySnapshot& snapshot,
                                       const OnlineResult& raw,
                                       MultiQueryResult* result) {
  const std::map<QueryId, std::vector<EventId>> recorded =
      filter_.RecordedMarks();

  std::unordered_map<EventId, const Event*> by_id;
  by_id.reserve(raw.relayed_events.size());
  for (const Event& event : raw.relayed_events) {
    by_id.emplace(event.id, &event);
  }

  // Events relayed without a usable per-query decode — shed-fallback
  // marks, and every event of a quarantined/degraded window — belong to
  // every query (the single-query runtime's recall-1.0 fallback, per
  // query). Attribution is recorded at mark time, before the health
  // guard's quarantine verdict at window close, so a quarantined
  // window's events can carry stale per-query marks: strip those here —
  // the window-level recall-1.0 contract supersedes the decode.
  std::unordered_set<EventId> attributed;
  for (const auto& [id, ids] : recorded) {
    attributed.insert(ids.begin(), ids.end());
  }
  for (const EventId id : raw.quarantined_ids) attributed.erase(id);
  std::vector<EventId> unattributed;
  for (const Event& event : raw.relayed_events) {
    if (attributed.find(event.id) == attributed.end()) {
      unattributed.push_back(event.id);
    }
  }
  std::sort(unattributed.begin(), unattributed.end());

  // Per-query extraction inputs, deduplicated across queries: twins
  // (and guard sharers) with the same id set share one entry.
  struct EventSet {
    std::vector<const Event*> events;  ///< ascending id
    std::unordered_set<TypeId> types;
  };
  std::vector<EventSet> sets;
  std::map<std::vector<EventId>, size_t> set_index;
  std::vector<size_t> query_set(snapshot.queries.size());

  result->queries.resize(snapshot.queries.size());
  for (size_t q = 0; q < snapshot.queries.size(); ++q) {
    const QueryEntry& entry = snapshot.queries[q];
    std::vector<EventId> ids;
    const auto it = recorded.find(entry.id);
    if (it != recorded.end()) {
      ids.resize(it->second.size() + unattributed.size());
      ids.erase(std::set_union(it->second.begin(), it->second.end(),
                               unattributed.begin(), unattributed.end(),
                               ids.begin()),
                ids.end());
    } else {
      ids = unattributed;
    }

    result->queries[q].id = entry.id;
    result->queries[q].name = entry.name;
    result->queries[q].marked_events = ids.size();

    auto [set_it, inserted] = set_index.emplace(std::move(ids),
                                                sets.size());
    if (inserted) {
      EventSet set;
      set.events.reserve(set_it->first.size());
      for (const EventId id : set_it->first) {
        const auto event_it = by_id.find(id);
        DLACEP_CHECK(event_it != by_id.end());
        set.events.push_back(event_it->second);
        set.types.insert(event_it->second->type);
      }
      sets.push_back(std::move(set));
    }
    query_set[q] = set_it->second;
  }

  // Every live query gets a breaker; trips persist across Run() calls.
  std::vector<uint64_t> trips_before(snapshot.queries.size(), 0);
  std::vector<uint64_t> aborts_before(snapshot.queries.size(), 0);
  for (size_t q = 0; q < snapshot.queries.size(); ++q) {
    const auto [it, unused] = breakers_.try_emplace(
        snapshot.queries[q].id, QueryBreaker(config_.breaker));
    trips_before[q] = it->second.trips();
    aborts_before[q] = it->second.budget_aborts();
  }
  auto breaker_of = [&](size_t q) -> QueryBreaker& {
    return breakers_.find(snapshot.queries[q].id)->second;
  };

  // Witness results are a property of (guard, event set): cache across
  // groups sharing a prefix.
  std::map<std::pair<int, size_t>, bool> witness_cache;

  // One extraction *unit* per (structural group × event set) partition:
  // a dense blank-stripped event span, one budgeted engine, and the
  // members it serves. The span is evaluated in overlapping id-range
  // chunks of L = 8W with step L-(W-1): every match spans at most W-1
  // id units (the count window is enforced over ids), a match's start
  // is itself an event id, and the chunk covering it contains *all*
  // events in its id range — so chunked evaluation plus MatchSet dedup
  // is byte-identical to evaluating the whole span at once, and the
  // scheduler can interleave chunks of different units fairly.
  struct Unit {
    std::vector<size_t> members;  ///< query indexes; [0] is canonical
    std::vector<Event> events;    ///< dense, blanks stripped
    std::vector<std::pair<size_t, size_t>> chunks;  ///< [begin,end) idx
    size_t next_chunk = 0;
    std::unique_ptr<CepEngine> engine;
    MatchSet matches;
    uint64_t cost = 0;  ///< fair-share units: chunks run + pm created
    bool ran = false;   ///< at least one chunk actually evaluated
  };
  std::vector<Unit> units;

  EngineOptions engine_options;
  engine_options.partial_match_budget = config_.query_pm_budget;
  engine_options.deadline_seconds = config_.query_deadline_seconds;

  for (const SharedGroup& group : snapshot.plan.groups) {
    std::map<size_t, std::vector<size_t>> partitions;
    for (const size_t member : group.members) {
      partitions[query_set[member]].push_back(member);
    }
    for (const auto& [set_id, members] : partitions) {
      ++result->sharing.partitions;
      const EventSet& set = sets[set_id];

      bool occupied = true;
      for (const std::vector<TypeId>& required : group.required_types) {
        bool present = false;
        for (const TypeId type : required) {
          present |= set.types.find(type) != set.types.end();
        }
        if (!present) {
          occupied = false;
          break;
        }
      }
      if (!occupied) {
        result->sharing.type_pruned += members.size();
        continue;  // every member's MatchSet stays empty
      }

      if (group.guard >= 0) {
        const std::pair<int, size_t> key(group.guard, set_id);
        auto cached = witness_cache.find(key);
        if (cached == witness_cache.end()) {
          ++result->sharing.guard_checks;
          cached = witness_cache
                       .emplace(key, SeqPrefixWitness(
                                         snapshot.plan.guards[static_cast<
                                             size_t>(group.guard)],
                                         set.events))
                       .first;
        }
        if (!cached->second) {
          result->sharing.guard_pruned += members.size();
          continue;
        }
      }

      const QueryEntry& canonical = snapshot.queries[members[0]];
      Unit unit;
      unit.members = members;
      unit.events.reserve(set.events.size());
      for (const Event* e : set.events) {
        if (!e->is_blank()) unit.events.push_back(*e);
      }
      if (unit.events.empty()) continue;

      // Window-aligned chunk geometry (ids, not positions).
      const size_t w =
          std::max<size_t>(canonical.pattern->window().count_size(), 2);
      const EventId span = static_cast<EventId>(8 * w);
      const EventId step = span - static_cast<EventId>(w - 1);
      size_t begin = 0;
      while (begin < unit.events.size()) {
        const EventId base = unit.events[begin].id;
        size_t end = begin;
        while (end < unit.events.size() &&
               unit.events[end].id < base + span) {
          ++end;
        }
        unit.chunks.emplace_back(begin, end);
        if (end == unit.events.size()) break;
        size_t next = begin;
        while (next < unit.events.size() &&
               unit.events[next].id < base + step) {
          ++next;
        }
        begin = next;
      }

      EngineOptions unit_options = engine_options;
      unit_options.pattern_label = canonical.name;
      auto engine =
          CreateEngine(canonical.engine, *canonical.pattern, unit_options);
      DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
      unit.engine = std::move(engine).value();
      units.push_back(std::move(unit));
    }
  }

  // Fair-share scheduling: every pass visits each unfinished unit once,
  // cheapest accumulated cost first, and runs exactly one chunk — a
  // heavy query can't monopolize extraction, and the visit order is a
  // deterministic function of counted work (not wall clock).
  std::vector<bool> missed(snapshot.queries.size(), false);
  std::vector<uint64_t> query_cost(snapshot.queries.size(), 0);
  for (;;) {
    std::vector<size_t> live;
    for (size_t u = 0; u < units.size(); ++u) {
      if (units[u].next_chunk < units[u].chunks.size()) live.push_back(u);
    }
    if (live.empty()) break;
    std::stable_sort(live.begin(), live.end(), [&](size_t a, size_t b) {
      return units[a].cost < units[b].cost;
    });

    for (const size_t u : live) {
      Unit& unit = units[u];
      const auto [begin, end] = unit.chunks[unit.next_chunk++];

      std::vector<size_t> runnable;
      std::vector<size_t> parked;
      for (const size_t m : unit.members) {
        (breaker_of(m).ShouldRun() ? runnable : parked).push_back(m);
      }
      if (runnable.empty()) {
        // Every member is tripped: the chunk is not evaluated at all —
        // the blown-up engine gets no cycles. Skips advance the probe
        // clock, so a later chunk of this same run can be the probe.
        ++result->sharing.chunks_skipped;
        unit.cost += 1;
        for (const size_t m : unit.members) {
          breaker_of(m).OnSkipped();
          missed[m] = true;
        }
        continue;
      }

      const EngineStats before = unit.engine->stats();
      const Status status = unit.engine->Evaluate(
          std::span<const Event>(unit.events.data() + begin, end - begin),
          &unit.matches);
      const EngineStats& after = unit.engine->stats();
      const uint64_t pm_delta =
          after.partial_matches - before.partial_matches;
      unit.cost += 1 + pm_delta;
      unit.ran = true;
      for (const size_t m : runnable) query_cost[m] += 1 + pm_delta;

      if (status.code() == StatusCode::kBudgetExceeded) {
        ++result->sharing.budget_aborts;
        for (const size_t m : runnable) {
          QueryBreaker& breaker = breaker_of(m);
          const uint64_t trips = breaker.trips();
          breaker.OnBudgetAbort();
          result->sharing.breaker_trips +=
              static_cast<size_t>(breaker.trips() - trips);
          missed[m] = true;
        }
      } else if (!status.ok()) {
        return status;
      } else {
        ++result->sharing.chunks_run;
        for (const size_t m : runnable) breaker_of(m).OnRunOk();
      }
      for (const size_t m : parked) {
        breaker_of(m).OnSkipped();
        missed[m] = true;
      }
    }
  }

  // Fan each unit's accumulated matches out to its members and publish
  // the per-engine work counters (one fresh engine per unit, so its
  // lifetime stats are the per-unit deltas).
  for (Unit& unit : units) {
    if (unit.ran) {
      ++result->sharing.engines_run;
      result->sharing.engines_shared += unit.members.size() - 1;
      const EngineStats& stats = unit.engine->stats();
      const std::string engine_name = unit.engine->name();
      obs::CepEvents(engine_name)->Increment(stats.events_processed);
      obs::CepPartialMatches(engine_name)->Increment(stats.partial_matches);
      obs::CepPartialMatchesPruned(engine_name)
          ->Increment(stats.partial_matches_pruned);
      obs::CepTransitions(engine_name)->Increment(stats.transitions);
      obs::CepMatches(engine_name)->Increment(unit.matches.size());
      obs::CepPartialMatchesDropped(engine_name)
          ->Increment(stats.partial_matches_dropped);
      obs::CepBudgetAborts(engine_name)->Increment(stats.budget_aborts);
      result->sharing.partial_matches_dropped +=
          stats.partial_matches_dropped;
    }
    for (size_t i = 0; i < unit.members.size(); ++i) {
      result->queries[unit.members[i]].matches.Merge(unit.matches);
      result->queries[unit.members[i]].shared = i > 0;
    }
  }

  for (size_t q = 0; q < snapshot.queries.size(); ++q) {
    const QueryBreaker& breaker = breaker_of(q);
    QueryResult& query = result->queries[q];
    query.degraded = missed[q];
    query.breaker_state = breaker.state();
    query.budget_aborts = breaker.budget_aborts() - aborts_before[q];
    query.breaker_trips = breaker.trips() - trips_before[q];
    query.extract_cost = query_cost[q];
  }

  // Bound breaker memory under registry churn: drop entries for queries
  // no longer registered (a re-registered query starts healthy).
  std::unordered_set<QueryId> live_ids;
  for (const QueryEntry& entry : snapshot.queries) {
    live_ids.insert(entry.id);
  }
  for (auto it = breakers_.begin(); it != breakers_.end();) {
    it = live_ids.count(it->first) ? std::next(it) : breakers_.erase(it);
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace dlacep
