#include "serve/breaker.h"

namespace dlacep {
namespace serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kHealthy: return "healthy";
    case BreakerState::kTripped: return "tripped";
    case BreakerState::kProbing: return "probing";
  }
  return "?";
}

void QueryBreaker::OnRunOk() {
  consecutive_aborts_ = 0;
  if (state_ == BreakerState::kProbing) {
    if (++clean_probes_ >= config_.probe_passes) {
      state_ = BreakerState::kHealthy;
      clean_probes_ = 0;
    }
  }
}

void QueryBreaker::OnBudgetAbort() {
  ++budget_aborts_;
  if (state_ == BreakerState::kProbing) {
    // A probe that still blows the budget re-opens the breaker at once.
    state_ = BreakerState::kTripped;
    ++trips_;
    skipped_since_trip_ = 0;
    clean_probes_ = 0;
    consecutive_aborts_ = 0;
    return;
  }
  if (state_ == BreakerState::kHealthy &&
      ++consecutive_aborts_ >= config_.trip_after) {
    state_ = BreakerState::kTripped;
    ++trips_;
    skipped_since_trip_ = 0;
    clean_probes_ = 0;
    consecutive_aborts_ = 0;
  }
}

void QueryBreaker::OnSkipped() {
  if (state_ != BreakerState::kTripped) return;
  if (++skipped_since_trip_ >= config_.probe_period) {
    state_ = BreakerState::kProbing;
    skipped_since_trip_ = 0;
    clean_probes_ = 0;
  }
}

}  // namespace serve
}  // namespace dlacep
