// Shared-CEP planning for the multi-query serving layer.
//
// With many registered queries over one filtered stream, per-query CEP
// work overlaps in three exploitable ways (Kolchinsky & Schuster,
// "Join Query Optimization Techniques for CEP" — multi-query sub-plan
// sharing, PAPERS.md):
//
//  1. STRUCTURAL TWINS. Two registrations that are the same pattern up
//     to variable names (and run the same engine) produce identical
//     match sets when extracted over identical event sets — evaluate
//     one engine and fan the MatchSet out to every twin.
//  2. TYPE OCCUPANCY. A pattern whose root requires a primitive
//     position with type set T can have no matches over an event set
//     containing no event of any type in T — skip the engine.
//  3. SHARED SEQ PREFIXES. SEQ queries sharing their first two
//     positions (same type sets, same conditions over the first two
//     variables) all require a 2-event "witness" prefix match: if an
//     early-exit existence search finds no witness in the event set,
//     every query in the bucket is matchless and no engine runs. Sound
//     because the first two bound events of any full SEQ match form a
//     prefix match within the (maximal) count window.
//
// The plan is purely structural — computed once per registry snapshot,
// off the hot path. Which groups actually share work at extraction
// time additionally depends on the per-query marked-event sets (two
// twins only share an engine evaluation when their event sets are
// identical); the server layer (server.cc) makes that runtime cut.

#ifndef DLACEP_SERVE_PLAN_H_
#define DLACEP_SERVE_PLAN_H_

#include <span>
#include <string>
#include <vector>

#include "cep/engine.h"
#include "pattern/pattern.h"

namespace dlacep {
namespace serve {

/// Planner input: one registered query (pattern borrowed).
struct PlanQuery {
  const Pattern* pattern = nullptr;
  EngineKind engine = EngineKind::kNfa;
};

/// Queries that are structurally identical (same canonical key): one
/// engine evaluation serves every member when their event sets agree.
struct SharedGroup {
  /// Indices into the planner's query span; members[0] is canonical.
  std::vector<size_t> members;
  /// Type sets the root requires at least one event of, one entry per
  /// mandatory primitive position (empty: no occupancy pruning — e.g.
  /// DISJ roots or negated-only positions).
  std::vector<std::vector<TypeId>> required_types;
  /// Index into SharedCepPlan::guards, -1 when the group has no
  /// 2-prefix witness guard.
  int guard = -1;
};

struct SharedCepPlan {
  std::vector<SharedGroup> groups;
  /// 2-prefix witness patterns, each shared by every group whose
  /// members carry that prefix. Window = max member window (sound: any
  /// member match's prefix spans at most its own window).
  std::vector<Pattern> guards;
  /// Queries served by a structural twin's evaluation (members beyond
  /// each group's canonical).
  size_t structural_duplicates = 0;
};

/// Canonical structural rendering of (pattern, engine): operator tree
/// with var *ids* (names erased), type sets, Kleene bounds, conditions
/// rendered canonically (exact hexfloat coefficients, attribute ids;
/// opaque lambda conditions key on object identity and never merge),
/// count window, engine name. Two queries with equal keys have
/// identical match sets over identical event sets.
std::string StructuralKey(const Pattern& pattern, EngineKind engine);

/// Groups queries by StructuralKey and attaches occupancy sets and
/// prefix guards. Patterns must outlive the plan.
SharedCepPlan BuildSharedCepPlan(std::span<const PlanQuery> queries);

/// Early-exit existence search for a 2-position SEQ guard over events
/// sorted by ascending id (deduplicated): true iff some pair (e_i, e_j)
/// with i < j matches the two primitive positions, satisfies every
/// guard condition, and spans at most window-1 id units.
bool SeqPrefixWitness(const Pattern& guard,
                      std::span<const Event* const> events);

}  // namespace serve
}  // namespace dlacep

#endif  // DLACEP_SERVE_PLAN_H_
