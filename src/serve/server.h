// The multi-query serving runtime: one sharded OnlineDlacep run serving
// every query in a QueryRegistry.
//
//   registry snapshot ──▶ ServeFilter (one trunk forward per window,
//                          per-query heads, union marks to the runtime)
//   OnlineDlacep      ──▶ relayed events + quarantined ids
//                          (collect_relayed, skip_extraction)
//   shared extraction ──▶ per-query MatchSets via the SharedCepPlan:
//                          structural twins evaluated once, type-
//                          occupancy and 2-prefix witness pruning.
//
// Per-query event sets: a query owns the ids its head marked, plus
// every "unattributed" relayed event — events that reached the store
// without a per-query decode (quarantined/degraded windows, shed
// fallback marks). Unattributed events relay to every query, mirroring
// the single-query runtime's recall-1.0 fallback semantics. In a
// lossless healthy run the unattributed set is empty and each query's
// extraction input — hence MatchSet — is byte-identical to an isolated
// single-query run (see filter.h for the full contract).
//
// Queries unregistered mid-run keep their recorded attribution in the
// filter sink (so other queries' sets stay exact) but are not reported;
// queries registered mid-run are reported over the suffix of windows
// they were live for.

#ifndef DLACEP_SERVE_SERVER_H_
#define DLACEP_SERVE_SERVER_H_

#include <string>
#include <vector>

#include "runtime/online.h"
#include "serve/filter.h"
#include "serve/registry.h"

namespace dlacep {
namespace serve {

struct ServeConfig {
  /// Runtime knobs (shards/threads/batching/overload/health/...).
  /// mark_size/step_size of 0 resolve to 2W/W of the registry's widest
  /// query at Run() time; collect_relayed and skip_extraction are
  /// forced on. An isolated run compared against a serve run must use
  /// the same explicit geometry.
  OnlineConfig online;
};

/// One registered query's serving outcome.
struct QueryResult {
  QueryId id = 0;
  std::string name;
  MatchSet matches;
  size_t marked_events = 0;  ///< extraction input size (attributed + shared)
  bool shared = false;       ///< served from a structural twin's engine run
};

/// Shared-CEP effectiveness counters for one Run().
struct SharingStats {
  size_t partitions = 0;      ///< (structural group × event set) units
  size_t engines_run = 0;     ///< engine evaluations actually executed
  size_t engines_shared = 0;  ///< queries served without their own run
  size_t guard_checks = 0;    ///< witness searches executed
  size_t guard_pruned = 0;    ///< queries emptied by a witness miss
  size_t type_pruned = 0;     ///< queries emptied by type occupancy
};

struct MultiQueryResult {
  std::vector<QueryResult> queries;
  RuntimeStats stats;  ///< extract_seconds covers the shared extraction
  SharingStats sharing;

  size_t total_matches() const;
  /// Streaming throughput including the shared extraction tail.
  double events_per_sec() const;
  /// The aggregate headline: queries/sec × events/sec, i.e. how many
  /// (query, event) pairs per second this one process serves.
  double query_events_per_sec() const {
    return static_cast<double>(queries.size()) * events_per_sec();
  }
};

class MultiQueryServer {
 public:
  /// `registry`, `base`, and `heads` are borrowed and must outlive the
  /// server; see ServeFilter for the base/heads contract.
  MultiQueryServer(QueryRegistry* registry, const StreamFilter* base,
                   const EventNetworkFilter* heads,
                   const ServeConfig& config);

  /// Drains `source` through the online runtime under the current
  /// registry (snapshots re-acquired per window, so concurrent
  /// register/unregister is served live), then runs the shared
  /// extraction under the end-of-run snapshot. kFailedPrecondition when
  /// the registry is empty at start.
  ///
  /// Not reentrant: a server owns one per-query attribution sink, and
  /// Run() resets it at start — two concurrent Run() calls on the same
  /// server would interleave recorded marks and discard each other's
  /// state. Serialize runs per server, or construct one MultiQueryServer
  /// per concurrent stream (registries are shareable across servers).
  Status Run(StreamSource* source, MultiQueryResult* result);

 private:
  Status ExtractShared(const RegistrySnapshot& snapshot,
                       const OnlineResult& raw, MultiQueryResult* result);

  QueryRegistry* registry_;  ///< not owned
  ServeConfig config_;
  ServeFilter filter_;
};

}  // namespace serve
}  // namespace dlacep

#endif  // DLACEP_SERVE_SERVER_H_
