// The multi-query serving runtime: one sharded OnlineDlacep run serving
// every query in a QueryRegistry.
//
//   registry snapshot ──▶ ServeFilter (one trunk forward per window,
//                          per-query heads, union marks to the runtime)
//   OnlineDlacep      ──▶ relayed events + quarantined ids
//                          (collect_relayed, skip_extraction)
//   shared extraction ──▶ per-query MatchSets via the SharedCepPlan:
//                          structural twins evaluated once, type-
//                          occupancy and 2-prefix witness pruning.
//
// Per-query event sets: a query owns the ids its head marked, plus
// every "unattributed" relayed event — events that reached the store
// without a per-query decode (quarantined/degraded windows, shed
// fallback marks). Unattributed events relay to every query, mirroring
// the single-query runtime's recall-1.0 fallback semantics. In a
// lossless healthy run the unattributed set is empty and each query's
// extraction input — hence MatchSet — is byte-identical to an isolated
// single-query run (see filter.h for the full contract).
//
// Queries unregistered mid-run keep their recorded attribution in the
// filter sink (so other queries' sets stay exact) but are not reported;
// queries registered mid-run are reported over the suffix of windows
// they were live for.

#ifndef DLACEP_SERVE_SERVER_H_
#define DLACEP_SERVE_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include "runtime/online.h"
#include "serve/breaker.h"
#include "serve/filter.h"
#include "serve/registry.h"

namespace dlacep {
namespace serve {

struct ServeConfig {
  /// Runtime knobs (shards/threads/batching/overload/health/...).
  /// mark_size/step_size of 0 resolve to 2W/W of the registry's widest
  /// query at Run() time; collect_relayed and skip_extraction are
  /// forced on. An isolated run compared against a serve run must use
  /// the same explicit geometry.
  OnlineConfig online;
  /// Per-chunk partial-match budget for every shared extraction engine
  /// run (EngineOptions::partial_match_budget). 0 disables: no aborts,
  /// breakers never trip, answers identical to the unbudgeted path.
  uint64_t query_pm_budget = 0;
  /// Per-chunk wall-clock deadline (EngineOptions::deadline_seconds).
  /// Timing-dependent — prefer the partial-match budget when the abort
  /// point must be deterministic.
  double query_deadline_seconds = 0.0;
  /// Circuit-breaker thresholds (trip_after / probe_period /
  /// probe_passes).
  BreakerConfig breaker;
};

/// One registered query's serving outcome.
struct QueryResult {
  QueryId id = 0;
  std::string name;
  MatchSet matches;
  size_t marked_events = 0;  ///< extraction input size (attributed + shared)
  bool shared = false;       ///< served from a structural twin's engine run
  /// True when this query's match set may be incomplete: its engine
  /// blew a budget, or its breaker kept it out of one or more chunk
  /// runs. Matches present are always real (no false positives) — the
  /// per-query analog of the runtime's degraded mode, except budgeted
  /// extraction trades recall for isolation instead of falling back.
  bool degraded = false;
  BreakerState breaker_state = BreakerState::kHealthy;
  uint64_t budget_aborts = 0;   ///< this Run()'s aborts charged to the query
  uint64_t breaker_trips = 0;   ///< breaker trips during this Run()
  uint64_t extract_cost = 0;    ///< fair-share cost units (runs + pm work)
};

/// Shared-CEP effectiveness counters for one Run().
struct SharingStats {
  size_t partitions = 0;      ///< (structural group × event set) units
  size_t engines_run = 0;     ///< engine evaluations actually executed
  size_t engines_shared = 0;  ///< queries served without their own run
  size_t guard_checks = 0;    ///< witness searches executed
  size_t guard_pruned = 0;    ///< queries emptied by a witness miss
  size_t type_pruned = 0;     ///< queries emptied by type occupancy
  /// Fair-share scheduler chunk outcomes (a unit's event span is
  /// evaluated in overlapping window-aligned chunks; see server.cc).
  size_t chunks_run = 0;
  size_t chunks_skipped = 0;  ///< every runnable member was suspended
  size_t budget_aborts = 0;   ///< chunks aborted with kBudgetExceeded
  size_t breaker_trips = 0;   ///< trips that occurred during this Run()
  /// Partial matches silently truncated by the legacy storage cap
  /// across all shared engine runs (recall-loss warning signal).
  uint64_t partial_matches_dropped = 0;
};

struct MultiQueryResult {
  std::vector<QueryResult> queries;
  RuntimeStats stats;  ///< extract_seconds covers the shared extraction
  SharingStats sharing;

  size_t total_matches() const;
  /// Streaming throughput including the shared extraction tail.
  double events_per_sec() const;
  /// The aggregate headline: queries/sec × events/sec, i.e. how many
  /// (query, event) pairs per second this one process serves.
  double query_events_per_sec() const {
    return static_cast<double>(queries.size()) * events_per_sec();
  }
};

class MultiQueryServer {
 public:
  /// `registry`, `base`, and `heads` are borrowed and must outlive the
  /// server; see ServeFilter for the base/heads contract.
  MultiQueryServer(QueryRegistry* registry, const StreamFilter* base,
                   const EventNetworkFilter* heads,
                   const ServeConfig& config);

  /// Drains `source` through the online runtime under the current
  /// registry (snapshots re-acquired per window, so concurrent
  /// register/unregister is served live), then runs the shared
  /// extraction under the end-of-run snapshot. kFailedPrecondition when
  /// the registry is empty at start.
  ///
  /// Not reentrant: a server owns one per-query attribution sink, and
  /// Run() resets it at start — two concurrent Run() calls on the same
  /// server would interleave recorded marks and discard each other's
  /// state. Serialize runs per server, or construct one MultiQueryServer
  /// per concurrent stream (registries are shareable across servers).
  Status Run(StreamSource* source, MultiQueryResult* result);

  /// The breaker for a registered query, or nullptr if it has never
  /// been through an extraction. Breakers persist across Run() calls
  /// (a query tripped by one stream stays suspended into the next) and
  /// are pruned to the live registry after each extraction.
  const QueryBreaker* breaker(QueryId id) const {
    const auto it = breakers_.find(id);
    return it == breakers_.end() ? nullptr : &it->second;
  }

 private:
  Status ExtractShared(const RegistrySnapshot& snapshot,
                       const OnlineResult& raw, MultiQueryResult* result);

  QueryRegistry* registry_;  ///< not owned
  ServeConfig config_;
  ServeFilter filter_;
  std::map<QueryId, QueryBreaker> breakers_;
};

}  // namespace serve
}  // namespace dlacep

#endif  // DLACEP_SERVE_SERVER_H_
