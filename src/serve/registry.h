// The runtime query registry: the serving layer's source of truth for
// which patterns are live.
//
// Registrations and unregistrations rebuild an immutable
// RegistrySnapshot (query list + shared-CEP plan) under a writer mutex
// and publish it with one atomic shared_ptr swap (RCU-style). Readers —
// the ServeFilter on every worker/shard thread, once per window — do a
// single lock-free atomic load and hold the snapshot for the duration
// of the window; a concurrent unregister can therefore never invalidate
// a pattern mid-mark. Mutations are O(live queries) for the plan
// rebuild, which is the intended trade: churn is rare, windows are not.

#ifndef DLACEP_SERVE_REGISTRY_H_
#define DLACEP_SERVE_REGISTRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/plan.h"

namespace dlacep {
namespace serve {

using QueryId = uint64_t;

struct QueryOptions {
  /// Metric/report label. Empty: "q<id>" is assigned.
  std::string name;
  /// Per-query event threshold decoded from the shared trunk's CRF
  /// marginals (the cheap "per-pattern head"). < 0: the trunk filter's
  /// own default threshold. Ignored by filters without marginals
  /// (pass-through, shedding): every query then shares the base marks.
  double threshold = -1.0;
  EngineKind engine = EngineKind::kNfa;
};

struct QueryEntry {
  QueryId id = 0;
  std::string name;
  std::shared_ptr<const Pattern> pattern;
  double threshold = -1.0;
  EngineKind engine = EngineKind::kNfa;
};

/// Immutable view of the registry at one version. The shared-CEP plan's
/// member indices point into `queries`.
struct RegistrySnapshot {
  uint64_t version = 0;
  std::vector<QueryEntry> queries;
  SharedCepPlan plan;
  /// Largest count window across queries (assembler-geometry hint).
  size_t max_window = 0;
};

class QueryRegistry {
 public:
  QueryRegistry();

  /// Validates (structure + count window) and publishes a new snapshot
  /// including the pattern. Thread-safe; returns the id Unregister
  /// takes.
  StatusOr<QueryId> Register(const Pattern& pattern,
                             QueryOptions options = {});

  /// Removes a query and publishes a new snapshot. kNotFound for ids
  /// never registered or already removed.
  Status Unregister(QueryId id);

  /// Lock-free: one atomic shared_ptr load. Never null; the empty
  /// registry is a snapshot with no queries.
  std::shared_ptr<const RegistrySnapshot> Acquire() const;

  size_t size() const;

 private:
  void PublishLocked();

  mutable std::mutex mu_;
  std::vector<QueryEntry> live_;
  QueryId next_id_ = 1;
  uint64_t version_ = 0;
  std::atomic<std::shared_ptr<const RegistrySnapshot>> snapshot_;
};

}  // namespace serve
}  // namespace dlacep

#endif  // DLACEP_SERVE_REGISTRY_H_
