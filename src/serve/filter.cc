#include "serve/filter.h"

#include <algorithm>

#include "common/logging.h"

namespace dlacep {
namespace serve {

ServeFilter::ServeFilter(const QueryRegistry* registry,
                         const StreamFilter* base,
                         const EventNetworkFilter* heads)
    : registry_(registry), base_(base), heads_(heads) {
  DLACEP_CHECK(registry_ != nullptr);
  DLACEP_CHECK(base_ != nullptr || heads_ != nullptr);
  if (base_ == nullptr) base_ = heads_;
}

void ServeFilter::ResetRecording() {
  std::lock_guard<std::mutex> lock(mu_);
  sink_.clear();
}

std::map<QueryId, std::vector<EventId>> ServeFilter::RecordedMarks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<QueryId, std::vector<EventId>> out;
  for (const auto& [id, ids] : sink_) {
    std::vector<EventId> sorted(ids.begin(), ids.end());
    std::sort(sorted.begin(), sorted.end());
    out.emplace(id, std::move(sorted));
  }
  return out;
}

std::vector<double> ServeFilter::Thresholds(const RegistrySnapshot& snapshot,
                                            double boost) const {
  std::vector<double> thresholds;
  thresholds.reserve(snapshot.queries.size());
  for (const QueryEntry& entry : snapshot.queries) {
    const double base = entry.threshold >= 0.0 ? entry.threshold
                                               : heads_->event_threshold();
    thresholds.push_back(base + boost);
  }
  return thresholds;
}

void ServeFilter::Record(const RegistrySnapshot& snapshot,
                         const EventStream& window,
                         const std::vector<std::vector<int>>& per_query) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t q = 0; q < snapshot.queries.size(); ++q) {
    std::unordered_set<EventId>& ids = sink_[snapshot.queries[q].id];
    const std::vector<int>& marks = per_query[q];
    for (size_t t = 0; t < marks.size(); ++t) {
      if (marks[t] == 1) ids.insert(window[t].id);
    }
  }
}

std::vector<int> ServeFilter::MarkWindow(const RegistrySnapshot& snapshot,
                                         const EventStream& window,
                                         InferenceContext* ctx,
                                         double boost) const {
  const size_t n = window.size();
  if (snapshot.queries.empty()) return std::vector<int>(n, 0);

  if (heads_ != nullptr) {
    std::vector<std::vector<int>> per_query;
    heads_->MarkOnlineMultiHead(window, ctx, Thresholds(snapshot, boost),
                                &per_query);
    // A non-finite marginal poisons every head's decode identically;
    // propagate the whole-window sentinel for the health guard.
    if (!per_query.empty() && !per_query[0].empty() &&
        per_query[0][0] == kInvalidMark) {
      return std::vector<int>(n, kInvalidMark);
    }
    Record(snapshot, window, per_query);
    std::vector<int> unioned(n, 0);
    for (const std::vector<int>& marks : per_query) {
      for (size_t t = 0; t < n; ++t) unioned[t] |= marks[t] == 1;
    }
    return unioned;
  }

  // Single-head base filter: every query shares the base marks.
  std::vector<int> marks = base_->MarkOnline(window, 0, ctx, boost);
  if (!marks.empty() && marks[0] == kInvalidMark) return marks;
  std::lock_guard<std::mutex> lock(mu_);
  for (const QueryEntry& entry : snapshot.queries) {
    std::unordered_set<EventId>& ids = sink_[entry.id];
    for (size_t t = 0; t < marks.size(); ++t) {
      if (marks[t] == 1) ids.insert(window[t].id);
    }
  }
  return marks;
}

std::vector<int> ServeFilter::MarkOnline(const EventStream& window,
                                         size_t stream_begin,
                                         InferenceContext* ctx,
                                         double threshold_boost) const {
  (void)stream_begin;  // content-based, like the trunk it wraps
  const auto snapshot = registry_->Acquire();
  return MarkWindow(*snapshot, window, ctx, threshold_boost);
}

void ServeFilter::MarkBatchOnline(std::span<const OnlineWindow> windows,
                                  InferenceContext* ctx,
                                  std::vector<int>* marks) const {
  if (windows.empty()) return;
  const auto snapshot = registry_->Acquire();

  if (heads_ != nullptr && !snapshot->queries.empty()) {
    // One ForwardBatch slab for the whole micro-batch, then per-window
    // per-query decodes off the shared marginals.
    std::vector<std::vector<std::vector<int>>> batched;
    heads_->MarkBatchOnlineMultiHead(windows, ctx,
                                     Thresholds(*snapshot, 0.0), &batched);
    for (size_t w = 0; w < windows.size(); ++w) {
      const EventStream& window = *windows[w].events;
      const std::vector<std::vector<int>>& per_query = batched[w];
      if (!per_query.empty() && !per_query[0].empty() &&
          per_query[0][0] == kInvalidMark) {
        marks[w].assign(window.size(), kInvalidMark);
        continue;
      }
      Record(*snapshot, window, per_query);
      marks[w].assign(window.size(), 0);
      for (const std::vector<int>& query_marks : per_query) {
        for (size_t t = 0; t < window.size(); ++t) {
          marks[w][t] |= query_marks[t] == 1;
        }
      }
    }
    return;
  }

  for (size_t w = 0; w < windows.size(); ++w) {
    marks[w] = MarkWindow(*snapshot, *windows[w].events, ctx,
                          windows[w].threshold_boost);
  }
}

std::vector<int> ServeFilter::Mark(const EventStream& stream,
                                   WindowRange range) const {
  return MarkWith(stream, range, nullptr);
}

std::vector<int> ServeFilter::MarkWith(const EventStream& stream,
                                       WindowRange range,
                                       InferenceContext* ctx) const {
  // The batch pipeline hands index ranges; detach the window so the
  // online decode path (and its id-based recording) applies verbatim.
  EventStream window(stream.schema_ptr());
  for (const Event& event : stream.View(range.begin, range.size())) {
    window.AppendArrival(event);
  }
  const auto snapshot = registry_->Acquire();
  return MarkWindow(*snapshot, window, ctx, 0.0);
}

}  // namespace serve
}  // namespace dlacep
