#include "serve/plan.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace dlacep {
namespace serve {

namespace {

void RenderNode(const PatternNode& node, std::ostringstream* out) {
  switch (node.kind) {
    case OpKind::kPrimitive:
      *out << "P[";
      for (size_t i = 0; i < node.types.size(); ++i) {
        if (i > 0) *out << ",";
        *out << node.types[i];
      }
      *out << "]v" << node.var;
      return;
    case OpKind::kKleene:
      *out << "KC{" << node.min_reps << "," << node.max_reps << "}";
      break;
    case OpKind::kSeq:
      *out << "SEQ";
      break;
    case OpKind::kConj:
      *out << "CONJ";
      break;
    case OpKind::kDisj:
      *out << "DISJ";
      break;
    case OpKind::kNeg:
      *out << "NEG";
      break;
  }
  *out << "(";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out << ",";
    RenderNode(*node.children[i], out);
  }
  *out << ")";
}

// Canonical, injective rendering of a condition for key grouping.
// Condition::ToString is a display format: "%g" rounds coefficients to
// six significant digits and a LambdaCondition renders only its
// free-text description, so two semantically different conditions can
// render identically — and would silently merge distinct queries into
// one shared group, handing them each other's match sets. This renderer
// spells out every semantic field (variable and attribute ids, operator
// tag, hexfloat-exact coefficients/constants) and keys conditions it
// cannot canonicalize on object identity, so they never merge. Losing a
// share is a missed optimization; merging non-twins is a wrong answer.

void RenderTerm(const Term& term, std::ostringstream* out) {
  *out << std::hexfloat;
  if (term.ref.has_value()) {
    *out << "v" << term.ref->var << ".a" << term.ref->attr << "*"
         << term.coeff << "+" << term.constant;
  } else {
    *out << "c" << term.constant;
  }
}

void RenderCondition(const Condition& condition, std::ostringstream* out) {
  if (const auto* cmp = dynamic_cast<const CompareCondition*>(&condition)) {
    *out << "CMP" << static_cast<int>(cmp->op()) << "(";
    RenderTerm(cmp->lhs(), out);
    *out << ";";
    RenderTerm(cmp->rhs(), out);
    *out << ")";
    return;
  }
  if (const auto* conj = dynamic_cast<const AndCondition*>(&condition)) {
    *out << "AND(";
    for (size_t i = 0; i < conj->children().size(); ++i) {
      if (i > 0) *out << ",";
      RenderCondition(*conj->children()[i], out);
    }
    *out << ")";
    return;
  }
  if (const auto* disj = dynamic_cast<const OrCondition*>(&condition)) {
    *out << "OR(";
    for (size_t i = 0; i < disj->children().size(); ++i) {
      if (i > 0) *out << ",";
      RenderCondition(*disj->children()[i], out);
    }
    *out << ")";
    return;
  }
  if (const auto* neg = dynamic_cast<const NotCondition*>(&condition)) {
    *out << "NOT(";
    RenderCondition(neg->child(), out);
    *out << ")";
    return;
  }
  // Opaque semantics (LambdaCondition, future subclasses): key on the
  // object so distinct instances never share. Each registration clones
  // its pattern, so twins registered separately stay separate — sound,
  // just unshared.
  *out << "OPAQUE@" << static_cast<const void*>(&condition);
}

/// Mandatory primitive positions: every match must bind at least one
/// event at each. NEG children can't demand presence and DISJ only
/// demands one of its branches, so both contribute nothing.
void CollectRequired(const PatternNode& node,
                     std::vector<std::vector<TypeId>>* out) {
  switch (node.kind) {
    case OpKind::kPrimitive:
      if (!node.types.empty()) out->push_back(node.types);
      return;
    case OpKind::kSeq:
    case OpKind::kConj:
      for (const auto& child : node.children) CollectRequired(*child, out);
      return;
    case OpKind::kKleene:
      if (node.min_reps >= 1 && !node.children.empty()) {
        CollectRequired(*node.children[0], out);
      }
      return;
    case OpKind::kDisj:
    case OpKind::kNeg:
      return;
  }
}

/// A group is guard-eligible when its pattern is a SEQ of 3+ positions
/// whose first two are plain primitives bound to vars 0 and 1 (the
/// layout every Table-1/2 SEQ template uses). A 2-position SEQ is its
/// own prefix — a guard would just duplicate the engine run.
bool GuardEligible(const Pattern& pattern) {
  const PatternNode& root = pattern.root();
  if (root.kind != OpKind::kSeq || root.children.size() < 3) return false;
  const PatternNode& p0 = *root.children[0];
  const PatternNode& p1 = *root.children[1];
  return p0.kind == OpKind::kPrimitive && p1.kind == OpKind::kPrimitive &&
         p0.var == 0 && p1.var == 1;
}

/// Conditions fully determined by the first two SEQ positions.
std::vector<const Condition*> PrefixConditions(const Pattern& pattern) {
  std::vector<const Condition*> prefix;
  for (const auto& condition : pattern.conditions()) {
    bool in_prefix = true;
    for (VarId v : condition->Vars()) in_prefix &= v == 0 || v == 1;
    if (in_prefix) prefix.push_back(condition.get());
  }
  return prefix;
}

/// Name-free rendering of the first two positions plus their
/// conditions: queries with equal prefix keys share one witness guard.
std::string PrefixKey(const Pattern& pattern) {
  std::ostringstream out;
  RenderNode(*pattern.root().children[0], &out);
  out << "|";
  RenderNode(*pattern.root().children[1], &out);
  std::vector<std::string> conds;
  for (const Condition* condition : PrefixConditions(pattern)) {
    std::ostringstream cond;
    RenderCondition(*condition, &cond);
    conds.push_back(cond.str());
  }
  std::sort(conds.begin(), conds.end());
  for (const std::string& c : conds) out << "|" << c;
  return out.str();
}

Pattern MakeGuard(const Pattern& pattern, size_t max_window) {
  const PatternNode& root = pattern.root();
  std::vector<std::unique_ptr<PatternNode>> children;
  children.push_back(root.children[0]->Clone());
  children.push_back(root.children[1]->Clone());
  std::vector<std::unique_ptr<Condition>> conditions;
  for (const Condition* condition : PrefixConditions(pattern)) {
    conditions.push_back(condition->Clone());
  }
  std::vector<VarInfo> vars(pattern.vars().begin(),
                            pattern.vars().begin() + 2);
  return Pattern(pattern.schema_ptr(),
                 PatternNode::Compose(OpKind::kSeq, std::move(children)),
                 std::move(conditions), std::move(vars),
                 WindowSpec::Count(max_window));
}

}  // namespace

std::string StructuralKey(const Pattern& pattern, EngineKind engine) {
  std::ostringstream out;
  RenderNode(pattern.root(), &out);
  if (!pattern.conditions().empty()) {
    out << " WHERE ";
    for (size_t i = 0; i < pattern.conditions().size(); ++i) {
      if (i > 0) out << " AND ";
      RenderCondition(*pattern.conditions()[i], &out);
    }
  }
  out << " WITHIN "
      << (pattern.window().kind == WindowKind::kCount ? "#" : "t")
      << pattern.window().size;
  out << " ENGINE " << EngineKindName(engine);
  return out.str();
}

SharedCepPlan BuildSharedCepPlan(std::span<const PlanQuery> queries) {
  SharedCepPlan plan;

  // Structural twins: map canonical key -> group.
  std::map<std::string, size_t> by_key;
  for (size_t q = 0; q < queries.size(); ++q) {
    const std::string key = StructuralKey(*queries[q].pattern,
                                          queries[q].engine);
    auto [it, inserted] = by_key.emplace(key, plan.groups.size());
    if (inserted) {
      SharedGroup group;
      group.members.push_back(q);
      CollectRequired(queries[q].pattern->root(), &group.required_types);
      plan.groups.push_back(std::move(group));
    } else {
      plan.groups[it->second].members.push_back(q);
      ++plan.structural_duplicates;
    }
  }

  // Prefix guards: one witness pattern per distinct 2-prefix, sized by
  // the widest member window so it is sound for every sharer.
  struct GuardBucket {
    std::vector<size_t> groups;
    size_t max_window = 0;
  };
  std::map<std::string, GuardBucket> buckets;
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    const Pattern& pattern =
        *queries[plan.groups[g].members[0]].pattern;
    if (!GuardEligible(pattern)) continue;
    if (pattern.window().kind != WindowKind::kCount) continue;
    GuardBucket& bucket = buckets[PrefixKey(pattern)];
    bucket.groups.push_back(g);
    bucket.max_window =
        std::max(bucket.max_window, pattern.window().count_size());
  }
  for (auto& [key, bucket] : buckets) {
    const int guard_index = static_cast<int>(plan.guards.size());
    const Pattern& exemplar =
        *queries[plan.groups[bucket.groups[0]].members[0]].pattern;
    plan.guards.push_back(MakeGuard(exemplar, bucket.max_window));
    for (size_t g : bucket.groups) plan.groups[g].guard = guard_index;
  }
  return plan;
}

bool SeqPrefixWitness(const Pattern& guard,
                      std::span<const Event* const> events) {
  const PatternNode& root = guard.root();
  DLACEP_CHECK(root.kind == OpKind::kSeq && root.children.size() == 2);
  const std::vector<TypeId>& types0 = root.children[0]->types;
  const std::vector<TypeId>& types1 = root.children[1]->types;
  const double span = guard.window().size - 1.0;

  Binding binding(guard.num_vars());
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& first = *events[i];
    if (!std::binary_search(types0.begin(), types0.end(), first.type)) {
      continue;
    }
    binding.Bind(0, &first);
    for (size_t j = i + 1; j < events.size(); ++j) {
      const Event& second = *events[j];
      if (static_cast<double>(second.id) -
              static_cast<double>(first.id) > span) {
        break;  // sorted by id: no later event can fit either
      }
      if (!std::binary_search(types1.begin(), types1.end(), second.type)) {
        continue;
      }
      binding.Bind(1, &second);
      bool ok = true;
      for (const auto& condition : guard.conditions()) {
        if (!condition->Eval(binding)) {
          ok = false;
          break;
        }
      }
      binding.Unbind(1);
      if (ok) return true;
    }
    binding.Unbind(0);
  }
  return false;
}

}  // namespace serve
}  // namespace dlacep
