// Per-query circuit breaker for the multi-query server.
//
// Mirrors the runtime health guard's quarantine / probed-recovery design
// (src/runtime/health.h) on the extraction side: a query whose engine
// repeatedly blows its cooperative budget (kBudgetExceeded) is *tripped*
// — suspended from shared extraction, its results flagged `degraded` —
// while every other query keeps exact answers. A tripped query is
// periodically *probed*: it gets real engine runs again, and a streak of
// clean runs closes the breaker. Structural-twin groupmates of a tripped
// query are split out of the shared engine run transparently (the serve
// scheduler partitions by breaker verdict), so one tenant's blowup never
// degrades its neighbors.
//
// State machine:
//
//   healthy --(trip_after consecutive budget aborts)--> tripped
//   tripped --(probe_period skipped opportunities)----> probing
//   probing --(budget abort)--------------------------> tripped
//   probing --(probe_passes consecutive clean runs)---> healthy
//
// The breaker is driven entirely by the extraction scheduler's
// deterministic run/skip sequence — no wall clock — so trips and
// recoveries are reproducible run to run.

#ifndef DLACEP_SERVE_BREAKER_H_
#define DLACEP_SERVE_BREAKER_H_

#include <cstdint>

namespace dlacep {
namespace serve {

enum class BreakerState : int {
  kHealthy = 0,
  kTripped = 1,
  kProbing = 2,
};

const char* BreakerStateName(BreakerState state);

struct BreakerConfig {
  /// Consecutive budget aborts that open the breaker.
  uint32_t trip_after = 3;
  /// Skipped extraction opportunities before a tripped query is probed.
  uint32_t probe_period = 8;
  /// Consecutive clean probe runs that close the breaker.
  uint32_t probe_passes = 2;
};

/// One query's breaker. Plain value type; the server keeps one per
/// registered query across Run() calls so trips persist between streams.
class QueryBreaker {
 public:
  QueryBreaker() = default;
  explicit QueryBreaker(const BreakerConfig& config) : config_(config) {}

  /// Whether the scheduler should give this query a real engine run now.
  /// Healthy and probing queries run; tripped queries are skipped until
  /// the probe period elapses (OnSkipped advances that clock).
  bool ShouldRun() const { return state_ != BreakerState::kTripped; }

  /// A budget-clean engine run completed for this query.
  void OnRunOk();

  /// This query's engine run aborted with kBudgetExceeded.
  void OnBudgetAbort();

  /// The scheduler skipped this query (tripped, or its unit was aborted
  /// by a groupmate sharing the engine). Advances the probe clock.
  void OnSkipped();

  BreakerState state() const { return state_; }
  uint64_t trips() const { return trips_; }
  uint64_t budget_aborts() const { return budget_aborts_; }

 private:
  BreakerConfig config_;
  BreakerState state_ = BreakerState::kHealthy;
  uint32_t consecutive_aborts_ = 0;
  uint32_t skipped_since_trip_ = 0;
  uint32_t clean_probes_ = 0;
  uint64_t trips_ = 0;
  uint64_t budget_aborts_ = 0;
};

}  // namespace serve
}  // namespace dlacep

#endif  // DLACEP_SERVE_BREAKER_H_
