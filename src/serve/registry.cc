#include "serve/registry.h"

#include <mutex>
#include <utility>

#include "obs/stages.h"

namespace dlacep {
namespace serve {

QueryRegistry::QueryRegistry() {
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked();  // readers never see a null snapshot
}

void QueryRegistry::PublishLocked() {
  auto snapshot = std::make_shared<RegistrySnapshot>();
  snapshot->version = version_;
  snapshot->queries = live_;
  std::vector<PlanQuery> plan_queries;
  plan_queries.reserve(live_.size());
  for (const QueryEntry& entry : live_) {
    snapshot->max_window = std::max(
        snapshot->max_window, entry.pattern->window().count_size());
    plan_queries.push_back(PlanQuery{entry.pattern.get(), entry.engine});
  }
  snapshot->plan = BuildSharedCepPlan(plan_queries);
  snapshot_.store(std::move(snapshot), std::memory_order_release);
  obs::RegistryQueries()->Set(static_cast<double>(live_.size()));
  if (version_ > 0) obs::RegistrySnapshots()->Increment();
}

StatusOr<QueryId> QueryRegistry::Register(const Pattern& pattern,
                                          QueryOptions options) {
  Status valid = pattern.Validate();
  if (!valid.ok()) return valid;
  if (pattern.window().kind != WindowKind::kCount) {
    return Status::InvalidArgument(
        "online serving requires a count window (WITHIN n EVENTS)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  QueryEntry entry;
  entry.id = next_id_++;
  entry.name = options.name.empty() ? "q" + std::to_string(entry.id)
                                    : std::move(options.name);
  entry.pattern = std::make_shared<const Pattern>(pattern);
  entry.threshold = options.threshold;
  entry.engine = options.engine;
  const QueryId id = entry.id;
  live_.push_back(std::move(entry));
  ++version_;
  PublishLocked();
  return id;
}

Status QueryRegistry::Unregister(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].id != id) continue;
    live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
    ++version_;
    PublishLocked();
    return Status::Ok();
  }
  return Status::NotFound("query id " + std::to_string(id) +
                          " is not registered");
}

std::shared_ptr<const RegistrySnapshot> QueryRegistry::Acquire() const {
  return snapshot_.load(std::memory_order_acquire);
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

}  // namespace serve
}  // namespace dlacep
