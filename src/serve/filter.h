// The shared-inference filter: one StreamFilter that serves every
// registered query.
//
// Per window (on whatever worker/shard thread the runtime dispatches
// to) the filter acquires the current registry snapshot lock-free,
// featurizes ONCE, runs ONE trunk forward (reusing the caller's
// InferenceContext scratch arena, and the ForwardBatch slab on the
// micro-batched path), and decodes per-query marks:
//
//  * with a multi-head trunk (EventNetworkFilter): the CRF marginals
//    are computed once and thresholded once per query — the cheap
//    "per-pattern head" of ISSUE/ROADMAP item 1;
//  * with any other base filter (pass-through, shedding, oracle): the
//    base marks are shared by every query verbatim.
//
// The runtime consumes the UNION of the per-query marks (an event is
// relayed if any query wants it); the per-query attribution is recorded
// in a sink the MultiQueryServer reads at extraction time. Recording is
// one short mutex hold per window — window granularity, not event
// granularity — which keeps the hot path lock-free everywhere else.
//
// Equivalence contract (tests/multi_query_runtime_test.cc): in a
// lossless below-capacity run, a query's recorded id set — and hence
// its extracted MatchSet — is byte-identical to an isolated
// single-query OnlineDlacep run over the same stream with the same
// base filter, threshold, and assembler geometry, at every shard and
// thread count. The trunk forward is query-independent, so marks never
// depend on which other queries are registered.

#ifndef DLACEP_SERVE_FILTER_H_
#define DLACEP_SERVE_FILTER_H_

#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dlacep/event_filter.h"
#include "dlacep/filter.h"
#include "serve/registry.h"

namespace dlacep {
namespace serve {

class ServeFilter : public StreamFilter {
 public:
  /// `registry` and `base` are borrowed. `heads` enables multi-head
  /// decoding and is typically the same object as `base` (a trained
  /// EventNetworkFilter); null means per-query thresholds are ignored
  /// and every query shares the base marks.
  ServeFilter(const QueryRegistry* registry, const StreamFilter* base,
              const EventNetworkFilter* heads = nullptr);

  std::string name() const override { return "serve"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override;
  std::vector<int> MarkWith(const EventStream& stream, WindowRange range,
                            InferenceContext* ctx) const override;
  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext* ctx,
                              double threshold_boost) const override;
  void MarkBatchOnline(std::span<const OnlineWindow> windows,
                       InferenceContext* ctx,
                       std::vector<int>* marks) const override;

  /// Clears the per-query attribution sink (start of a run).
  void ResetRecording();

  /// The ids each query marked, sorted ascending. Queries registered
  /// only for part of the run have partial sets (their windows before
  /// registration were never decoded for them).
  std::map<QueryId, std::vector<EventId>> RecordedMarks() const;

 private:
  /// Decodes one window under `snapshot` and records attribution.
  /// Returns the union marks (kInvalidMark sentinel preserved).
  std::vector<int> MarkWindow(const RegistrySnapshot& snapshot,
                              const EventStream& window,
                              InferenceContext* ctx, double boost) const;
  void Record(const RegistrySnapshot& snapshot, const EventStream& window,
              const std::vector<std::vector<int>>& per_query) const;
  std::vector<double> Thresholds(const RegistrySnapshot& snapshot,
                                 double boost) const;

  const QueryRegistry* registry_;      ///< not owned
  const StreamFilter* base_;           ///< not owned
  const EventNetworkFilter* heads_;    ///< not owned, may be null

  mutable std::mutex mu_;
  mutable std::unordered_map<QueryId, std::unordered_set<EventId>> sink_;
};

}  // namespace serve
}  // namespace dlacep

#endif  // DLACEP_SERVE_FILTER_H_
