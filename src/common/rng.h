// Deterministic random number generation utilities.
//
// Every stochastic component in the library (data generators, weight
// initialization, training shuffles) draws from an explicitly seeded `Rng`
// so that experiments and tests are reproducible bit-for-bit.

#ifndef DLACEP_COMMON_RNG_H_
#define DLACEP_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace dlacep {

/// A seeded pseudo-random generator with the distributions the library
/// needs. Not thread-safe; create one per thread/component.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Gaussian sample.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n), exponent s (s = 0 is uniform).
  /// Sampled by inverse-CDF over the precomputable harmonic weights.
  int64_t Zipf(int64_t n, double s);

  /// Uniformly chosen index into a non-empty container of size n.
  size_t Index(size_t n);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Underlying engine, for std:: algorithms that want one.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cached Zipf CDF for the most recent (n, s) pair; Zipf sampling is used
  // heavily by the stock simulator with a fixed configuration.
  int64_t zipf_n_ = -1;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace dlacep

#endif  // DLACEP_COMMON_RNG_H_
