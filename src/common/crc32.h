// CRC-32 (IEEE 802.3 polynomial, reflected) for integrity-checking
// on-disk artifacts: DLNN model files (serialize.cc, format v2) and
// runtime checkpoints (runtime/checkpoint.cc). Not a cryptographic hash
// — it catches truncation and bit flips, which is what a crash-prone or
// faulty storage layer actually produces.

#ifndef DLACEP_COMMON_CRC32_H_
#define DLACEP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dlacep {

/// One-shot CRC-32 of `len` bytes.
uint32_t Crc32(const void* data, size_t len);

/// Incremental form: feed `crc` the previous return value (or 0 for the
/// first chunk).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

}  // namespace dlacep

#endif  // DLACEP_COMMON_CRC32_H_
