// Minimal leveled logging to stderr.
//
// Usage: DLACEP_LOG(INFO) << "trained " << epochs << " epochs";
// The global level defaults to INFO and can be lowered to silence
// benchmarks/tests (SetLogLevel(LogLevel::kWarning)).

#ifndef DLACEP_COMMON_LOGGING_H_
#define DLACEP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dlacep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and flushes it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dlacep

#define DLACEP_LOG(severity)                                      \
  ::dlacep::internal::LogMessage(::dlacep::LogLevel::k##severity, \
                                 __FILE__, __LINE__)

// Convenience aliases matching common spellings.
#define DLACEP_LOG_INFO DLACEP_LOG(Info)
#define DLACEP_LOG_WARN DLACEP_LOG(Warning)
#define DLACEP_LOG_ERROR DLACEP_LOG(Error)
#define DLACEP_LOG_DEBUG DLACEP_LOG(Debug)

#endif  // DLACEP_COMMON_LOGGING_H_
