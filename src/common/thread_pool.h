// A fixed-size thread pool for data-parallel fan-out over independent
// work items (no work stealing — one shared FIFO queue).
//
// Usage contract: Submit() enqueues tasks, Wait() blocks until every
// submitted task has finished. Tasks must not throw; failures inside the
// library trip DLACEP_CHECK, which aborts. Determinism is the caller's
// job: workers race over the queue, so callers that need a reproducible
// result must write into pre-sized per-item slots and merge in item
// order after Wait() (see DlacepPipeline::Evaluate).

#ifndef DLACEP_COMMON_THREAD_POOL_H_
#define DLACEP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dlacep {

/// Resolves a thread-count knob: 0 means hardware concurrency (at least
/// 1 if the runtime cannot tell), any other value is taken literally.
size_t ResolveNumThreads(size_t requested);

/// Pins the calling thread to `core` (a hardware-concurrency index).
/// Best-effort: returns true on success, false when the platform has no
/// affinity API or the kernel refuses (cgroup cpusets, core out of
/// range). Callers must treat a false return as advisory — the sharded
/// runtime counts it in ShardStats and keeps running unpinned.
bool PinCurrentThreadToCore(size_t core);

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. May be called again after Wait().
  void Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Index of the calling thread within its pool, in [0, num_threads()).
  /// Returns 0 when the caller is not a pool worker (e.g. the main
  /// thread running the sequential fallback), so per-worker scratch
  /// indexed by this value is always valid.
  static size_t CurrentWorkerIndex();

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  size_t outstanding_ = 0;  ///< queued + currently running tasks
  bool stop_ = false;
};

/// Runs fn(i) for every i in [0, count), one task per index, and blocks
/// until all calls have returned. A null pool (or a single-worker pool)
/// degenerates to a plain sequential loop with no synchronization.
void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn);

/// ParallelFor variant that also passes the executing worker's index so
/// callers can maintain per-worker scratch (e.g. one InferenceContext
/// per worker) without locking. The sequential fallback passes worker 0
/// for every item.
void ParallelForWorker(ThreadPool* pool, size_t count,
                       const std::function<void(size_t, size_t)>& fn);

}  // namespace dlacep

#endif  // DLACEP_COMMON_THREAD_POOL_H_
