#include "common/logging.h"

#include <cstdio>

namespace dlacep {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level), level_(level) {
  if (enabled_) {
    // Keep only the basename to avoid noisy absolute paths.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace dlacep
