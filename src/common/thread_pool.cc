#include "common/thread_pool.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/status.h"

namespace dlacep {

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

bool PinCurrentThreadToCore(size_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (core >= CPU_SETSIZE) return false;
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

namespace {
// Worker slot of the calling thread; 0 for non-pool threads so that
// per-worker scratch indexed by it is always in range.
thread_local size_t current_worker_index = 0;
}  // namespace

size_t ThreadPool::CurrentWorkerIndex() { return current_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  DLACEP_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, i);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  DLACEP_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++outstanding_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  current_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before honoring stop_, so a destructor issued
      // after Submit() still runs every task exactly once.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      if (outstanding_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

void ParallelForWorker(ThreadPool* pool, size_t count,
                       const std::function<void(size_t, size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(ThreadPool::CurrentWorkerIndex(), i); });
  }
  pool->Wait();
}

}  // namespace dlacep
