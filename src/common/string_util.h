// Small string helpers shared by the query-language parser and CSV I/O.

#ifndef DLACEP_COMMON_STRING_UTIL_H_
#define DLACEP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dlacep {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dlacep

#endif  // DLACEP_COMMON_STRING_UTIL_H_
