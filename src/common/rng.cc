#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace dlacep {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DLACEP_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

int64_t Rng::Zipf(int64_t n, double s) {
  DLACEP_CHECK_GT(n, 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double total = 0.0;
    for (int64_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[static_cast<size_t>(k)] = total;
    }
    for (auto& v : zipf_cdf_) v /= total;
  }
  const double u = Uniform(0.0, 1.0);
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

size_t Rng::Index(size_t n) {
  DLACEP_CHECK_GT(n, 0u);
  return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

}  // namespace dlacep
