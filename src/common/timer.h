// Wall-clock stopwatch used for throughput measurements.

#ifndef DLACEP_COMMON_TIMER_H_
#define DLACEP_COMMON_TIMER_H_

#include <chrono>

namespace dlacep {

/// A monotonic stopwatch. Start() (or construction) begins timing;
/// ElapsedSeconds() reads without stopping, so a single stopwatch can
/// bracket several measurements.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Computes a throughput figure (items per second) while guarding against
/// division by (near-)zero elapsed time on very fast runs.
inline double Throughput(double items, double elapsed_seconds) {
  constexpr double kMinSeconds = 1e-9;
  return items / (elapsed_seconds < kMinSeconds ? kMinSeconds
                                                : elapsed_seconds);
}

}  // namespace dlacep

#endif  // DLACEP_COMMON_TIMER_H_
