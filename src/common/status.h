// Lightweight status / error-reporting primitives used across the library.
//
// We deliberately avoid exceptions on hot paths; functions that can fail
// return a `Status` (or `StatusOr<T>`), and programming errors are caught
// by the DLACEP_CHECK family of macros, which abort with a message.

#ifndef DLACEP_COMMON_STATUS_H_
#define DLACEP_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace dlacep {

/// Error categories mirrored loosely after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kUnavailable,
  kBudgetExceeded,
};

/// Returns a human-readable name for a status code.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kBudgetExceeded: return "BUDGET_EXCEEDED";
  }
  return "UNKNOWN";
}

/// Value-semantic status: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Transient failure: the operation may succeed if retried (used by
  /// stream sources for flaky reads; the runtime retries with backoff).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// A cooperative engine budget (partial-match or deadline) was
  /// exhausted and the evaluation aborted. Unlike kResourceExhausted
  /// this is an expected, per-query recoverable condition: the engine
  /// stays reusable and the serve layer's circuit breaker absorbs it.
  static Status BudgetExceeded(std::string msg) {
    return Status(StatusCode::kBudgetExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    s += ": ";
    s += message_;
    return s;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal StatusOr analog.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *value_;
  }
  T& value() & {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return *value_;
  }
  T&& value() && {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("uninitialized StatusOr");
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               extra.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace dlacep

/// Aborts the process when `cond` is false. Active in all build types:
/// internal invariants in a CEP engine must never be silently violated.
#define DLACEP_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::dlacep::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                               \
  } while (0)

#define DLACEP_CHECK_MSG(cond, msg)                                   \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream oss_;                                        \
      oss_ << "(" << (msg) << ")";                                    \
      ::dlacep::internal::CheckFailed(__FILE__, __LINE__, #cond,      \
                                      oss_.str());                    \
    }                                                                 \
  } while (0)

#define DLACEP_CHECK_BINOP(a, b, op)                                       \
  do {                                                                     \
    if (!((a)op(b))) {                                                     \
      std::ostringstream oss_;                                             \
      oss_ << "(" << (a) << " vs " << (b) << ")";                          \
      ::dlacep::internal::CheckFailed(__FILE__, __LINE__, #a " " #op " " #b, \
                                      oss_.str());                         \
    }                                                                      \
  } while (0)

#define DLACEP_CHECK_EQ(a, b) DLACEP_CHECK_BINOP(a, b, ==)
#define DLACEP_CHECK_NE(a, b) DLACEP_CHECK_BINOP(a, b, !=)
#define DLACEP_CHECK_LT(a, b) DLACEP_CHECK_BINOP(a, b, <)
#define DLACEP_CHECK_LE(a, b) DLACEP_CHECK_BINOP(a, b, <=)
#define DLACEP_CHECK_GT(a, b) DLACEP_CHECK_BINOP(a, b, >)
#define DLACEP_CHECK_GE(a, b) DLACEP_CHECK_BINOP(a, b, >=)

/// Propagates a non-OK status to the caller.
#define DLACEP_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::dlacep::Status status_ = (expr);        \
    if (!status_.ok()) return status_;        \
  } while (0)

#endif  // DLACEP_COMMON_STATUS_H_
