// CSV persistence for event streams.
//
// Format: header line "id,type,timestamp,<attr names...>" followed by one
// row per event; blank events serialize their type as "<blank>" and empty
// attribute cells.

#ifndef DLACEP_STREAM_CSV_IO_H_
#define DLACEP_STREAM_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "stream/stream.h"

namespace dlacep {

/// Writes `stream` to `path`. Overwrites an existing file.
Status WriteCsv(const EventStream& stream, const std::string& path);

/// Reads a stream from `path`. Types and attributes are registered in a
/// fresh schema in column order.
StatusOr<EventStream> ReadCsv(const std::string& path);

}  // namespace dlacep

#endif  // DLACEP_STREAM_CSV_IO_H_
