// Stream schema: the dictionary of event-type names and attribute names.

#ifndef DLACEP_STREAM_SCHEMA_H_
#define DLACEP_STREAM_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace dlacep {

/// Maps symbolic event-type names and attribute names to dense ids.
///
/// A schema is created once per stream source and shared (by
/// std::shared_ptr) between the stream, the pattern compiler, and the
/// featurizer, so that "GOOG" or "vol" resolve to the same ids everywhere.
class Schema {
 public:
  Schema() = default;

  /// Registers (or looks up) an event type by name; returns its id.
  TypeId RegisterType(const std::string& name);

  /// Registers (or looks up) an attribute by name; returns its index.
  size_t RegisterAttr(const std::string& name);

  /// Returns the id of a registered type, or kNotFound.
  StatusOr<TypeId> TypeIdOf(const std::string& name) const;

  /// Returns the index of a registered attribute, or kNotFound.
  StatusOr<size_t> AttrIndexOf(const std::string& name) const;

  /// Name lookup; blank type renders as "<blank>".
  const std::string& TypeName(TypeId id) const;
  const std::string& AttrName(size_t index) const;

  size_t num_types() const { return type_names_.size(); }
  size_t num_attrs() const { return attr_names_.size(); }

 private:
  std::vector<std::string> type_names_;
  std::vector<std::string> attr_names_;
  std::unordered_map<std::string, TypeId> type_ids_;
  std::unordered_map<std::string, size_t> attr_indexes_;
};

}  // namespace dlacep

#endif  // DLACEP_STREAM_SCHEMA_H_
