#include "stream/generator.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace dlacep {

std::shared_ptr<Schema> MakeSyntheticSchema(size_t num_types,
                                            size_t num_attrs) {
  auto schema = std::make_shared<Schema>();
  for (size_t i = 0; i < num_types; ++i) {
    if (i < 26) {
      schema->RegisterType(std::string(1, static_cast<char>('A' + i)));
    } else {
      schema->RegisterType(StrFormat("T%zu", i));
    }
  }
  for (size_t i = 0; i < num_attrs; ++i) {
    schema->RegisterAttr(i == 0 ? "vol" : StrFormat("a%zu", i));
  }
  return schema;
}

EventStream GenerateSynthetic(const SyntheticConfig& config,
                              std::shared_ptr<const Schema> schema) {
  DLACEP_CHECK_GE(schema->num_types(), config.num_types);
  DLACEP_CHECK_EQ(schema->num_attrs(), config.num_attrs);
  Rng rng(config.seed);
  EventStream stream(std::move(schema));
  for (size_t i = 0; i < config.num_events; ++i) {
    const TypeId type = static_cast<TypeId>(
        rng.UniformInt(0, static_cast<int64_t>(config.num_types) - 1));
    std::vector<double> attrs(config.num_attrs);
    for (auto& a : attrs) {
      a = rng.Normal(config.attr_mean, config.attr_stddev);
    }
    stream.Append(type, static_cast<double>(i) * config.time_step,
                  std::move(attrs));
  }
  return stream;
}

EventStream GenerateSynthetic(const SyntheticConfig& config) {
  return GenerateSynthetic(
      config, MakeSyntheticSchema(config.num_types, config.num_attrs));
}

}  // namespace dlacep
