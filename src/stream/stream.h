// EventStream: an ordered, finite batch of primitive events plus its
// schema. Streams in the paper are conceptually infinite; for evaluation
// (and as in the paper's experiments) we operate on finite prefixes.

#ifndef DLACEP_STREAM_STREAM_H_
#define DLACEP_STREAM_STREAM_H_

#include <memory>
#include <span>
#include <vector>

#include "stream/event.h"
#include "stream/schema.h"

namespace dlacep {

/// Mean / standard deviation summary of one attribute, used by the
/// featurizer to standardize numeric inputs (paper §5.1 standardizes the
/// stock volume attribute).
struct AttrStats {
  double mean = 0.0;
  double stddev = 1.0;
};

/// An in-memory event stream. Events are stored in arrival order and get
/// their unique increasing ids assigned by Append (or AssignIds for
/// streams built externally).
class EventStream {
 public:
  explicit EventStream(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {
    DLACEP_CHECK(schema_ != nullptr);
  }

  /// Appends an event, assigning the next arrival id. Returns that id.
  EventId Append(TypeId type, double timestamp, std::vector<double> attrs);

  /// Appends a blank (padding) event with the given timestamp.
  EventId AppendBlank(double timestamp);

  /// Appends a copy of `event` preserving its id. The online runtime
  /// assigns arrival ids at ingest (before queueing, as in §4.4), so a
  /// stream rebuilt from surviving arrivals keeps id gaps where events
  /// were dropped — the count-window constraint stays anchored to real
  /// arrivals. Ids must be strictly increasing.
  void AppendArrival(const Event& event);

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const Event& operator[](size_t i) const {
    DLACEP_CHECK_LT(i, events_.size());
    return events_[i];
  }
  const std::vector<Event>& events() const { return events_; }

  std::vector<Event>::const_iterator begin() const { return events_.begin(); }
  std::vector<Event>::const_iterator end() const { return events_.end(); }

  /// Read-only view over a contiguous index range [first, first + count).
  std::span<const Event> View(size_t first, size_t count) const;

  /// Computes mean/stddev of one attribute over non-blank events.
  AttrStats ComputeAttrStats(size_t attr_index) const;

  /// Counts events per type id; index = type id. Blank events excluded.
  std::vector<size_t> TypeHistogram() const;

  /// Returns a new stream containing a copy of the events in [first,
  /// first + count), preserving ids and timestamps.
  EventStream Slice(size_t first, size_t count) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Event> events_;
  EventId next_id_ = 0;
};

}  // namespace dlacep

#endif  // DLACEP_STREAM_STREAM_H_
