#include "stream/window.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace dlacep {

bool FitsWindow(const std::vector<const Event*>& events,
                const WindowSpec& window) {
  if (events.empty()) return true;
  if (window.kind == WindowKind::kCount) {
    EventId lo = events[0]->id;
    EventId hi = events[0]->id;
    for (const Event* e : events) {
      lo = std::min(lo, e->id);
      hi = std::max(hi, e->id);
    }
    return hi - lo <= static_cast<EventId>(window.count_size()) - 1;
  }
  double lo = events[0]->timestamp;
  double hi = events[0]->timestamp;
  for (const Event* e : events) {
    lo = std::min(lo, e->timestamp);
    hi = std::max(hi, e->timestamp);
  }
  return hi - lo <= window.size;
}

bool FitsWindowIncremental(const Event& earliest, const Event& next,
                           const WindowSpec& window) {
  if (window.kind == WindowKind::kCount) {
    DLACEP_CHECK_GE(next.id, earliest.id);
    return next.id - earliest.id <=
           static_cast<EventId>(window.count_size()) - 1;
  }
  return next.timestamp - earliest.timestamp <= window.size;
}

std::vector<WindowRange> CountWindows(size_t stream_size, size_t window_size,
                                      size_t step) {
  DLACEP_CHECK_GT(window_size, 0u);
  DLACEP_CHECK_GT(step, 0u);
  std::vector<WindowRange> out;
  if (stream_size == 0) return out;
  for (size_t begin = 0;; begin += step) {
    const size_t end = std::min(begin + window_size, stream_size);
    out.push_back(WindowRange{begin, end});
    if (end == stream_size) break;
  }
  return out;
}

std::vector<WindowRange> TimeWindows(const EventStream& stream, double span) {
  std::vector<WindowRange> out;
  const size_t n = stream.size();

  // Coverage contract: every pair of events whose timestamps differ by
  // at most `span` must co-occur in at least one emitted window. With
  // monotone timestamps the window anchored at `i` can stop at the
  // first out-of-span event; an out-of-order stream (e.g. loaded from
  // an external CSV) must instead extend past local stragglers to the
  // LAST in-span event, or a straggler truncates the window's reach and
  // later in-span partners never co-occur with the anchor.
  bool sorted = true;
  for (size_t i = 1; i < n && sorted; ++i) {
    sorted = stream[i].timestamp >= stream[i - 1].timestamp;
  }

  size_t prev_end = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t end = i + 1;
    if (sorted) {
      while (end < n &&
             stream[end].timestamp - stream[i].timestamp <= span) {
        ++end;
      }
    } else {
      for (size_t k = i + 1; k < n; ++k) {
        if (std::abs(stream[k].timestamp - stream[i].timestamp) <= span) {
          end = k + 1;
        }
      }
    }
    // Suppress only windows contained in the previously emitted one:
    // begins strictly increase, so end <= prev_end means [i, end) is a
    // subrange and every pair it covers is already covered.
    if (end > prev_end) {
      out.push_back(WindowRange{i, end});
      prev_end = end;
    }
  }
  return out;
}

}  // namespace dlacep
