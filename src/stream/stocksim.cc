#include "stream/stocksim.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace dlacep {

std::shared_ptr<Schema> MakeStockSchema(size_t num_symbols) {
  auto schema = std::make_shared<Schema>();
  for (size_t i = 0; i < num_symbols; ++i) {
    schema->RegisterType(StrFormat("S%zu", i));
  }
  schema->RegisterAttr("vol");
  return schema;
}

EventStream GenerateStockStream(const StockSimConfig& config,
                                std::shared_ptr<const Schema> schema) {
  DLACEP_CHECK_GE(schema->num_types(), config.num_symbols);
  DLACEP_CHECK_GE(schema->num_attrs(), 1u);
  Rng rng(config.seed);

  // Per-symbol state: base log-volume and current log-volume.
  std::vector<double> base_log(config.num_symbols);
  std::vector<double> cur_log(config.num_symbols);
  for (size_t s = 0; s < config.num_symbols; ++s) {
    base_log[s] = rng.Normal(config.base_volume_mean,
                             config.base_volume_stddev);
    cur_log[s] = base_log[s];
  }

  EventStream stream(std::move(schema));
  for (size_t i = 0; i < config.num_events; ++i) {
    const size_t s = static_cast<size_t>(rng.Zipf(
        static_cast<int64_t>(config.num_symbols), config.zipf_exponent));
    // Geometric random walk with mean reversion towards the base level.
    double innovation = rng.Normal(0.0, config.walk_stddev);
    if (rng.Bernoulli(config.shock_prob)) {
      innovation += rng.Normal(0.0, config.shock_stddev);
    }
    cur_log[s] += config.mean_reversion * (base_log[s] - cur_log[s]) +
                  innovation;
    const double volume = std::exp(cur_log[s]);
    stream.Append(static_cast<TypeId>(s),
                  static_cast<double>(i) * config.time_step, {volume});
  }
  return stream;
}

EventStream GenerateStockStream(const StockSimConfig& config) {
  return GenerateStockStream(config, MakeStockSchema(config.num_symbols));
}

}  // namespace dlacep
