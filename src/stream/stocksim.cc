#include "stream/stocksim.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"

namespace dlacep {

std::shared_ptr<Schema> MakeStockSchema(size_t num_symbols) {
  auto schema = std::make_shared<Schema>();
  for (size_t i = 0; i < num_symbols; ++i) {
    schema->RegisterType(StrFormat("S%zu", i));
  }
  schema->RegisterAttr("vol");
  return schema;
}

StockSimStepper::StockSimStepper(const StockSimConfig& config,
                                 std::shared_ptr<const Schema> schema)
    : config_(config),
      schema_(std::move(schema)),
      rng_(config.seed),
      base_log_(config.num_symbols),
      cur_log_(config.num_symbols) {
  DLACEP_CHECK_GE(schema_->num_types(), config_.num_symbols);
  DLACEP_CHECK_GE(schema_->num_attrs(), 1u);
  // Per-symbol state: base log-volume and current log-volume.
  for (size_t s = 0; s < config_.num_symbols; ++s) {
    base_log_[s] = rng_.Normal(config_.base_volume_mean,
                               config_.base_volume_stddev);
    cur_log_[s] = base_log_[s];
  }
}

StockSimStepper::StockSimStepper(const StockSimConfig& config)
    : StockSimStepper(config, MakeStockSchema(config.num_symbols)) {}

Event StockSimStepper::Next() {
  const size_t s = static_cast<size_t>(rng_.Zipf(
      static_cast<int64_t>(config_.num_symbols), config_.zipf_exponent));
  // Geometric random walk with mean reversion towards the base level.
  double innovation = rng_.Normal(0.0, config_.walk_stddev);
  if (rng_.Bernoulli(config_.shock_prob)) {
    innovation += rng_.Normal(0.0, config_.shock_stddev);
  }
  cur_log_[s] += config_.mean_reversion * (base_log_[s] - cur_log_[s]) +
                 innovation;
  const double volume = std::exp(cur_log_[s]);
  Event event;
  event.type = static_cast<TypeId>(s);
  event.timestamp = static_cast<double>(tick_++) * config_.time_step;
  event.attrs = {volume};
  return event;
}

EventStream GenerateStockStream(const StockSimConfig& config,
                                std::shared_ptr<const Schema> schema) {
  StockSimStepper stepper(config, std::move(schema));
  EventStream stream(stepper.schema());
  for (size_t i = 0; i < config.num_events; ++i) {
    Event e = stepper.Next();
    stream.Append(e.type, e.timestamp, std::move(e.attrs));
  }
  return stream;
}

EventStream GenerateStockStream(const StockSimConfig& config) {
  return GenerateStockStream(config, MakeStockSchema(config.num_symbols));
}

}  // namespace dlacep
