// The primitive event model.
//
// Following the paper (§2.1), a primitive event is a tuple (N, F, t): an
// event type N, a fixed-size attribute set F, and a timestamp t. On
// arrival the system additionally attaches a unique increasing identifier
// `id` (§4.4) which the CEP extractor uses to enforce the count-window
// constraint on filtered streams.

#ifndef DLACEP_STREAM_EVENT_H_
#define DLACEP_STREAM_EVENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dlacep {

/// Unique, strictly increasing identifier assigned on arrival.
using EventId = uint64_t;

/// Dense integer identifier of an event type (stock symbol, sensor id...).
using TypeId = int32_t;

/// Type id of "blank" padding events used when simulating time-based
/// windows (paper §5.2, Fig 14). Blank events never match any pattern.
inline constexpr TypeId kBlankType = -1;

/// A primitive stream event.
struct Event {
  EventId id = 0;
  TypeId type = kBlankType;
  double timestamp = 0.0;
  std::vector<double> attrs;

  Event() = default;
  Event(EventId id_in, TypeId type_in, double ts, std::vector<double> a)
      : id(id_in), type(type_in), timestamp(ts), attrs(std::move(a)) {}

  /// Padding events carry no payload and match no pattern.
  bool is_blank() const { return type == kBlankType; }

  /// Attribute access (bounds-checked in debug builds; this sits on the
  /// condition-evaluation hot path of every engine).
  double attr(size_t index) const {
#ifndef NDEBUG
    DLACEP_CHECK_LT(index, attrs.size());
#endif
    return attrs[index];
  }
};

/// Strict stream order: by the arrival identifier.
inline bool ArrivesBefore(const Event& a, const Event& b) {
  return a.id < b.id;
}

}  // namespace dlacep

#endif  // DLACEP_STREAM_EVENT_H_
