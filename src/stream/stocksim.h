// Stock-market stream simulator.
//
// The paper evaluates on a purchased NASDAQ historical dataset (689M
// events, 2,500+ stock identifiers, a standardized volume attribute).
// That data is proprietary, so this module synthesizes a stream with the
// distributional properties the paper's queries exercise:
//
//  * identifier popularity skew — symbol ranks are drawn from a Zipf
//    distribution, so "the top-k most prevalent stock identifiers" (the
//    T_k sets of Table 1) are, by construction, type ids {0..k-1};
//  * temporally correlated volumes — each symbol's volume follows a
//    geometric random walk around a per-symbol base level, producing the
//    smooth relative-volume transitions the queries' α·vol < vol < β·vol
//    predicates select on;
//  * occasional volume shocks — heavy-tailed multiplicative jumps that
//    create the high-variance matches analyzed in Fig 10.
//
// See DESIGN.md §1 for the substitution rationale.

#ifndef DLACEP_STREAM_STOCKSIM_H_
#define DLACEP_STREAM_STOCKSIM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "stream/stream.h"

namespace dlacep {

/// Configuration of the stock-market simulator.
struct StockSimConfig {
  size_t num_events = 20000;
  size_t num_symbols = 50;      ///< distinct stock identifiers
  double zipf_exponent = 1.05;  ///< identifier popularity skew
  double base_volume_mean = 3.0;     ///< log-space mean of per-symbol base
  double base_volume_stddev = 0.5;   ///< log-space spread of bases
  double walk_stddev = 0.05;    ///< per-tick log-volume innovation
  double shock_prob = 0.01;     ///< probability of a volume shock per tick
  double shock_stddev = 0.8;    ///< log-space magnitude of shocks
  double mean_reversion = 0.02; ///< pull back towards the base level
  double time_step = 1.0;       ///< constant sampling rate
  uint64_t seed = 7;
};

/// Builds a schema with symbols "S0".."S<n-1>" (rank order = popularity
/// order, so T_k = type ids 0..k-1) and a single "vol" attribute.
std::shared_ptr<Schema> MakeStockSchema(size_t num_symbols);

/// Incremental form of the simulator: construct once, call Next() per
/// event. GenerateStockStream is implemented on top of it, so a stepper
/// and a batch generation with the same config produce byte-identical
/// event sequences — the online runtime's live `serve` source and the
/// offline benches draw from the same distribution.
class StockSimStepper {
 public:
  explicit StockSimStepper(const StockSimConfig& config);
  StockSimStepper(const StockSimConfig& config,
                  std::shared_ptr<const Schema> schema);

  const std::shared_ptr<const Schema>& schema() const { return schema_; }

  /// Synthesizes the next event. The returned event carries no arrival
  /// id (id 0) — ids are assigned by whoever ingests it.
  Event Next();

 private:
  StockSimConfig config_;
  std::shared_ptr<const Schema> schema_;
  Rng rng_;
  std::vector<double> base_log_;  ///< per-symbol base log-volume
  std::vector<double> cur_log_;   ///< per-symbol current log-volume
  size_t tick_ = 0;
};

/// Generates a simulated stock stream over the given schema.
EventStream GenerateStockStream(const StockSimConfig& config,
                                std::shared_ptr<const Schema> schema);

/// Convenience overload building the schema internally.
EventStream GenerateStockStream(const StockSimConfig& config);

}  // namespace dlacep

#endif  // DLACEP_STREAM_STOCKSIM_H_
