#include "stream/schema.h"

namespace dlacep {

namespace {
const std::string kBlankName = "<blank>";
}  // namespace

TypeId Schema::RegisterType(const std::string& name) {
  auto it = type_ids_.find(name);
  if (it != type_ids_.end()) return it->second;
  const TypeId id = static_cast<TypeId>(type_names_.size());
  type_names_.push_back(name);
  type_ids_.emplace(name, id);
  return id;
}

size_t Schema::RegisterAttr(const std::string& name) {
  auto it = attr_indexes_.find(name);
  if (it != attr_indexes_.end()) return it->second;
  const size_t index = attr_names_.size();
  attr_names_.push_back(name);
  attr_indexes_.emplace(name, index);
  return index;
}

StatusOr<TypeId> Schema::TypeIdOf(const std::string& name) const {
  auto it = type_ids_.find(name);
  if (it == type_ids_.end()) {
    return Status::NotFound("unknown event type: " + name);
  }
  return it->second;
}

StatusOr<size_t> Schema::AttrIndexOf(const std::string& name) const {
  auto it = attr_indexes_.find(name);
  if (it == attr_indexes_.end()) {
    return Status::NotFound("unknown attribute: " + name);
  }
  return it->second;
}

const std::string& Schema::TypeName(TypeId id) const {
  if (id == kBlankType) return kBlankName;
  DLACEP_CHECK_GE(id, 0);
  DLACEP_CHECK_LT(static_cast<size_t>(id), type_names_.size());
  return type_names_[static_cast<size_t>(id)];
}

const std::string& Schema::AttrName(size_t index) const {
  DLACEP_CHECK_LT(index, attr_names_.size());
  return attr_names_[index];
}

}  // namespace dlacep
