#include "stream/stream.h"

#include <cmath>

namespace dlacep {

EventId EventStream::Append(TypeId type, double timestamp,
                            std::vector<double> attrs) {
  const EventId id = next_id_++;
  events_.emplace_back(id, type, timestamp, std::move(attrs));
  return id;
}

EventId EventStream::AppendBlank(double timestamp) {
  const EventId id = next_id_++;
  events_.emplace_back(id, kBlankType, timestamp, std::vector<double>{});
  return id;
}

void EventStream::AppendArrival(const Event& event) {
  DLACEP_CHECK(events_.empty() || event.id > events_.back().id);
  events_.push_back(event);
  next_id_ = event.id + 1;
}

std::span<const Event> EventStream::View(size_t first, size_t count) const {
  DLACEP_CHECK_LE(first + count, events_.size());
  return std::span<const Event>(events_.data() + first, count);
}

AttrStats EventStream::ComputeAttrStats(size_t attr_index) const {
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t n = 0;
  for (const Event& e : events_) {
    if (e.is_blank()) continue;
    const double v = e.attr(attr_index);
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  AttrStats stats;
  if (n == 0) return stats;
  stats.mean = sum / static_cast<double>(n);
  const double var =
      sum_sq / static_cast<double>(n) - stats.mean * stats.mean;
  stats.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
  return stats;
}

std::vector<size_t> EventStream::TypeHistogram() const {
  std::vector<size_t> hist(schema_->num_types(), 0);
  for (const Event& e : events_) {
    if (e.is_blank()) continue;
    DLACEP_CHECK_LT(static_cast<size_t>(e.type), hist.size());
    ++hist[static_cast<size_t>(e.type)];
  }
  return hist;
}

EventStream EventStream::Slice(size_t first, size_t count) const {
  DLACEP_CHECK_LE(first + count, events_.size());
  EventStream out(schema_);
  out.events_.assign(events_.begin() + static_cast<ptrdiff_t>(first),
                     events_.begin() + static_cast<ptrdiff_t>(first + count));
  out.next_id_ = out.events_.empty() ? 0 : out.events_.back().id + 1;
  return out;
}

}  // namespace dlacep
