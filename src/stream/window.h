// Window semantics (paper §2.1, Fig 3).
//
// A count-based window of size W covers W consecutive events; a match is
// valid under it iff its events' arrival ids span at most W - 1 (§4.4's
// unique-ID formulation). A time-based window of size W requires the
// events' timestamps to span at most W time units.

#ifndef DLACEP_STREAM_WINDOW_H_
#define DLACEP_STREAM_WINDOW_H_

#include <cstddef>
#include <vector>

#include "stream/event.h"
#include "stream/stream.h"

namespace dlacep {

enum class WindowKind { kCount, kTime };

/// Declarative window specification attached to a pattern (WITHIN clause).
struct WindowSpec {
  WindowKind kind = WindowKind::kCount;
  /// Count: number of consecutive events. Time: span in time units.
  double size = 0.0;

  static WindowSpec Count(size_t w) {
    return WindowSpec{WindowKind::kCount, static_cast<double>(w)};
  }
  static WindowSpec Time(double w) {
    return WindowSpec{WindowKind::kTime, w};
  }

  size_t count_size() const { return static_cast<size_t>(size); }
};

/// True iff all events (given in any order) fit within the window.
/// For count windows: max(id) - min(id) <= W - 1.
/// For time windows: max(ts) - min(ts) <= W.
bool FitsWindow(const std::vector<const Event*>& events,
                const WindowSpec& window);

/// Incremental version used by engines: checks whether `next` stays within
/// the window anchored at the earliest event seen so far.
bool FitsWindowIncremental(const Event& earliest, const Event& next,
                           const WindowSpec& window);

/// A half-open index range [begin, end) into a stream.
struct WindowRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Enumerates fixed-size count windows of `window_size` events advancing
/// by `step` (the paper's input assembler uses window 2W, step W). The
/// final window is truncated if the stream length is not a multiple of
/// the step.
std::vector<WindowRange> CountWindows(size_t stream_size, size_t window_size,
                                      size_t step);

/// Enumerates maximal time windows: for each event index i, the range of
/// events reaching to the last event whose timestamp lies within `span`
/// of ts(i). Windows contained in the previously emitted one are
/// dropped. Guarantee (unit-tested): every pair of events whose
/// timestamps differ by at most `span` co-occurs in at least one emitted
/// window, even when the stream's timestamps are out of order.
std::vector<WindowRange> TimeWindows(const EventStream& stream, double span);

}  // namespace dlacep

#endif  // DLACEP_STREAM_WINDOW_H_
