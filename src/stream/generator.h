// Synthetic dataset generator (paper §5.1 "synthetic datasets": event
// types sampled uniformly from 15 possibilities, numeric attribute drawn
// from a standard normal distribution).

#ifndef DLACEP_STREAM_GENERATOR_H_
#define DLACEP_STREAM_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "stream/stream.h"

namespace dlacep {

/// Configuration of the synthetic generator.
struct SyntheticConfig {
  size_t num_events = 10000;
  size_t num_types = 15;       ///< uniformly sampled event types
  size_t num_attrs = 1;        ///< attributes per event
  double attr_mean = 0.0;      ///< attribute distribution N(mean, stddev)
  double attr_stddev = 1.0;
  double time_step = 1.0;      ///< constant sampling rate (paper §4)
  uint64_t seed = 1;
};

/// Builds a schema with types named "A", "B", ... (or "T<i>" past 26) and
/// attributes named "vol", "a1", "a2", ...
std::shared_ptr<Schema> MakeSyntheticSchema(size_t num_types,
                                            size_t num_attrs);

/// Generates a synthetic stream over the given schema. The schema must
/// have at least `config.num_types` types and exactly
/// `config.num_attrs` attributes.
EventStream GenerateSynthetic(const SyntheticConfig& config,
                              std::shared_ptr<const Schema> schema);

/// Convenience overload that builds the schema internally.
EventStream GenerateSynthetic(const SyntheticConfig& config);

}  // namespace dlacep

#endif  // DLACEP_STREAM_GENERATOR_H_
