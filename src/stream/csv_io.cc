#include "stream/csv_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace dlacep {

Status WriteCsv(const EventStream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "id,type,timestamp";
  for (size_t i = 0; i < stream.schema().num_attrs(); ++i) {
    out << ',' << stream.schema().AttrName(i);
  }
  out << '\n';
  for (const Event& e : stream) {
    out << e.id << ',' << stream.schema().TypeName(e.type) << ','
        << e.timestamp;
    for (size_t i = 0; i < stream.schema().num_attrs(); ++i) {
      out << ',';
      if (!e.is_blank()) out << e.attr(i);
    }
    out << '\n';
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<EventStream> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  const std::vector<std::string> header = Split(line, ',');
  if (header.size() < 3 || header[0] != "id" || header[1] != "type" ||
      header[2] != "timestamp") {
    return Status::InvalidArgument("bad CSV header in " + path);
  }
  auto schema = std::make_shared<Schema>();
  const size_t num_attrs = header.size() - 3;
  for (size_t i = 0; i < num_attrs; ++i) {
    schema->RegisterAttr(header[3 + i]);
  }

  // First pass: register all type names so ids are stable, then append.
  EventStream stream(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu cells, expected %zu in %s", line_no,
                    cells.size(), header.size(), path.c_str()));
    }
    const double ts = std::strtod(cells[2].c_str(), nullptr);
    if (cells[1] == "<blank>") {
      stream.AppendBlank(ts);
      continue;
    }
    const TypeId type = schema->RegisterType(cells[1]);
    std::vector<double> attrs(num_attrs);
    for (size_t i = 0; i < num_attrs; ++i) {
      attrs[i] = std::strtod(cells[3 + i].c_str(), nullptr);
    }
    stream.Append(type, ts, std::move(attrs));
  }
  return stream;
}

}  // namespace dlacep
