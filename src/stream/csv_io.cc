#include "stream/csv_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace dlacep {

namespace {

/// Strict numeric cell parse: the whole (trimmed) cell must be one
/// finite double. CSVs are user input — a malformed or NaN cell is a
/// diagnosable error with a row number, never a silent 0.0 (strtod with
/// an ignored end pointer) or a NaN smuggled into the filter features.
Status ParseCell(const std::string& cell, size_t line_no, const char* what,
                 const std::string& path, double* out) {
  const std::string trimmed(Trim(cell));
  char* end = nullptr;
  const double v = std::strtod(trimmed.c_str(), &end);
  if (trimmed.empty() || end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument(
        StrFormat("row %zu: bad %s '%s' in %s", line_no, what,
                  cell.c_str(), path.c_str()));
  }
  if (!std::isfinite(v)) {
    return Status::InvalidArgument(
        StrFormat("row %zu: non-finite %s '%s' in %s", line_no, what,
                  cell.c_str(), path.c_str()));
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

Status WriteCsv(const EventStream& stream, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "id,type,timestamp";
  for (size_t i = 0; i < stream.schema().num_attrs(); ++i) {
    out << ',' << stream.schema().AttrName(i);
  }
  out << '\n';
  for (const Event& e : stream) {
    out << e.id << ',' << stream.schema().TypeName(e.type) << ','
        << e.timestamp;
    for (size_t i = 0; i < stream.schema().num_attrs(); ++i) {
      out << ',';
      if (!e.is_blank()) out << e.attr(i);
    }
    out << '\n';
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<EventStream> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  const std::vector<std::string> header = Split(line, ',');
  if (header.size() < 3 || header[0] != "id" || header[1] != "type" ||
      header[2] != "timestamp") {
    return Status::InvalidArgument("bad CSV header in " + path);
  }
  auto schema = std::make_shared<Schema>();
  const size_t num_attrs = header.size() - 3;
  for (size_t i = 0; i < num_attrs; ++i) {
    schema->RegisterAttr(header[3 + i]);
  }

  // First pass: register all type names so ids are stable, then append.
  EventStream stream(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != header.size()) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu cells, expected %zu in %s", line_no,
                    cells.size(), header.size(), path.c_str()));
    }
    double ts = 0.0;
    DLACEP_RETURN_IF_ERROR(
        ParseCell(cells[2], line_no, "timestamp", path, &ts));
    if (cells[1] == "<blank>") {
      stream.AppendBlank(ts);
      continue;
    }
    const TypeId type = schema->RegisterType(cells[1]);
    std::vector<double> attrs(num_attrs);
    for (size_t i = 0; i < num_attrs; ++i) {
      DLACEP_RETURN_IF_ERROR(
          ParseCell(cells[3 + i], line_no, "attribute", path, &attrs[i]));
    }
    stream.Append(type, ts, std::move(attrs));
  }
  return stream;
}

}  // namespace dlacep
