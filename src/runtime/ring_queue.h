// Bounded MPSC ring queue — the ingest buffer between stream sources
// and the online assembler (paper §6 positions DLACEP against blind
// emergency shedding; a bounded queue is where that pressure becomes
// visible). Two producer modes:
//
//   * Push()    — blocks while the queue is full (lossless
//                 backpressure; the producer is throttled to the
//                 consumer's pace),
//   * TryPush() — returns false when full (the caller counts the event
//                 as dropped-at-ingest).
//
// Multiple producers may push concurrently; exactly one consumer may
// Pop(). Close() wakes everyone: pending Push/TryPush fail, Pop drains
// the remaining events and then returns false. The queue also tracks
// its high-water mark, the overload controller's primary signal.
//
// Burst variants (PushBurst/TryPushBurst/PopBurst) move many elements
// per lock acquisition and per condition-variable signal, so the
// sharded runtime's router and shard workers pay the mutex atomics and
// futex wakeups once per burst instead of once per element. The
// per-shard work and completion rings are RingQueues used in
// single-producer/single-consumer mode — the router is the only pusher
// of a shard's work ring and the shard worker its only popper (and
// vice versa for the completion ring).

#ifndef DLACEP_RUNTIME_RING_QUEUE_H_
#define DLACEP_RUNTIME_RING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dlacep {

template <typename T>
class RingQueue {
 public:
  explicit RingQueue(size_t capacity) : ring_(capacity) {
    DLACEP_CHECK_GT(capacity, 0u);
  }

  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  /// Blocking push. Returns false iff the queue was closed (the value
  /// is discarded).
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    Enqueue(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == ring_.size()) return false;
      Enqueue(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking burst push: enqueues values[0..count) in order, waiting
  /// for space as needed but taking the lock and signalling the
  /// consumer once per chunk of freed capacity instead of once per
  /// element. Returns the number of values accepted — count unless the
  /// queue was closed mid-burst (the accepted prefix is still
  /// delivered; the rest is discarded).
  size_t PushBurst(T* values, size_t count) {
    size_t pushed = 0;
    while (pushed < count) {
      size_t chunk = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock,
                       [&] { return size_ < ring_.size() || closed_; });
        if (closed_) break;
        while (pushed < count && size_ < ring_.size()) {
          Enqueue(std::move(values[pushed++]));
          ++chunk;
        }
      }
      if (chunk > 0) not_empty_.notify_one();
    }
    return pushed;
  }

  /// Non-blocking burst push: accepts the longest prefix that fits.
  /// Returns the number accepted (0 when full or closed).
  size_t TryPushBurst(T* values, size_t count) {
    size_t pushed = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return 0;
      while (pushed < count && size_ < ring_.size()) {
        Enqueue(std::move(values[pushed++]));
      }
    }
    if (pushed > 0) not_empty_.notify_one();
    return pushed;
  }

  /// Blocking pop. Returns false once the queue is closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;  // closed and drained
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop. Returns false when the queue is currently empty
  /// (closed or not) — the sharded merge uses this to opportunistically
  /// retire completions without ever waiting on a shard.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (size_ == 0) return false;
      *out = std::move(ring_[head_]);
      head_ = (head_ + 1) % ring_.size();
      --size_;
    }
    not_full_.notify_one();
    return true;
  }

  /// Blocking burst pop: waits for at least one element (or close),
  /// then appends up to max_count elements to *out under a single lock
  /// acquisition. Returns the number popped; 0 means closed AND
  /// drained, the same terminal condition as Pop() returning false.
  size_t PopBurst(std::vector<T>* out, size_t max_count) {
    size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
      while (popped < max_count && size_ > 0) {
        out->push_back(std::move(ring_[head_]));
        head_ = (head_ + 1) % ring_.size();
        --size_;
        ++popped;
      }
    }
    // A burst frees many slots at once; every blocked producer may have
    // room now.
    if (popped > 0) not_full_.notify_all();
    return popped;
  }

  /// Pop bounded by a timeout: blocks at most `seconds` for an element.
  /// Returns true with *out on success; on false, *timed_out
  /// distinguishes an expired wait (true — the queue may still produce
  /// later) from closed-and-drained (false — same terminal condition as
  /// Pop returning false). The online assembler uses this while a
  /// partial micro-batch is buffered, so a quiet stream can't hold the
  /// batch past its flush deadline.
  bool PopFor(T* out, double seconds, bool* timed_out) {
    std::unique_lock<std::mutex> lock(mu_);
    *timed_out =
        !not_empty_.wait_for(lock, std::chrono::duration<double>(seconds),
                             [&] { return size_ > 0 || closed_; });
    if (*timed_out) return false;
    if (size_ == 0) return false;  // closed and drained
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Marks the queue closed: producers fail from here on, the consumer
  /// drains what is left. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return ring_.size(); }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Largest depth ever observed (under the queue lock, so exact).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

 private:
  void Enqueue(T value) {  // callers hold mu_ and have checked space
    ring_[(head_ + size_) % ring_.size()] = std::move(value);
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_RING_QUEUE_H_
