// Pull-based stream sources for the online runtime.
//
// A StreamSource yields one event per Next() call, blocking as needed
// to pace itself to a configured arrival rate; the runtime's producer
// thread pulls from it and pushes into the bounded ingest queue. Two
// adapters cover the evaluation setups:
//
//   * ReplaySource     — replays an in-memory EventStream (a generated
//                        stream or one loaded from CSV — the CLI's
//                        `replay` mode composes ReadCsv with this);
//   * StockSimSource   — live stocksim generation via StockSimStepper,
//                        byte-identical to GenerateStockStream with the
//                        same config (the CLI's `serve` mode).
//
// Pacing: events_per_sec > 0 paces arrivals against a wall-clock
// schedule (sleep-until, so short hiccups are caught up rather than
// accumulated); <= 0 means "as fast as the consumer pulls", which under
// a bounded queue is exactly the overload regime.

#ifndef DLACEP_RUNTIME_SOURCE_H_
#define DLACEP_RUNTIME_SOURCE_H_

#include <chrono>
#include <memory>

#include "stream/stocksim.h"
#include "stream/stream.h"

namespace dlacep {

/// Paces a loop to `events_per_sec` iterations per second.
class Pacer {
 public:
  explicit Pacer(double events_per_sec);

  /// Blocks until the next arrival slot. No-op when unpaced.
  void Tick();

 private:
  using Clock = std::chrono::steady_clock;
  double events_per_sec_;
  Clock::time_point start_;
  uint64_t ticks_ = 0;
};

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual std::shared_ptr<const Schema> schema() const = 0;

  /// Produces the next event (its id is ignored — the runtime assigns
  /// arrival ids at ingest). Blocks to honor the source's pacing.
  /// Returns false when the source is exhausted.
  virtual bool Next(Event* out) = 0;
};

/// Replays a borrowed EventStream in order, optionally paced.
class ReplaySource : public StreamSource {
 public:
  explicit ReplaySource(const EventStream* stream,
                        double events_per_sec = 0.0);

  std::shared_ptr<const Schema> schema() const override;
  bool Next(Event* out) override;

 private:
  const EventStream* stream_;  ///< not owned
  size_t next_ = 0;
  Pacer pacer_;
};

/// Live stock-market generation at a configurable arrival rate.
class StockSimSource : public StreamSource {
 public:
  /// Generates config.num_events events, then ends.
  explicit StockSimSource(const StockSimConfig& config,
                          double events_per_sec = 0.0);

  std::shared_ptr<const Schema> schema() const override;
  bool Next(Event* out) override;

 private:
  StockSimStepper stepper_;
  size_t remaining_;
  Pacer pacer_;
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_SOURCE_H_
