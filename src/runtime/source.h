// Pull-based stream sources for the online runtime.
//
// A StreamSource yields one event per Read() call, blocking as needed
// to pace itself to a configured arrival rate; the runtime's producer
// thread pulls from it and pushes into the bounded ingest queue. Two
// adapters cover the evaluation setups:
//
//   * ReplaySource     — replays an in-memory EventStream (a generated
//                        stream or one loaded from CSV — the CLI's
//                        `replay` mode composes ReadCsv with this);
//   * StockSimSource   — live stocksim generation via StockSimStepper,
//                        byte-identical to GenerateStockStream with the
//                        same config (the CLI's `serve` mode).
//
// Error model: Read() returns a Status rather than a bare bool so that a
// flaky source (torn file, transient I/O error) can distinguish "retry
// me" (kUnavailable) from "the stream is over" (kOutOfRange) and "give
// up" (anything else). The runtime's producer retries kUnavailable with
// exponential backoff and degrades — it never crashes the serve loop.
//
// Pacing: events_per_sec > 0 paces arrivals against a wall-clock
// schedule (sleep-until, so short hiccups are caught up rather than
// accumulated); <= 0 means "as fast as the consumer pulls", which under
// a bounded queue is exactly the overload regime.

#ifndef DLACEP_RUNTIME_SOURCE_H_
#define DLACEP_RUNTIME_SOURCE_H_

#include <chrono>
#include <cstddef>
#include <memory>

#include "common/status.h"
#include "stream/stocksim.h"
#include "stream/stream.h"

namespace dlacep {

/// Paces a loop to `events_per_sec` iterations per second.
class Pacer {
 public:
  explicit Pacer(double events_per_sec);

  /// Blocks until the next arrival slot. No-op when unpaced.
  void Tick();

 private:
  using Clock = std::chrono::steady_clock;
  double events_per_sec_;
  Clock::time_point start_;
  uint64_t ticks_ = 0;
};

class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual std::shared_ptr<const Schema> schema() const = 0;

  /// Produces the next event (its id is ignored — the runtime assigns
  /// arrival ids at ingest). Blocks to honor the source's pacing.
  ///
  ///   * Ok            — `*out` holds the next event;
  ///   * kOutOfRange   — the source is exhausted (clean end of stream);
  ///   * kUnavailable  — transient failure; the same Read() may succeed
  ///                     if retried (the runtime retries with backoff);
  ///   * anything else — permanent failure; the caller must stop.
  virtual Status Read(Event* out) = 0;

  /// Convenience wrapper over Read(): true iff an event was produced.
  /// Collapses every error — transient or fatal — into end-of-stream;
  /// callers that care about retry/degrade semantics use Read().
  bool Next(Event* out) { return Read(out).ok(); }

  /// Discards up to `n` events without pacing, returning how many were
  /// actually skipped (fewer only when the source ends first). Used by
  /// checkpoint restore to fast-forward a deterministic source to the
  /// snapshot's watermark. The default pulls events one by one; sources
  /// with random access override it.
  virtual size_t Skip(size_t n);
};

/// Replays a borrowed EventStream in order, optionally paced.
class ReplaySource : public StreamSource {
 public:
  explicit ReplaySource(const EventStream* stream,
                        double events_per_sec = 0.0);

  std::shared_ptr<const Schema> schema() const override;
  Status Read(Event* out) override;
  size_t Skip(size_t n) override;

 private:
  const EventStream* stream_;  ///< not owned
  size_t next_ = 0;
  Pacer pacer_;
};

/// Live stock-market generation at a configurable arrival rate.
class StockSimSource : public StreamSource {
 public:
  /// Generates config.num_events events, then ends.
  explicit StockSimSource(const StockSimConfig& config,
                          double events_per_sec = 0.0);

  std::shared_ptr<const Schema> schema() const override;
  Status Read(Event* out) override;
  size_t Skip(size_t n) override;

 private:
  StockSimStepper stepper_;
  size_t remaining_;
  Pacer pacer_;
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_SOURCE_H_
