// Observability for the online runtime: a fixed-bucket latency
// histogram, the overload transition log, and the RuntimeStats snapshot
// the `serve`/`replay` CLI modes print at exit.
//
// The accounting contract (pinned by tests/runtime_test.cc): every
// event the source offered is either dropped at ingest, relayed to the
// CEP extractor, filtered out, or relayed via a quarantined window —
//   events_relayed + events_filtered + events_dropped_queue
//     + events_quarantined == events_ingested.

#ifndef DLACEP_RUNTIME_STATS_H_
#define DLACEP_RUNTIME_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace dlacep {

/// Fixed-bucket latency histogram: geometric bucket upper bounds
/// doubling from 1µs, so Record() is O(1) with no allocation (safe on
/// the merge hot path) and percentiles are one cumulative scan.
/// Single-writer; readers see a consistent snapshot only after the run
/// finished.
class LatencyHistogram {
 public:
  /// 1µs · 2^26 ≈ 67s — anything slower lands in the last bucket.
  static constexpr size_t kBuckets = 27;

  void Record(double seconds);

  uint64_t count() const { return count_; }
  double max_seconds() const { return max_seconds_; }

  /// Upper bound (seconds) of the bucket a sample of `seconds` lands
  /// in: the first i with seconds <= BucketBound(i), else the overflow
  /// bucket. O(1) via the bit width of the microsecond value; exposed
  /// so tests can pin its boundary behavior against the definition
  /// above.
  static size_t BucketFor(double seconds);

  /// Upper bound (seconds) of bucket i.
  static double BucketBound(size_t i);

  /// Upper bound (seconds) of the bucket containing the nearest-rank
  /// percentile sample for `p` in [0, 100]. Returns 0 when empty. The
  /// returned bound always belongs to a non-empty bucket.
  double Percentile(double p) const;

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double max_seconds_ = 0.0;
};

/// One overload state change, recorded by the controller.
struct OverloadTransition {
  uint64_t at_window = 0;  ///< index of the closed window that tripped it
  int from = 0;
  int to = 0;
  double queue_fraction = 0.0;
  double latency_seconds = 0.0;
};

/// Per-shard accounting in the sharded runtime (num_shards >= 1).
/// Single-writer fields: `windows_routed` and `work_high_water` come
/// from the router, the rest from the shard's worker thread; the
/// snapshot is read only after the shard threads join.
struct ShardStats {
  uint64_t windows_routed = 0;  ///< closed windows forwarded here
  uint64_t windows_marked = 0;  ///< windows the worker finished marking
  uint64_t filter_calls = 0;    ///< solo marks + micro-batch calls
  double mark_seconds = 0.0;    ///< wall time inside the filter
  size_t work_high_water = 0;   ///< deepest the work ring ever got
  bool pinned = false;          ///< core affinity applied successfully
};

/// End-of-run snapshot of the online runtime.
struct RuntimeStats {
  // Event accounting (see the contract above).
  uint64_t events_ingested = 0;       ///< offered by the source
  uint64_t events_dropped_queue = 0;  ///< lost to a full ingest queue
  uint64_t events_appended = 0;       ///< entered the assembler stream
  uint64_t events_relayed = 0;        ///< deduplicated marked events
  uint64_t events_filtered = 0;       ///< appended but never marked
  /// Relayed unfiltered because every window containing them was
  /// quarantined/degraded (disjoint from events_relayed: an event also
  /// healthily marked in an overlapping window counts as relayed).
  uint64_t events_quarantined = 0;

  size_t queue_capacity = 0;
  size_t queue_high_water = 0;

  uint64_t windows_closed = 0;
  uint64_t windows_boosted = 0;  ///< marked under a raised threshold
  uint64_t windows_shed = 0;     ///< marked by the shedding fallback
  uint64_t windows_quarantined = 0;  ///< failed a health check
  uint64_t windows_degraded = 0;     ///< relayed unfiltered while degraded

  uint64_t overload_escalations = 0;
  uint64_t overload_recoveries = 0;
  int overload_level_at_exit = 0;
  std::vector<OverloadTransition> transitions;

  // Health / fault-tolerance counters.
  uint64_t health_violations = 0;   ///< HealthGuard Inspect() failures
  uint64_t health_degrades = 0;     ///< times the runtime entered degraded
  uint64_t health_recoveries = 0;   ///< probed recoveries out of degraded
  uint64_t probes_run = 0;          ///< shadow probes while degraded
  uint64_t probes_passed = 0;
  uint64_t source_read_errors = 0;  ///< transient Read() failures observed
  uint64_t source_retries = 0;      ///< retry attempts (incl. successes)
  bool source_aborted = false;      ///< source gave up mid-stream
  uint64_t checkpoints_written = 0;

  uint64_t drift_flags = 0;  ///< drift monitor firings (see drift.h)

  /// One entry per shard when the sharded runtime ran (empty for the
  /// legacy pool runtime). Sums to the global window counters: every
  /// closed window is routed to exactly one shard.
  std::vector<ShardStats> shards;

  /// Watermark-close → merged-marks latency per window.
  LatencyHistogram window_latency;

  size_t matches = 0;
  /// Engine that ran the extraction: the configured kind's name, or —
  /// under adaptive selection — the engine the cost model had selected
  /// when the stream drained.
  std::string engine_selected;
  /// Adaptive reselections that changed the engine choice (0 for static
  /// engines and for adaptive runs that never switched).
  uint64_t engine_switches = 0;
  /// Partial matches silently truncated by the engine's legacy storage
  /// cap during extraction. Nonzero means the run may have lost recall;
  /// the CLI prints an end-of-run warning (not checkpoint-serialized —
  /// extraction happens after the stream drains).
  uint64_t cep_partial_matches_dropped = 0;
  double extract_seconds = 0.0;
  double elapsed_seconds = 0.0;  ///< whole Run() wall clock

  bool Accounted() const {
    return events_relayed + events_filtered + events_dropped_queue +
               events_quarantined ==
           events_ingested;
  }

  /// Multi-line human-readable report (printed by `serve`/`replay`).
  std::string ToString() const;
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_STATS_H_
