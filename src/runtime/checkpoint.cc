#include "runtime/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"

namespace dlacep {

namespace {

constexpr char kMagic[4] = {'D', 'L', 'C', 'K'};
// v2 appends the adaptive engine-selection block; v1 files (no block)
// still load, restoring has_adaptive == 0.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;

// Bounds applied before any allocation driven by file contents.
constexpr uint64_t kMaxVecLen = 1ull << 32;
constexpr uint64_t kMaxAttrs = 1ull << 16;

void AppendRaw(std::string* buf, const void* data, size_t len) {
  buf->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendScalar(std::string* buf, T v) {
  AppendRaw(buf, &v, sizeof(v));
}

void AppendEvent(std::string* buf, const Event& e) {
  AppendScalar<uint64_t>(buf, e.id);
  AppendScalar<int32_t>(buf, e.type);
  AppendScalar<double>(buf, e.timestamp);
  AppendScalar<uint64_t>(buf, e.attrs.size());
  AppendRaw(buf, e.attrs.data(), e.attrs.size() * sizeof(double));
}

template <typename T>
void AppendFlatVec(std::string* buf, const std::vector<T>& v) {
  AppendScalar<uint64_t>(buf, v.size());
  AppendRaw(buf, v.data(), v.size() * sizeof(T));
}

void AppendIdVec(std::string* buf, const std::vector<uint64_t>& v) {
  AppendFlatVec(buf, v);
}

void AppendEventVec(std::string* buf, const std::vector<Event>& v) {
  AppendScalar<uint64_t>(buf, v.size());
  for (const Event& e : v) AppendEvent(buf, e);
}

class Reader {
 public:
  Reader(const char* data, size_t len) : data_(data), len_(len) {}

  bool Read(void* out, size_t n) {
    if (n > len_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadScalar(T* out) {
    return Read(out, sizeof(T));
  }

  bool ReadEvent(Event* out) {
    uint64_t id = 0;
    int32_t type = 0;
    double ts = 0.0;
    uint64_t num_attrs = 0;
    if (!ReadScalar(&id) || !ReadScalar(&type) || !ReadScalar(&ts) ||
        !ReadScalar(&num_attrs) || num_attrs > kMaxAttrs) {
      return false;
    }
    std::vector<double> attrs(num_attrs);
    if (!Read(attrs.data(), num_attrs * sizeof(double))) return false;
    *out = Event(id, type, ts, std::move(attrs));
    return true;
  }

  template <typename T>
  bool ReadFlatVec(std::vector<T>* out) {
    uint64_t n = 0;
    if (!ReadScalar(&n) || n > kMaxVecLen) return false;
    out->resize(n);
    return Read(out->data(), n * sizeof(T));
  }

  bool ReadIdVec(std::vector<uint64_t>* out) { return ReadFlatVec(out); }

  bool ReadEventVec(std::vector<Event>* out) {
    uint64_t n = 0;
    if (!ReadScalar(&n) || n > kMaxVecLen) return false;
    out->clear();
    out->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Event e;
      if (!ReadEvent(&e)) return false;
      out->push_back(std::move(e));
    }
    return true;
  }

  bool AtEnd() const { return pos_ == len_; }

 private:
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

std::string SerializePayload(const CheckpointState& s) {
  std::string p;
  AppendScalar<uint64_t>(&p, s.mark_size);
  AppendScalar<uint64_t>(&p, s.step_size);
  AppendScalar<uint64_t>(&p, s.appended);
  AppendScalar<uint64_t>(&p, s.next_begin);
  AppendScalar<uint64_t>(&p, s.windows_dispatched);
  AppendScalar<uint64_t>(&p, s.last_end);
  AppendScalar<uint64_t>(&p, s.buffer_offset);
  AppendEventVec(&p, s.buffer);
  AppendIdVec(&p, s.marked_ids);
  AppendEventVec(&p, s.marked_events);
  AppendIdVec(&p, s.seen);
  AppendIdVec(&p, s.quarantined);
  AppendScalar<uint64_t>(&p, s.events_dropped_queue);
  AppendScalar<uint64_t>(&p, s.windows_closed);
  AppendScalar<uint64_t>(&p, s.windows_boosted);
  AppendScalar<uint64_t>(&p, s.windows_shed);
  AppendScalar<uint64_t>(&p, s.windows_quarantined);
  AppendScalar<uint64_t>(&p, s.windows_degraded);
  AppendScalar<uint64_t>(&p, s.health_violations);
  AppendScalar<uint64_t>(&p, s.health_degrades);
  AppendScalar<uint64_t>(&p, s.health_recoveries);
  AppendScalar<uint64_t>(&p, s.probes_run);
  AppendScalar<uint64_t>(&p, s.probes_passed);
  AppendScalar<uint64_t>(&p, s.checkpoints_written);
  AppendScalar<uint64_t>(&p, s.drift_flags);
  AppendScalar<int32_t>(&p, s.controller_level);
  AppendScalar<uint64_t>(&p, s.probe_pass_run);
  AppendScalar<uint64_t>(&p, s.degraded_since_probe);
  // v2: adaptive engine-selection block.
  AppendScalar<uint8_t>(&p, s.has_adaptive);
  AppendScalar<int32_t>(&p, s.adaptive_selected);
  AppendScalar<uint64_t>(&p, s.adaptive_windows_observed);
  AppendScalar<uint64_t>(&p, s.adaptive_switches);
  AppendScalar<uint8_t>(&p, s.adaptive_external_feed);
  AppendFlatVec(&p, s.adaptive_freq_types);
  AppendFlatVec(&p, s.adaptive_freq_counts);
  return p;
}

bool ParsePayload(Reader* r, uint32_t version, CheckpointState* s) {
  return r->ReadScalar(&s->mark_size) && r->ReadScalar(&s->step_size) &&
         r->ReadScalar(&s->appended) && r->ReadScalar(&s->next_begin) &&
         r->ReadScalar(&s->windows_dispatched) &&
         r->ReadScalar(&s->last_end) && r->ReadScalar(&s->buffer_offset) &&
         r->ReadEventVec(&s->buffer) && r->ReadIdVec(&s->marked_ids) &&
         r->ReadEventVec(&s->marked_events) && r->ReadIdVec(&s->seen) &&
         r->ReadIdVec(&s->quarantined) &&
         r->ReadScalar(&s->events_dropped_queue) &&
         r->ReadScalar(&s->windows_closed) &&
         r->ReadScalar(&s->windows_boosted) &&
         r->ReadScalar(&s->windows_shed) &&
         r->ReadScalar(&s->windows_quarantined) &&
         r->ReadScalar(&s->windows_degraded) &&
         r->ReadScalar(&s->health_violations) &&
         r->ReadScalar(&s->health_degrades) &&
         r->ReadScalar(&s->health_recoveries) &&
         r->ReadScalar(&s->probes_run) && r->ReadScalar(&s->probes_passed) &&
         r->ReadScalar(&s->checkpoints_written) &&
         r->ReadScalar(&s->drift_flags) &&
         r->ReadScalar(&s->controller_level) &&
         r->ReadScalar(&s->probe_pass_run) &&
         r->ReadScalar(&s->degraded_since_probe) &&
         (version < 2 ||
          (r->ReadScalar(&s->has_adaptive) &&
           r->ReadScalar(&s->adaptive_selected) &&
           r->ReadScalar(&s->adaptive_windows_observed) &&
           r->ReadScalar(&s->adaptive_switches) &&
           r->ReadScalar(&s->adaptive_external_feed) &&
           r->ReadFlatVec(&s->adaptive_freq_types) &&
           r->ReadFlatVec(&s->adaptive_freq_counts) &&
           s->adaptive_freq_types.size() ==
               s->adaptive_freq_counts.size())) &&
         r->AtEnd();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("open failed for " + tmp + ": " +
                            std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("write failed for " + tmp + ": " +
                              std::strerror(err));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync failed for " + tmp + ": " +
                            std::strerror(err));
  }
  if (::close(fd) != 0) {
    return Status::Internal("close failed for " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("rename failed for " + path + ": " +
                            std::strerror(err));
  }
  // Persist the rename itself: fsync the containing directory.
  //
  // Durability contract: when WriteFileAtomic returns OK the checkpoint
  // is crash-durable — the file's *contents* were fsync'd before the
  // rename, and the directory fsync here makes the rename's directory
  // entry durable too. Without it, a power loss immediately after
  // rename() can leave a directory that still names the old file (or
  // nothing), silently losing an acknowledged checkpoint. A failure at
  // this stage is therefore an error, not best-effort: the caller must
  // not count the checkpoint as written.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return Status::Internal("open failed for checkpoint dir " + dir + ": " +
                            std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    const int err = errno;
    ::close(dfd);
    return Status::Internal("fsync failed for checkpoint dir " + dir +
                            ": " + std::strerror(err));
  }
  if (::close(dfd) != 0) {
    return Status::Internal("close failed for checkpoint dir " + dir);
  }
  return Status::Ok();
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  if (dir.empty() || dir.back() == '/') return dir + "checkpoint.dlck";
  return dir + "/checkpoint.dlck";
}

Status SaveCheckpoint(const CheckpointState& state, const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("checkpoint dir is empty");
  }
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("cannot create checkpoint dir " + dir + ": " +
                            std::strerror(errno));
  }
  const std::string payload = SerializePayload(state);
  const uint32_t crc = Crc32(payload.data(), payload.size());

  std::string bytes;
  bytes.reserve(sizeof(kMagic) + sizeof(kVersion) + payload.size() +
                sizeof(crc));
  AppendRaw(&bytes, kMagic, sizeof(kMagic));
  AppendScalar<uint32_t>(&bytes, kVersion);
  bytes += payload;
  AppendScalar<uint32_t>(&bytes, crc);
  return WriteFileAtomic(CheckpointPath(dir), bytes);
}

StatusOr<CheckpointState> LoadCheckpoint(const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string bytes;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal("read failed for " + path + ": " +
                              std::strerror(err));
    }
    if (n == 0) break;
    bytes.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header = sizeof(kMagic) + sizeof(uint32_t);
  if (bytes.size() < header + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a DLCK checkpoint: " + path);
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version in " +
                                   path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const char* payload = bytes.data() + header;
  const size_t payload_len = bytes.size() - header - sizeof(uint32_t);
  if (Crc32(payload, payload_len) != stored_crc) {
    return Status::InvalidArgument("checksum mismatch in checkpoint: " +
                                   path);
  }
  Reader reader(payload, payload_len);
  CheckpointState state;
  if (!ParsePayload(&reader, version, &state)) {
    return Status::InvalidArgument("corrupt checkpoint payload: " + path);
  }
  return state;
}

}  // namespace dlacep
