#include "runtime/stats.h"

#include <bit>
#include <cmath>

#include "common/string_util.h"

namespace dlacep {

double LatencyHistogram::BucketBound(size_t i) {
  return 1e-6 * static_cast<double>(uint64_t{1} << i);
}

size_t LatencyHistogram::BucketFor(double seconds) {
  if (seconds <= BucketBound(0)) return 0;
  // Past every finite bound (also shields the integer cast below from
  // overflow on absurd inputs): overflow bucket.
  if (seconds > BucketBound(kBuckets - 2)) return kBuckets - 1;
  // The bit width of the truncated microsecond value lands within one
  // bucket of the answer; 1e-6 is not exactly representable, so the
  // bound checks below — the same expressions the historical linear
  // scan evaluated — settle ties. Each loop runs at most once.
  const auto micros = static_cast<uint64_t>(seconds * 1e6);
  size_t bucket = micros == 0
                      ? 0
                      : static_cast<size_t>(std::bit_width(micros)) - 1;
  if (bucket > kBuckets - 1) bucket = kBuckets - 1;
  while (bucket > 0 && seconds <= BucketBound(bucket - 1)) --bucket;
  while (bucket < kBuckets - 1 && seconds > BucketBound(bucket)) ++bucket;
  return bucket;
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  ++buckets_[BucketFor(seconds)];
  ++count_;
  if (seconds > max_seconds_) max_seconds_ = seconds;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // 1-based nearest-rank: the ceiling keeps rank >= 1 for every p, so
  // small p can no longer round down to rank 0 and report bucket 0's
  // bound when bucket 0 is empty.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen >= rank) return BucketBound(i);
  }
  return BucketBound(kBuckets - 1);
}

std::string RuntimeStats::ToString() const {
  std::string out;
  out += StrFormat("events ingested : %llu\n",
                   static_cast<unsigned long long>(events_ingested));
  out += StrFormat("  appended      : %llu\n",
                   static_cast<unsigned long long>(events_appended));
  out += StrFormat("  relayed       : %llu\n",
                   static_cast<unsigned long long>(events_relayed));
  out += StrFormat("  filtered      : %llu\n",
                   static_cast<unsigned long long>(events_filtered));
  out += StrFormat("  dropped(queue): %llu\n",
                   static_cast<unsigned long long>(events_dropped_queue));
  out += StrFormat("  quarantined   : %llu\n",
                   static_cast<unsigned long long>(events_quarantined));
  out += StrFormat("accounted       : %s\n", Accounted() ? "yes" : "NO");
  out += StrFormat("queue high-water: %zu / %zu\n", queue_high_water,
                   queue_capacity);
  out += StrFormat(
      "windows closed  : %llu (boosted %llu, shed %llu)\n",
      static_cast<unsigned long long>(windows_closed),
      static_cast<unsigned long long>(windows_boosted),
      static_cast<unsigned long long>(windows_shed));
  out += StrFormat("window latency  : p50 %.3fms  p99 %.3fms  max %.3fms\n",
                   window_latency.Percentile(50.0) * 1e3,
                   window_latency.Percentile(99.0) * 1e3,
                   window_latency.max_seconds() * 1e3);
  out += StrFormat(
      "overload        : level %d at exit, %llu escalations, "
      "%llu recoveries\n",
      overload_level_at_exit,
      static_cast<unsigned long long>(overload_escalations),
      static_cast<unsigned long long>(overload_recoveries));
  for (const OverloadTransition& t : transitions) {
    out += StrFormat(
        "  window %llu: level %d -> %d (queue %.0f%%, latency %.3fms)\n",
        static_cast<unsigned long long>(t.at_window), t.from, t.to,
        t.queue_fraction * 100.0, t.latency_seconds * 1e3);
  }
  out += StrFormat(
      "health          : %llu violations, %llu degrades, %llu recoveries, "
      "probes %llu/%llu\n",
      static_cast<unsigned long long>(health_violations),
      static_cast<unsigned long long>(health_degrades),
      static_cast<unsigned long long>(health_recoveries),
      static_cast<unsigned long long>(probes_passed),
      static_cast<unsigned long long>(probes_run));
  out += StrFormat(
      "windows flagged : quarantined %llu, degraded %llu\n",
      static_cast<unsigned long long>(windows_quarantined),
      static_cast<unsigned long long>(windows_degraded));
  if (source_read_errors > 0 || source_aborted) {
    out += StrFormat("source          : %llu read errors, %llu retries%s\n",
                     static_cast<unsigned long long>(source_read_errors),
                     static_cast<unsigned long long>(source_retries),
                     source_aborted ? ", ABORTED" : "");
  }
  if (!shards.empty()) {
    size_t pinned = 0;
    for (const ShardStats& s : shards) pinned += s.pinned ? 1 : 0;
    out += StrFormat("shards          : %zu (pinned %zu/%zu)\n",
                     shards.size(), pinned, shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
      const ShardStats& s = shards[i];
      out += StrFormat(
          "  shard %zu: routed %llu, marked %llu, filter calls %llu, "
          "mark %.3fs, ring high-water %zu\n",
          i, static_cast<unsigned long long>(s.windows_routed),
          static_cast<unsigned long long>(s.windows_marked),
          static_cast<unsigned long long>(s.filter_calls), s.mark_seconds,
          s.work_high_water);
    }
  }
  if (checkpoints_written > 0) {
    out += StrFormat("checkpoints     : %llu written\n",
                     static_cast<unsigned long long>(checkpoints_written));
  }
  out += StrFormat("drift flags     : %llu\n",
                   static_cast<unsigned long long>(drift_flags));
  if (!engine_selected.empty()) {
    out += StrFormat("engine          : %s (%llu switches)\n",
                     engine_selected.c_str(),
                     static_cast<unsigned long long>(engine_switches));
  }
  out += StrFormat("matches         : %zu\n", matches);
  out += StrFormat("elapsed         : %.3fs (extract %.3fs)\n",
                   elapsed_seconds, extract_seconds);
  return out;
}

}  // namespace dlacep
