#include "runtime/overload.h"

#include "common/status.h"
#include "obs/stages.h"

namespace dlacep {

namespace {

// Every level change — pressure ladder, health degrade, probed exit —
// funnels through here so the labelled transition counters and the
// level gauge can never drift from the transitions_ log.
void RecordTransition(int from, int to) {
  obs::OverloadTransitions(from, to)->Increment();
  obs::OverloadLevel()->Set(static_cast<double>(to));
}

}  // namespace

OverloadController::OverloadController(const OverloadConfig& config)
    : config_(config) {
  DLACEP_CHECK_GT(config_.dwell_windows, 0u);
  DLACEP_CHECK_GE(config_.high_watermark, config_.low_watermark);
}

int OverloadController::Observe(double queue_fraction,
                                double latency_seconds) {
  ++observations_;
  // Degraded mode is health-driven: pressure signals neither escalate
  // into nor relieve out of it.
  if (degraded()) return level_;
  if (!config_.enabled) return level_;

  const bool latency_signal = config_.latency_high_seconds > 0.0;
  const bool pressure =
      queue_fraction >= config_.high_watermark ||
      (latency_signal && latency_seconds >= config_.latency_high_seconds);
  // Relief requires BOTH signals healthy; the latency bar for recovery
  // is half the escalation bar (the other hysteresis band).
  const bool relief =
      queue_fraction <= config_.low_watermark &&
      (!latency_signal ||
       latency_seconds <= 0.5 * config_.latency_high_seconds);

  pressure_run_ = pressure ? pressure_run_ + 1 : 0;
  relief_run_ = relief ? relief_run_ + 1 : 0;

  int next = level_;
  if (pressure_run_ >= config_.dwell_windows && level_ < kMaxLevel) {
    next = level_ + 1;
    ++escalations_;
  } else if (relief_run_ >= config_.dwell_windows && level_ > 0) {
    next = level_ - 1;
    ++recoveries_;
  }
  if (next != level_) {
    transitions_.push_back(OverloadTransition{
        observations_ - 1, level_, next, queue_fraction, latency_seconds});
    RecordTransition(level_, next);
    level_ = next;
    // A transition consumes the run that fired it, so the next level
    // change needs another full dwell period.
    pressure_run_ = 0;
    relief_run_ = 0;
  }
  return level_;
}

void OverloadController::ForceDegrade(double queue_fraction,
                                      double latency_seconds) {
  if (degraded()) return;
  transitions_.push_back(OverloadTransition{observations_, level_,
                                            kDegradedLevel, queue_fraction,
                                            latency_seconds});
  RecordTransition(level_, kDegradedLevel);
  level_ = kDegradedLevel;
  ++degrades_;
  pressure_run_ = 0;
  relief_run_ = 0;
}

void OverloadController::RestoreLevel(int level) {
  DLACEP_CHECK_GE(level, 0);
  DLACEP_CHECK_LE(level, kDegradedLevel);
  level_ = level;
  pressure_run_ = 0;
  relief_run_ = 0;
}

void OverloadController::ExitDegraded() {
  if (!degraded()) return;
  transitions_.push_back(
      OverloadTransition{observations_, level_, 0, 0.0, 0.0});
  RecordTransition(level_, 0);
  level_ = 0;
  ++degrade_recoveries_;
  pressure_run_ = 0;
  relief_run_ = 0;
}

}  // namespace dlacep
