// Deterministic fault-injection harness for the online runtime.
//
// Faults a production DLACEP service actually meets — blown-up
// activations, corrupt model files, wedged workers, flaky and corrupt
// sources — are injected here on purpose, seeded and reproducible, so
// tests and CI can assert the runtime's contract under each of them:
// never crash, keep the accounting identity, degrade to exact CEP.
//
// A FaultPlan is parsed from the CLI's `--inject` spec: a
// comma-separated list of fault tokens, each optionally parameterized
// with `:`-separated arguments —
//
//   nan_burst[:BEGIN[:COUNT]]   poison inference scratch buffers with
//                               NaN for forward passes [BEGIN,
//                               BEGIN+COUNT) (default 4:4)
//   model_corrupt               scribble NaN into the loaded model's
//                               parameters before the run (the CLI
//                               applies it; see CorruptParams)
//   corrupt_source[:PROB]       with probability PROB (default 0.05),
//                               replace an event's attributes and
//                               timestamp with NaN at the source
//   wedge[:WINDOW[:SECONDS]]    delay the worker marking window
//                               WINDOW by SECONDS (default 8:0.2)
//   source_fail[:AT[:COUNT]]    the source's AT-th read fails; COUNT
//                               failures are transient (kUnavailable,
//                               then the event is delivered), COUNT=0
//                               means the failure is permanent
//                               (default 256:3)
//   pathological_query[:AT[:W]] multi-query serving only: when worker
//                               window AT closes, register a
//                               combinatorial-blowup pattern (a SEQ of
//                               four hottest-type positions WITHIN W
//                               EVENTS) mid-run via the pathological
//                               hook (default 6:40). Exercises the
//                               per-query budget/breaker isolation.
//   churn_storm[:CYCLES]        multi-query serving only: the CLI's
//                               churn thread drops its pacing and
//                               hammers register/unregister for CYCLES
//                               cycles (default 64)
//
// The NaN burst rides the process-wide hook of
// SetInferenceFaultHook(); everything else is window- or event-indexed
// and therefore deterministic regardless of thread count.

#ifndef DLACEP_RUNTIME_FAULT_INJECTION_H_
#define DLACEP_RUNTIME_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "runtime/source.h"

namespace dlacep {

class TrainableFilter;

struct FaultPlan {
  // nan_burst
  bool nan_burst = false;
  uint64_t nan_begin_pass = 4;   ///< first poisoned forward pass
  uint64_t nan_pass_count = 4;   ///< number of poisoned passes

  // model_corrupt (applied by the caller via CorruptParams)
  bool model_corrupt = false;

  // corrupt_source
  double corrupt_probability = 0.0;  ///< 0 disables

  // wedge
  bool wedge = false;
  uint64_t wedge_window = 8;     ///< window sequence number to delay
  double wedge_seconds = 0.2;

  // source_fail
  bool source_fail = false;
  uint64_t fail_at = 256;        ///< 0-based read index that fails
  uint64_t fail_count = 3;       ///< transient failures; 0 = permanent

  // pathological_query (serve-layer; the CLI installs the hook that
  // registers the blowup pattern)
  bool pathological_query = false;
  uint64_t pathological_at = 6;       ///< worker window seq that triggers
  uint64_t pathological_window = 40;  ///< blowup SEQ count window

  // churn_storm (serve-layer; drives the CLI's churn thread)
  bool churn_storm = false;
  uint64_t churn_cycles = 64;    ///< unpaced register/unregister cycles

  uint64_t seed = 0xFA017ULL;    ///< rng seed for corrupt_source

  bool any() const {
    return nan_burst || model_corrupt || corrupt_probability > 0.0 ||
           wedge || source_fail || pathological_query || churn_storm;
  }
};

/// Parses a `--inject` spec (see header comment). Empty spec = no faults.
StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec);

/// Owns the live counters behind one run's injected faults. Create it,
/// wrap the source, install the hook, run, then let it destruct (the
/// destructor uninstalls the hook).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Installs the process-wide NaN hook when the plan has a nan_burst
  /// (no-op otherwise). At most one injector may install at a time.
  void InstallNanHook();

  /// Called by the runtime's worker for each window it marks; sleeps
  /// when this window is the wedged one (first marking only — a
  /// re-marked probe of the same sequence is not re-delayed), and fires
  /// the pathological hook once when the trigger window is reached.
  void OnWorkerWindow(uint64_t window_seq);

  /// Callback fired (once, from a worker thread) when window
  /// `pathological_at` is marked — the CLI uses it to register the
  /// blowup pattern mid-run. No-op unless the plan has
  /// pathological_query. Must be set before the run starts.
  void SetPathologicalHook(std::function<void()> hook);

  /// Wraps `inner` with the plan's source faults (corrupt_source,
  /// source_fail). Returns `inner` untouched when neither is active.
  /// The injector must outlive the returned source.
  std::unique_ptr<StreamSource> WrapSource(
      std::unique_ptr<StreamSource> inner);

 private:
  static bool NanHookTrampoline(void* self);

  FaultPlan plan_;
  std::atomic<uint64_t> forward_passes_{0};
  std::atomic<bool> wedge_fired_{false};
  std::atomic<bool> pathological_fired_{false};
  std::function<void()> pathological_hook_;
  bool hook_installed_ = false;
};

/// Scribbles NaN into the filter's parameters (and refreezes), the
/// in-memory equivalent of loading a corrupt model that slipped past
/// checksumming. Used by the CLI's `model_corrupt` injection.
void CorruptParams(TrainableFilter* filter);

/// Truncates the file at `path` to `keep_bytes` bytes.
Status TruncateFile(const std::string& path, uint64_t keep_bytes);

/// Flips bit `bit` (0–7) of the byte at `offset` in the file at `path`.
Status BitFlipFile(const std::string& path, uint64_t offset, int bit);

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_FAULT_INJECTION_H_
