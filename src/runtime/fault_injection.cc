#include "runtime/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "dlacep/filter.h"
#include "nn/infer.h"
#include "nn/tape.h"

namespace dlacep {

namespace {

// Parses "name", "name:a", "name:a:b" into name + numeric args.
struct FaultToken {
  std::string name;
  std::vector<double> args;
};

StatusOr<FaultToken> ParseToken(const std::string& raw) {
  FaultToken token;
  const std::vector<std::string> parts = Split(raw, ':');
  token.name = std::string(Trim(parts[0]));
  if (token.name.empty()) {
    return Status::InvalidArgument("empty fault token in --inject spec");
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string arg(Trim(parts[i]));
    char* end = nullptr;
    const double v = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end != arg.c_str() + arg.size()) {
      return Status::InvalidArgument("bad fault argument '" + arg +
                                     "' in token '" + raw + "'");
    }
    token.args.push_back(v);
  }
  return token;
}

double ArgOr(const FaultToken& t, size_t i, double fallback) {
  return i < t.args.size() ? t.args[i] : fallback;
}

/// Source wrapper applying source_fail and corrupt_source.
class FaultInjectingSource : public StreamSource {
 public:
  FaultInjectingSource(const FaultPlan& plan,
                       std::unique_ptr<StreamSource> inner)
      : plan_(plan), inner_(std::move(inner)), rng_(plan.seed) {}

  std::shared_ptr<const Schema> schema() const override {
    return inner_->schema();
  }

  Status Read(Event* out) override {
    if (plan_.source_fail && index_ == plan_.fail_at) {
      if (plan_.fail_count == 0) {
        return Status::Internal("injected permanent source failure");
      }
      if (failures_ < plan_.fail_count) {
        ++failures_;
        return Status::Unavailable("injected transient source failure");
      }
    }
    DLACEP_RETURN_IF_ERROR(inner_->Read(out));
    if (plan_.corrupt_probability > 0.0 &&
        rng_.Bernoulli(plan_.corrupt_probability)) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      out->timestamp = nan;
      for (double& a : out->attrs) a = nan;
    }
    ++index_;
    return Status::Ok();
  }

  size_t Skip(size_t n) override {
    // Restore fast-forwards through already-processed events; injected
    // faults there already happened in the pre-kill run, so the skip
    // advances the fault cursor without re-firing reads. The rng is
    // still consumed per event to keep corrupt_source deterministic
    // across a restore.
    const size_t skipped = inner_->Skip(n);
    for (size_t i = 0; i < skipped; ++i) {
      if (plan_.corrupt_probability > 0.0) {
        rng_.Bernoulli(plan_.corrupt_probability);
      }
    }
    index_ += skipped;
    return skipped;
  }

 private:
  FaultPlan plan_;
  std::unique_ptr<StreamSource> inner_;
  Rng rng_;
  uint64_t index_ = 0;     ///< successful reads so far
  uint64_t failures_ = 0;  ///< transient failures already served
};

}  // namespace

StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  if (Trim(spec).empty()) return plan;
  for (const std::string& raw : Split(spec, ',')) {
    if (Trim(raw).empty()) continue;
    StatusOr<FaultToken> parsed = ParseToken(std::string(Trim(raw)));
    if (!parsed.ok()) return parsed.status();
    const FaultToken& t = *parsed;
    if (t.name == "nan_burst") {
      plan.nan_burst = true;
      plan.nan_begin_pass = static_cast<uint64_t>(ArgOr(t, 0, 4));
      plan.nan_pass_count = static_cast<uint64_t>(ArgOr(t, 1, 4));
    } else if (t.name == "model_corrupt") {
      plan.model_corrupt = true;
    } else if (t.name == "corrupt_source") {
      plan.corrupt_probability = ArgOr(t, 0, 0.05);
      if (plan.corrupt_probability < 0.0 || plan.corrupt_probability > 1.0) {
        return Status::InvalidArgument(
            "corrupt_source probability out of [0,1]");
      }
    } else if (t.name == "wedge") {
      plan.wedge = true;
      plan.wedge_window = static_cast<uint64_t>(ArgOr(t, 0, 8));
      plan.wedge_seconds = ArgOr(t, 1, 0.2);
      if (plan.wedge_seconds < 0.0) {
        return Status::InvalidArgument("wedge delay must be >= 0");
      }
    } else if (t.name == "source_fail") {
      plan.source_fail = true;
      plan.fail_at = static_cast<uint64_t>(ArgOr(t, 0, 256));
      plan.fail_count = static_cast<uint64_t>(ArgOr(t, 1, 3));
    } else if (t.name == "pathological_query") {
      plan.pathological_query = true;
      plan.pathological_at = static_cast<uint64_t>(ArgOr(t, 0, 6));
      plan.pathological_window = static_cast<uint64_t>(ArgOr(t, 1, 40));
      if (plan.pathological_window < 2) {
        return Status::InvalidArgument(
            "pathological_query window must be >= 2");
      }
    } else if (t.name == "churn_storm") {
      plan.churn_storm = true;
      plan.churn_cycles = static_cast<uint64_t>(ArgOr(t, 0, 64));
    } else {
      return Status::InvalidArgument("unknown fault '" + t.name +
                                     "' in --inject spec");
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {}

FaultInjector::~FaultInjector() {
  if (hook_installed_) SetInferenceFaultHook(nullptr, nullptr);
}

bool FaultInjector::NanHookTrampoline(void* self) {
  auto* injector = static_cast<FaultInjector*>(self);
  const uint64_t pass =
      injector->forward_passes_.fetch_add(1, std::memory_order_relaxed);
  return pass >= injector->plan_.nan_begin_pass &&
         pass < injector->plan_.nan_begin_pass +
                    injector->plan_.nan_pass_count;
}

void FaultInjector::InstallNanHook() {
  if (!plan_.nan_burst || hook_installed_) return;
  SetInferenceFaultHook(&FaultInjector::NanHookTrampoline, this);
  hook_installed_ = true;
}

void FaultInjector::SetPathologicalHook(std::function<void()> hook) {
  pathological_hook_ = std::move(hook);
}

void FaultInjector::OnWorkerWindow(uint64_t window_seq) {
  // `>=` rather than `==`: a sharded run can mark windows out of order,
  // and the trigger must not be lost if its exact sequence number lands
  // on another shard first.
  if (plan_.pathological_query && pathological_hook_ &&
      window_seq >= plan_.pathological_at &&
      !pathological_fired_.exchange(true, std::memory_order_relaxed)) {
    pathological_hook_();
  }
  if (!plan_.wedge || window_seq != plan_.wedge_window) return;
  if (wedge_fired_.exchange(true, std::memory_order_relaxed)) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(plan_.wedge_seconds));
}

std::unique_ptr<StreamSource> FaultInjector::WrapSource(
    std::unique_ptr<StreamSource> inner) {
  if (!plan_.source_fail && plan_.corrupt_probability <= 0.0) return inner;
  return std::make_unique<FaultInjectingSource>(plan_, std::move(inner));
}

void CorruptParams(TrainableFilter* filter) {
  DLACEP_CHECK(filter != nullptr);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (Parameter* p : filter->Params()) {
    double* values = p->value.data();
    for (size_t i = 0; i < p->value.size(); ++i) values[i] = nan;
  }
  filter->OnParamsChanged();
}

Status TruncateFile(const std::string& path, uint64_t keep_bytes) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return Status::NotFound("cannot open " + path);
  std::string bytes;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(in);
  if (keep_bytes < bytes.size()) bytes.resize(keep_bytes);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return Status::Internal("cannot rewrite " + path);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), out);
  std::fclose(out);
  if (written != bytes.size()) {
    return Status::Internal("short write truncating " + path);
  }
  return Status::Ok();
}

Status BitFlipFile(const std::string& path, uint64_t offset, int bit) {
  if (bit < 0 || bit > 7) {
    return Status::InvalidArgument("bit index out of [0,7]");
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::InvalidArgument("offset past end of " + path);
  }
  int c = std::fgetc(f);
  if (c == EOF) {
    std::fclose(f);
    return Status::InvalidArgument("offset past end of " + path);
  }
  c ^= 1 << bit;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fputc(c, f) == EOF) {
    std::fclose(f);
    return Status::Internal("rewrite failed for " + path);
  }
  std::fclose(f);
  return Status::Ok();
}

}  // namespace dlacep
