// Crash-consistent checkpoint/restore for the online runtime.
//
// A checkpoint is a quiescent snapshot of OnlineDlacep's assembler
// state, taken on the assembler thread after all in-flight windows have
// merged: the watermark/arrival-id counter, the un-windowed buffer
// tail, the dedup relay sets, the accumulated marked ids/events, the
// stats counters, and the controller/health state. Restoring one and
// replaying the same deterministic source from the snapshot's watermark
// (StreamSource::Skip) yields marks and matches byte-identical to an
// uninterrupted run.
//
// On-disk format: magic "DLCK" + version + payload + CRC32 of the
// payload. Writes are atomic — serialize to `<path>.tmp`, fsync, then
// rename over the final path (and fsync the directory), so a crash
// mid-write can never leave a torn checkpoint; a torn or bit-flipped
// file fails the CRC at load and restore refuses it.
//
// Restore is only supported for lossless ingest (drop_when_full =
// false): with drops enabled the arrival-id counter no longer equals
// the source position, so Skip() could not find the right suffix.

#ifndef DLACEP_RUNTIME_CHECKPOINT_H_
#define DLACEP_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace dlacep {

struct CheckpointConfig {
  /// Directory for checkpoint files; empty disables checkpointing.
  std::string dir;

  /// Write a checkpoint each time this many events have been appended
  /// since the last one (0 = only the final checkpoint at end of run).
  uint64_t every_events = 0;

  /// Start from `dir`'s checkpoint instead of the beginning.
  bool restore = false;
};

/// Serializable snapshot of a quiescent OnlineDlacep run.
struct CheckpointState {
  // Window-geometry echo: restore refuses a checkpoint taken under a
  // different assembler configuration.
  uint64_t mark_size = 0;
  uint64_t step_size = 0;

  // Assembler progress.
  uint64_t appended = 0;             ///< watermark == arrival-id counter
  uint64_t next_begin = 0;
  uint64_t windows_dispatched = 0;
  uint64_t last_end = 0;
  uint64_t buffer_offset = 0;
  std::vector<Event> buffer;         ///< events [buffer_offset, appended)

  // Relay state.
  std::vector<uint64_t> marked_ids;  ///< arrival order preserved
  std::vector<Event> marked_events;
  std::vector<uint64_t> seen;        ///< healthily marked ids
  std::vector<uint64_t> quarantined; ///< ids relayed via quarantine only

  // Stats counters that survive a restart.
  uint64_t events_dropped_queue = 0;
  uint64_t windows_closed = 0;
  uint64_t windows_boosted = 0;
  uint64_t windows_shed = 0;
  uint64_t windows_quarantined = 0;
  uint64_t windows_degraded = 0;
  uint64_t health_violations = 0;
  uint64_t health_degrades = 0;
  uint64_t health_recoveries = 0;
  uint64_t probes_run = 0;
  uint64_t probes_passed = 0;
  uint64_t checkpoints_written = 0;
  uint64_t drift_flags = 0;

  // Controller / health-guard state machine.
  int32_t controller_level = 0;
  uint64_t probe_pass_run = 0;
  uint64_t degraded_since_probe = 0;  ///< probe-period phase

  // Adaptive engine-selection state (format version >= 2; absent from
  // v1 files, which still load with has_adaptive == 0). Selection is a
  // pure function of the observed windows, so persisting the current
  // choice, the observation counter, and the decayed frequency counts
  // makes a resumed adaptive run byte-identical to an uninterrupted
  // one — including where it would have switched engines next.
  uint8_t has_adaptive = 0;
  int32_t adaptive_selected = 0;  ///< EngineKind at snapshot time
  uint64_t adaptive_windows_observed = 0;
  uint64_t adaptive_switches = 0;
  uint8_t adaptive_external_feed = 0;
  std::vector<int32_t> adaptive_freq_types;   ///< ascending, unique
  std::vector<double> adaptive_freq_counts;   ///< parallel to types
};

/// Final path of the checkpoint file inside `dir`.
std::string CheckpointPath(const std::string& dir);

/// Atomically writes `state` into `dir` (write temp + fsync + rename).
Status SaveCheckpoint(const CheckpointState& state, const std::string& dir);

/// Loads and CRC-validates the checkpoint in `dir`.
StatusOr<CheckpointState> LoadCheckpoint(const std::string& dir);

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_CHECKPOINT_H_
