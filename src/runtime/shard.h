// Symbol → shard routing for the sharded online runtime.
//
// The router (the assembler thread in sharded mode) owns the global
// window close and forwards every closed window, through this ring, to
// the shard that owns the window's head symbol. Consistent hashing —
// vnodes on a 64-bit ring — gives two properties plain modulo hashing
// lacks:
//
//   * a Zipf-tail symbol distribution spreads over shards roughly in
//     proportion to the vnode arcs, instead of aliasing hot symbols
//     onto one residue class, and
//   * changing the shard count remaps only the keys whose successor
//     vnode changed (≈ 1/N of them), so a future elastic resize moves
//     the minimum amount of per-symbol state.
//
// Routing never affects output: marks and matches are byte-identical
// at every shard count (the merge is ordered by dispatch sequence, see
// online.h). What symbol affinity buys is locality — a symbol's window
// sequence always lands on the same worker, keeping its scratch arena
// and any future per-symbol state shard-local.

#ifndef DLACEP_RUNTIME_SHARD_H_
#define DLACEP_RUNTIME_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/event.h"
#include "stream/stream.h"

namespace dlacep {

/// Deterministic consistent-hash ring over shard ids. The mapping is a
/// pure function of (num_shards, vnodes_per_shard, symbol) — identical
/// across runs, platforms, and processes.
class ConsistentHashRing {
 public:
  static constexpr size_t kDefaultVnodesPerShard = 64;

  explicit ConsistentHashRing(size_t num_shards,
                              size_t vnodes_per_shard = kDefaultVnodesPerShard);

  /// Owner shard of `symbol`, in [0, num_shards()).
  size_t ShardFor(TypeId symbol) const;

  size_t num_shards() const { return num_shards_; }

 private:
  struct Point {
    uint64_t hash = 0;
    uint32_t shard = 0;
  };
  std::vector<Point> ring_;  ///< sorted by hash
  size_t num_shards_;
};

/// Routing key of a closed window: the type of its first non-blank
/// event (the head symbol), or kBlankType for an all-blank window. The
/// key is a pure function of window content, so every shard count
/// routes the same window by the same symbol.
TypeId WindowRoutingSymbol(const EventStream& window);

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_SHARD_H_
