#include "runtime/health.h"

#include "dlacep/filter.h"

namespace dlacep {

const char* HealthViolationName(HealthViolation v) {
  switch (v) {
    case HealthViolation::kNone: return "none";
    case HealthViolation::kInvalidMarks: return "invalid-marks";
    case HealthViolation::kDeadline: return "deadline";
    case HealthViolation::kAnomalyStreak: return "anomaly-streak";
  }
  return "unknown";
}

HealthGuard::HealthGuard(const HealthConfig& config) : config_(config) {}

HealthViolation HealthGuard::Check(const std::vector<int>& marks,
                                   size_t window_size,
                                   double latency_seconds) const {
  if (marks.size() != window_size) return HealthViolation::kInvalidMarks;
  for (int m : marks) {
    if (m == kInvalidMark) return HealthViolation::kInvalidMarks;
    if (m != 0 && m != 1) return HealthViolation::kInvalidMarks;
  }
  if (config_.mark_deadline_seconds > 0.0 &&
      latency_seconds > config_.mark_deadline_seconds) {
    return HealthViolation::kDeadline;
  }
  return HealthViolation::kNone;
}

HealthViolation HealthGuard::Inspect(const std::vector<int>& marks,
                                     size_t window_size,
                                     double latency_seconds) {
  if (!config_.enabled) return HealthViolation::kNone;
  HealthViolation v = Check(marks, window_size, latency_seconds);
  if (v == HealthViolation::kNone && config_.anomaly_streak > 0 &&
      window_size > 0) {
    size_t relayed = 0;
    for (int m : marks) relayed += m != 0 ? 1 : 0;
    const bool uniform = relayed == 0 || relayed == window_size;
    uniform_run_ = uniform ? uniform_run_ + 1 : 0;
    if (uniform_run_ >= config_.anomaly_streak) {
      v = HealthViolation::kAnomalyStreak;
      uniform_run_ = 0;
    }
  }
  return v;
}

bool HealthGuard::ProbeHealthy(const std::vector<int>& marks,
                               size_t window_size, double latency_seconds,
                               bool* recovered) {
  *recovered = false;
  // The anomaly streak is deliberately not consulted for probes: while
  // degraded only every probe_period-th window is shadow-marked, so
  // consecutive-window streak logic has no meaning here.
  if (Check(marks, window_size, latency_seconds) != HealthViolation::kNone) {
    probe_pass_run_ = 0;
    return false;
  }
  ++probe_pass_run_;
  if (probe_pass_run_ >= config_.probe_passes) {
    probe_pass_run_ = 0;
    *recovered = true;
  }
  return true;
}

void HealthGuard::ResetStreaks() {
  uniform_run_ = 0;
  probe_pass_run_ = 0;
}

}  // namespace dlacep
