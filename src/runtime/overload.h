// Backpressure-aware overload control (paper §6).
//
// The paper contrasts DLACEP's learned filtration with emergency load
// shedding that drops events blindly; this controller makes the two
// complementary instead: the learned filter runs in steady state, and
// under sustained pressure the runtime degrades *gracefully* —
//
//   level 0  normal      primary filter, configured threshold
//   level 1  boosted     primary filter with a raised decision
//                        threshold (borderline entities shed first)
//   level 2  shedding    the cheap shedding fallback (type- or
//                        random-shedding, see shedding_filter.h)
//   level 3  degraded    the filter is distrusted entirely: every event
//                        relays unfiltered to the exact CEP engine
//                        (recall = 1.0, throughput pays full price)
//
// Levels 0–2 are pressure-driven. Transitions between them use
// hysteresis: the pressure/relief signal must persist for
// `dwell_windows` consecutive closed windows before the level moves,
// and escalation/recovery move one level at a time, so a noisy queue
// depth cannot thrash the policy. Level 3 is *health*-driven and sits
// outside the hysteresis ladder: only HealthGuard violations force it
// (ForceDegrade) and only probed recovery leaves it (ExitDegraded) —
// queue pressure can never escalate into, nor relieve out of,
// degraded mode. Observations come from the assembler thread only —
// the controller is deliberately single-threaded and lock-free.

#ifndef DLACEP_RUNTIME_OVERLOAD_H_
#define DLACEP_RUNTIME_OVERLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/stats.h"

namespace dlacep {

/// Which shedding baseline serves as the level-2 fallback.
enum class SheddingPolicy { kType, kRandom };

struct OverloadConfig {
  /// false pins the runtime at level 0 (lossless backpressure only) —
  /// used by the byte-equality tests and by callers that prefer
  /// blocking producers over degraded marks.
  bool enabled = true;

  /// Queue-depth fractions (of capacity) that count as pressure /
  /// relief. Distinct watermarks are the hysteresis band.
  double high_watermark = 0.8;
  double low_watermark = 0.25;

  /// End-to-end window latency that counts as pressure regardless of
  /// queue depth. 0 disables the latency signal.
  double latency_high_seconds = 0.0;

  /// Merge-latency observations discarded before the EWMA the latency
  /// signal reads is seeded. The first window of a run is routinely an
  /// outlier (cold caches, first-touch allocations in every scratch
  /// arena) and the EWMA seeds from its first observation — without a
  /// warm-up discard a single slow warm-up window can carry the EWMA
  /// over latency_high_seconds for several windows and fire a spurious
  /// escalation (see tests/runtime_test.cc warm-up regressions).
  size_t latency_warmup_windows = 1;

  /// Consecutive closed windows the signal must persist before a
  /// transition fires.
  size_t dwell_windows = 3;

  /// Level 1: added to the network filter's decision threshold.
  double threshold_boost = 0.15;

  /// Level 2 fallback.
  SheddingPolicy shedding = SheddingPolicy::kType;
  double random_keep_probability = 0.25;
  uint64_t random_seed = 0x5eedULL;
};

class OverloadController {
 public:
  /// Highest pressure-driven level (shedding). Pressure escalation never
  /// exceeds this.
  static constexpr int kMaxLevel = 2;
  /// Health-forced level: relay everything unfiltered. Reachable only
  /// via ForceDegrade(), left only via ExitDegraded().
  static constexpr int kDegradedLevel = 3;

  explicit OverloadController(const OverloadConfig& config);

  /// One observation per closed window; returns the (possibly updated)
  /// level under which that window should be marked. While degraded,
  /// returns kDegradedLevel unconditionally (pressure bookkeeping is
  /// suspended — the hysteresis runs restart from scratch on recovery).
  int Observe(double queue_fraction, double latency_seconds);

  /// Flips into degraded mode (HealthGuard violation). Idempotent.
  void ForceDegrade(double queue_fraction, double latency_seconds);

  /// Leaves degraded mode back to level 0 (probed recovery succeeded).
  /// No-op unless degraded.
  void ExitDegraded();

  /// Checkpoint restore only: re-enters a snapshotted level without
  /// logging a transition. Hysteresis runs restart from scratch.
  void RestoreLevel(int level);

  bool degraded() const { return level_ == kDegradedLevel; }

  int level() const { return level_; }
  uint64_t escalations() const { return escalations_; }
  uint64_t recoveries() const { return recoveries_; }
  uint64_t degrades() const { return degrades_; }
  uint64_t degrade_recoveries() const { return degrade_recoveries_; }
  const std::vector<OverloadTransition>& transitions() const {
    return transitions_;
  }

 private:
  OverloadConfig config_;
  int level_ = 0;
  uint64_t observations_ = 0;
  size_t pressure_run_ = 0;
  size_t relief_run_ = 0;
  uint64_t escalations_ = 0;
  uint64_t recoveries_ = 0;
  uint64_t degrades_ = 0;
  uint64_t degrade_recoveries_ = 0;
  std::vector<OverloadTransition> transitions_;
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_OVERLOAD_H_
