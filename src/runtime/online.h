// The push-based online runtime: turns the batch DlacepPipeline into a
// streaming service.
//
//   source ──(producer thread)──▶ bounded ingest queue
//          ──(assembler)──▶ watermark-closed windows
//          ──(worker pool)──▶ per-window marks
//          ──(deterministic in-order merge)──▶ CEP extraction
//
// One producer thread pulls events from a StreamSource, assigns arrival
// ids at ingest (§4.4), and pushes into a bounded RingQueue — blocking
// (lossless backpressure) or dropping (counted) when full. The caller's
// thread runs the assembler: it pops events, closes assembler windows
// by watermark (a window closes exactly when its last event has
// arrived, reproducing InputAssembler::Windows / CountWindows window by
// window), and dispatches each closed window to the shared ThreadPool.
// Each worker marks with its own nn::InferenceContext scratch arena
// (the PR-2 tape-free fast path), and the assembler re-merges marks in
// strict window order, so:
//
//   CORRECTNESS CONTRACT (tests/runtime_test.cc): with a lossless
//   producer and the overload controller disabled or never triggered,
//   the merged mark sequence, deduplicated relayed-event count, and
//   extracted MatchSet are byte-identical to DlacepPipeline::Evaluate
//   on the same stream, for every num_threads setting.
//
// SHARDED MODE (OnlineConfig::num_shards >= 1): the assembler thread
// becomes a router. Window close stays global and serial (the count
// geometry is a property of the whole stream), but the marking work is
// sharded: every closed window is detached and forwarded — the
// exchange stage — through consistent hashing on its head symbol to an
// owner shard, each shard being a core-pinned worker thread with its
// own SPSC work/completion rings and InferenceContext. The router then
// runs the deterministic cross-shard merge: completions retire
// strictly by dispatch sequence (the owner of the next sequence is
// recorded at dispatch; a shard's completion ring is FIFO and hence
// sequence-ordered), so the correctness contract above holds verbatim
// at every shard count. Overload, health, probe, and checkpoint
// decisions all stay on the router, which is what keeps them
// independent of the shard count.
//
// An OverloadController watches ingest-queue depth and end-to-end
// window latency and degrades with hysteresis — raised filter
// threshold first, then the shedding fallback — recovering when
// pressure clears (see overload.h). The number of windows in flight is
// bounded, which couples filtration pressure back to the ingest queue:
// when marking can't keep up, the queue fills, and either the producer
// blocks (backpressure) or drops are counted — never an unbounded
// buffer.
//
// FAULT TOLERANCE (see health.h, checkpoint.h, fault_injection.h):
// a HealthGuard validates every merged window's marks (kInvalidMark
// sentinels, coverage, mark-latency deadline, anomaly streaks). A
// violation quarantines the window — its events relay unfiltered, so
// recall for that window is 1.0 — and forces the controller into the
// kDegraded level, where every window relays unfiltered until probed
// recovery (periodic shadow-marked windows must pass N consecutive
// health checks) re-enables the filter. Source reads are retried with
// exponential backoff on kUnavailable; a persistent failure aborts
// ingestion cleanly (suffix windows are not fabricated) instead of
// crashing, so a final checkpoint still captures a restorable state.
// The accounting contract grows one term:
//   relayed + filtered + dropped + quarantined == ingested.
//
// CEP extraction runs once at end-of-stream over the deduplicated
// relayed events (the engines are batch evaluators); per-window
// latencies therefore measure ingest → merged-marks, which is the
// filtration service time the overload controller manages.

#ifndef DLACEP_RUNTIME_ONLINE_H_
#define DLACEP_RUNTIME_ONLINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"
#include "dlacep/config.h"
#include "dlacep/drift.h"
#include "dlacep/extractor.h"
#include "dlacep/filter.h"
#include "dlacep/shedding_filter.h"
#include "nn/infer.h"
#include "runtime/checkpoint.h"
#include "runtime/health.h"
#include "runtime/overload.h"
#include "runtime/ring_queue.h"
#include "runtime/shard.h"
#include "runtime/source.h"
#include "runtime/stats.h"

namespace dlacep {

/// Online drift monitoring knobs (flag-only: the runtime records drift
/// firings in RuntimeStats instead of triggering retraining — see
/// dlacep/drift.h for the retraining loop).
struct DriftConfig {
  bool enabled = false;
  /// Training-time marking rate the live rate is compared against.
  double reference_rate = 0.0;
  double tolerance = 0.1;
  size_t window_budget = 8;
};

struct OnlineConfig {
  size_t queue_capacity = 1024;

  /// false: the producer blocks while the queue is full (lossless
  /// backpressure). true: arrivals are dropped when full and counted in
  /// RuntimeStats (the emergency regime the paper's §6 discusses).
  bool drop_when_full = false;

  /// Filtration workers, resolved like DlacepConfig::num_threads
  /// (1 = assembler-inline marking, 0 = hardware concurrency).
  size_t num_threads = 1;

  /// Windows dispatched but not yet merged before the assembler stops
  /// popping events. 0 = 2·workers + 2.
  size_t max_windows_in_flight = 0;

  /// Assembler geometry, as in DlacepConfig (0 = paper defaults 2W/W).
  size_t mark_size = 0;
  size_t step_size = 0;

  /// Windows marked per filter call. 1 = dispatch each closed window as
  /// its own task (the exact legacy path, default). >1: closed windows
  /// at overload level 0/1 accumulate in an assembler-side micro-batch
  /// that is dispatched as one MarkBatchOnline task when it reaches
  /// batch_size, when the oldest buffered window turns batch_timeout_ms
  /// old, or when the merge line would otherwise block on a buffered
  /// window. Shed/degraded/probe windows always dispatch solo — their
  /// marking is not batchable work. Merge order is unchanged (windows
  /// retire strictly by dispatch sequence), so results stay
  /// byte-identical to batch_size = 1.
  size_t batch_size = 1;
  /// Maximum age (milliseconds) of the oldest buffered window before a
  /// partial batch is flushed anyway — the cap on the latency a window
  /// can pay for batching below capacity. <= 0 disables the timer:
  /// partial batches then flush only on a full batch, merge pressure,
  /// or end of stream.
  double batch_timeout_ms = 2.0;

  /// 0 (default): the single-queue worker-pool runtime above. N >= 1:
  /// the thread-per-core sharded runtime — the assembler thread becomes
  /// a router that closes windows globally (same watermark geometry)
  /// and forwards each closed window, via consistent hashing on the
  /// window's head symbol, to one of N shard workers. Each shard owns a
  /// single-producer/single-consumer work ring, a completion ring, its
  /// own nn::InferenceContext, and one worker thread pinned to a core
  /// (best-effort). The router merges completions strictly by dispatch
  /// sequence, so marks, matches, and accounting are byte-identical to
  /// num_shards = 0 and to batch Evaluate at every shard count.
  /// num_threads is ignored in sharded mode (parallelism = N).
  size_t num_shards = 0;

  /// Sharded mode: pin shard worker k to core (k mod hardware
  /// concurrency). Failures (no affinity API, cgroup cpuset) are
  /// recorded in ShardStats and otherwise ignored.
  bool pin_shard_threads = true;

  /// Serve-layer hooks (src/serve). collect_relayed copies the
  /// deduplicated relayed events (merge order) and the sorted
  /// quarantined id set into OnlineResult so a caller can run its own
  /// extraction over them. skip_extraction skips the built-in
  /// single-pattern CEP pass entirely — the multi-query server
  /// evaluates shared sub-plans itself. Both default off: the runtime
  /// behaves exactly as before.
  bool collect_relayed = false;
  bool skip_extraction = false;

  /// Exact-CEP engine for the end-of-run extraction. kAdaptive lets a
  /// cost model over per-engine EngineStats pick the cheapest engine
  /// per pattern: the router feeds every closed window into a decayed
  /// per-type frequency estimator, the choice is re-evaluated every
  /// engine_options.adaptive_reselect_windows windows, and the decision
  /// trail lands in dlacep_engine_selected_total{engine,pattern} and
  /// RuntimeStats. Selection is a pure function of the event stream, so
  /// matches stay byte-identical to any static engine. Tree/lazy kinds
  /// abort construction (like the batch pipeline) when the pattern is
  /// outside their class; adaptive never does.
  EngineKind engine = EngineKind::kNfa;
  EngineOptions engine_options;

  OverloadConfig overload;
  DriftConfig drift;
  HealthConfig health;
  CheckpointConfig checkpoint;

  /// Test/fault-injection hook: called by the worker about to mark
  /// window `seq` (e.g. FaultInjector::OnWorkerWindow wedges one
  /// window). Must be thread-safe; empty = no-op.
  std::function<void(uint64_t)> worker_window_hook;
};

/// Outcome of one Run(): the extracted matches plus everything the
/// byte-equality tests compare against the batch path.
struct OnlineResult {
  MatchSet matches;
  /// Marked ids in deterministic merge order, duplicates from
  /// overlapping windows included — same layout as
  /// PipelineResult::marked_ids.
  std::vector<EventId> marked_ids;
  size_t marked_events = 0;  ///< deduplicated (== stats.events_relayed)
  /// OnlineConfig::collect_relayed: the deduplicated relayed events in
  /// deterministic merge order, and the sorted ids that reached the
  /// store through a quarantined window (recall-1.0 events a per-query
  /// extraction must always include). Empty unless requested.
  std::vector<Event> relayed_events;
  std::vector<EventId> quarantined_ids;
  RuntimeStats stats;

  double filtering_ratio() const {
    return stats.events_appended == 0
               ? 0.0
               : 1.0 - static_cast<double>(marked_events) /
                           static_cast<double>(stats.events_appended);
  }
};

class OnlineDlacep {
 public:
  /// `filter` is borrowed and must outlive the runtime; it may be a
  /// trained network, a shedding baseline, the oracle, or pass-through
  /// (anything the batch pipeline accepts). Count windows only, like
  /// DlacepPipeline.
  OnlineDlacep(const Pattern& pattern, const StreamFilter* filter,
               const OnlineConfig& config);

  /// Online-mode precondition surfaced as a Status (for user-input
  /// paths like the CLI): the streaming assembler requires a count
  /// window. The constructor CHECKs the same condition.
  static Status ValidateForOnline(const Pattern& pattern);

  /// Drains `source` to completion. May be called again with a new
  /// source; each call is an independent run with fresh stats. Aborts
  /// on restore/config errors — CLI paths use the Status overload.
  OnlineResult Run(StreamSource* source);

  /// Like Run(), but surfaces checkpoint-restore and configuration
  /// errors as a Status instead of aborting.
  Status Run(StreamSource* source, OnlineResult* result);

  const OnlineConfig& config() const { return config_; }

 private:
  struct DoneWindow {
    size_t begin = 0;
    std::vector<int> marks;
    int level = 0;             ///< overload level the window ran under
    double close_seconds = 0;  ///< run-clock time the watermark closed it
    std::shared_ptr<EventStream> events;
    bool probe = false;        ///< shadow-marked recovery probe
    bool timed_out = false;    ///< synthesized after a deadline abandon
    std::vector<int> shadow_marks;  ///< probe output (inspected only)
  };
  struct RunState;

  void CloseWindow(RunState* state, size_t begin, size_t end);
  /// Dispatches the buffered micro-batch (if any) as one worker task
  /// that marks every window with MarkBatchOnline and retires them as
  /// individual DoneWindows under their own dispatch sequences.
  void FlushBatch(RunState* state);
  void MergeOne(RunState* state, DoneWindow window);
  /// Merges every completed window that is next in window order;
  /// blocks until `target_in_flight` or fewer windows remain pending.
  /// With a mark deadline configured, an overdue window is abandoned:
  /// a synthesized quarantined DoneWindow takes its place so a wedged
  /// worker can never stall the merge line.
  void DrainMerges(RunState* state, size_t target_in_flight);
  /// Sharded-mode DrainMerges: the owner shard of the next sequence is
  /// known from the pending map, and a shard's completion ring is
  /// sequence-ordered (its worker is FIFO), so the cross-shard merge
  /// pops exactly the owner's ring per step — same deadline-abandon and
  /// stale-result semantics as the pool path.
  void DrainMergesSharded(RunState* state, size_t target_in_flight);
  /// Shard worker body: burst-pops window tasks from the shard's work
  /// ring, marks them (micro-batching adjacent batchable windows when
  /// batch_size > 1), and burst-pushes completions.
  void ShardLoop(RunState* state, size_t shard_index);
  /// Quiesces in-flight windows and atomically persists a checkpoint.
  void WriteCheckpointNow(RunState* state);
  /// Seeds a fresh RunState from the checkpoint in config_.checkpoint.
  Status RestoreFrom(RunState* state, StreamSource* source);

  Pattern pattern_;
  OnlineConfig config_;
  const StreamFilter* filter_;  ///< not owned
  size_t mark_size_;
  size_t step_size_;
  size_t workers_;
  size_t num_shards_;
  size_t max_in_flight_;
  std::unique_ptr<ThreadPool> pool_;
  /// Sharded mode: the symbol → owner-shard map (null when
  /// num_shards_ == 0).
  std::unique_ptr<ConsistentHashRing> hash_ring_;
  /// One scratch arena per worker — pool slot 0 doubles as the inline
  /// path's arena; in sharded mode slot k belongs to shard k — reused
  /// across windows and runs.
  std::vector<std::unique_ptr<InferenceContext>> contexts_;
  /// Level-2 fallbacks, built once from the pattern/config.
  TypeSheddingFilter type_shed_;
  RandomSheddingFilter random_shed_;
  CepExtractor extractor_;
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_ONLINE_H_
