#include "runtime/source.h"

#include <algorithm>
#include <thread>

namespace dlacep {

Pacer::Pacer(double events_per_sec)
    : events_per_sec_(events_per_sec), start_(Clock::now()) {}

void Pacer::Tick() {
  if (events_per_sec_ <= 0.0) return;
  ++ticks_;
  const auto due =
      start_ + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(ticks_) / events_per_sec_));
  std::this_thread::sleep_until(due);
}

size_t StreamSource::Skip(size_t n) {
  Event scratch;
  size_t skipped = 0;
  while (skipped < n) {
    const Status status = Read(&scratch);
    if (!status.ok()) {
      // Transient errors are retried — a skip must land on the exact
      // watermark or restore determinism is lost.
      if (status.code() == StatusCode::kUnavailable) continue;
      break;
    }
    ++skipped;
  }
  return skipped;
}

ReplaySource::ReplaySource(const EventStream* stream, double events_per_sec)
    : stream_(stream), pacer_(events_per_sec) {
  DLACEP_CHECK(stream_ != nullptr);
}

std::shared_ptr<const Schema> ReplaySource::schema() const {
  return stream_->schema_ptr();
}

Status ReplaySource::Read(Event* out) {
  if (next_ >= stream_->size()) {
    return Status::OutOfRange("end of replay stream");
  }
  pacer_.Tick();
  *out = (*stream_)[next_++];
  return Status::Ok();
}

size_t ReplaySource::Skip(size_t n) {
  const size_t skipped = std::min(n, stream_->size() - next_);
  next_ += skipped;
  return skipped;
}

StockSimSource::StockSimSource(const StockSimConfig& config,
                               double events_per_sec)
    : stepper_(config),
      remaining_(config.num_events),
      pacer_(events_per_sec) {}

std::shared_ptr<const Schema> StockSimSource::schema() const {
  return stepper_.schema();
}

Status StockSimSource::Read(Event* out) {
  if (remaining_ == 0) return Status::OutOfRange("end of stocksim stream");
  --remaining_;
  pacer_.Tick();
  *out = stepper_.Next();
  return Status::Ok();
}

size_t StockSimSource::Skip(size_t n) {
  Event scratch;
  size_t skipped = 0;
  // Unpaced: the stepper must still advance its RNG state so the
  // post-skip suffix is byte-identical to the uninterrupted run.
  while (skipped < n && remaining_ > 0) {
    --remaining_;
    scratch = stepper_.Next();
    ++skipped;
  }
  return skipped;
}

}  // namespace dlacep
