#include "runtime/source.h"

#include <thread>

namespace dlacep {

Pacer::Pacer(double events_per_sec)
    : events_per_sec_(events_per_sec), start_(Clock::now()) {}

void Pacer::Tick() {
  if (events_per_sec_ <= 0.0) return;
  ++ticks_;
  const auto due =
      start_ + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(ticks_) / events_per_sec_));
  std::this_thread::sleep_until(due);
}

ReplaySource::ReplaySource(const EventStream* stream, double events_per_sec)
    : stream_(stream), pacer_(events_per_sec) {
  DLACEP_CHECK(stream_ != nullptr);
}

std::shared_ptr<const Schema> ReplaySource::schema() const {
  return stream_->schema_ptr();
}

bool ReplaySource::Next(Event* out) {
  if (next_ >= stream_->size()) return false;
  pacer_.Tick();
  *out = (*stream_)[next_++];
  return true;
}

StockSimSource::StockSimSource(const StockSimConfig& config,
                               double events_per_sec)
    : stepper_(config),
      remaining_(config.num_events),
      pacer_(events_per_sec) {}

std::shared_ptr<const Schema> StockSimSource::schema() const {
  return stepper_.schema();
}

bool StockSimSource::Next(Event* out) {
  if (remaining_ == 0) return false;
  --remaining_;
  pacer_.Tick();
  *out = stepper_.Next();
  return true;
}

}  // namespace dlacep
