#include "runtime/shard.h"

#include <algorithm>

#include "common/status.h"

namespace dlacep {

namespace {

// splitmix64 — the same fixed-point finalizer the shedding salt uses;
// deterministic and well-mixed for the small sequential inputs (shard
// ids, vnode ordinals, type ids) we feed it.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(size_t num_shards,
                                       size_t vnodes_per_shard)
    : num_shards_(num_shards) {
  DLACEP_CHECK_GT(num_shards, 0u);
  DLACEP_CHECK_GT(vnodes_per_shard, 0u);
  ring_.reserve(num_shards * vnodes_per_shard);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      // A shard's vnode positions depend only on (shard, vnode), so
      // growing the ring adds points without moving existing ones —
      // the minimal-remap property.
      const uint64_t hash =
          Mix64((static_cast<uint64_t>(shard) << 32) |
                static_cast<uint64_t>(vnode));
      ring_.push_back(Point{hash, static_cast<uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.shard < b.shard;
            });
}

size_t ConsistentHashRing::ShardFor(TypeId symbol) const {
  const uint64_t key =
      Mix64(static_cast<uint64_t>(static_cast<int64_t>(symbol)) ^
            0xd1b54a32d192ed03ULL);
  // Successor vnode clockwise from the key, wrapping past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, uint64_t k) { return p.hash < k; });
  if (it == ring_.end()) it = ring_.begin();
  return static_cast<size_t>(it->shard);
}

TypeId WindowRoutingSymbol(const EventStream& window) {
  for (size_t i = 0; i < window.size(); ++i) {
    if (!window[i].is_blank()) return window[i].type;
  }
  return kBlankType;
}

}  // namespace dlacep
