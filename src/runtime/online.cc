#include "runtime/online.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/stages.h"
#include "obs/trace.h"

namespace dlacep {

namespace {

// Producer-side retry policy for transient (kUnavailable) source reads:
// exponential backoff from 1ms, at most 8 attempts per read before the
// source is declared dead. The counter resets on every successful read,
// so a flaky-but-alive source never accumulates toward the limit.
constexpr int kMaxSourceRetries = 8;
constexpr double kSourceBackoffBaseSeconds = 1e-3;

// Burst sizes for the sharded runtime: the router pops up to this many
// arrivals per ingest-queue lock, and a shard worker pops up to this
// many window tasks per work-ring lock. Bursts amortize the mutex
// atomics and futex wakeups; correctness never depends on the values.
constexpr size_t kRouterIngestBurst = 64;
constexpr size_t kShardWorkBurst = 16;

}  // namespace

/// Per-Run mutable state. Threading contract: the producer thread only
/// touches `queue` (and its own local counters); pool workers only read
/// their window's detached EventStream and write the finished DoneWindow
/// into `done` under `done_mu`; everything else is owned by the
/// assembler (caller) thread.
struct OnlineDlacep::RunState {
  RunState(size_t queue_capacity, const OverloadConfig& overload,
           const HealthConfig& health)
      : queue(queue_capacity), controller(overload), guard(health) {}

  // Queue element: the event plus its push timestamp, so queue-wait is
  // measured exactly (the stamp travels with the event through the
  // queue's own synchronization — no side-channel, no race, correct
  // under drop_when_full). Stamping is skipped while metrics are off.
  struct Arrival {
    Event event;
    double pushed_seconds = 0.0;
  };

  RingQueue<Arrival> queue;
  std::shared_ptr<const Schema> schema;

  // Assembler: arrivals not yet consumed by every window that needs
  // them. `buffer_offset` is the global stream index of buffer.front();
  // events below the next window begin are pruned after dispatch, so
  // memory stays O(mark_size + queue), not O(stream).
  std::deque<Event> buffer;
  size_t buffer_offset = 0;
  size_t appended = 0;
  size_t next_begin = 0;
  size_t windows_dispatched = 0;
  size_t last_end = 0;

  // Dispatch → merge handoff. Workers insert under done_mu keyed by
  // dispatch sequence; the assembler merges strictly in sequence order,
  // which is what makes the merged mark stream deterministic across
  // thread counts.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::map<size_t, DoneWindow> done;
  size_t in_flight = 0;
  size_t next_merge = 0;

  // Assembler-side shadow of every dispatched-but-unmerged window, so a
  // deadline abandon can synthesize a quarantined stand-in without the
  // worker's cooperation. Keyed by dispatch sequence.
  struct Pending {
    size_t begin = 0;
    int level = 0;
    double close_seconds = 0.0;
    std::shared_ptr<EventStream> events;
    size_t shard = 0;  ///< owner shard (sharded mode): where to pop from
  };
  std::map<size_t, Pending> pending;

  // --- Sharded mode ---------------------------------------------------
  // One closed window forwarded to its owner shard (the exchange
  // stage). The level/probe decisions were already taken by the router
  // at close time; the worker only marks.
  struct WindowTask {
    size_t seq = 0;
    size_t begin = 0;
    int level = 0;
    bool probe = false;
    double close_seconds = 0.0;
    std::shared_ptr<EventStream> events;
  };
  // One finished window on a shard's completion ring. A shard's worker
  // is FIFO over its work ring, so these come off sequence-ordered per
  // shard — the property the cross-shard merge relies on.
  struct SeqDone {
    size_t seq = 0;
    DoneWindow window;
  };
  struct Shard {
    Shard(size_t work_capacity, size_t done_capacity)
        : work(work_capacity), done(done_capacity) {}
    RingQueue<WindowTask> work;  ///< router -> worker (SPSC)
    RingQueue<SeqDone> done;     ///< worker -> router (SPSC)
    ShardStats stats;            ///< single-writer fields, read post-join
    std::thread thread;
  };
  std::vector<std::unique_ptr<Shard>> shards;

  // Batch-collection stage (assembler thread only, batch_size > 1):
  // closed level-0/1 windows waiting to be dispatched together as one
  // MarkBatchOnline task. Each entry already owns a dispatch sequence
  // and a Pending shadow — buffering delays the task submission, never
  // the sequencing, so merge order is identical to solo dispatch.
  struct BatchedWindow {
    size_t seq = 0;
    size_t begin = 0;
    int level = 0;
    double close_seconds = 0.0;
    std::shared_ptr<EventStream> events;
  };
  std::vector<BatchedWindow> batch;

  // Merge products. marked_store is a deque so the Event addresses
  // handed to the extractor stay stable as it grows. `stored` dedups
  // the store across overlapping windows; `seen` holds ids relayed by a
  // healthy mark, `quarantined_ids` ids relayed through a quarantined
  // or degraded window (an id can be in both — accounting attributes it
  // to `seen`).
  std::vector<EventId> marked_ids;
  std::unordered_set<EventId> seen;
  std::unordered_set<EventId> quarantined_ids;
  std::unordered_set<EventId> stored;
  std::deque<Event> marked_store;

  OverloadController controller;
  HealthGuard guard;
  size_t degraded_since_probe = 0;
  std::unique_ptr<DriftMonitor> drift;
  double latency_ewma = 0.0;
  bool latency_seen = false;
  size_t latency_samples = 0;  ///< observations offered (incl. discarded)

  // Checkpoint bookkeeping (assembler thread).
  uint64_t base_ingested = 0;  ///< events already accounted pre-restore
  uint64_t last_checkpoint = 0;

  std::atomic<bool> source_aborted{false};

  RuntimeStats stats;
  Stopwatch watch;
};

Status OnlineDlacep::ValidateForOnline(const Pattern& pattern) {
  if (pattern.window().kind != WindowKind::kCount) {
    return Status::InvalidArgument(
        "the online runtime requires a count window; time-window "
        "queries run through the batch pipeline");
  }
  return Status::Ok();
}

OnlineDlacep::OnlineDlacep(const Pattern& pattern, const StreamFilter* filter,
                           const OnlineConfig& config)
    : pattern_(pattern),
      config_(config),
      filter_(filter),
      type_shed_(pattern_),
      random_shed_(config.overload.random_keep_probability,
                   config.overload.random_seed),
      extractor_(pattern_, config.engine, config.engine_options) {
  DLACEP_CHECK(filter_ != nullptr);
  DLACEP_CHECK_MSG(ValidateForOnline(pattern_).ok(),
                   ValidateForOnline(pattern_).message());
  const size_t w = pattern_.window().count_size();
  mark_size_ = config_.mark_size != 0 ? config_.mark_size : 2 * w;
  step_size_ = config_.step_size != 0 ? config_.step_size : w;
  DLACEP_CHECK_GT(mark_size_, 0u);
  DLACEP_CHECK_GT(step_size_, 0u);
  num_shards_ = config_.num_shards;
  if (num_shards_ > 0) {
    // Sharded runtime: one worker thread (spawned per Run) and one
    // scratch arena per shard; no shared pool.
    workers_ = num_shards_;
    hash_ring_ = std::make_unique<ConsistentHashRing>(num_shards_);
    for (size_t i = 0; i < num_shards_; ++i) {
      contexts_.push_back(std::make_unique<InferenceContext>());
    }
  } else {
    workers_ = ResolveNumThreads(config_.num_threads);
    if (workers_ > 1) pool_ = std::make_unique<ThreadPool>(workers_);
    const size_t context_slots = pool_ != nullptr ? workers_ : 1;
    for (size_t i = 0; i < context_slots; ++i) {
      contexts_.push_back(std::make_unique<InferenceContext>());
    }
  }
  max_in_flight_ = config_.max_windows_in_flight != 0
                       ? config_.max_windows_in_flight
                       : 2 * workers_ + 2;
}

void OnlineDlacep::MergeOne(RunState* state, DoneWindow window) {
  obs::TraceSpan merge_span(obs::StageWindowMerge());
  const double now = state->watch.ElapsedSeconds();
  const double latency = std::max(0.0, now - window.close_seconds);
  state->stats.window_latency.Record(latency);
  // The first latency_warmup_windows observations never reach the EWMA:
  // the warm-up window is routinely a cold-cache outlier, and because
  // the EWMA seeds from its first observation, admitting it would hold
  // the smoothed latency above the escalation bar for several windows —
  // a spurious escalation from one slow window (overload.h).
  if (state->latency_samples++ >= config_.overload.latency_warmup_windows) {
    state->latency_ewma = state->latency_seen
                              ? 0.8 * state->latency_ewma + 0.2 * latency
                              : latency;
    state->latency_seen = true;
  }

  ++state->stats.windows_closed;
  obs::WindowsClosed()->Increment();
  if (window.level == 1) {
    ++state->stats.windows_boosted;
    obs::WindowsBoosted()->Increment();
  }
  if (window.level >= OverloadController::kMaxLevel &&
      window.level != OverloadController::kDegradedLevel) {
    ++state->stats.windows_shed;
    obs::WindowsShed()->Increment();
  }

  const size_t window_size = window.events->size();
  const bool degraded_window =
      window.level == OverloadController::kDegradedLevel;
  bool quarantine = false;

  if (degraded_window) {
    ++state->stats.windows_degraded;
    obs::WindowsDegraded()->Increment();
    if (window.probe) {
      ++state->stats.probes_run;
      obs::ProbesRun()->Increment();
      bool recovered = false;
      const bool passed = state->guard.ProbeHealthy(
          window.shadow_marks, window_size, latency, &recovered);
      if (passed) {
        ++state->stats.probes_passed;
        obs::ProbesPassed()->Increment();
      }
      if (recovered) {
        state->controller.ExitDegraded();
        ++state->stats.health_recoveries;
        obs::HealthRecoveries()->Increment();
        obs::HealthDegraded()->Set(0.0);
        state->guard.ResetStreaks();
        state->degraded_since_probe = 0;
        DLACEP_LOG(Info) << "filter re-enabled after "
                         << state->guard.config().probe_passes
                         << " healthy probes";
      }
    }
  } else if (config_.health.enabled) {
    HealthViolation v =
        window.timed_out
            ? HealthViolation::kDeadline
            : state->guard.Inspect(window.marks, window_size, latency);
    if (v != HealthViolation::kNone) {
      quarantine = true;
      ++state->stats.health_violations;
      obs::HealthViolations()->Increment();
      ++state->stats.windows_quarantined;
      obs::WindowsQuarantined()->Increment();
      DLACEP_LOG(Warning)
          << "window at " << window.begin << " quarantined ("
          << HealthViolationName(v) << "); degrading to exact CEP";
      if (!state->controller.degraded()) {
        state->controller.ForceDegrade(
            static_cast<double>(state->queue.size()) /
                static_cast<double>(state->queue.capacity()),
            latency);
        ++state->stats.health_degrades;
        obs::HealthDegrades()->Increment();
        obs::HealthDegraded()->Set(1.0);
      }
      state->guard.ResetStreaks();
      state->degraded_since_probe = 0;
    }
  } else {
    // Health checks off: the PR-3 invariant — a filter must cover its
    // window — is a programmer error again.
    DLACEP_CHECK_EQ(window.marks.size(), window.events->size());
  }

  if (degraded_window || quarantine) {
    // Relay the whole window unfiltered: recall 1.0 by construction.
    for (size_t t = 0; t < window_size; ++t) {
      const Event& event = (*window.events)[t];
      state->marked_ids.push_back(event.id);
      state->quarantined_ids.insert(event.id);
      if (state->stored.insert(event.id).second) {
        state->marked_store.push_back(event);
      }
    }
  } else {
    for (size_t t = 0; t < window.marks.size(); ++t) {
      if (window.marks[t] == 0) continue;
      const Event& event = (*window.events)[t];
      state->marked_ids.push_back(event.id);
      if (state->seen.insert(event.id).second) {
        obs::EventsRelayed()->Increment();
      }
      if (state->stored.insert(event.id).second) {
        state->marked_store.push_back(event);
      }
    }
    if (state->drift != nullptr && state->drift->Observe(window.marks)) {
      ++state->stats.drift_flags;
      // Flag-only policy: re-anchor to the live rate so the monitor
      // re-arms instead of firing on every subsequent window (the
      // retraining loop in drift.h is the heavyweight alternative).
      state->drift->ResetReference();
    }
  }
}

void OnlineDlacep::DrainMerges(RunState* state, size_t target_in_flight) {
  if (num_shards_ > 0) {
    DrainMergesSharded(state, target_in_flight);
    return;
  }
  // A buffered-but-undispatched window still counts as in flight, and
  // the merge line may point straight at it. If this call is going to
  // wait, dispatch the partial batch first so the wait can terminate.
  if (state->in_flight > target_in_flight) FlushBatch(state);
  const double deadline =
      config_.health.enabled ? config_.health.mark_deadline_seconds : 0.0;
  // Block until enough windows have retired, merging strictly in
  // dispatch order: the next window in sequence must eventually land in
  // `done` because every dispatched window completes — or, with a mark
  // deadline configured, because the assembler abandons it.
  while (state->in_flight > target_in_flight) {
    DoneWindow window;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(state->done_mu);
      // A previously abandoned window's real result may arrive late;
      // anything below the merge line is stale.
      while (!state->done.empty() &&
             state->done.begin()->first < state->next_merge) {
        state->done.erase(state->done.begin());
      }
      if (deadline <= 0.0) {
        state->done_cv.wait(lock, [&] {
          return state->done.find(state->next_merge) != state->done.end();
        });
      } else {
        while (state->done.find(state->next_merge) == state->done.end()) {
          const auto pit = state->pending.find(state->next_merge);
          DLACEP_CHECK(pit != state->pending.end());
          const double wait_s = pit->second.close_seconds + deadline -
                                state->watch.ElapsedSeconds();
          if (wait_s <= 0.0) break;  // overdue: abandon below
          state->done_cv.wait_for(
              lock, std::chrono::duration<double>(wait_s));
        }
      }
      auto it = state->done.find(state->next_merge);
      if (it != state->done.end()) {
        window = std::move(it->second);
        state->done.erase(it);
        have = true;
      }
    }
    if (!have) {
      // Deadline abandon: the worker is wedged (or just too slow).
      // Synthesize a quarantined stand-in from the assembler's shadow;
      // MergeOne relays its events unfiltered and degrades.
      const RunState::Pending& p = state->pending.at(state->next_merge);
      window.begin = p.begin;
      window.level = p.level;
      window.close_seconds = p.close_seconds;
      window.events = p.events;
      window.timed_out = true;
    }
    state->pending.erase(state->next_merge);
    ++state->next_merge;
    --state->in_flight;
    MergeOne(state, std::move(window));
  }
  // Opportunistically retire whatever else is already finished and next
  // in order, so merge latency tracks worker completion, not the
  // in-flight bound.
  for (;;) {
    DoneWindow window;
    {
      std::lock_guard<std::mutex> lock(state->done_mu);
      while (!state->done.empty() &&
             state->done.begin()->first < state->next_merge) {
        state->done.erase(state->done.begin());
      }
      auto it = state->done.find(state->next_merge);
      if (it == state->done.end()) break;
      window = std::move(it->second);
      state->done.erase(it);
    }
    state->pending.erase(state->next_merge);
    ++state->next_merge;
    --state->in_flight;
    MergeOne(state, std::move(window));
  }
}

void OnlineDlacep::DrainMergesSharded(RunState* state,
                                      size_t target_in_flight) {
  const double deadline =
      config_.health.enabled ? config_.health.mark_deadline_seconds : 0.0;
  // The merge line is the global dispatch sequence; the owner shard of
  // the next sequence was recorded at dispatch. Anything popped below
  // the line is the late result of a previously abandoned window —
  // stale, discard.
  while (state->in_flight > target_in_flight) {
    auto pit = state->pending.find(state->next_merge);
    DLACEP_CHECK(pit != state->pending.end());
    RunState::Shard& shard = *state->shards[pit->second.shard];
    DoneWindow window;
    bool have = false;
    for (;;) {
      RunState::SeqDone done;
      if (deadline <= 0.0) {
        if (!shard.done.Pop(&done)) break;  // ring closed (shutdown)
      } else {
        const double wait_s = pit->second.close_seconds + deadline -
                              state->watch.ElapsedSeconds();
        if (wait_s <= 0.0) break;  // overdue: abandon below
        bool timed_out = false;
        if (!shard.done.PopFor(&done, wait_s, &timed_out)) {
          if (timed_out) continue;  // recomputes wait_s, then abandons
          break;                    // ring closed (shutdown)
        }
      }
      if (done.seq < state->next_merge) continue;  // stale late result
      // A shard's completions are sequence-increasing and every lower
      // sequence it owns has already merged or been discarded, so the
      // first live completion is exactly the merge line.
      DLACEP_CHECK_EQ(done.seq, state->next_merge);
      window = std::move(done.window);
      have = true;
      break;
    }
    if (!have) {
      // Deadline abandon: synthesize the quarantined stand-in from the
      // router's shadow, exactly as the pool path does.
      const RunState::Pending& p = pit->second;
      window.begin = p.begin;
      window.level = p.level;
      window.close_seconds = p.close_seconds;
      window.events = p.events;
      window.timed_out = true;
    }
    state->pending.erase(pit);
    ++state->next_merge;
    --state->in_flight;
    MergeOne(state, std::move(window));
  }
  // Opportunistically retire whatever the owner shard of the merge line
  // has already finished, so merge latency tracks worker completion.
  while (state->in_flight > 0) {
    auto pit = state->pending.find(state->next_merge);
    DLACEP_CHECK(pit != state->pending.end());
    RunState::Shard& shard = *state->shards[pit->second.shard];
    DoneWindow window;
    bool have = false;
    RunState::SeqDone done;
    while (shard.done.TryPop(&done)) {
      if (done.seq < state->next_merge) continue;  // stale late result
      DLACEP_CHECK_EQ(done.seq, state->next_merge);
      window = std::move(done.window);
      have = true;
      break;
    }
    if (!have) break;
    state->pending.erase(pit);
    ++state->next_merge;
    --state->in_flight;
    MergeOne(state, std::move(window));
  }
}

void OnlineDlacep::ShardLoop(RunState* state, size_t shard_index) {
  RunState::Shard& shard = *state->shards[shard_index];
  if (config_.pin_shard_threads) {
    const size_t cores = ResolveNumThreads(0);
    shard.stats.pinned = PinCurrentThreadToCore(shard_index % cores);
  }
  InferenceContext* ctx = contexts_[shard_index].get();
  const size_t batch_cap = config_.batch_size > 1 ? config_.batch_size : 1;
  std::vector<RunState::WindowTask> burst;
  std::vector<RunState::SeqDone> finished;
  for (;;) {
    burst.clear();
    if (shard.work.PopBurst(&burst, kShardWorkBurst) == 0) break;
    finished.clear();
    finished.reserve(burst.size());
    size_t i = 0;
    while (i < burst.size()) {
      // Shard-side micro-batching: adjacent level-0/1 windows in the
      // burst mark through one MarkBatchOnline call (the PR 6 batch
      // collector, moved shard-local — a busy shard's backlog batches
      // naturally, an idle shard marks solo with no added latency).
      // Shed, degraded, and probe windows always mark solo, mirroring
      // the pool path's batch-collection rule.
      const RunState::WindowTask& head = burst[i];
      const bool batchable = batch_cap > 1 &&
                             head.level < OverloadController::kMaxLevel &&
                             !head.probe;
      size_t j = i + 1;
      if (batchable) {
        while (j < burst.size() && j - i < batch_cap &&
               burst[j].level < OverloadController::kMaxLevel &&
               !burst[j].probe) {
          ++j;
        }
      }
      Stopwatch mark_watch;
      obs::TraceSpan mark_span(obs::StageWindowMark());
      if (batchable && j - i > 1) {
        std::vector<OnlineWindow> windows;
        windows.reserve(j - i);
        for (size_t k = i; k < j; ++k) {
          const RunState::WindowTask& t = burst[k];
          if (config_.worker_window_hook) config_.worker_window_hook(t.seq);
          windows.push_back(OnlineWindow{
              t.events.get(), t.begin,
              t.level == 1 ? config_.overload.threshold_boost : 0.0});
        }
        std::vector<std::vector<int>> marks(j - i);
        filter_->MarkBatchOnline(windows, ctx, marks.data());
        for (size_t k = i; k < j; ++k) {
          RunState::WindowTask& t = burst[k];
          DoneWindow window;
          window.begin = t.begin;
          window.level = t.level;
          window.close_seconds = t.close_seconds;
          window.events = std::move(t.events);
          window.marks = std::move(marks[k - i]);
          finished.push_back(RunState::SeqDone{t.seq, std::move(window)});
        }
      } else {
        RunState::WindowTask& t = burst[i];
        if (config_.worker_window_hook) config_.worker_window_hook(t.seq);
        DoneWindow window;
        window.begin = t.begin;
        window.level = t.level;
        window.close_seconds = t.close_seconds;
        window.events = t.events;
        window.probe = t.probe;
        if (t.level == OverloadController::kDegradedLevel) {
          window.marks.assign(t.events->size(), 1);
          if (t.probe) {
            window.shadow_marks =
                filter_->MarkOnline(*t.events, t.begin, ctx, 0.0);
          }
        } else if (t.level >= OverloadController::kMaxLevel) {
          const StreamFilter& shed =
              config_.overload.shedding == SheddingPolicy::kRandom
                  ? static_cast<const StreamFilter&>(random_shed_)
                  : static_cast<const StreamFilter&>(type_shed_);
          window.marks = shed.MarkOnline(*t.events, t.begin, ctx, 0.0);
        } else {
          const double boost =
              t.level == 1 ? config_.overload.threshold_boost : 0.0;
          window.marks = filter_->MarkOnline(*t.events, t.begin, ctx, boost);
        }
        finished.push_back(RunState::SeqDone{t.seq, std::move(window)});
      }
      mark_span.Finish();
      shard.stats.mark_seconds += mark_watch.ElapsedSeconds();
      shard.stats.windows_marked += j - i;
      ++shard.stats.filter_calls;
      obs::ShardWindowsMarked(shard_index)->Increment(j - i);
      obs::ShardMarkLatency(shard_index)
          ->Observe(mark_watch.ElapsedSeconds());
      i = j;
    }
    shard.done.PushBurst(finished.data(), finished.size());
  }
}

void OnlineDlacep::CloseWindow(RunState* state, size_t begin, size_t end) {
  DrainMerges(state, max_in_flight_ - 1);

  // The overload decision is taken at close time, on the assembler
  // thread, from the current ingest-queue depth and the smoothed merge
  // latency — so the level a window runs under is deterministic given
  // the arrival/processing interleaving, and level changes are totally
  // ordered with window dispatch. While degraded, Observe() returns
  // kDegradedLevel unconditionally.
  const int level = state->controller.Observe(
      static_cast<double>(state->queue.size()) /
          static_cast<double>(state->queue.capacity()),
      state->latency_seen ? state->latency_ewma : 0.0);
  obs::QueueDepth()->Set(static_cast<double>(state->queue.size()));
  obs::OverloadLevel()->Set(static_cast<double>(level));

  // Probe scheduling is assembler-side (deterministic regardless of
  // thread count): every probe_period-th degraded window additionally
  // shadow-marks with the primary filter.
  bool probe = false;
  if (level == OverloadController::kDegradedLevel &&
      config_.health.enabled && config_.health.probe_period > 0) {
    if (++state->degraded_since_probe >= config_.health.probe_period) {
      probe = true;
      state->degraded_since_probe = 0;
    }
  }

  // Detach the window into its own EventStream (ids preserved): workers
  // must never read the assembler's growing buffer, and the copy is
  // what lets the buffer prune below.
  auto events = std::make_shared<EventStream>(state->schema);
  for (size_t i = begin; i < end; ++i) {
    events->AppendArrival(state->buffer[i - state->buffer_offset]);
  }

  // Adaptive engine selection (config.engine == kAdaptive): the router
  // feeds each closed window into the selector's frequency estimator
  // right here — before dispatch, on the one thread that closes windows
  // in both runtimes — so the observation order, the decayed counts,
  // and every reselection point are deterministic at any shard count.
  // No-op for static engines.
  extractor_.ObserveWindow(
      std::span<const Event>(events->events().data(), events->size()));

  const size_t seq = state->windows_dispatched++;
  state->last_end = end;
  state->next_begin = begin + step_size_;
  while (state->buffer_offset < state->next_begin && !state->buffer.empty()) {
    state->buffer.pop_front();
    ++state->buffer_offset;
  }

  const double close_seconds = state->watch.ElapsedSeconds();
  ++state->in_flight;
  obs::WindowsInFlight()->Set(static_cast<double>(state->in_flight));

  if (num_shards_ > 0) {
    // Exchange stage: the detached window is forwarded whole to the
    // shard that owns its head symbol. Occupancy is bounded by
    // in_flight (capped at max_in_flight_ - 1 by the DrainMerges
    // above), so the push lands without blocking unless deadline
    // abandons have piled extra tasks onto a wedged shard — then
    // blocking here is the intended backpressure.
    const size_t owner = hash_ring_->ShardFor(WindowRoutingSymbol(*events));
    state->pending.emplace(seq, RunState::Pending{begin, level,
                                                  close_seconds, events,
                                                  owner});
    RunState::Shard& shard = *state->shards[owner];
    RunState::WindowTask task{seq,   begin, level,
                              probe, close_seconds, std::move(events)};
    const bool accepted = shard.work.Push(std::move(task));
    DLACEP_CHECK(accepted);
    ++shard.stats.windows_routed;
    obs::ShardRingDepth(owner)->Set(static_cast<double>(shard.work.size()));
    return;
  }
  state->pending.emplace(
      seq, RunState::Pending{begin, level, close_seconds, events});

  // Batch-collection stage: normal and boosted windows (level 0/1) are
  // batchable — the network filter applies the boost per window inside
  // MarkBatchOnline. Degraded, probe, and shed windows dispatch solo:
  // their marking is trivial or intentionally separate, and keeping
  // them out of the buffer means a degraded run behaves exactly like
  // batch_size = 1.
  if (config_.batch_size > 1 && level < OverloadController::kMaxLevel) {
    state->batch.push_back(
        RunState::BatchedWindow{seq, begin, level, close_seconds, events});
    if (state->batch.size() >= config_.batch_size) FlushBatch(state);
    return;
  }

  auto task = [this, state, seq, begin, level, probe, close_seconds,
               events] {
    if (config_.worker_window_hook) config_.worker_window_hook(seq);
    DoneWindow window;
    window.begin = begin;
    window.level = level;
    window.close_seconds = close_seconds;
    window.events = events;
    window.probe = probe;
    InferenceContext* ctx =
        contexts_[ThreadPool::CurrentWorkerIndex()].get();
    obs::TraceSpan mark_span(obs::StageWindowMark());
    if (level == OverloadController::kDegradedLevel) {
      // Degrade-to-exact: relay everything; the exact CEP engine sees
      // the unfiltered window (recall 1.0). A probe window additionally
      // exercises the distrusted filter, output inspected only.
      window.marks.assign(events->size(), 1);
      if (probe) {
        window.shadow_marks = filter_->MarkOnline(*events, begin, ctx, 0.0);
      }
    } else if (level >= OverloadController::kMaxLevel) {
      const StreamFilter& shed =
          config_.overload.shedding == SheddingPolicy::kRandom
              ? static_cast<const StreamFilter&>(random_shed_)
              : static_cast<const StreamFilter&>(type_shed_);
      window.marks = shed.MarkOnline(*events, begin, ctx, 0.0);
    } else {
      const double boost =
          level == 1 ? config_.overload.threshold_boost : 0.0;
      window.marks = filter_->MarkOnline(*events, begin, ctx, boost);
    }
    mark_span.Finish();
    {
      std::lock_guard<std::mutex> lock(state->done_mu);
      state->done.emplace(seq, std::move(window));
    }
    state->done_cv.notify_one();
  };
  if (pool_ != nullptr) {
    pool_->Submit(std::move(task));
  } else {
    task();
  }
}

void OnlineDlacep::FlushBatch(RunState* state) {
  if (state->batch.empty()) return;
  std::vector<RunState::BatchedWindow> batch;
  batch.swap(state->batch);
  auto task = [this, state, batch = std::move(batch)] {
    std::vector<OnlineWindow> windows;
    windows.reserve(batch.size());
    for (const RunState::BatchedWindow& w : batch) {
      if (config_.worker_window_hook) config_.worker_window_hook(w.seq);
      windows.push_back(OnlineWindow{
          w.events.get(), w.begin,
          w.level == 1 ? config_.overload.threshold_boost : 0.0});
    }
    std::vector<std::vector<int>> marks(batch.size());
    InferenceContext* ctx =
        contexts_[ThreadPool::CurrentWorkerIndex()].get();
    obs::TraceSpan mark_span(obs::StageWindowMark());
    filter_->MarkBatchOnline(windows, ctx, marks.data());
    mark_span.Finish();
    {
      std::lock_guard<std::mutex> lock(state->done_mu);
      for (size_t i = 0; i < batch.size(); ++i) {
        DoneWindow window;
        window.begin = batch[i].begin;
        window.level = batch[i].level;
        window.close_seconds = batch[i].close_seconds;
        window.events = batch[i].events;
        window.marks = std::move(marks[i]);
        state->done.emplace(batch[i].seq, std::move(window));
      }
    }
    state->done_cv.notify_one();
  };
  if (pool_ != nullptr) {
    pool_->Submit(std::move(task));
  } else {
    task();
  }
}

void OnlineDlacep::WriteCheckpointNow(RunState* state) {
  // Quiesce: a checkpoint is only consistent once every dispatched
  // window has merged (the snapshot has no notion of in-flight work).
  DrainMerges(state, 0);

  obs::TraceSpan checkpoint_span(obs::StageCheckpointWrite());
  CheckpointState snap;
  snap.mark_size = mark_size_;
  snap.step_size = step_size_;
  snap.appended = state->appended;
  snap.next_begin = state->next_begin;
  snap.windows_dispatched = state->windows_dispatched;
  snap.last_end = state->last_end;
  snap.buffer_offset = state->buffer_offset;
  snap.buffer.assign(state->buffer.begin(), state->buffer.end());
  snap.marked_ids = state->marked_ids;
  snap.marked_events.assign(state->marked_store.begin(),
                            state->marked_store.end());
  snap.seen.assign(state->seen.begin(), state->seen.end());
  std::sort(snap.seen.begin(), snap.seen.end());
  snap.quarantined.assign(state->quarantined_ids.begin(),
                          state->quarantined_ids.end());
  std::sort(snap.quarantined.begin(), snap.quarantined.end());
  snap.events_dropped_queue = state->stats.events_dropped_queue;
  snap.windows_closed = state->stats.windows_closed;
  snap.windows_boosted = state->stats.windows_boosted;
  snap.windows_shed = state->stats.windows_shed;
  snap.windows_quarantined = state->stats.windows_quarantined;
  snap.windows_degraded = state->stats.windows_degraded;
  snap.health_violations = state->stats.health_violations;
  snap.health_degrades = state->stats.health_degrades;
  snap.health_recoveries = state->stats.health_recoveries;
  snap.probes_run = state->stats.probes_run;
  snap.probes_passed = state->stats.probes_passed;
  snap.checkpoints_written = state->stats.checkpoints_written + 1;
  snap.drift_flags = state->stats.drift_flags;
  snap.controller_level = state->controller.level();
  snap.probe_pass_run = state->guard.probe_pass_run();
  snap.degraded_since_probe = state->degraded_since_probe;
  if (const AdaptiveEngine* adaptive = extractor_.adaptive()) {
    const AdaptiveSnapshot a = adaptive->Snapshot();
    snap.has_adaptive = 1;
    snap.adaptive_selected = a.selected;
    snap.adaptive_windows_observed = a.windows_observed;
    snap.adaptive_switches = a.switches;
    snap.adaptive_external_feed = a.external_feed;
    snap.adaptive_freq_types.reserve(a.frequencies.size());
    snap.adaptive_freq_counts.reserve(a.frequencies.size());
    for (const auto& [type, count] : a.frequencies) {
      snap.adaptive_freq_types.push_back(type);
      snap.adaptive_freq_counts.push_back(count);
    }
  }

  const Status status = SaveCheckpoint(snap, config_.checkpoint.dir);
  if (status.ok()) {
    ++state->stats.checkpoints_written;
    obs::CheckpointsWritten()->Increment();
  } else {
    // A failed checkpoint degrades durability, not availability.
    DLACEP_LOG(Warning) << "checkpoint write failed: " << status.ToString();
  }
}

Status OnlineDlacep::RestoreFrom(RunState* state, StreamSource* source) {
  if (config_.drop_when_full) {
    return Status::FailedPrecondition(
        "checkpoint restore requires lossless ingest "
        "(drop_when_full = false): with drops the arrival-id counter "
        "no longer tracks the source position");
  }
  StatusOr<CheckpointState> loaded = LoadCheckpoint(config_.checkpoint.dir);
  if (!loaded.ok()) return loaded.status();
  CheckpointState& cs = *loaded;
  if (cs.mark_size != mark_size_ || cs.step_size != step_size_) {
    return Status::FailedPrecondition(
        "checkpoint window geometry does not match this runtime");
  }
  if (cs.buffer.size() != cs.appended - cs.buffer_offset) {
    return Status::InvalidArgument(
        "checkpoint buffer does not cover [buffer_offset, appended)");
  }
  // Engine-selection state must round-trip exactly: an adaptive resume
  // needs the frequency counts and observation counter to land on the
  // same reselection points, and a static resume must not silently
  // discard a selection trail the checkpoint carries.
  AdaptiveEngine* adaptive = extractor_.adaptive();
  if (cs.has_adaptive != 0) {
    if (adaptive == nullptr) {
      return Status::FailedPrecondition(
          "checkpoint carries adaptive engine-selection state but this "
          "runtime is configured with a static engine");
    }
    AdaptiveSnapshot a;
    a.selected = cs.adaptive_selected;
    a.windows_observed = cs.adaptive_windows_observed;
    a.switches = cs.adaptive_switches;
    a.external_feed = cs.adaptive_external_feed;
    a.frequencies.reserve(cs.adaptive_freq_types.size());
    for (size_t i = 0; i < cs.adaptive_freq_types.size(); ++i) {
      a.frequencies.emplace_back(cs.adaptive_freq_types[i],
                                 cs.adaptive_freq_counts[i]);
    }
    const Status restored = adaptive->Restore(a);
    if (!restored.ok()) return restored;
  } else if (adaptive != nullptr) {
    return Status::FailedPrecondition(
        "adaptive engine selection configured but the checkpoint has no "
        "selection state (taken by a static-engine or pre-v2 run)");
  }

  state->appended = cs.appended;
  state->next_begin = cs.next_begin;
  state->windows_dispatched = cs.windows_dispatched;
  state->next_merge = cs.windows_dispatched;  // quiescent at snapshot
  state->last_end = cs.last_end;
  state->buffer_offset = cs.buffer_offset;
  state->buffer.assign(cs.buffer.begin(), cs.buffer.end());
  state->marked_ids = std::move(cs.marked_ids);
  for (Event& e : cs.marked_events) {
    state->stored.insert(e.id);
    state->marked_store.push_back(std::move(e));
  }
  state->seen.insert(cs.seen.begin(), cs.seen.end());
  state->quarantined_ids.insert(cs.quarantined.begin(),
                                cs.quarantined.end());

  state->stats.events_dropped_queue = cs.events_dropped_queue;
  state->stats.windows_closed = cs.windows_closed;
  state->stats.windows_boosted = cs.windows_boosted;
  state->stats.windows_shed = cs.windows_shed;
  state->stats.windows_quarantined = cs.windows_quarantined;
  state->stats.windows_degraded = cs.windows_degraded;
  state->stats.health_violations = cs.health_violations;
  state->stats.health_degrades = cs.health_degrades;
  state->stats.health_recoveries = cs.health_recoveries;
  state->stats.probes_run = cs.probes_run;
  state->stats.probes_passed = cs.probes_passed;
  state->stats.checkpoints_written = cs.checkpoints_written;
  state->stats.drift_flags = cs.drift_flags;

  // Fold the restored baselines into the metric counters so a scrape
  // equals RuntimeStats whether or not the run resumed from a
  // checkpoint (relayed increments live on seen-insert; the restored
  // seen set never re-inserts, so its baseline lands here).
  obs::EventsIngested()->Increment(cs.appended);
  obs::EventsDropped()->Increment(cs.events_dropped_queue);
  obs::EventsRelayed()->Increment(cs.seen.size());
  obs::WindowsClosed()->Increment(cs.windows_closed);
  obs::WindowsBoosted()->Increment(cs.windows_boosted);
  obs::WindowsShed()->Increment(cs.windows_shed);
  obs::WindowsQuarantined()->Increment(cs.windows_quarantined);
  obs::WindowsDegraded()->Increment(cs.windows_degraded);
  obs::HealthViolations()->Increment(cs.health_violations);
  obs::HealthDegrades()->Increment(cs.health_degrades);
  obs::HealthRecoveries()->Increment(cs.health_recoveries);
  obs::ProbesRun()->Increment(cs.probes_run);
  obs::ProbesPassed()->Increment(cs.probes_passed);
  obs::CheckpointsWritten()->Increment(cs.checkpoints_written);

  state->controller.RestoreLevel(cs.controller_level);
  obs::OverloadLevel()->Set(static_cast<double>(cs.controller_level));
  obs::HealthDegraded()->Set(
      cs.controller_level == OverloadController::kDegradedLevel ? 1.0 : 0.0);
  state->guard.RestoreProbeRun(cs.probe_pass_run);
  state->degraded_since_probe = cs.degraded_since_probe;

  state->base_ingested = cs.appended;
  state->last_checkpoint = cs.appended;

  const size_t skipped = source->Skip(cs.appended);
  if (skipped != cs.appended) {
    return Status::FailedPrecondition(
        "source ended before the checkpoint watermark — restore needs "
        "the same deterministic stream the checkpoint was taken from");
  }
  DLACEP_LOG(Info) << "restored checkpoint at watermark " << cs.appended
                   << " (" << state->marked_store.size()
                   << " relayed events)";
  return Status::Ok();
}

OnlineResult OnlineDlacep::Run(StreamSource* source) {
  OnlineResult result;
  const Status status = Run(source, &result);
  DLACEP_CHECK_MSG(status.ok(), status.ToString());
  return result;
}

Status OnlineDlacep::Run(StreamSource* source, OnlineResult* result) {
  DLACEP_CHECK(source != nullptr);
  DLACEP_CHECK(result != nullptr);
  RunState state(config_.queue_capacity, config_.overload, config_.health);
  state.schema = source->schema();
  if (config_.drift.enabled) {
    state.drift = std::make_unique<DriftMonitor>(
        config_.drift.reference_rate, config_.drift.tolerance,
        config_.drift.window_budget);
  }
  const bool checkpointing = !config_.checkpoint.dir.empty();
  if (config_.checkpoint.restore) {
    if (!checkpointing) {
      return Status::InvalidArgument("--restore needs a checkpoint dir");
    }
    DLACEP_RETURN_IF_ERROR(RestoreFrom(&state, source));
  }

  // Sharded mode: spawn the shard workers before any window can close.
  // Without deadline abandons, ring occupancy is bounded by
  // in_flight <= max_in_flight_, so pushes never block. Abandoned
  // windows leave in_flight while their task/late-result still occupies
  // a ring, so capacity carries 2x slack; if a ring still fills behind
  // a wedged shard, the push blocking IS the backpressure (the merge
  // line keeps advancing via abandons and drains the ring on its next
  // visit).
  if (num_shards_ > 0) {
    const size_t ring_capacity = 2 * (max_in_flight_ + 1);
    for (size_t s = 0; s < num_shards_; ++s) {
      state.shards.push_back(
          std::make_unique<RunState::Shard>(ring_capacity, ring_capacity));
    }
    for (size_t s = 0; s < num_shards_; ++s) {
      state.shards[s]->thread =
          std::thread(&OnlineDlacep::ShardLoop, this, &state, s);
    }
  }

  // Producer: pull, stamp the arrival id BEFORE the queue (a dropped
  // event leaves an id gap, keeping the count-window constraint
  // anchored to real arrivals, §4.4), push. Transient read failures
  // retry with exponential backoff; a persistent failure closes the
  // queue and flags the abort — the serve loop never crashes on a bad
  // source. Counters are thread-local and folded into stats after
  // join().
  uint64_t ingested = 0;
  uint64_t dropped = 0;
  uint64_t read_errors = 0;
  uint64_t retries = 0;
  obs::QueueCapacity()->Set(static_cast<double>(state.queue.capacity()));
  std::thread producer([&] {
    RunState::Arrival arrival;
    EventId next_id = state.appended;  // restored runs resume the id line
    int consecutive_failures = 0;
    for (;;) {
      const Status read = source->Read(&arrival.event);
      if (read.ok()) {
        consecutive_failures = 0;
        arrival.event.id = next_id++;
        ++ingested;
        obs::EventsIngested()->Increment();
        arrival.pushed_seconds =
            obs::MetricsEnabled() ? state.watch.ElapsedSeconds() : 0.0;
        const bool accepted = config_.drop_when_full
                                  ? state.queue.TryPush(arrival)
                                  : state.queue.Push(arrival);
        if (!accepted) {
          ++dropped;
          obs::EventsDropped()->Increment();
        }
        continue;
      }
      if (read.code() == StatusCode::kOutOfRange) break;  // clean end
      ++read_errors;
      if (read.code() == StatusCode::kUnavailable &&
          consecutive_failures < kMaxSourceRetries) {
        ++retries;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            kSourceBackoffBaseSeconds *
            static_cast<double>(1 << consecutive_failures)));
        ++consecutive_failures;
        continue;
      }
      DLACEP_LOG(Error) << "stream source failed permanently: "
                        << read.ToString();
      state.source_aborted.store(true, std::memory_order_release);
      break;
    }
    state.queue.Close();
  });

  // Assembler loop: a full window closes by watermark the moment its
  // last event arrives — the running prefix of
  // CountWindows(appended, mark, step). With a partial micro-batch
  // buffered and a flush timer configured, the pop is bounded by the
  // oldest buffered window's deadline so a quiet stream can't hold a
  // window past batch_timeout_ms.
  auto ingest = [&](RunState::Arrival& arrival) {
    if (arrival.pushed_seconds > 0.0) {
      obs::StageQueueWait()->Observe(std::max(
          0.0, state.watch.ElapsedSeconds() - arrival.pushed_seconds));
    }
    state.buffer.push_back(std::move(arrival.event));
    ++state.appended;
    while (state.appended >= state.next_begin + mark_size_) {
      CloseWindow(&state, state.next_begin,
                  state.next_begin + mark_size_);
    }
    if (checkpointing && config_.checkpoint.every_events > 0 &&
        state.appended - state.last_checkpoint >=
            config_.checkpoint.every_events) {
      WriteCheckpointNow(&state);
      state.last_checkpoint = state.appended;
    }
  };
  if (num_shards_ > 0) {
    // Router loop: burst-pop arrivals so the ingest queue's lock and
    // wakeup cost amortize across kRouterIngestBurst events. Shard-side
    // micro-batching replaces the assembler-side batch collector, so
    // there is no flush timer to honor here.
    std::vector<RunState::Arrival> arrivals;
    arrivals.reserve(kRouterIngestBurst);
    for (;;) {
      arrivals.clear();
      if (state.queue.PopBurst(&arrivals, kRouterIngestBurst) == 0) break;
      for (RunState::Arrival& arrival : arrivals) ingest(arrival);
    }
  } else {
    RunState::Arrival arrival;
    const double batch_timeout = config_.batch_timeout_ms * 1e-3;
    for (;;) {
      bool got = false;
      if (state.batch.empty() || batch_timeout <= 0.0) {
        got = state.queue.Pop(&arrival);
      } else {
        const double wait_s = state.batch.front().close_seconds +
                              batch_timeout - state.watch.ElapsedSeconds();
        if (wait_s <= 0.0) {
          FlushBatch(&state);
          continue;
        }
        bool timed_out = false;
        got = state.queue.PopFor(&arrival, wait_s, &timed_out);
        if (!got && timed_out) {
          FlushBatch(&state);
          continue;
        }
      }
      if (!got) break;
      ingest(arrival);
    }
  }

  // End of stream: emit the truncated suffix exactly as CountWindows
  // would — at least one window on a nonempty stream, and windows until
  // one ends at the final event. After a source abort the suffix is NOT
  // fabricated: those windows would differ from the ones an
  // uninterrupted run eventually closes, which would poison a later
  // restore. The buffered tail stays in the checkpoint instead.
  const bool aborted = state.source_aborted.load(std::memory_order_acquire);
  const size_t total = state.appended;
  if (total > 0 && !aborted) {
    while (state.windows_dispatched == 0 || state.last_end != total) {
      CloseWindow(&state, state.next_begin,
                  std::min(state.next_begin + mark_size_, total));
    }
  }
  DrainMerges(&state, 0);
  // All windows are merged, but the worker that produced the last one
  // may still be inside its done_cv.notify_one() — drain the pool so no
  // task can touch RunState after Run returns. In sharded mode, close
  // the work rings (the workers exit once drained) and join.
  for (auto& shard : state.shards) shard->work.Close();
  for (auto& shard : state.shards) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  if (pool_ != nullptr) pool_->Wait();
  producer.join();

  // Final checkpoint at full quiescence (also the abort-path snapshot a
  // --restore run resumes from).
  if (checkpointing) WriteCheckpointNow(&state);

  state.stats.events_ingested = state.base_ingested + ingested;
  state.stats.events_dropped_queue += dropped;
  state.stats.events_appended = state.appended;
  state.stats.events_relayed = state.seen.size();
  uint64_t quarantined_only = 0;
  for (const EventId id : state.quarantined_ids) {
    if (state.seen.find(id) == state.seen.end()) ++quarantined_only;
  }
  state.stats.events_quarantined = quarantined_only;
  state.stats.events_filtered = state.appended - state.stored.size();
  // Filtered and quarantined-only are set-complement quantities: they
  // exist only once the run is over (a filtered event might still be
  // marked by a later overlapping window), so they sync to counters
  // here rather than incrementing live.
  obs::EventsQuarantined()->Increment(state.stats.events_quarantined);
  obs::EventsFiltered()->Increment(state.stats.events_filtered);
  state.stats.queue_capacity = state.queue.capacity();
  state.stats.queue_high_water = state.queue.high_water();
  for (auto& shard : state.shards) {
    shard->stats.work_high_water = shard->work.high_water();
    state.stats.shards.push_back(shard->stats);
  }
  state.stats.overload_escalations = state.controller.escalations();
  state.stats.overload_recoveries = state.controller.recoveries();
  state.stats.overload_level_at_exit = state.controller.level();
  state.stats.transitions = state.controller.transitions();
  state.stats.source_read_errors = read_errors;
  state.stats.source_retries = retries;
  state.stats.source_aborted = aborted;

  if (config_.collect_relayed) {
    result->relayed_events.assign(state.marked_store.begin(),
                                  state.marked_store.end());
    result->quarantined_ids.assign(state.quarantined_ids.begin(),
                                   state.quarantined_ids.end());
    std::sort(result->quarantined_ids.begin(),
              result->quarantined_ids.end());
  }
  if (!config_.skip_extraction) {
    extractor_.ResetStats();
    Stopwatch extract_watch;
    std::vector<const Event*> marked;
    marked.reserve(state.marked_store.size());
    for (const Event& e : state.marked_store) marked.push_back(&e);
    const Status status =
        extractor_.Extract(std::move(marked), &result->matches);
    DLACEP_CHECK_MSG(status.ok(), status.ToString());
    state.stats.extract_seconds = extract_watch.ElapsedSeconds();
    obs::StageCepEval()->Observe(state.stats.extract_seconds);
    state.stats.cep_partial_matches_dropped =
        extractor_.stats().partial_matches_dropped;
    // Selection lives in the adaptive engine, not EngineStats, so it
    // survives the ResetStats() above; read it after the final Evaluate
    // in case a windowless run selected on the extraction span itself.
    const AdaptiveEngine* adaptive = extractor_.adaptive();
    state.stats.engine_selected =
        adaptive != nullptr ? EngineKindName(adaptive->selected_kind())
                            : EngineKindName(config_.engine);
    state.stats.engine_switches =
        adaptive != nullptr ? adaptive->switches() : 0;
  }
  state.stats.matches = result->matches.size();
  state.stats.elapsed_seconds = state.watch.ElapsedSeconds();

  result->marked_ids = std::move(state.marked_ids);
  result->stats = std::move(state.stats);
  result->marked_events = result->stats.events_relayed;
  return Status::Ok();
}

}  // namespace dlacep
