#include "runtime/online.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace dlacep {

/// Per-Run mutable state. Threading contract: the producer thread only
/// touches `queue` (and its own local counters); pool workers only read
/// their window's detached EventStream and write the finished DoneWindow
/// into `done` under `done_mu`; everything else is owned by the
/// assembler (caller) thread.
struct OnlineDlacep::RunState {
  RunState(size_t queue_capacity, const OverloadConfig& overload)
      : queue(queue_capacity), controller(overload) {}

  RingQueue<Event> queue;
  std::shared_ptr<const Schema> schema;

  // Assembler: arrivals not yet consumed by every window that needs
  // them. `buffer_offset` is the global stream index of buffer.front();
  // events below the next window begin are pruned after dispatch, so
  // memory stays O(mark_size + queue), not O(stream).
  std::deque<Event> buffer;
  size_t buffer_offset = 0;
  size_t appended = 0;
  size_t next_begin = 0;
  size_t windows_dispatched = 0;
  size_t last_end = 0;

  // Dispatch → merge handoff. Workers insert under done_mu keyed by
  // dispatch sequence; the assembler merges strictly in sequence order,
  // which is what makes the merged mark stream deterministic across
  // thread counts.
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::map<size_t, DoneWindow> done;
  size_t in_flight = 0;
  size_t next_merge = 0;

  // Merge products. marked_store is a deque so the Event addresses
  // handed to the extractor stay stable as it grows.
  std::vector<EventId> marked_ids;
  std::unordered_set<EventId> seen;
  std::deque<Event> marked_store;

  OverloadController controller;
  std::unique_ptr<DriftMonitor> drift;
  double latency_ewma = 0.0;
  bool latency_seen = false;

  RuntimeStats stats;
  Stopwatch watch;
};

OnlineDlacep::OnlineDlacep(const Pattern& pattern, const StreamFilter* filter,
                           const OnlineConfig& config)
    : pattern_(pattern),
      config_(config),
      filter_(filter),
      type_shed_(pattern_),
      random_shed_(config.overload.random_keep_probability,
                   config.overload.random_seed),
      extractor_(pattern_) {
  DLACEP_CHECK(filter_ != nullptr);
  DLACEP_CHECK(pattern_.window().kind == WindowKind::kCount);
  const size_t w = pattern_.window().count_size();
  mark_size_ = config_.mark_size != 0 ? config_.mark_size : 2 * w;
  step_size_ = config_.step_size != 0 ? config_.step_size : w;
  DLACEP_CHECK_GT(mark_size_, 0u);
  DLACEP_CHECK_GT(step_size_, 0u);
  workers_ = ResolveNumThreads(config_.num_threads);
  if (workers_ > 1) pool_ = std::make_unique<ThreadPool>(workers_);
  const size_t context_slots = pool_ != nullptr ? workers_ : 1;
  for (size_t i = 0; i < context_slots; ++i) {
    contexts_.push_back(std::make_unique<InferenceContext>());
  }
  max_in_flight_ = config_.max_windows_in_flight != 0
                       ? config_.max_windows_in_flight
                       : 2 * workers_ + 2;
}

void OnlineDlacep::MergeOne(RunState* state, DoneWindow window) {
  const double now = state->watch.ElapsedSeconds();
  const double latency = std::max(0.0, now - window.close_seconds);
  state->stats.window_latency.Record(latency);
  state->latency_ewma = state->latency_seen
                            ? 0.8 * state->latency_ewma + 0.2 * latency
                            : latency;
  state->latency_seen = true;

  ++state->stats.windows_closed;
  if (window.level == 1) ++state->stats.windows_boosted;
  if (window.level >= 2) ++state->stats.windows_shed;

  DLACEP_CHECK_EQ(window.marks.size(), window.events->size());
  for (size_t t = 0; t < window.marks.size(); ++t) {
    if (window.marks[t] == 0) continue;
    const Event& event = (*window.events)[t];
    state->marked_ids.push_back(event.id);
    if (state->seen.insert(event.id).second) {
      state->marked_store.push_back(event);
    }
  }

  if (state->drift != nullptr && state->drift->Observe(window.marks)) {
    ++state->stats.drift_flags;
    // Flag-only policy: re-anchor to the live rate so the monitor
    // re-arms instead of firing on every subsequent window (the
    // retraining loop in drift.h is the heavyweight alternative).
    state->drift->ResetReference();
  }
}

void OnlineDlacep::DrainMerges(RunState* state, size_t target_in_flight) {
  // Block until enough windows have retired, merging strictly in
  // dispatch order: the next window in sequence must eventually land in
  // `done` because every dispatched window completes.
  while (state->in_flight > target_in_flight) {
    DoneWindow window;
    {
      std::unique_lock<std::mutex> lock(state->done_mu);
      state->done_cv.wait(lock, [&] {
        return state->done.find(state->next_merge) != state->done.end();
      });
      auto it = state->done.find(state->next_merge);
      window = std::move(it->second);
      state->done.erase(it);
    }
    ++state->next_merge;
    --state->in_flight;
    MergeOne(state, std::move(window));
  }
  // Opportunistically retire whatever else is already finished and next
  // in order, so merge latency tracks worker completion, not the
  // in-flight bound.
  for (;;) {
    DoneWindow window;
    {
      std::lock_guard<std::mutex> lock(state->done_mu);
      auto it = state->done.find(state->next_merge);
      if (it == state->done.end()) break;
      window = std::move(it->second);
      state->done.erase(it);
    }
    ++state->next_merge;
    --state->in_flight;
    MergeOne(state, std::move(window));
  }
}

void OnlineDlacep::CloseWindow(RunState* state, size_t begin, size_t end) {
  DrainMerges(state, max_in_flight_ - 1);

  // The overload decision is taken at close time, on the assembler
  // thread, from the current ingest-queue depth and the smoothed merge
  // latency — so the level a window runs under is deterministic given
  // the arrival/processing interleaving, and level changes are totally
  // ordered with window dispatch.
  const int level =
      config_.overload.enabled
          ? state->controller.Observe(
                static_cast<double>(state->queue.size()) /
                    static_cast<double>(state->queue.capacity()),
                state->latency_seen ? state->latency_ewma : 0.0)
          : 0;

  // Detach the window into its own EventStream (ids preserved): workers
  // must never read the assembler's growing buffer, and the copy is
  // what lets the buffer prune below.
  auto events = std::make_shared<EventStream>(state->schema);
  for (size_t i = begin; i < end; ++i) {
    events->AppendArrival(state->buffer[i - state->buffer_offset]);
  }

  const size_t seq = state->windows_dispatched++;
  state->last_end = end;
  state->next_begin = begin + step_size_;
  while (state->buffer_offset < state->next_begin && !state->buffer.empty()) {
    state->buffer.pop_front();
    ++state->buffer_offset;
  }

  const double close_seconds = state->watch.ElapsedSeconds();
  ++state->in_flight;

  auto task = [this, state, seq, begin, level, close_seconds, events] {
    DoneWindow window;
    window.begin = begin;
    window.level = level;
    window.close_seconds = close_seconds;
    window.events = events;
    InferenceContext* ctx =
        contexts_[ThreadPool::CurrentWorkerIndex()].get();
    if (level >= OverloadController::kMaxLevel) {
      const StreamFilter& shed =
          config_.overload.shedding == SheddingPolicy::kRandom
              ? static_cast<const StreamFilter&>(random_shed_)
              : static_cast<const StreamFilter&>(type_shed_);
      window.marks = shed.MarkOnline(*events, begin, ctx, 0.0);
    } else {
      const double boost =
          level == 1 ? config_.overload.threshold_boost : 0.0;
      window.marks = filter_->MarkOnline(*events, begin, ctx, boost);
    }
    {
      std::lock_guard<std::mutex> lock(state->done_mu);
      state->done.emplace(seq, std::move(window));
    }
    state->done_cv.notify_one();
  };
  if (pool_ != nullptr) {
    pool_->Submit(std::move(task));
  } else {
    task();
  }
}

OnlineResult OnlineDlacep::Run(StreamSource* source) {
  DLACEP_CHECK(source != nullptr);
  RunState state(config_.queue_capacity, config_.overload);
  state.schema = source->schema();
  if (config_.drift.enabled) {
    state.drift = std::make_unique<DriftMonitor>(
        config_.drift.reference_rate, config_.drift.tolerance,
        config_.drift.window_budget);
  }

  // Producer: pull, stamp the arrival id BEFORE the queue (a dropped
  // event leaves an id gap, keeping the count-window constraint
  // anchored to real arrivals, §4.4), push. Counters are thread-local
  // and folded into stats after join().
  uint64_t ingested = 0;
  uint64_t dropped = 0;
  std::thread producer([&] {
    Event event;
    EventId next_id = 0;
    while (source->Next(&event)) {
      event.id = next_id++;
      ++ingested;
      const bool accepted = config_.drop_when_full
                                ? state.queue.TryPush(event)
                                : state.queue.Push(event);
      if (!accepted) ++dropped;
    }
    state.queue.Close();
  });

  // Assembler loop: a full window closes by watermark the moment its
  // last event arrives — the running prefix of
  // CountWindows(appended, mark, step).
  Event event;
  while (state.queue.Pop(&event)) {
    state.buffer.push_back(event);
    ++state.appended;
    while (state.appended >= state.next_begin + mark_size_) {
      CloseWindow(&state, state.next_begin,
                  state.next_begin + mark_size_);
    }
  }

  // End of stream: emit the truncated suffix exactly as CountWindows
  // would — at least one window on a nonempty stream, and windows until
  // one ends at the final event.
  const size_t total = state.appended;
  if (total > 0) {
    while (state.windows_dispatched == 0 || state.last_end != total) {
      CloseWindow(&state, state.next_begin,
                  std::min(state.next_begin + mark_size_, total));
    }
  }
  DrainMerges(&state, 0);
  // All windows are merged, but the worker that produced the last one
  // may still be inside its done_cv.notify_one() — drain the pool so no
  // task can touch RunState after Run returns.
  if (pool_ != nullptr) pool_->Wait();
  producer.join();

  state.stats.events_ingested = ingested;
  state.stats.events_dropped_queue = dropped;
  state.stats.events_appended = state.appended;
  state.stats.events_relayed = state.seen.size();
  state.stats.events_filtered = state.appended - state.seen.size();
  state.stats.queue_capacity = state.queue.capacity();
  state.stats.queue_high_water = state.queue.high_water();
  state.stats.overload_escalations = state.controller.escalations();
  state.stats.overload_recoveries = state.controller.recoveries();
  state.stats.overload_level_at_exit = state.controller.level();
  state.stats.transitions = state.controller.transitions();

  OnlineResult result;
  extractor_.ResetStats();
  Stopwatch extract_watch;
  std::vector<const Event*> marked;
  marked.reserve(state.marked_store.size());
  for (const Event& e : state.marked_store) marked.push_back(&e);
  const Status status =
      extractor_.Extract(std::move(marked), &result.matches);
  DLACEP_CHECK_MSG(status.ok(), status.ToString());
  state.stats.extract_seconds = extract_watch.ElapsedSeconds();
  state.stats.matches = result.matches.size();
  state.stats.elapsed_seconds = state.watch.ElapsedSeconds();

  result.marked_ids = std::move(state.marked_ids);
  result.stats = std::move(state.stats);
  result.marked_events = result.stats.events_relayed;
  return result;
}

}  // namespace dlacep
