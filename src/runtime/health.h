// Per-window health validation of filter outputs.
//
// DLACEP is allowed to be *approximate* — it is never allowed to be
// silently *wrong*. The HealthGuard sits between the worker that marked
// a window and the merge step that commits those marks, and checks that
// the filter's output is trustworthy:
//
//   * kInvalidMarks  — the mark vector does not cover the window, or
//                      contains the kInvalidMark sentinel (the filter
//                      itself detected non-finite scores);
//   * kDeadline      — the window took longer than the configured
//                      mark-latency deadline (wedged or starved worker);
//   * kAnomalyStreak — `anomaly_streak` consecutive windows marked
//                      everything or nothing (a stuck filter looks
//                      exactly like this; a healthy learned filter
//                      almost never does).
//
// On any violation the runtime quarantines the window — its events are
// relayed unfiltered to the exact CEP engine, so recall for that window
// is 1.0 by construction — and forces the OverloadController into
// degraded mode. Recovery is probed: every `probe_period` windows the
// degraded runtime shadow-marks one window with the primary filter
// (output discarded, only inspected), and after `probe_passes`
// consecutive healthy probes the filter is re-enabled.

#ifndef DLACEP_RUNTIME_HEALTH_H_
#define DLACEP_RUNTIME_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlacep {

struct HealthConfig {
  /// false disables every check (and with it degraded mode): the
  /// runtime behaves exactly like PR-3.
  bool enabled = true;

  /// Per-window wall-clock budget for marking, in seconds. A merged
  /// window whose mark latency exceeds this — or that never arrives —
  /// is quarantined. 0 disables the deadline.
  double mark_deadline_seconds = 0.0;

  /// Number of consecutive all-relay or all-blank windows that counts
  /// as a stuck filter. 0 disables the check (the default: legitimate
  /// filters like pass-through mark everything on purpose).
  size_t anomaly_streak = 0;

  /// While degraded, shadow-probe the primary filter every this many
  /// closed windows.
  size_t probe_period = 8;

  /// Consecutive healthy probes required before leaving degraded mode.
  size_t probe_passes = 3;
};

enum class HealthViolation {
  kNone = 0,
  kInvalidMarks,   ///< wrong size or kInvalidMark sentinel present
  kDeadline,       ///< mark latency over budget / worker wedged
  kAnomalyStreak,  ///< suspiciously uniform marks for too long
};

const char* HealthViolationName(HealthViolation v);

/// Single-threaded (assembler/merge thread only) health state machine.
class HealthGuard {
 public:
  explicit HealthGuard(const HealthConfig& config);

  /// Validates one merged window's marks. `latency_seconds` is the
  /// window's close-to-merge mark latency. Returns the first violation
  /// found (kNone when healthy). Streak state updates internally.
  HealthViolation Inspect(const std::vector<int>& marks,
                          size_t window_size, double latency_seconds);

  /// Records a shadow-probe outcome while degraded. Returns true when
  /// this probe was healthy; sets `*recovered` when it also completed
  /// the consecutive-pass target — i.e. the caller should
  /// ExitDegraded(). An unhealthy probe resets the pass counter.
  bool ProbeHealthy(const std::vector<int>& marks, size_t window_size,
                    double latency_seconds, bool* recovered);

  /// Resets transient streak/probe state (called on entering degraded
  /// mode and after recovery, so stale streaks never carry across).
  void ResetStreaks();

  const HealthConfig& config() const { return config_; }
  size_t probe_pass_run() const { return probe_pass_run_; }
  /// Checkpoint restore only.
  void RestoreProbeRun(size_t run) { probe_pass_run_ = run; }

 private:
  /// The stateless core shared by Inspect and ProbeHealthy; does not
  /// touch the anomaly streak.
  HealthViolation Check(const std::vector<int>& marks, size_t window_size,
                        double latency_seconds) const;

  HealthConfig config_;
  size_t uniform_run_ = 0;    ///< consecutive all-relay/all-blank windows
  size_t probe_pass_run_ = 0; ///< consecutive healthy probes
};

}  // namespace dlacep

#endif  // DLACEP_RUNTIME_HEALTH_H_
