// Pattern conditions (the WHERE clause).
//
// A condition constrains the attribute values of events bound to pattern
// variables. Every query in the paper's evaluation uses conjunctions of
// linear comparisons of the form
//     alpha * x.attr  (op)  beta * y.attr + c
// which `CompareCondition` models directly; `AndCondition` /
// `OrCondition` / `NotCondition` compose them, and `LambdaCondition`
// admits arbitrary user predicates.
//
// Variables bound under a Kleene closure hold a *list* of events. A
// comparison involving lists is evaluated
//  * aligned, when both sides are lists of the same length > 1 (the two
//    variables belong to the same KC(SEQ(...)) repetition group), i.e.
//    element i is compared with element i;
//  * universally over the cross product otherwise (a KC variable against
//    a singleton variable: the comparison must hold for every element).

#ifndef DLACEP_PATTERN_CONDITION_H_
#define DLACEP_PATTERN_CONDITION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "stream/event.h"
#include "stream/schema.h"

namespace dlacep {

/// Index of a pattern variable (position in Pattern::vars()).
using VarId = int32_t;

/// A (possibly partial) assignment of stream events to pattern variables.
/// slots[v] is empty when variable v is unbound; non-KC variables bind
/// exactly one event, KC variables bind one event per absorbed repetition.
struct Binding {
  std::vector<std::vector<const Event*>> slots;

  explicit Binding(size_t num_vars = 0) : slots(num_vars) {}

  bool IsBound(VarId v) const {
    return v >= 0 && static_cast<size_t>(v) < slots.size() &&
           !slots[static_cast<size_t>(v)].empty();
  }
  const std::vector<const Event*>& Of(VarId v) const {
    DLACEP_CHECK(IsBound(v));
    return slots[static_cast<size_t>(v)];
  }
  /// The single event of a non-KC variable.
  const Event& Single(VarId v) const {
    const auto& list = Of(v);
    DLACEP_CHECK_EQ(list.size(), 1u);
    return *list[0];
  }
  void Bind(VarId v, const Event* e) {
    DLACEP_CHECK_GE(v, 0);
    slots[static_cast<size_t>(v)].push_back(e);
  }
  void Unbind(VarId v) {
    DLACEP_CHECK(IsBound(v));
    slots[static_cast<size_t>(v)].pop_back();
  }
  /// Collects the distinct events of all bound variables.
  std::vector<const Event*> AllEvents() const;
};

/// One side of a comparison: coeff * var.attr + constant, or a constant
/// when `ref` is absent.
struct Term {
  struct AttrRef {
    VarId var = -1;
    size_t attr = 0;
  };
  double coeff = 1.0;
  std::optional<AttrRef> ref;
  double constant = 0.0;

  static Term Attr(VarId var, size_t attr, double coeff = 1.0,
                   double constant = 0.0) {
    Term t;
    t.coeff = coeff;
    t.ref = AttrRef{var, attr};
    t.constant = constant;
    return t;
  }
  static Term Const(double value) {
    Term t;
    t.coeff = 0.0;
    t.constant = value;
    return t;
  }

  double ValueFor(const Event& e) const {
    DLACEP_CHECK(ref.has_value());
    return coeff * e.attr(ref->attr) + constant;
  }
};

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpName(CmpOp op);
bool ApplyCmp(CmpOp op, double lhs, double rhs);

/// Abstract condition. Implementations must be pure functions of the
/// binding (no hidden state) so that engines may evaluate them eagerly,
/// lazily, or repeatedly.
class Condition {
 public:
  virtual ~Condition() = default;

  /// Evaluates against a binding in which all of Vars() are bound.
  virtual bool Eval(const Binding& binding) const = 0;

  /// The variables this condition references (no duplicates).
  virtual std::vector<VarId> Vars() const = 0;

  /// Human-readable rendering (schema may be null).
  virtual std::string ToString(const Schema* schema) const = 0;

  virtual std::unique_ptr<Condition> Clone() const = 0;

  /// True when every referenced variable is bound, i.e. Eval is legal.
  bool CanEval(const Binding& binding) const;
};

/// Linear comparison between two terms.
class CompareCondition : public Condition {
 public:
  CompareCondition(Term lhs, CmpOp op, Term rhs)
      : lhs_(lhs), op_(op), rhs_(rhs) {}

  bool Eval(const Binding& binding) const override;
  std::vector<VarId> Vars() const override;
  std::string ToString(const Schema* schema) const override;
  std::unique_ptr<Condition> Clone() const override {
    return std::make_unique<CompareCondition>(lhs_, op_, rhs_);
  }

  const Term& lhs() const { return lhs_; }
  CmpOp op() const { return op_; }
  const Term& rhs() const { return rhs_; }

 private:
  Term lhs_;
  CmpOp op_;
  Term rhs_;
};

/// Conjunction of sub-conditions.
class AndCondition : public Condition {
 public:
  explicit AndCondition(std::vector<std::unique_ptr<Condition>> children)
      : children_(std::move(children)) {}

  bool Eval(const Binding& binding) const override;
  std::vector<VarId> Vars() const override;
  std::string ToString(const Schema* schema) const override;
  std::unique_ptr<Condition> Clone() const override;

  const std::vector<std::unique_ptr<Condition>>& children() const {
    return children_;
  }

 private:
  std::vector<std::unique_ptr<Condition>> children_;
};

/// Disjunction of sub-conditions.
class OrCondition : public Condition {
 public:
  explicit OrCondition(std::vector<std::unique_ptr<Condition>> children)
      : children_(std::move(children)) {}

  bool Eval(const Binding& binding) const override;
  std::vector<VarId> Vars() const override;
  std::string ToString(const Schema* schema) const override;
  std::unique_ptr<Condition> Clone() const override;

  const std::vector<std::unique_ptr<Condition>>& children() const {
    return children_;
  }

 private:
  std::vector<std::unique_ptr<Condition>> children_;
};

/// Logical negation of a sub-condition.
class NotCondition : public Condition {
 public:
  explicit NotCondition(std::unique_ptr<Condition> child)
      : child_(std::move(child)) {}

  bool Eval(const Binding& binding) const override {
    return !child_->Eval(binding);
  }
  std::vector<VarId> Vars() const override { return child_->Vars(); }
  std::string ToString(const Schema* schema) const override {
    std::string out = "NOT (";
    out += child_->ToString(schema);
    out += ")";
    return out;
  }
  std::unique_ptr<Condition> Clone() const override {
    return std::make_unique<NotCondition>(child_->Clone());
  }

  const Condition& child() const { return *child_; }

 private:
  std::unique_ptr<Condition> child_;
};

/// Arbitrary user predicate over a binding. `vars` must list every
/// variable the callable inspects.
class LambdaCondition : public Condition {
 public:
  using Fn = std::function<bool(const Binding&)>;

  LambdaCondition(std::vector<VarId> vars, Fn fn, std::string description)
      : vars_(std::move(vars)),
        fn_(std::move(fn)),
        description_(std::move(description)) {}

  bool Eval(const Binding& binding) const override { return fn_(binding); }
  std::vector<VarId> Vars() const override { return vars_; }
  std::string ToString(const Schema*) const override { return description_; }
  std::unique_ptr<Condition> Clone() const override {
    return std::make_unique<LambdaCondition>(vars_, fn_, description_);
  }

 private:
  std::vector<VarId> vars_;
  Fn fn_;
  std::string description_;
};

/// Convenience factory: lo * y.attr < x.attr < hi * y.attr, the "band"
/// predicate that dominates the paper's query templates. Returns an
/// AndCondition of two CompareConditions.
std::unique_ptr<Condition> MakeBandCondition(VarId x, size_t x_attr, VarId y,
                                             size_t y_attr, double lo,
                                             double hi);

}  // namespace dlacep

#endif  // DLACEP_PATTERN_CONDITION_H_
