#include "pattern/pattern.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dlacep {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kPrimitive: return "PRIMITIVE";
    case OpKind::kSeq: return "SEQ";
    case OpKind::kConj: return "CONJ";
    case OpKind::kDisj: return "DISJ";
    case OpKind::kKleene: return "KC";
    case OpKind::kNeg: return "NEG";
  }
  return "?";
}

std::unique_ptr<PatternNode> PatternNode::Primitive(TypeId type, VarId var) {
  return PrimitiveAnyOf({type}, var);
}

std::unique_ptr<PatternNode> PatternNode::PrimitiveAnyOf(
    std::vector<TypeId> types, VarId var) {
  DLACEP_CHECK(!types.empty());
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());
  auto node = std::make_unique<PatternNode>();
  node->kind = OpKind::kPrimitive;
  node->types = std::move(types);
  node->var = var;
  return node;
}

std::unique_ptr<PatternNode> PatternNode::Compose(
    OpKind kind, std::vector<std::unique_ptr<PatternNode>> children) {
  DLACEP_CHECK(kind == OpKind::kSeq || kind == OpKind::kConj ||
               kind == OpKind::kDisj);
  auto node = std::make_unique<PatternNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<PatternNode> PatternNode::Kleene(
    std::unique_ptr<PatternNode> child, size_t min_reps, size_t max_reps) {
  DLACEP_CHECK_GE(min_reps, 1u);
  DLACEP_CHECK_GE(max_reps, min_reps);
  auto node = std::make_unique<PatternNode>();
  node->kind = OpKind::kKleene;
  node->min_reps = min_reps;
  node->max_reps = max_reps;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PatternNode> PatternNode::Neg(
    std::unique_ptr<PatternNode> child) {
  auto node = std::make_unique<PatternNode>();
  node->kind = OpKind::kNeg;
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PatternNode> PatternNode::Clone() const {
  auto node = std::make_unique<PatternNode>();
  node->kind = kind;
  node->types = types;
  node->var = var;
  node->min_reps = min_reps;
  node->max_reps = max_reps;
  node->children.reserve(children.size());
  for (const auto& child : children) node->children.push_back(child->Clone());
  return node;
}

Pattern::Pattern(std::shared_ptr<const Schema> schema,
                 std::unique_ptr<PatternNode> root,
                 std::vector<std::unique_ptr<Condition>> conditions,
                 std::vector<VarInfo> vars, WindowSpec window)
    : schema_(std::move(schema)),
      root_(std::move(root)),
      conditions_(std::move(conditions)),
      vars_(std::move(vars)),
      window_(window) {
  DLACEP_CHECK(schema_ != nullptr);
  DLACEP_CHECK(root_ != nullptr);
}

Pattern::Pattern(const Pattern& other)
    : schema_(other.schema_),
      root_(other.root_->Clone()),
      vars_(other.vars_),
      window_(other.window_) {
  conditions_.reserve(other.conditions_.size());
  for (const auto& c : other.conditions_) conditions_.push_back(c->Clone());
}

namespace {

bool IsPrimitiveSeq(const PatternNode& node) {
  if (node.kind != OpKind::kSeq) return false;
  for (const auto& child : node.children) {
    if (child->kind != OpKind::kPrimitive) return false;
  }
  return true;
}

Status ValidateSeqChildren(const PatternNode& seq) {
  const size_t n = seq.children.size();
  if (n == 0) return Status::InvalidArgument("empty SEQ");
  for (size_t i = 0; i < n; ++i) {
    const PatternNode& child = *seq.children[i];
    switch (child.kind) {
      case OpKind::kPrimitive:
        break;
      case OpKind::kKleene:
        if (child.children[0]->kind != OpKind::kPrimitive) {
          return Status::Unimplemented(
              "KC inside SEQ must wrap a primitive");
        }
        break;
      case OpKind::kNeg: {
        const PatternNode& inner = *child.children[0];
        if (inner.kind != OpKind::kPrimitive && !IsPrimitiveSeq(inner)) {
          return Status::Unimplemented(
              "NEG must wrap a primitive or a SEQ of primitives");
        }
        // NEG must be bracketed by positive positions.
        bool has_pos_before = false;
        for (size_t j = 0; j < i; ++j) {
          if (seq.children[j]->kind != OpKind::kNeg) has_pos_before = true;
        }
        bool has_pos_after = false;
        for (size_t j = i + 1; j < n; ++j) {
          if (seq.children[j]->kind != OpKind::kNeg) has_pos_after = true;
        }
        if (!has_pos_before || !has_pos_after) {
          return Status::InvalidArgument(
              "NEG must appear strictly between positive SEQ positions");
        }
        break;
      }
      default:
        return Status::Unimplemented(
            std::string("unsupported SEQ child: ") +
            OpKindName(child.kind));
    }
  }
  // At least one positive position.
  for (const auto& child : seq.children) {
    if (child->kind != OpKind::kNeg) return Status::Ok();
  }
  return Status::InvalidArgument("SEQ contains only NEG children");
}

}  // namespace

Status Pattern::Validate() const {
  const PatternNode& top = *root_;
  switch (top.kind) {
    case OpKind::kPrimitive:
      return Status::Ok();
    case OpKind::kSeq:
      return ValidateSeqChildren(top);
    case OpKind::kConj:
      if (top.children.empty()) {
        return Status::InvalidArgument("empty CONJ");
      }
      for (const auto& child : top.children) {
        if (child->kind != OpKind::kPrimitive) {
          return Status::Unimplemented("CONJ children must be primitives");
        }
      }
      return Status::Ok();
    case OpKind::kDisj:
      if (top.children.empty()) {
        return Status::InvalidArgument("empty DISJ");
      }
      for (const auto& child : top.children) {
        switch (child->kind) {
          case OpKind::kPrimitive:
            break;
          case OpKind::kSeq: {
            Status s = ValidateSeqChildren(*child);
            if (!s.ok()) return s;
            break;
          }
          case OpKind::kConj:
            for (const auto& grand : child->children) {
              if (grand->kind != OpKind::kPrimitive) {
                return Status::Unimplemented(
                    "CONJ children must be primitives");
              }
            }
            break;
          default:
            return Status::Unimplemented(
                std::string("unsupported DISJ branch: ") +
                OpKindName(child->kind));
        }
      }
      return Status::Ok();
    case OpKind::kKleene: {
      const PatternNode& inner = *top.children[0];
      if (inner.kind == OpKind::kPrimitive || IsPrimitiveSeq(inner)) {
        return Status::Ok();
      }
      return Status::Unimplemented(
          "top-level KC must wrap a primitive or a SEQ of primitives");
    }
    case OpKind::kNeg:
      return Status::InvalidArgument("NEG cannot be the whole pattern");
  }
  return Status::Internal("unreachable");
}

namespace {
void CollectTypes(const PatternNode& node, std::set<TypeId>* out) {
  if (node.kind == OpKind::kPrimitive) {
    out->insert(node.types.begin(), node.types.end());
    return;
  }
  for (const auto& child : node.children) CollectTypes(*child, out);
}

void CollectTypeSets(const PatternNode& node,
                     std::vector<std::vector<TypeId>>* out) {
  if (node.kind == OpKind::kPrimitive) {
    out->push_back(node.types);
    return;
  }
  for (const auto& child : node.children) CollectTypeSets(*child, out);
}

bool ContainsNeg(const PatternNode& node) {
  if (node.kind == OpKind::kNeg) return true;
  for (const auto& child : node.children) {
    if (ContainsNeg(*child)) return true;
  }
  return false;
}

void RenderNode(const PatternNode& node, const Schema& schema,
                const std::vector<VarInfo>& vars, std::ostringstream* out) {
  switch (node.kind) {
    case OpKind::kPrimitive: {
      // Rendered as re-parseable PQL: ParsePattern(ToString()) must
      // accept the output (pinned by the grammar fuzz test), so every
      // type of an ANY position is spelled out.
      if (node.types.size() == 1) {
        *out << schema.TypeName(node.types[0]);
      } else {
        *out << "ANY(";
        for (size_t i = 0; i < node.types.size(); ++i) {
          if (i > 0) *out << ", ";
          *out << schema.TypeName(node.types[i]);
        }
        *out << ')';
      }
      if (node.var >= 0 && static_cast<size_t>(node.var) < vars.size()) {
        *out << ' ' << vars[static_cast<size_t>(node.var)].name;
      }
      return;
    }
    case OpKind::kKleene:
      *out << "KC(";
      RenderNode(*node.children[0], schema, vars, out);
      *out << "){" << node.min_reps << ".." << node.max_reps << "}";
      return;
    case OpKind::kNeg:
      *out << "NEG(";
      RenderNode(*node.children[0], schema, vars, out);
      *out << ")";
      return;
    default: {
      *out << OpKindName(node.kind) << '(';
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) *out << ", ";
        RenderNode(*node.children[i], schema, vars, out);
      }
      *out << ')';
      return;
    }
  }
}
}  // namespace

std::vector<TypeId> Pattern::ReferencedTypes() const {
  std::set<TypeId> types;
  CollectTypes(*root_, &types);
  return std::vector<TypeId>(types.begin(), types.end());
}

std::vector<std::vector<TypeId>> Pattern::PrimitiveTypeSets() const {
  std::vector<std::vector<TypeId>> sets;
  CollectTypeSets(*root_, &sets);
  return sets;
}

bool Pattern::HasNegation() const { return ContainsNeg(*root_); }

namespace {
// Conditions render variables as "v<id>"; substitute the declared names
// (longest ids first so "v12" is not clobbered by "v1").
std::string SubstituteVarNames(std::string text,
                               const std::vector<VarInfo>& vars) {
  for (size_t i = vars.size(); i-- > 0;) {
    std::string needle = "v";
    needle += std::to_string(i);
    needle += ".";
    std::string replacement = vars[i].name;
    replacement += ".";
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      text.replace(pos, needle.size(), replacement);
      pos += replacement.size();
    }
  }
  return text;
}
}  // namespace

std::string Pattern::ToString() const {
  std::ostringstream out;
  RenderNode(*root_, *schema_, vars_, &out);
  if (!conditions_.empty()) {
    out << " WHERE ";
    for (size_t i = 0; i < conditions_.size(); ++i) {
      if (i > 0) out << " AND ";
      out << SubstituteVarNames(conditions_[i]->ToString(schema_.get()),
                                vars_);
    }
  }
  out << " WITHIN " << window_.size
      << (window_.kind == WindowKind::kCount ? " EVENTS" : " TIME");
  return out.str();
}

}  // namespace dlacep
