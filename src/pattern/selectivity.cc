#include "pattern/selectivity.h"

#include <algorithm>

#include "common/rng.h"

namespace dlacep {

namespace {

// Conditions whose variable set is exactly `vars` (as a sorted list).
std::vector<const Condition*> ConditionsOver(
    const LinearPlan& plan, std::vector<VarId> vars) {
  std::sort(vars.begin(), vars.end());
  std::vector<const Condition*> out;
  for (const Condition* condition : plan.pos_conditions) {
    std::vector<VarId> cvars = condition->Vars();
    std::sort(cvars.begin(), cvars.end());
    if (cvars == vars) out.push_back(condition);
  }
  return out;
}

}  // namespace

PlanStatistics EstimatePlanStatistics(const LinearPlan& plan,
                                      std::span<const Event> sample,
                                      uint64_t seed, size_t num_samples) {
  const size_t n = plan.num_positions();
  PlanStatistics stats;
  stats.rates.assign(n, 0.0);
  stats.pair_sel.assign(n, std::vector<double>(n, 1.0));
  if (sample.empty()) return stats;

  Rng rng(seed);

  // Candidate events per plan position.
  std::vector<std::vector<const Event*>> candidates(n);
  for (const Event& e : sample) {
    if (e.is_blank()) continue;
    for (size_t p = 0; p < n; ++p) {
      if (plan.positions[p].Matches(e.type)) {
        candidates[p].push_back(&e);
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    stats.rates[i] = static_cast<double>(candidates[i].size()) /
                     static_cast<double>(sample.size());
  }

  const size_t num_vars = plan.pattern->num_vars();

  // Unary selectivities (diagonal).
  for (size_t i = 0; i < n; ++i) {
    const auto conditions = ConditionsOver(plan, {plan.positions[i].var});
    if (conditions.empty() || candidates[i].empty()) continue;
    size_t hit = 0;
    for (size_t s = 0; s < num_samples; ++s) {
      Binding binding(num_vars);
      binding.Bind(plan.positions[i].var,
                   candidates[i][rng.Index(candidates[i].size())]);
      bool all = true;
      for (const Condition* condition : conditions) {
        if (!condition->Eval(binding)) {
          all = false;
          break;
        }
      }
      if (all) ++hit;
    }
    stats.pair_sel[i][i] =
        static_cast<double>(hit) / static_cast<double>(num_samples);
  }

  // Pairwise selectivities.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const auto conditions = ConditionsOver(
          plan, {plan.positions[i].var, plan.positions[j].var});
      if (conditions.empty() || candidates[i].empty() ||
          candidates[j].empty()) {
        continue;
      }
      size_t hit = 0;
      for (size_t s = 0; s < num_samples; ++s) {
        Binding binding(num_vars);
        binding.Bind(plan.positions[i].var,
                     candidates[i][rng.Index(candidates[i].size())]);
        binding.Bind(plan.positions[j].var,
                     candidates[j][rng.Index(candidates[j].size())]);
        bool all = true;
        for (const Condition* condition : conditions) {
          if (!condition->Eval(binding)) {
            all = false;
            break;
          }
        }
        if (all) ++hit;
      }
      stats.pair_sel[i][j] = stats.pair_sel[j][i] =
          static_cast<double>(hit) / static_cast<double>(num_samples);
    }
  }
  return stats;
}

}  // namespace dlacep
