// Tokenizer for the PQL pattern query language (see parser.h).

#ifndef DLACEP_PATTERN_LEXER_H_
#define DLACEP_PATTERN_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dlacep {

enum class TokenKind {
  kIdent,    // type / variable / keyword candidates
  kNumber,   // double literal
  kLParen,   // (
  kRParen,   // )
  kLBrace,   // {
  kRBrace,   // }
  kComma,    // ,
  kDot,      // .
  kDotDot,   // ..
  kStar,     // *
  kPlus,     // +
  kMinus,    // -
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kEq,       // ==
  kNe,       // !=
  kEnd,      // end of input
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier spelling (original case)
  double number = 0.0; // value for kNumber
  size_t offset = 0;   // byte offset in the source, for error messages
};

/// Tokenizes `source`. Identifiers are [A-Za-z_][A-Za-z0-9_]*; numbers
/// are non-negative double literals (sign is a separate kMinus token).
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace dlacep

#endif  // DLACEP_PATTERN_LEXER_H_
