#include "pattern/condition.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace dlacep {

std::vector<const Event*> Binding::AllEvents() const {
  std::vector<const Event*> out;
  for (const auto& slot : slots) {
    out.insert(out.end(), slot.begin(), slot.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Event* a, const Event* b) { return a->id < b->id; });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
  }
  return "?";
}

bool ApplyCmp(CmpOp op, double lhs, double rhs) {
  switch (op) {
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
  }
  return false;
}

bool Condition::CanEval(const Binding& binding) const {
  for (VarId v : Vars()) {
    if (!binding.IsBound(v)) return false;
  }
  return true;
}

namespace {

// Renders one term, e.g. "0.55*a.vol" or "3.1".
std::string TermToString(const Term& term, const Schema* schema) {
  if (!term.ref.has_value()) {
    return StrFormat("%g", term.constant);
  }
  std::string attr_name = schema != nullptr && term.ref->attr < schema->num_attrs()
                              ? schema->AttrName(term.ref->attr)
                              : StrFormat("attr%zu", term.ref->attr);
  std::string base = StrFormat("v%d.%s", term.ref->var, attr_name.c_str());
  if (term.coeff != 1.0) base = StrFormat("%g*", term.coeff) + base;
  if (term.constant != 0.0) base += StrFormat("%+g", term.constant);
  return base;
}

}  // namespace

bool CompareCondition::Eval(const Binding& binding) const {
  // Constant vs constant.
  if (!lhs_.ref.has_value() && !rhs_.ref.has_value()) {
    return ApplyCmp(op_, lhs_.constant, rhs_.constant);
  }
  // One-sided constant: universal over the variable's list.
  if (!lhs_.ref.has_value()) {
    for (const Event* e : binding.Of(rhs_.ref->var)) {
      if (!ApplyCmp(op_, lhs_.constant, rhs_.ValueFor(*e))) return false;
    }
    return true;
  }
  if (!rhs_.ref.has_value()) {
    for (const Event* e : binding.Of(lhs_.ref->var)) {
      if (!ApplyCmp(op_, lhs_.ValueFor(*e), rhs_.constant)) return false;
    }
    return true;
  }
  const auto& left = binding.Of(lhs_.ref->var);
  const auto& right = binding.Of(rhs_.ref->var);
  if (lhs_.ref->var == rhs_.ref->var) {
    // Same variable on both sides: compare element-wise with itself.
    for (const Event* e : left) {
      if (!ApplyCmp(op_, lhs_.ValueFor(*e), rhs_.ValueFor(*e))) return false;
    }
    return true;
  }
  if (left.size() == right.size() && left.size() > 1) {
    // Aligned semantics: both variables belong to the same repetition
    // group (see header comment).
    for (size_t i = 0; i < left.size(); ++i) {
      if (!ApplyCmp(op_, lhs_.ValueFor(*left[i]), rhs_.ValueFor(*right[i]))) {
        return false;
      }
    }
    return true;
  }
  // Universal over the cross product.
  for (const Event* l : left) {
    for (const Event* r : right) {
      if (!ApplyCmp(op_, lhs_.ValueFor(*l), rhs_.ValueFor(*r))) return false;
    }
  }
  return true;
}

std::vector<VarId> CompareCondition::Vars() const {
  std::vector<VarId> vars;
  if (lhs_.ref.has_value()) vars.push_back(lhs_.ref->var);
  if (rhs_.ref.has_value() &&
      (vars.empty() || vars[0] != rhs_.ref->var)) {
    vars.push_back(rhs_.ref->var);
  }
  return vars;
}

std::string CompareCondition::ToString(const Schema* schema) const {
  return TermToString(lhs_, schema) + " " + CmpOpName(op_) + " " +
         TermToString(rhs_, schema);
}

bool AndCondition::Eval(const Binding& binding) const {
  for (const auto& child : children_) {
    if (!child->Eval(binding)) return false;
  }
  return true;
}

std::vector<VarId> AndCondition::Vars() const {
  std::set<VarId> vars;
  for (const auto& child : children_) {
    for (VarId v : child->Vars()) vars.insert(v);
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

std::string AndCondition::ToString(const Schema* schema) const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& child : children_) parts.push_back(child->ToString(schema));
  std::string out = "(";
  out += Join(parts, " AND ");
  out += ")";
  return out;
}

std::unique_ptr<Condition> AndCondition::Clone() const {
  std::vector<std::unique_ptr<Condition>> copies;
  copies.reserve(children_.size());
  for (const auto& child : children_) copies.push_back(child->Clone());
  return std::make_unique<AndCondition>(std::move(copies));
}

bool OrCondition::Eval(const Binding& binding) const {
  for (const auto& child : children_) {
    if (child->Eval(binding)) return true;
  }
  return false;
}

std::vector<VarId> OrCondition::Vars() const {
  std::set<VarId> vars;
  for (const auto& child : children_) {
    for (VarId v : child->Vars()) vars.insert(v);
  }
  return std::vector<VarId>(vars.begin(), vars.end());
}

std::string OrCondition::ToString(const Schema* schema) const {
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const auto& child : children_) parts.push_back(child->ToString(schema));
  std::string out = "(";
  out += Join(parts, " OR ");
  out += ")";
  return out;
}

std::unique_ptr<Condition> OrCondition::Clone() const {
  std::vector<std::unique_ptr<Condition>> copies;
  copies.reserve(children_.size());
  for (const auto& child : children_) copies.push_back(child->Clone());
  return std::make_unique<OrCondition>(std::move(copies));
}

std::unique_ptr<Condition> MakeBandCondition(VarId x, size_t x_attr, VarId y,
                                             size_t y_attr, double lo,
                                             double hi) {
  std::vector<std::unique_ptr<Condition>> parts;
  parts.push_back(std::make_unique<CompareCondition>(
      Term::Attr(y, y_attr, lo), CmpOp::kLt, Term::Attr(x, x_attr)));
  parts.push_back(std::make_unique<CompareCondition>(
      Term::Attr(x, x_attr), CmpOp::kLt, Term::Attr(y, y_attr, hi)));
  return std::make_unique<AndCondition>(std::move(parts));
}

}  // namespace dlacep
