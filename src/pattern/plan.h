// Linear evaluation plans.
//
// Engines do not interpret the operator tree directly; a Pattern is first
// normalized into one or more `LinearPlan`s (one per DISJ branch). A plan
// is a list of positions to fill with stream events plus
//  * a precedence mask per position (SEQ imposes a total order, CONJ
//    leaves positions unordered),
//  * optional whole-plan repetition (top-level KC(SEQ(...))),
//  * negation sub-patterns anchored between positive positions,
//  * the split of WHERE conditions into positive conditions (never
//    reference a negated variable) and negation conditions (reference at
//    least one negated variable; they qualify a negated occurrence).
//
// The union of the match sets of all plans, deduplicated by event-id set,
// is the pattern's match set M(s)_P.

#ifndef DLACEP_PATTERN_PLAN_H_
#define DLACEP_PATTERN_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "pattern/pattern.h"

namespace dlacep {

/// One event slot of a linear plan.
struct PlanPosition {
  VarId var = -1;
  /// Accepted event types, sorted ascending.
  std::vector<TypeId> types;
  /// Kleene position: absorbs min_reps..max_reps ordered events.
  bool kleene = false;
  size_t min_reps = 1;
  size_t max_reps = 1;

  bool Matches(TypeId type) const {
    return std::binary_search(types.begin(), types.end(), type);
  }
};

/// A negated sub-pattern: an ordered run of positions that must NOT occur
/// strictly between the events bound to the bracketing plan positions.
struct NegSubPattern {
  std::vector<PlanPosition> positions;
  /// Index (into LinearPlan::positions) of the nearest positive position
  /// preceding the NEG in the SEQ.
  int after_pos = -1;
  /// Index of the nearest positive position following the NEG.
  int before_pos = -1;
};

/// A compiled, engine-consumable plan.
struct LinearPlan {
  std::vector<PlanPosition> positions;
  /// preds[i]: bitmask of positions that must be filled before position i
  /// may be filled (events arrive in order, so SEQ order reduces to fill
  /// order). Plans are limited to 64 positions.
  std::vector<uint64_t> preds;

  /// Top-level KC(SEQ(...)): the whole position list may repeat, with
  /// every variable accumulating one event per repetition.
  bool group_repeat = false;
  size_t group_min_reps = 1;
  size_t group_max_reps = 1;

  std::vector<NegSubPattern> negs;

  /// Conditions over positive variables only (owned by the Pattern).
  std::vector<const Condition*> pos_conditions;
  /// Conditions referencing at least one negated variable.
  std::vector<const Condition*> neg_conditions;

  const Pattern* pattern = nullptr;  ///< non-owning source pattern

  size_t num_positions() const { return positions.size(); }
};

/// Compiles a validated pattern into its linear plans (one per DISJ
/// branch; a single plan otherwise). The returned plans alias the
/// pattern's conditions and must not outlive it.
StatusOr<std::vector<LinearPlan>> CompilePlans(const Pattern& pattern);

/// True iff a condition may be evaluated on `binding` for *pruning*: all
/// referenced variables are bound and, when two or more referenced
/// variables are Kleene lists, their lengths agree (aligned prefixes).
/// Pruning on unequal-length lists could reject bindings that become
/// valid once the shorter list catches up.
bool ReadyForPruningEval(const Condition& condition, const Binding& binding,
                         const Pattern& pattern);

/// Checks whether `binding` (a complete assignment of the plan's positive
/// positions) is invalidated by any negated sub-pattern occurring in
/// `stream_span` (which must be sorted by event id and contain the
/// relevant interval).
bool ViolatesNegation(const LinearPlan& plan, const Binding& binding,
                      std::span<const Event> stream_span);

}  // namespace dlacep

#endif  // DLACEP_PATTERN_PLAN_H_
