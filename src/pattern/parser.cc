#include "pattern/parser.h"

#include <vector>

#include "common/string_util.h"
#include "pattern/builder.h"
#include "pattern/lexer.h"

namespace dlacep {

namespace {

constexpr size_t kDefaultCountWindow = 100;

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, std::shared_ptr<const Schema> schema)
      : tokens_(std::move(tokens)), builder_(std::move(schema)) {}

  StatusOr<Pattern> Parse() {
    if (IsKeyword("PATTERN")) Advance();
    auto root = ParseNode();
    if (!root.ok()) return root.status();
    if (IsKeyword("WHERE")) {
      Advance();
      auto condition = ParseOrExpr();
      if (!condition.ok()) return condition.status();
      builder_.Where(std::move(condition).value());
    }
    WindowSpec window = WindowSpec::Count(kDefaultCountWindow);
    if (IsKeyword("WITHIN")) {
      Advance();
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected window size after WITHIN");
      }
      const double size = Peek().number;
      Advance();
      if (IsKeyword("TIME")) {
        Advance();
        window = WindowSpec::Time(size);
      } else {
        if (IsKeyword("EVENTS")) Advance();
        if (size < 1.0 || size != static_cast<double>(
                                      static_cast<size_t>(size))) {
          return Error("count window size must be a positive integer");
        }
        window = WindowSpec::Count(static_cast<size_t>(size));
      }
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after query");
    }
    return builder_.Build(std::move(root).value(), window);
  }

 private:
  using Node = PatternBuilder::Node;

  const Token& Peek(size_t ahead = 0) const {
    const size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool IsKeyword(std::string_view word) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, word);
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu: %s", Peek().offset,
                  message.c_str()));
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrFormat("expected %s, found %s", TokenKindName(kind),
                             TokenKindName(Peek().kind)));
    }
    Advance();
    return Status::Ok();
  }

  StatusOr<Node> ParseNode() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected pattern operator or event type");
    }
    const std::string head = Peek().text;
    if (EqualsIgnoreCase(head, "SEQ") || EqualsIgnoreCase(head, "CONJ") ||
        EqualsIgnoreCase(head, "DISJ")) {
      Advance();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<Node> children;
      while (true) {
        auto child = ParseNode();
        if (!child.ok()) return child.status();
        children.push_back(std::move(child).value());
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (EqualsIgnoreCase(head, "SEQ")) {
        return builder_.SeqOf(std::move(children));
      }
      if (EqualsIgnoreCase(head, "CONJ")) {
        return builder_.ConjOf(std::move(children));
      }
      return builder_.DisjOf(std::move(children));
    }
    if (EqualsIgnoreCase(head, "KC")) {
      Advance();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      auto child = ParseNode();
      if (!child.ok()) return child.status();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      size_t min_reps = 1;
      size_t max_reps = 3;
      if (Peek().kind == TokenKind::kLBrace) {
        Advance();
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected min repetition count");
        }
        min_reps = static_cast<size_t>(Peek().number);
        Advance();
        DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kDotDot));
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected max repetition count");
        }
        max_reps = static_cast<size_t>(Peek().number);
        Advance();
        DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
        if (min_reps < 1 || max_reps < min_reps) {
          return Error("invalid KC repetition bounds");
        }
      }
      return builder_.Kleene(std::move(child).value(), min_reps, max_reps);
    }
    if (EqualsIgnoreCase(head, "ANY")) {
      // ANY(T1, T2, ...) varName — a multi-type position.
      Advance();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<std::string> names;
      while (true) {
        if (Peek().kind != TokenKind::kIdent) {
          return Error("expected event type inside ANY(...)");
        }
        if (!builder_.schema().TypeIdOf(Peek().text).ok()) {
          return Error("unknown event type '" + Peek().text + "'");
        }
        names.push_back(Peek().text);
        Advance();
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected variable name after ANY(...)");
      }
      const std::string var_name = Peek().text;
      if (builder_.FindVar(var_name).ok()) {
        return Error("duplicate variable name '" + var_name + "'");
      }
      Advance();
      return builder_.PrimAnyOf(names, var_name);
    }
    if (EqualsIgnoreCase(head, "NEG")) {
      Advance();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      auto child = ParseNode();
      if (!child.ok()) return child.status();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return builder_.Neg(std::move(child).value());
    }
    // Primitive: TypeName varName.
    auto type = builder_.schema().TypeIdOf(head);
    if (!type.ok()) {
      return Error("unknown event type '" + head + "'");
    }
    Advance();
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected variable name after event type '" + head + "'");
    }
    const std::string var_name = Peek().text;
    if (builder_.FindVar(var_name).ok()) {
      return Error("duplicate variable name '" + var_name + "'");
    }
    Advance();
    return builder_.Prim(head, var_name);
  }

  StatusOr<std::unique_ptr<Condition>> ParseOrExpr() {
    std::vector<std::unique_ptr<Condition>> parts;
    auto first = ParseAndExpr();
    if (!first.ok()) return first.status();
    parts.push_back(std::move(first).value());
    while (IsKeyword("OR")) {
      Advance();
      auto next = ParseAndExpr();
      if (!next.ok()) return next.status();
      parts.push_back(std::move(next).value());
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return std::unique_ptr<Condition>(
        std::make_unique<OrCondition>(std::move(parts)));
  }

  StatusOr<std::unique_ptr<Condition>> ParseAndExpr() {
    std::vector<std::unique_ptr<Condition>> parts;
    auto first = ParsePrimary();
    if (!first.ok()) return first.status();
    parts.push_back(std::move(first).value());
    while (IsKeyword("AND")) {
      Advance();
      auto next = ParsePrimary();
      if (!next.ok()) return next.status();
      parts.push_back(std::move(next).value());
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return std::unique_ptr<Condition>(
        std::make_unique<AndCondition>(std::move(parts)));
  }

  StatusOr<std::unique_ptr<Condition>> ParsePrimary() {
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      auto inner = ParseOrExpr();
      if (!inner.ok()) return inner.status();
      DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    return ParseComparison();
  }

  static CmpOp CmpFromToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kLt: return CmpOp::kLt;
      case TokenKind::kLe: return CmpOp::kLe;
      case TokenKind::kGt: return CmpOp::kGt;
      case TokenKind::kGe: return CmpOp::kGe;
      case TokenKind::kEq: return CmpOp::kEq;
      default: return CmpOp::kNe;
    }
  }

  static bool IsCmpToken(TokenKind kind) {
    return kind == TokenKind::kLt || kind == TokenKind::kLe ||
           kind == TokenKind::kGt || kind == TokenKind::kGe ||
           kind == TokenKind::kEq || kind == TokenKind::kNe;
  }

  StatusOr<std::unique_ptr<Condition>> ParseComparison() {
    auto first = ParseTerm();
    if (!first.ok()) return first.status();
    if (!IsCmpToken(Peek().kind)) {
      return Error("expected comparison operator");
    }
    std::vector<std::unique_ptr<Condition>> chain;
    Term prev = std::move(first).value();
    while (IsCmpToken(Peek().kind)) {
      const CmpOp op = CmpFromToken(Peek().kind);
      Advance();
      auto next = ParseTerm();
      if (!next.ok()) return next.status();
      chain.push_back(
          std::make_unique<CompareCondition>(prev, op, next.value()));
      prev = std::move(next).value();
    }
    if (chain.size() == 1) return std::move(chain[0]);
    return std::unique_ptr<Condition>(
        std::make_unique<AndCondition>(std::move(chain)));
  }

  StatusOr<Term> ParseTerm() {
    double sign = 1.0;
    if (Peek().kind == TokenKind::kMinus) {
      sign = -1.0;
      Advance();
    }
    if (Peek().kind == TokenKind::kNumber) {
      const double number = sign * Peek().number;
      Advance();
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        auto ref = ParseAttrRef();
        if (!ref.ok()) return ref.status();
        Term t = std::move(ref).value();
        t.coeff = number;
        return ApplyOffset(std::move(t));
      }
      return Term::Const(number);
    }
    if (Peek().kind == TokenKind::kIdent) {
      if (sign < 0) {
        return Error("negated attribute references are not supported; "
                     "use a -1 coefficient instead");
      }
      auto ref = ParseAttrRef();
      if (!ref.ok()) return ref.status();
      return ApplyOffset(std::move(ref).value());
    }
    return Error("expected a numeric constant or var.attr reference");
  }

  StatusOr<Term> ApplyOffset(Term term) {
    if (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      const double sign = Peek().kind == TokenKind::kPlus ? 1.0 : -1.0;
      Advance();
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected numeric offset");
      }
      term.constant = sign * Peek().number;
      Advance();
    }
    return term;
  }

  StatusOr<Term> ParseAttrRef() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected variable name");
    }
    const std::string var_name = Peek().text;
    Advance();
    DLACEP_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected attribute name");
    }
    const std::string attr_name = Peek().text;
    Advance();
    auto attr = builder_.schema().AttrIndexOf(attr_name);
    if (!attr.ok()) {
      return Error("unknown attribute '" + attr_name + "'");
    }
    auto var = builder_.FindVar(var_name);
    if (!var.ok()) {
      return Error("unknown variable '" + var_name + "'");
    }
    return Term::Attr(var.value(), attr.value());
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  PatternBuilder builder_;
};

}  // namespace

StatusOr<Pattern> ParsePattern(std::string_view source,
                               std::shared_ptr<const Schema> schema) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), std::move(schema));
  return parser.Parse();
}

}  // namespace dlacep
