// Fluent programmatic construction of patterns.
//
// Example (the paper's introductory stock pattern):
//
//   PatternBuilder b(schema);
//   auto node = b.Seq(b.Prim("GOOG", "a"), b.Prim("AAPL", "b"),
//                     b.Prim("MSFT", "c"));
//   b.Where(MakeBandCondition(b.Var("b"), vol, b.Var("a"), vol, 0.55, 1.45));
//   Pattern p = b.BuildOrDie(std::move(node), WindowSpec::Count(150));

#ifndef DLACEP_PATTERN_BUILDER_H_
#define DLACEP_PATTERN_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pattern/pattern.h"

namespace dlacep {

/// Builds a Pattern step by step. Variables are registered on first use
/// by Prim(); conditions may reference them through Var()/Attr().
class PatternBuilder {
 public:
  using Node = std::unique_ptr<PatternNode>;

  explicit PatternBuilder(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {
    DLACEP_CHECK(schema_ != nullptr);
  }

  /// A primitive position binding a fresh variable `var_name` of event
  /// type `type_name`. Aborts when the type is unknown or the variable
  /// name was already used.
  Node Prim(const std::string& type_name, const std::string& var_name);

  /// A primitive accepting any of several named types (the paper's
  /// "S_t ∈ T_k" position binding any of the top-k identifiers).
  Node PrimAnyOf(const std::vector<std::string>& type_names,
                 const std::string& var_name);

  /// Same, with raw type ids (used by the workload kit, where T_k is a
  /// contiguous id range by construction).
  Node PrimAnyOfIds(std::vector<TypeId> types, const std::string& var_name);

  /// Composition helpers accepting any number of child nodes.
  template <typename... Nodes>
  Node Seq(Nodes... children) {
    return Compose(OpKind::kSeq, MoveToVector(std::move(children)...));
  }
  template <typename... Nodes>
  Node Conj(Nodes... children) {
    return Compose(OpKind::kConj, MoveToVector(std::move(children)...));
  }
  template <typename... Nodes>
  Node Disj(Nodes... children) {
    return Compose(OpKind::kDisj, MoveToVector(std::move(children)...));
  }

  /// Vector-based overloads for programmatic composition.
  Node SeqOf(std::vector<Node> children) {
    return Compose(OpKind::kSeq, std::move(children));
  }
  Node ConjOf(std::vector<Node> children) {
    return Compose(OpKind::kConj, std::move(children));
  }
  Node DisjOf(std::vector<Node> children) {
    return Compose(OpKind::kDisj, std::move(children));
  }

  /// Kleene closure over `child`; every variable below becomes a list
  /// variable. `max_reps` bounds enumeration (see pattern.h).
  Node Kleene(Node child, size_t min_reps = 1, size_t max_reps = 3);

  /// Negation of `child`; every variable below is marked negated.
  Node Neg(Node child);

  /// Adds a WHERE conjunct.
  PatternBuilder& Where(std::unique_ptr<Condition> condition);

  /// Convenience: lo * y.attr < x.attr < hi * y.attr on attribute
  /// `attr_name` of both variables.
  PatternBuilder& WhereBand(const std::string& x_var,
                            const std::string& y_var,
                            const std::string& attr_name, double lo,
                            double hi);

  /// Convenience: single comparison `coeff_l * l.attr (op) coeff_r *
  /// r.attr`.
  PatternBuilder& WhereCmp(double coeff_l, const std::string& l_var,
                           const std::string& attr_name, CmpOp op,
                           double coeff_r, const std::string& r_var);

  /// Id of a registered variable; aborts when unknown.
  VarId Var(const std::string& name) const;

  /// Non-aborting lookup for parser error paths.
  StatusOr<VarId> FindVar(const std::string& name) const;

  /// Term referencing `var.attr` (for hand-built CompareConditions).
  Term Attr(const std::string& var, const std::string& attr,
            double coeff = 1.0) const;

  /// Finalizes the pattern. The builder is left in a moved-from state.
  StatusOr<Pattern> Build(Node root, WindowSpec window);

  /// Build() that aborts on error — for tests and static workloads.
  Pattern BuildOrDie(Node root, WindowSpec window);

  const Schema& schema() const { return *schema_; }

 private:
  template <typename... Nodes>
  static std::vector<Node> MoveToVector(Nodes... children) {
    std::vector<Node> out;
    out.reserve(sizeof...(children));
    (out.push_back(std::move(children)), ...);
    return out;
  }

  Node Compose(OpKind kind, std::vector<Node> children);
  void MarkVars(const PatternNode& node, bool kleene, bool negated);

  std::shared_ptr<const Schema> schema_;
  std::vector<VarInfo> vars_;
  std::vector<std::unique_ptr<Condition>> conditions_;
};

}  // namespace dlacep

#endif  // DLACEP_PATTERN_BUILDER_H_
