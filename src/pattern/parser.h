// PQL: a small textual pattern query language, modeled after the event
// specification syntax used in the paper (§2.1):
//
//   PATTERN SEQ(GOOG a, AAPL b, MSFT c, INTC d, AMZN e)
//   WHERE 0.55 * a.vol < b.vol AND b.vol < 1.45 * c.vol AND
//         3 * e.vol < d.vol
//   WITHIN 150 EVENTS
//
// Grammar (case-insensitive keywords):
//
//   query   := [PATTERN] node [WHERE orExpr] [WITHIN number (EVENTS|TIME)]
//   node    := SEQ '(' nodeList ')' | CONJ '(' nodeList ')'
//            | DISJ '(' nodeList ')'
//            | KC '(' node ')' [ '{' int '..' int '}' ]
//            | NEG '(' node ')'
//            | IDENT IDENT                        // TypeName varName
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := primary (AND primary)*
//   primary := '(' orExpr ')' | comparison
//   comparison := term (cmpOp term)+              // chains: a < b < c
//   term    := [number '*'] IDENT '.' IDENT [('+'|'-') number]
//            | ['-'] number
//   cmpOp   := '<' | '<=' | '>' | '>=' | '==' | '!='
//
// The default window when WITHIN is omitted is a count window of 100.
// Chained comparisons expand into conjunctions of adjacent pairs, exactly
// matching the "0.55·a.vol < b.vol < 1.45·c.vol" notation of the paper.

#ifndef DLACEP_PATTERN_PARSER_H_
#define DLACEP_PATTERN_PARSER_H_

#include <memory>
#include <string_view>

#include "pattern/pattern.h"

namespace dlacep {

/// Parses a PQL query against `schema`. All event types and attributes
/// referenced by the query must already exist in the schema.
StatusOr<Pattern> ParsePattern(std::string_view source,
                               std::shared_ptr<const Schema> schema);

}  // namespace dlacep

#endif  // DLACEP_PATTERN_PARSER_H_
