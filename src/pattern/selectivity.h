// Sampling-based estimation of arrival rates and predicate selectivities
// (the R and SEL vectors of the paper's §3.2 complexity model, also the
// inputs of the ZStream cost model in the tree engine).

#ifndef DLACEP_PATTERN_SELECTIVITY_H_
#define DLACEP_PATTERN_SELECTIVITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "pattern/plan.h"

namespace dlacep {

/// Estimated workload statistics for one linear plan.
struct PlanStatistics {
  /// rates[i]: expected events per stream event matching position i's type
  /// (the r_i of §3.2).
  std::vector<double> rates;
  /// pair_sel[i][j] for i < j: estimated probability that a random
  /// (type-correct) event pair for positions i and j satisfies every
  /// condition whose variables are exactly {var_i, var_j}. Unconstrained
  /// pairs have selectivity 1. Symmetric entries mirror; diagonal holds
  /// the unary selectivity of position i.
  std::vector<std::vector<double>> pair_sel;
};

/// Estimates statistics by sampling `num_samples` random event
/// (pairs/singletons) per entry from `sample`. Deterministic given seed.
/// Positions whose type is absent from the sample get rate 0 and
/// selectivity 1.
PlanStatistics EstimatePlanStatistics(const LinearPlan& plan,
                                      std::span<const Event> sample,
                                      uint64_t seed,
                                      size_t num_samples = 2000);

}  // namespace dlacep

#endif  // DLACEP_PATTERN_SELECTIVITY_H_
