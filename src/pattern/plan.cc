#include "pattern/plan.h"

#include <algorithm>

namespace dlacep {

namespace {

PlanPosition PositionFromPrimitive(const PatternNode& node) {
  DLACEP_CHECK(node.kind == OpKind::kPrimitive);
  PlanPosition pos;
  pos.var = node.var;
  pos.types = node.types;
  return pos;
}

// Appends the positions of a SEQ node (primitives and KC(primitive)
// children) to `plan`, chaining precedence, and records NEG children.
Status AppendSeq(const PatternNode& seq, LinearPlan* plan) {
  int last_positive = static_cast<int>(plan->positions.size()) - 1;
  // Pending NEG children waiting for their following positive position.
  std::vector<size_t> pending_negs;

  for (const auto& child : seq.children) {
    if (child->kind == OpKind::kNeg) {
      NegSubPattern neg;
      const PatternNode& inner = *child->children[0];
      if (inner.kind == OpKind::kPrimitive) {
        neg.positions.push_back(PositionFromPrimitive(inner));
      } else {
        DLACEP_CHECK(inner.kind == OpKind::kSeq);
        for (const auto& grand : inner.children) {
          if (grand->kind != OpKind::kPrimitive) {
            return Status::Unimplemented(
                "NEG(SEQ) children must be primitives");
          }
          neg.positions.push_back(PositionFromPrimitive(*grand));
        }
      }
      neg.after_pos = last_positive;
      neg.before_pos = -1;  // patched when the next positive arrives
      plan->negs.push_back(std::move(neg));
      pending_negs.push_back(plan->negs.size() - 1);
      continue;
    }

    PlanPosition pos;
    if (child->kind == OpKind::kPrimitive) {
      pos = PositionFromPrimitive(*child);
    } else if (child->kind == OpKind::kKleene &&
               child->children[0]->kind == OpKind::kPrimitive) {
      pos = PositionFromPrimitive(*child->children[0]);
      pos.kleene = true;
      pos.min_reps = child->min_reps;
      pos.max_reps = child->max_reps;
    } else {
      return Status::Unimplemented("unsupported SEQ child in plan compiler");
    }
    const int index = static_cast<int>(plan->positions.size());
    if (index >= 64) {
      return Status::ResourceExhausted("plans are limited to 64 positions");
    }
    uint64_t pred_mask = 0;
    if (last_positive >= 0) {
      // Transitively ordered after every earlier position of this SEQ.
      pred_mask = plan->preds[static_cast<size_t>(last_positive)] |
                  (uint64_t{1} << last_positive);
    }
    plan->positions.push_back(pos);
    plan->preds.push_back(pred_mask);
    for (size_t neg_index : pending_negs) {
      plan->negs[neg_index].before_pos = index;
    }
    pending_negs.clear();
    last_positive = index;
  }
  if (!pending_negs.empty()) {
    return Status::InvalidArgument(
        "NEG must be followed by a positive SEQ position");
  }
  return Status::Ok();
}

Status AppendConj(const PatternNode& conj, LinearPlan* plan) {
  for (const auto& child : conj.children) {
    if (child->kind != OpKind::kPrimitive) {
      return Status::Unimplemented("CONJ children must be primitives");
    }
    if (plan->positions.size() >= 64) {
      return Status::ResourceExhausted("plans are limited to 64 positions");
    }
    plan->positions.push_back(PositionFromPrimitive(*child));
    plan->preds.push_back(0);  // unordered
  }
  return Status::Ok();
}

Status CompileBranch(const PatternNode& node, const Pattern& pattern,
                     LinearPlan* plan) {
  plan->pattern = &pattern;
  switch (node.kind) {
    case OpKind::kPrimitive:
      plan->positions.push_back(PositionFromPrimitive(node));
      plan->preds.push_back(0);
      return Status::Ok();
    case OpKind::kSeq:
      return AppendSeq(node, plan);
    case OpKind::kConj:
      return AppendConj(node, plan);
    case OpKind::kKleene: {
      const PatternNode& inner = *node.children[0];
      if (inner.kind == OpKind::kPrimitive) {
        PlanPosition pos = PositionFromPrimitive(inner);
        pos.kleene = true;
        pos.min_reps = node.min_reps;
        pos.max_reps = node.max_reps;
        plan->positions.push_back(pos);
        plan->preds.push_back(0);
        return Status::Ok();
      }
      DLACEP_CHECK(inner.kind == OpKind::kSeq);
      DLACEP_RETURN_IF_ERROR(AppendSeq(inner, plan));
      if (!plan->negs.empty()) {
        return Status::Unimplemented("NEG inside KC(SEQ) is not supported");
      }
      plan->group_repeat = true;
      plan->group_min_reps = node.min_reps;
      plan->group_max_reps = node.max_reps;
      return Status::Ok();
    }
    default:
      return Status::Unimplemented(
          std::string("cannot compile branch of kind ") +
          OpKindName(node.kind));
  }
}

// Splits the pattern's conditions between positive and negation sets.
void AttachConditions(const Pattern& pattern, LinearPlan* plan) {
  // Only consider conditions whose variables all appear in this plan
  // (relevant for DISJ: each branch sees its own variables).
  std::vector<bool> in_plan(pattern.num_vars(), false);
  for (const PlanPosition& pos : plan->positions) {
    in_plan[static_cast<size_t>(pos.var)] = true;
  }
  for (const NegSubPattern& neg : plan->negs) {
    for (const PlanPosition& pos : neg.positions) {
      in_plan[static_cast<size_t>(pos.var)] = true;
    }
  }
  for (const auto& condition : pattern.conditions()) {
    bool relevant = true;
    bool references_negated = false;
    for (VarId v : condition->Vars()) {
      if (!in_plan[static_cast<size_t>(v)]) {
        relevant = false;
        break;
      }
      if (pattern.vars()[static_cast<size_t>(v)].negated) {
        references_negated = true;
      }
    }
    if (!relevant) continue;
    if (references_negated) {
      plan->neg_conditions.push_back(condition.get());
    } else {
      plan->pos_conditions.push_back(condition.get());
    }
  }
}

}  // namespace

StatusOr<std::vector<LinearPlan>> CompilePlans(const Pattern& pattern) {
  DLACEP_RETURN_IF_ERROR(pattern.Validate());
  std::vector<LinearPlan> plans;
  const PatternNode& root = pattern.root();
  if (root.kind == OpKind::kDisj) {
    for (const auto& branch : root.children) {
      LinearPlan plan;
      DLACEP_RETURN_IF_ERROR(CompileBranch(*branch, pattern, &plan));
      AttachConditions(pattern, &plan);
      plans.push_back(std::move(plan));
    }
  } else {
    LinearPlan plan;
    DLACEP_RETURN_IF_ERROR(CompileBranch(root, pattern, &plan));
    AttachConditions(pattern, &plan);
    plans.push_back(std::move(plan));
  }
  return plans;
}

bool ReadyForPruningEval(const Condition& condition, const Binding& binding,
                         const Pattern& pattern) {
  size_t kleene_len = 0;
  size_t num_kleene = 0;
  for (VarId v : condition.Vars()) {
    if (!binding.IsBound(v)) return false;
    if (pattern.vars()[static_cast<size_t>(v)].kleene) {
      const size_t len = binding.Of(v).size();
      if (num_kleene > 0 && len != kleene_len) return false;
      kleene_len = len;
      ++num_kleene;
    }
  }
  return true;
}

namespace {

// Recursively searches for an occurrence of neg.positions[index..] whose
// events lie strictly inside (lo_id, hi_id), after `prev_id`, satisfying
// the plan's negation conditions once fully bound.
bool FindNegOccurrence(const LinearPlan& plan, const NegSubPattern& neg,
                       size_t index, EventId prev_id, EventId hi_id,
                       std::span<const Event> span, Binding* binding) {
  if (index == neg.positions.size()) {
    for (const Condition* condition : plan.neg_conditions) {
      if (!condition->CanEval(*binding)) continue;
      if (!condition->Eval(*binding)) return false;
    }
    return true;
  }
  const PlanPosition& pos = neg.positions[index];
  // Binary search for the first event with id > prev_id.
  auto it = std::upper_bound(
      span.begin(), span.end(), prev_id,
      [](EventId id, const Event& e) { return id < e.id; });
  for (; it != span.end() && it->id < hi_id; ++it) {
    if (!pos.Matches(it->type)) continue;
    binding->Bind(pos.var, &*it);
    if (FindNegOccurrence(plan, neg, index + 1, it->id, hi_id, span,
                          binding)) {
      binding->Unbind(pos.var);
      return true;
    }
    binding->Unbind(pos.var);
  }
  return false;
}

}  // namespace

bool ViolatesNegation(const LinearPlan& plan, const Binding& binding,
                      std::span<const Event> stream_span) {
  if (plan.negs.empty()) return false;
  Binding scratch = binding;
  for (const NegSubPattern& neg : plan.negs) {
    DLACEP_CHECK_GE(neg.after_pos, 0);
    DLACEP_CHECK_GE(neg.before_pos, 0);
    const PlanPosition& after = plan.positions[static_cast<size_t>(neg.after_pos)];
    const PlanPosition& before = plan.positions[static_cast<size_t>(neg.before_pos)];
    const auto& after_events = binding.Of(after.var);
    const auto& before_events = binding.Of(before.var);
    const EventId lo_id = after_events.back()->id;
    const EventId hi_id = before_events.front()->id;
    if (hi_id <= lo_id + 1) continue;  // empty interval
    if (FindNegOccurrence(plan, neg, 0, lo_id, hi_id, stream_span,
                          &scratch)) {
      return true;
    }
  }
  return false;
}

}  // namespace dlacep
