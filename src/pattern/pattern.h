// The pattern model: operator AST + conditions + window.
//
// Supported operators (paper §2.1): SEQ (sequence), CONJ (conjunction),
// DISJ (disjunction), KC (Kleene closure), NEG (negation). Selection
// strategy is skip-till-any-match throughout (the paper's — and worst
// case — policy): partial matches may skip arbitrarily many events, so
// every conforming subset of the window is a distinct match.
//
// Supported shapes (these cover every query template in Tables 1 and 2;
// Validate() rejects anything deeper with kUnimplemented):
//   top level:  SEQ | CONJ | DISJ(SEQ...) | KC(SEQ) | KC(primitive)
//   SEQ child:  primitive | KC(primitive) | NEG(primitive) | NEG(SEQ)
//   CONJ child: primitive
//
// Kleene semantics: KC(primitive) binds 1..max_reps ordered events of the
// primitive's type to a single list variable. KC(SEQ(p1..pj)) binds
// 1..max_reps ordered repetitions of the inner sequence; each inner
// variable accumulates one event per repetition and conditions between
// the inner variables apply per-repetition (aligned lists).
//
// Negation semantics: NEG may appear strictly between two positive
// positions of a SEQ. A candidate match is discarded iff an occurrence of
// the negated sub-pattern exists strictly between the bracketing bound
// events *in the stream being evaluated*, satisfying all conditions that
// reference the negated variables.

#ifndef DLACEP_PATTERN_PATTERN_H_
#define DLACEP_PATTERN_PATTERN_H_

#include <memory>
#include <string>
#include <vector>

#include "pattern/condition.h"
#include "stream/schema.h"
#include "stream/window.h"

namespace dlacep {

enum class OpKind { kPrimitive, kSeq, kConj, kDisj, kKleene, kNeg };

const char* OpKindName(OpKind kind);

/// A node of the operator tree. Primitive nodes carry the accepted event
/// types and the variable they bind; Kleene nodes carry repetition
/// bounds.
///
/// A primitive may accept a *set* of types: the paper's query templates
/// bind positions to "the top-k most prevalent stock identifiers" (the
/// T_k sets of Table 1), i.e. any one of k concrete types.
struct PatternNode {
  OpKind kind = OpKind::kPrimitive;

  // Primitive only: accepted types (sorted, deduplicated) and the bound
  // variable.
  std::vector<TypeId> types;
  VarId var = -1;

  // Kleene only. The paper's KC is unbounded (1+); max_reps bounds the
  // enumeration so that skip-till-any-match stays finite, and is part of
  // the query definition in this implementation.
  size_t min_reps = 1;
  size_t max_reps = 3;

  std::vector<std::unique_ptr<PatternNode>> children;

  static std::unique_ptr<PatternNode> Primitive(TypeId type, VarId var);
  static std::unique_ptr<PatternNode> PrimitiveAnyOf(
      std::vector<TypeId> types, VarId var);
  static std::unique_ptr<PatternNode> Compose(
      OpKind kind, std::vector<std::unique_ptr<PatternNode>> children);
  static std::unique_ptr<PatternNode> Kleene(
      std::unique_ptr<PatternNode> child, size_t min_reps, size_t max_reps);
  static std::unique_ptr<PatternNode> Neg(std::unique_ptr<PatternNode> child);

  std::unique_ptr<PatternNode> Clone() const;
};

/// Metadata of a pattern variable.
struct VarInfo {
  std::string name;
  std::vector<TypeId> types;  ///< accepted event types
  bool kleene = false;   ///< binds a list (under a KC operator)
  bool negated = false;  ///< declared under a NEG operator
};

/// A complete pattern: operator tree + conditions + window.
class Pattern {
 public:
  Pattern(std::shared_ptr<const Schema> schema,
          std::unique_ptr<PatternNode> root,
          std::vector<std::unique_ptr<Condition>> conditions,
          std::vector<VarInfo> vars, WindowSpec window);

  Pattern(const Pattern& other);
  Pattern& operator=(const Pattern&) = delete;
  Pattern(Pattern&&) = default;

  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }
  const PatternNode& root() const { return *root_; }
  const std::vector<std::unique_ptr<Condition>>& conditions() const {
    return conditions_;
  }
  const std::vector<VarInfo>& vars() const { return vars_; }
  size_t num_vars() const { return vars_.size(); }
  const WindowSpec& window() const { return window_; }

  /// Checks the structural restrictions documented above.
  Status Validate() const;

  /// The event types referenced anywhere in the pattern (positive and
  /// negated positions), deduplicated.
  std::vector<TypeId> ReferencedTypes() const;

  /// The type set of every primitive position (including negated ones),
  /// in tree order. Used by the featurizer to compact one-hot type
  /// encodings by membership signature (paper §4.3).
  std::vector<std::vector<TypeId>> PrimitiveTypeSets() const;

  /// True when the pattern contains a NEG operator (affects both the
  /// labeling scheme and the accuracy metric; paper §4.4, §5.1).
  bool HasNegation() const;

  /// Human-readable rendering for logs and reports.
  std::string ToString() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::unique_ptr<PatternNode> root_;
  std::vector<std::unique_ptr<Condition>> conditions_;
  std::vector<VarInfo> vars_;
  WindowSpec window_;
};

}  // namespace dlacep

#endif  // DLACEP_PATTERN_PATTERN_H_
