#include "pattern/builder.h"

namespace dlacep {

PatternBuilder::Node PatternBuilder::Prim(const std::string& type_name,
                                          const std::string& var_name) {
  auto type = schema_->TypeIdOf(type_name);
  DLACEP_CHECK_MSG(type.ok(), "unknown type " + type_name);
  return PrimAnyOfIds({type.value()}, var_name);
}

PatternBuilder::Node PatternBuilder::PrimAnyOf(
    const std::vector<std::string>& type_names, const std::string& var_name) {
  std::vector<TypeId> types;
  types.reserve(type_names.size());
  for (const std::string& name : type_names) {
    auto type = schema_->TypeIdOf(name);
    DLACEP_CHECK_MSG(type.ok(), "unknown type " + name);
    types.push_back(type.value());
  }
  return PrimAnyOfIds(std::move(types), var_name);
}

PatternBuilder::Node PatternBuilder::PrimAnyOfIds(
    std::vector<TypeId> types, const std::string& var_name) {
  DLACEP_CHECK(!types.empty());
  for (const VarInfo& v : vars_) {
    DLACEP_CHECK_MSG(v.name != var_name,
                     "duplicate variable name " + var_name);
  }
  const VarId var = static_cast<VarId>(vars_.size());
  Node node = PatternNode::PrimitiveAnyOf(std::move(types), var);
  vars_.push_back(VarInfo{var_name, node->types, /*kleene=*/false,
                          /*negated=*/false});
  return node;
}

PatternBuilder::Node PatternBuilder::Compose(OpKind kind,
                                             std::vector<Node> children) {
  DLACEP_CHECK(!children.empty());
  return PatternNode::Compose(kind, std::move(children));
}

void PatternBuilder::MarkVars(const PatternNode& node, bool kleene,
                              bool negated) {
  if (node.kind == OpKind::kPrimitive) {
    DLACEP_CHECK_GE(node.var, 0);
    DLACEP_CHECK_LT(static_cast<size_t>(node.var), vars_.size());
    if (kleene) vars_[static_cast<size_t>(node.var)].kleene = true;
    if (negated) vars_[static_cast<size_t>(node.var)].negated = true;
    return;
  }
  for (const auto& child : node.children) MarkVars(*child, kleene, negated);
}

PatternBuilder::Node PatternBuilder::Kleene(Node child, size_t min_reps,
                                            size_t max_reps) {
  DLACEP_CHECK(child != nullptr);
  MarkVars(*child, /*kleene=*/true, /*negated=*/false);
  return PatternNode::Kleene(std::move(child), min_reps, max_reps);
}

PatternBuilder::Node PatternBuilder::Neg(Node child) {
  DLACEP_CHECK(child != nullptr);
  MarkVars(*child, /*kleene=*/false, /*negated=*/true);
  return PatternNode::Neg(std::move(child));
}

PatternBuilder& PatternBuilder::Where(std::unique_ptr<Condition> condition) {
  DLACEP_CHECK(condition != nullptr);
  conditions_.push_back(std::move(condition));
  return *this;
}

PatternBuilder& PatternBuilder::WhereBand(const std::string& x_var,
                                          const std::string& y_var,
                                          const std::string& attr_name,
                                          double lo, double hi) {
  auto attr = schema_->AttrIndexOf(attr_name);
  DLACEP_CHECK_MSG(attr.ok(), "unknown attribute " + attr_name);
  return Where(MakeBandCondition(Var(x_var), attr.value(), Var(y_var),
                                 attr.value(), lo, hi));
}

PatternBuilder& PatternBuilder::WhereCmp(double coeff_l,
                                         const std::string& l_var,
                                         const std::string& attr_name,
                                         CmpOp op, double coeff_r,
                                         const std::string& r_var) {
  auto attr = schema_->AttrIndexOf(attr_name);
  DLACEP_CHECK_MSG(attr.ok(), "unknown attribute " + attr_name);
  return Where(std::make_unique<CompareCondition>(
      Term::Attr(Var(l_var), attr.value(), coeff_l), op,
      Term::Attr(Var(r_var), attr.value(), coeff_r)));
}

VarId PatternBuilder::Var(const std::string& name) const {
  auto found = FindVar(name);
  DLACEP_CHECK_MSG(found.ok(), "unknown variable " + name);
  return found.value();
}

StatusOr<VarId> PatternBuilder::FindVar(const std::string& name) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return static_cast<VarId>(i);
  }
  return Status::NotFound("unknown variable: " + name);
}

Term PatternBuilder::Attr(const std::string& var, const std::string& attr,
                          double coeff) const {
  auto index = schema_->AttrIndexOf(attr);
  DLACEP_CHECK_MSG(index.ok(), "unknown attribute " + attr);
  return Term::Attr(Var(var), index.value(), coeff);
}

StatusOr<Pattern> PatternBuilder::Build(Node root, WindowSpec window) {
  DLACEP_CHECK(root != nullptr);
  Pattern pattern(schema_, std::move(root), std::move(conditions_),
                  std::move(vars_), window);
  DLACEP_RETURN_IF_ERROR(pattern.Validate());
  return pattern;
}

Pattern PatternBuilder::BuildOrDie(Node root, WindowSpec window) {
  auto result = Build(std::move(root), window);
  DLACEP_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace dlacep
