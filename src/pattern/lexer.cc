#include "pattern/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace dlacep {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  auto push = [&](TokenKind kind, size_t offset, size_t len) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    t.text = std::string(source.substr(offset, len));
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, i, j - i);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
        ++j;
      }
      // Fractional part — but not the ".." range operator.
      if (j + 1 < n && source[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[j + 1]))) {
        ++j;
        while (j < n &&
               std::isdigit(static_cast<unsigned char>(source[j]))) {
          ++j;
        }
      }
      if (j < n && (source[j] == 'e' || source[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (source[k] == '+' || source[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(source[k]))) {
          ++k;
          while (k < n &&
                 std::isdigit(static_cast<unsigned char>(source[k]))) {
            ++k;
          }
          j = k;
        }
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.offset = i;
      t.text = std::string(source.substr(i, j - i));
      t.number = std::strtod(t.text.c_str(), nullptr);
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, i, 1); ++i; break;
      case ')': push(TokenKind::kRParen, i, 1); ++i; break;
      case '{': push(TokenKind::kLBrace, i, 1); ++i; break;
      case '}': push(TokenKind::kRBrace, i, 1); ++i; break;
      case ',': push(TokenKind::kComma, i, 1); ++i; break;
      case '*': push(TokenKind::kStar, i, 1); ++i; break;
      case '+': push(TokenKind::kPlus, i, 1); ++i; break;
      case '-': push(TokenKind::kMinus, i, 1); ++i; break;
      case '.':
        if (i + 1 < n && source[i + 1] == '.') {
          push(TokenKind::kDotDot, i, 2);
          i += 2;
        } else {
          push(TokenKind::kDot, i, 1);
          ++i;
        }
        break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe, i, 2);
          i += 2;
        } else {
          push(TokenKind::kLt, i, 1);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe, i, 2);
          i += 2;
        } else {
          push(TokenKind::kGt, i, 1);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kEq, i, 2);
          i += 2;
        } else {
          return Status::InvalidArgument(
              StrFormat("stray '=' at offset %zu (use '==')", i));
        }
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe, i, 2);
          i += 2;
        } else {
          return Status::InvalidArgument(
              StrFormat("stray '!' at offset %zu (use '!=')", i));
        }
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dlacep
