// Figure 14: simulated time-based window evaluation.
//
// Following §5.2: the stock stream is partitioned into windows of
// randomly chosen sizes up to MW events; every window is padded to MW
// with blank events (fixed-size sequences for the LSTM), and the KC
// pattern QA5(j=2) is evaluated with window size MW. Expectation: the
// throughput gain roughly halves relative to the count-based case but
// remains substantial, and recall stays high.

#include "common/string_util.h"
#include "dlacep/padding.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const EventStream train_raw =
      GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test_raw =
      GenerateStockStream(StockConfig(3000, 2002));
  auto s = train_raw.schema_ptr();
  DlacepConfig config = BenchConfig();
  config.oversample_positive = 6;
  config.event_threshold = 0.3;

  PrintHeader("Fig 14: simulated time-based windows — gain vs max window "
              "size MW, QA5(j=2) (paper MW=250..350 -> scaled)");
  for (size_t mw : {14, 18, 22, 26}) {
    const EventStream train = PadRandomWindows(train_raw, mw, 31);
    const EventStream test = PadRandomWindows(test_raw, mw, 32);
    const Pattern pattern = QA5(s, 2, 10, 2, 0.5, 2.5, mw, 2);
    PrintRow(RunDlacepExperiment(StrFormat("MW=%zu", mw), pattern, train,
                                 test, FilterKind::kEventNetwork, config));
  }
  PrintFooter();
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
