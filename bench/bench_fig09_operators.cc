// Figure 9: impact of the pattern operator on throughput gain over ECEP.
//
//  (a) KC non-nested (QA5, j = number of KC operators),
//  (b) KC nested (QA6, j = nested sequence length),
//  (c) NEG non-nested (QA7, j = number of NEG operators),
//  (d) NEG nested (QA8, j = negated sequence length),
//  (e) DISJ of 2 sequences of varying length (QA9),
//  (f) DISJ of j sequences of length 4 (QA10),
//  (g) separate vs combined (DISJ) evaluation.
//
// Paper expectations: longer/more DISJ branches and longer KC-nested
// sequences ⇒ more partial matches ⇒ larger gains; more NEG/KC operators
// ⇒ more full matches ⇒ smaller gains. NEG rows report F1 (false
// positives are possible under negation, §4.4).

#include "common/string_util.h"
#include "pattern/builder.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

// Fig 9(g): DISJ(QA9-style SEQ(j=3), QA5-style SEQ + one KC), built as
// one combined pattern over the same variables.
Pattern CombinedDisjunction(std::shared_ptr<const Schema> s, size_t w) {
  PatternBuilder b(std::move(s));
  std::vector<PatternBuilder::Node> seq1;
  for (size_t i = 1; i <= 3; ++i) {
    seq1.push_back(b.PrimAnyOfIds(TopK(10), StrFormat("s%zu", i)));
  }
  std::vector<PatternBuilder::Node> seq2;
  for (size_t i = 1; i <= 5; ++i) {
    seq2.push_back(b.PrimAnyOfIds(TopK(10), StrFormat("t%zu", i)));
  }
  seq2.push_back(
      b.Kleene(b.PrimAnyOfIds(RankRange(10, 12), "kc1"), 1, 2));
  auto root = b.Disj(b.SeqOf(std::move(seq1)), b.SeqOf(std::move(seq2)));
  for (size_t i = 1; i < 3; ++i) {
    b.Where(MakeBandCondition(b.Var("s3"), 0,
                              b.Var(StrFormat("s%zu", i)), 0, 0.9, 1.1));
  }
  for (size_t i = 1; i <= 4; ++i) {
    b.Where(MakeBandCondition(b.Var("t5"), 0,
                              b.Var(StrFormat("t%zu", i)), 0, 0.8, 1.25));
  }
  return b.BuildOrDie(std::move(root), WindowSpec::Count(w));
}

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 18;
  const DlacepConfig config = BenchConfig();

  auto run = [&](const std::string& label, const Pattern& pattern) {
    PrintRow(RunDlacepExperiment(label, pattern, train, test,
                                 FilterKind::kEventNetwork, config));
  };

  PrintHeader("Fig 9(a): KC(non-nested) — QA5, j KC operators");
  for (size_t j : {1, 2}) {
    run(StrFormat("QA5(j=%zu)", j),
        QA5(s, j, 10, 2, 0.8, 1.25, w, 2));
  }

  PrintHeader("Fig 9(b): KC(nested) — QA6, nested SEQ length j");
  for (size_t j : {2, 3, 4}) {
    run(StrFormat("QA6(j=%zu)", j), QA6(s, j, 10, 0.8, 1.25, w, 2));
  }

  PrintHeader("Fig 9(c): NEG(non-nested) — QA7, j NEG operators "
              "(F1 metric: negation can produce false positives)");
  for (size_t j : {1, 2}) {
    run(StrFormat("QA7(j=%zu)", j), QA7(s, j, 10, 2, 0.8, 1.25, w));
  }

  PrintHeader("Fig 9(d): NEG(nested) — QA8, negated SEQ length j");
  for (size_t j : {2, 3}) {
    run(StrFormat("QA8(j=%zu)", j), QA8(s, j, 10, 2, 0.8, 1.25, w));
  }

  PrintHeader("Fig 9(e): DISJ of two SEQs of length j — QA9");
  for (size_t j : {3, 4}) {
    run(StrFormat("QA9(j=%zu)", j),
        QA9(s, j, 10, 20, 0.9, 1.1, 0.85, 1.2, w));
  }

  PrintHeader("Fig 9(f): DISJ of j SEQs of length 4 — QA10");
  for (size_t j : {2, 3}) {
    run(StrFormat("QA10(j=%zu)", j), QA10(s, j, 8, 0.85, 1.2, w));
  }

  PrintHeader("Fig 9(g): separate vs combined (DISJ) evaluation");
  {
    PatternBuilder b1(s);
    std::vector<PatternBuilder::Node> seq1;
    for (size_t i = 1; i <= 3; ++i) {
      seq1.push_back(b1.PrimAnyOfIds(TopK(10), StrFormat("s%zu", i)));
    }
    auto root1 = b1.SeqOf(std::move(seq1));
    for (size_t i = 1; i < 3; ++i) {
      b1.Where(MakeBandCondition(b1.Var("s3"), 0,
                                 b1.Var(StrFormat("s%zu", i)), 0, 0.9,
                                 1.1));
    }
    run("separate: SEQ(len 3)",
        b1.BuildOrDie(std::move(root1), WindowSpec::Count(w)));
    run("separate: QA5(j=1)", QA5(s, 1, 10, 2, 0.8, 1.25, w, 2));
    run("combined: DISJ of both", CombinedDisjunction(s, w));
  }
  PrintFooter();
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
