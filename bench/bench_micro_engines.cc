// Micro benchmarks (google-benchmark): raw engine throughput and the
// §3.2 scaling claims — ECEP work grows steeply with the window size W
// and the pattern length, for all three engines.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cep/engine.h"
#include "cep/oracle.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"

namespace dlacep {
namespace {

using workloads::QBOfLength;
using workloads::SyntheticStream;

const EventStream& SharedStream() {
  static const EventStream stream = SyntheticStream(2000, 77);
  return stream;
}

void BM_NfaWindowScaling(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const size_t w = static_cast<size_t>(state.range(0));
  const Pattern pattern = QBOfLength(stream.schema_ptr(), 5, w, 0.6, 1.6);
  for (auto _ : state) {
    auto engine = CreateEngine(EngineKind::kNfa, pattern);
    MatchSet out;
    benchmark::DoNotOptimize(
        engine.value()->Evaluate({stream.events().data(), stream.size()},
                                 &out));
    state.counters["partial_matches"] = static_cast<double>(
        engine.value()->stats().partial_matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_NfaWindowScaling)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_NfaPatternLengthScaling(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const size_t len = static_cast<size_t>(state.range(0));
  const Pattern pattern =
      QBOfLength(stream.schema_ptr(), len, 100, 0.6, 1.6);
  for (auto _ : state) {
    auto engine = CreateEngine(EngineKind::kNfa, pattern);
    MatchSet out;
    benchmark::DoNotOptimize(
        engine.value()->Evaluate({stream.events().data(), stream.size()},
                                 &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_NfaPatternLengthScaling)->Arg(4)->Arg(5)->Arg(6);

void BM_EngineComparison(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const EngineKind kind = static_cast<EngineKind>(state.range(0));
  const Pattern pattern = QBOfLength(stream.schema_ptr(), 5, 60, 0.6, 1.6);
  for (auto _ : state) {
    auto engine = CreateEngine(kind, pattern);
    MatchSet out;
    benchmark::DoNotOptimize(
        engine.value()->Evaluate({stream.events().data(), stream.size()},
                                 &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel(EngineKindName(kind));
}
BENCHMARK(BM_EngineComparison)
    ->Arg(static_cast<int>(EngineKind::kNfa))
    ->Arg(static_cast<int>(EngineKind::kTree))
    ->Arg(static_cast<int>(EngineKind::kLazy));

void BM_OracleEnumeration(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const Pattern pattern = QBOfLength(stream.schema_ptr(), 4, 40, 0.6, 1.6);
  const auto span = stream.View(0, 400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateAllMatches(pattern, span));
  }
}
BENCHMARK(BM_OracleEnumeration);

}  // namespace
}  // namespace dlacep

// --json F is translated into google-benchmark's own JSON reporter so
// all 16 bench binaries share one flag for machine-readable output.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static std::string out_flag;
  static std::string fmt_flag = "--benchmark_out_format=json";
  for (size_t i = 1; i < args.size(); ++i) {
    std::string arg = args[i];
    std::string path;
    if (arg == "--json" && i + 1 < args.size()) {
      path = args[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      args.erase(args.begin() + i);
    } else {
      continue;
    }
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
    break;
  }
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
