// Micro benchmarks (google-benchmark): raw engine throughput and the
// §3.2 scaling claims — ECEP work grows steeply with the window size W
// and the pattern length, for all three engines.

#include <benchmark/benchmark.h>

#include "cep/engine.h"
#include "cep/oracle.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"

namespace dlacep {
namespace {

using workloads::QBOfLength;
using workloads::SyntheticStream;

const EventStream& SharedStream() {
  static const EventStream stream = SyntheticStream(2000, 77);
  return stream;
}

void BM_NfaWindowScaling(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const size_t w = static_cast<size_t>(state.range(0));
  const Pattern pattern = QBOfLength(stream.schema_ptr(), 5, w, 0.6, 1.6);
  for (auto _ : state) {
    auto engine = CreateEngine(EngineKind::kNfa, pattern);
    MatchSet out;
    benchmark::DoNotOptimize(
        engine.value()->Evaluate({stream.events().data(), stream.size()},
                                 &out));
    state.counters["partial_matches"] = static_cast<double>(
        engine.value()->stats().partial_matches);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_NfaWindowScaling)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_NfaPatternLengthScaling(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const size_t len = static_cast<size_t>(state.range(0));
  const Pattern pattern =
      QBOfLength(stream.schema_ptr(), len, 100, 0.6, 1.6);
  for (auto _ : state) {
    auto engine = CreateEngine(EngineKind::kNfa, pattern);
    MatchSet out;
    benchmark::DoNotOptimize(
        engine.value()->Evaluate({stream.events().data(), stream.size()},
                                 &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_NfaPatternLengthScaling)->Arg(4)->Arg(5)->Arg(6);

void BM_EngineComparison(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const EngineKind kind = static_cast<EngineKind>(state.range(0));
  const Pattern pattern = QBOfLength(stream.schema_ptr(), 5, 60, 0.6, 1.6);
  for (auto _ : state) {
    auto engine = CreateEngine(kind, pattern);
    MatchSet out;
    benchmark::DoNotOptimize(
        engine.value()->Evaluate({stream.events().data(), stream.size()},
                                 &out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
  state.SetLabel(EngineKindName(kind));
}
BENCHMARK(BM_EngineComparison)
    ->Arg(static_cast<int>(EngineKind::kNfa))
    ->Arg(static_cast<int>(EngineKind::kTree))
    ->Arg(static_cast<int>(EngineKind::kLazy));

void BM_OracleEnumeration(benchmark::State& state) {
  const EventStream& stream = SharedStream();
  const Pattern pattern = QBOfLength(stream.schema_ptr(), 4, 40, 0.6, 1.6);
  const auto span = stream.View(0, 400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateAllMatches(pattern, span));
  }
}
BENCHMARK(BM_OracleEnumeration);

}  // namespace
}  // namespace dlacep

BENCHMARK_MAIN();
