// Ablation: filter backbone architecture — BiLSTM vs TCN (paper §4.1:
// "BiLSTM was empirically shown to be superior to other approaches such
// as TCN ... in our preliminary experiments"). Both backbones share the
// featurizer, the BI-CRF head, the training budget, and the dataset;
// only the sequence encoder differs.

#include <cstdio>

#include "common/timer.h"
#include "dlacep/event_filter.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "dlacep/tcn_filter.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

/// Pipeline filter that borrows a trained network.
class Borrowed : public StreamFilter {
 public:
  explicit Borrowed(StreamFilter* inner) : inner_(inner) {}
  std::string name() const override { return inner_->name(); }
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->Mark(stream, range);
  }

 private:
  const StreamFilter* inner_;
};

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 18;
  const Pattern pattern = QA1(s, 4, 10, 0.9, 1.1, 3, w);

  DlacepConfig config = BenchConfig();
  config.network.num_layers = 2;  // dilation 1+2 for the TCN

  const Featurizer featurizer(pattern, train);
  const InputAssembler assembler = InputAssembler::ForWindow(w);
  const FilterDataset dataset = BuildFilterDataset(
      pattern, train, assembler, featurizer, config.train_fraction,
      config.split_seed);

  // Exact baseline (once).
  auto ecep = CreateEngine(EngineKind::kNfa, pattern);
  MatchSet exact;
  DLACEP_CHECK(ecep.value()
                   ->Evaluate({test.events().data(), test.size()}, &exact)
                   .ok());
  const double ecep_seconds = ecep.value()->stats().elapsed_seconds;

  std::printf("=== Ablation: filter backbone (BiLSTM vs TCN), QA1, "
              "identical head/budget/dataset ===\n");
  std::printf("%-16s %10s %10s %10s %10s %10s\n", "backbone", "train(s)",
              "testF1", "recall", "tp-gain", "filt%");

  auto evaluate = [&](TrainableFilter* filter, const char* label) {
    Stopwatch train_watch;
    filter->Fit(dataset.train_event, config.train);
    const double train_seconds = train_watch.ElapsedSeconds();
    const double f1 = filter->Score(dataset.test_event).f1();

    DlacepPipeline pipeline(pattern, std::make_unique<Borrowed>(filter),
                            config);
    const PipelineResult result = pipeline.Evaluate(test);
    const MatchSetMetrics quality = CompareMatchSets(exact, result.matches);
    std::printf("%-16s %10.1f %10.3f %10.3f %10.2f %9.1f%%\n", label,
                train_seconds, f1, quality.recall,
                ecep_seconds / std::max(result.elapsed_seconds(), 1e-9),
                result.filtering_ratio() * 100);
    std::fflush(stdout);
  };

  EventNetworkFilter bilstm(&featurizer, config.network,
                            config.event_threshold);
  evaluate(&bilstm, "BiLSTM+BI-CRF");

  TcnEventFilter tcn(&featurizer, config.network, config.event_threshold,
                     /*kernel=*/3);
  evaluate(&tcn, "TCN+BI-CRF");

  std::printf("\n(paper §4.1: the BiLSTM backbone was empirically "
              "superior to TCN in their preliminary experiments)\n");
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
