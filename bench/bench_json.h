// Shared --json support for the bench binaries.
//
// Every bench main calls JsonReport::Init(argc, argv) first and returns
// through JsonReport::Finish(code). When the user passed
// `--json out.json`, Init installs a workloads row observer so every
// table row printed via PrintRow is also captured, benches may record
// extra scalar measurements with Metric(), and Finish writes one JSON
// document:
//
//   {
//     "bench": "<binary name>",
//     "rows":    [ {<ExperimentRow fields>}, ... ],
//     "metrics": [ {"label": L, "name": N, "value": V}, ... ]
//   }
//
// Without --json everything is a no-op and the bench prints its tables
// exactly as before. (The google-benchmark micro benches translate
// --json into --benchmark_out instead — see their mains.)

#ifndef DLACEP_BENCH_BENCH_JSON_H_
#define DLACEP_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "workloads/report.h"

namespace dlacep {
namespace workloads {

class JsonReport {
 public:
  static void Init(int argc, char** argv) {
    JsonReport& report = Instance();
    if (argc > 0) {
      const char* slash = std::strrchr(argv[0], '/');
      report.bench_ = slash != nullptr ? slash + 1 : argv[0];
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        report.path_ = argv[i + 1];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        report.path_ = argv[i] + 7;
      }
    }
    if (report.path_.empty()) return;
    SetRowObserver(
        [](const ExperimentRow& row) { Instance().rows_.push_back(row); });
  }

  /// Records one scalar measurement outside the ExperimentRow schema
  /// (custom sweeps such as bench_parallel_filter). No-op without
  /// --json.
  static void Metric(const std::string& label, const std::string& name,
                     double value) {
    JsonReport& report = Instance();
    if (report.path_.empty()) return;
    report.metrics_.push_back(ScalarMetric{label, name, value});
  }

  /// Writes the JSON file (if requested) and passes the bench's exit
  /// code through; file-write failures turn a zero code into 1.
  static int Finish(int code) {
    JsonReport& report = Instance();
    if (report.path_.empty()) return code;
    std::FILE* f = std::fopen(report.path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", report.path_.c_str());
      return code != 0 ? code : 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [",
                 Escape(report.bench_).c_str());
    for (size_t i = 0; i < report.rows_.size(); ++i) {
      const ExperimentRow& r = report.rows_[i];
      std::fprintf(
          f,
          "%s\n    {\"label\": \"%s\", \"filter\": \"%s\", "
          "\"throughput_gain\": %.6g, \"recall\": %.6g, "
          "\"precision\": %.6g, \"f1\": %.6g, \"fn_pct\": %.6g, "
          "\"filtering_ratio\": %.6g, \"ecep_partial_matches\": %llu, "
          "\"acep_partial_matches\": %llu, \"exact_matches\": %zu, "
          "\"emitted_matches\": %zu, \"train_seconds\": %.6g, "
          "\"entity_f1\": %.6g, \"train_epochs\": %zu}",
          i == 0 ? "" : ",", Escape(r.label).c_str(),
          Escape(r.filter).c_str(), r.throughput_gain, r.recall,
          r.precision, r.f1, r.fn_pct, r.filtering_ratio,
          static_cast<unsigned long long>(r.ecep_partial_matches),
          static_cast<unsigned long long>(r.acep_partial_matches),
          r.exact_matches, r.emitted_matches, r.train_seconds, r.entity_f1,
          r.train_epochs);
    }
    std::fprintf(f, "\n  ],\n  \"metrics\": [");
    for (size_t i = 0; i < report.metrics_.size(); ++i) {
      const ScalarMetric& m = report.metrics_[i];
      std::fprintf(f,
                   "%s\n    {\"label\": \"%s\", \"name\": \"%s\", "
                   "\"value\": %.6g}",
                   i == 0 ? "" : ",", Escape(m.label).c_str(),
                   Escape(m.name).c_str(), m.value);
    }
    // Registry snapshot under the same schema WriteMetricsFile emits for
    // the CLI's *.json --metrics_out, so one reader parses both.
    std::fprintf(f, "\n  ],\n  \"registry\": %s\n}\n",
                 obs::MetricsRegistry::Global().RenderJson().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", report.path_.c_str());
    return code;
  }

 private:
  struct ScalarMetric {
    std::string label;
    std::string name;
    double value;
  };

  static JsonReport& Instance() {
    static JsonReport report;
    return report;
  }

  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<ExperimentRow> rows_;
  std::vector<ScalarMetric> metrics_;
};

}  // namespace workloads
}  // namespace dlacep

#endif  // DLACEP_BENCH_BENCH_JSON_H_
