// Parallel filtration sweep: filtration-stage wall clock vs
// config.num_threads on the Figure-8 stock workload.
//
// Every assembler window is an independent inference, so the filtration
// stage should scale with the worker count while producing the exact
// mark sequence of the sequential run (deterministic window-order
// merge). This bench trains each filter once, then re-evaluates the
// same test stream under num_threads in {1, 2, 4, 8} and reports the
// filtration wall clock, the speedup over the sequential run, and an
// equality check of the merged mark vector against the 1-thread
// baseline. Speedups flatten once the worker count passes the
// machine's core count.
//
// A second sweep re-runs the same trained filters with every window
// routed through the autograd tape forward instead of the frozen
// inference path, reporting windows/sec for both — the before/after
// picture of the tape-free fast path at the pipeline level, and a check
// that both paths merge to identical marks.
//
// A third sweep streams the test set through the sharded online
// runtime (OnlineConfig::num_shards in {1, 2, 4, 8}) and reports
// end-to-end events/sec — the thread-per-core runtime's headline
// scaling number, gated in CI (4 shards must beat 1 shard by >= 2.5x
// on the multi-core runners, with byte-identical marks).

#include <cstdio>
#include <thread>

#include "cep/adaptive_engine.h"
#include "cep/engine.h"
#include "obs/metrics.h"
#include "obs/stages.h"
#include "pattern/builder.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "stream/stocksim.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

/// Non-owning view so one trained filter can serve several pipelines.
/// Forwards every marking entry point, so the borrowed filter keeps its
/// arena reuse (MarkWith) and its batched trunk (MarkBatchWith) instead
/// of falling back to the base-class defaults.
class BorrowedFilter : public StreamFilter {
 public:
  explicit BorrowedFilter(const StreamFilter* inner) : inner_(inner) {}
  std::string name() const override { return inner_->name(); }
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->Mark(stream, range);
  }
  std::vector<int> MarkWith(const EventStream& stream, WindowRange range,
                            InferenceContext* ctx) const override {
    return inner_->MarkWith(stream, range, ctx);
  }
  void MarkBatchWith(const EventStream& stream,
                     std::span<const WindowRange> windows,
                     InferenceContext* ctx,
                     std::vector<int>* marks) const override {
    inner_->MarkBatchWith(stream, windows, ctx, marks);
  }
  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext* ctx,
                              double threshold_boost) const override {
    return inner_->MarkOnline(window, stream_begin, ctx, threshold_boost);
  }
  void MarkBatchOnline(std::span<const OnlineWindow> windows,
                       InferenceContext* ctx,
                       std::vector<int>* marks) const override {
    inner_->MarkBatchOnline(windows, ctx, marks);
  }

 private:
  const StreamFilter* inner_;
};

/// Tape-path view: routes every window through featurization plus the
/// autograd tape forward — the pre-fast-path cost model. MarkWith is
/// inherited (it drops the context and calls Mark), so the pipeline's
/// per-worker arenas are deliberately unused on this side.
class TapePathFilter : public StreamFilter {
 public:
  TapePathFilter(const TrainableFilter* inner, const Featurizer* featurizer)
      : inner_(inner), featurizer_(featurizer) {}
  std::string name() const override { return inner_->name() + "+tape"; }
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->MarkFeaturesTape(
        featurizer_->Encode(stream.View(range.begin, range.size())));
  }

 private:
  const TrainableFilter* inner_;
  const Featurizer* featurizer_;
};

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};
constexpr int kRepetitions = 3;

void SweepThreads(const std::string& label, const Pattern& pattern,
                  const BuiltDlacep& built, const DlacepConfig& base,
                  const EventStream& test) {
  double baseline_seconds = 0.0;
  PipelineResult reference;
  for (const size_t threads : kThreadSweep) {
    DlacepConfig config = base;
    config.num_threads = threads;
    DlacepPipeline pipeline(
        pattern, std::make_unique<BorrowedFilter>(&built.pipeline->filter()),
        config);
    // Best-of-N filtration wall clock; the mark vector is checked on
    // every repetition.
    double best_seconds = 0.0;
    bool identical = true;
    PipelineResult result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      result = pipeline.Evaluate(test);
      if (rep == 0 || result.filter_seconds < best_seconds) {
        best_seconds = result.filter_seconds;
      }
      if (threads == 1 && rep == 0) reference = result;
      identical = identical && result.marked_ids == reference.marked_ids &&
                  result.marked_events == reference.marked_events &&
                  result.matches.size() == reference.matches.size();
    }
    if (threads == 1) baseline_seconds = best_seconds;
    std::printf("%-28s threads=%zu  filter=%8.4fs  speedup=%5.2fx  "
                "filt=%5.1f%%  matches=%zu  identical=%s\n",
                label.c_str(), threads, best_seconds,
                baseline_seconds / std::max(best_seconds, 1e-9),
                result.filtering_ratio() * 100.0, result.matches.size(),
                identical ? "yes" : "NO");
    std::fflush(stdout);
    const std::string key = label + " threads=" + std::to_string(threads);
    JsonReport::Metric(key, "filter_seconds", best_seconds);
    JsonReport::Metric(key, "speedup",
                       baseline_seconds / std::max(best_seconds, 1e-9));
    JsonReport::Metric(key, "matches",
                       static_cast<double>(result.matches.size()));
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
  }
}

/// Sharded online-runtime sweep: end-to-end ingest throughput through
/// OnlineDlacep at num_shards in {1, 2, 4, 8} — the thread-per-core
/// runtime's headline metric. Lossless, overload disabled, shard-local
/// micro-batching on; events/sec is measured over the streaming phase
/// only (ingest through merged marks — end-of-stream CEP extraction is
/// a serial tail every shard count pays identically). The 1-shard run
/// is the baseline and every shard count must merge byte-identical
/// marks (the CI perf job gates on speedup at 4 shards AND identical).
void SweepShards(const std::string& label, const Pattern& pattern,
                 const BuiltDlacep& built, const EventStream& test) {
  constexpr size_t kShardSweep[] = {1, 2, 4, 8};
  double baseline_seconds = 0.0;
  OnlineResult reference;
  for (const size_t shards : kShardSweep) {
    OnlineConfig config;
    config.num_shards = shards;
    config.queue_capacity = 4096;
    config.batch_size = 8;
    config.overload.enabled = false;
    BorrowedFilter borrowed(&built.pipeline->filter());
    OnlineDlacep online(pattern, &borrowed, config);
    double best_seconds = 0.0;
    bool identical = true;
    OnlineResult result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      ReplaySource source(&test);
      result = online.Run(&source);
      const double stream_seconds =
          result.stats.elapsed_seconds - result.stats.extract_seconds;
      if (rep == 0 || stream_seconds < best_seconds) {
        best_seconds = stream_seconds;
      }
      if (shards == 1 && rep == 0) reference = result;
      identical = identical && result.marked_ids == reference.marked_ids &&
                  result.marked_events == reference.marked_events &&
                  result.matches.size() == reference.matches.size();
    }
    if (shards == 1) baseline_seconds = best_seconds;
    const double events_per_sec =
        static_cast<double>(test.size()) / std::max(best_seconds, 1e-9);
    std::printf("%-28s shards=%zu  stream=%8.4fs  %9.0f ev/s  "
                "speedup=%5.2fx  identical=%s\n",
                label.c_str(), shards, best_seconds, events_per_sec,
                baseline_seconds / std::max(best_seconds, 1e-9),
                identical ? "yes" : "NO");
    std::fflush(stdout);
    const std::string key = label + " shards=" + std::to_string(shards);
    JsonReport::Metric(key, "stream_seconds", best_seconds);
    JsonReport::Metric(key, "events_per_sec", events_per_sec);
    JsonReport::Metric(key, "speedup",
                       baseline_seconds / std::max(best_seconds, 1e-9));
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
  }
}

/// Micro-batch sweep: windows marked per MarkBatchWith call, single
/// worker so the GEMM batching effect is not confounded with thread
/// scaling. batch=1 is the exact per-window path and the speedup
/// baseline; marks must merge identically at every batch size.
void SweepBatch(const std::string& label, const Pattern& pattern,
                const BuiltDlacep& built, const DlacepConfig& base,
                const EventStream& test) {
  constexpr size_t kBatchSweep[] = {1, 4, 8, 16};
  const double num_windows = static_cast<double>(
      built.pipeline->assembler().Windows(test.size()).size());
  double baseline_seconds = 0.0;
  PipelineResult reference;
  for (const size_t batch : kBatchSweep) {
    DlacepConfig config = base;
    config.num_threads = 1;
    config.batch_size = batch;
    DlacepPipeline pipeline(
        pattern, std::make_unique<BorrowedFilter>(&built.pipeline->filter()),
        config);
    double best_seconds = 0.0;
    bool identical = true;
    PipelineResult result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      result = pipeline.Evaluate(test);
      if (rep == 0 || result.filter_seconds < best_seconds) {
        best_seconds = result.filter_seconds;
      }
      if (batch == 1 && rep == 0) reference = result;
      identical = identical && result.marked_ids == reference.marked_ids &&
                  result.marked_events == reference.marked_events &&
                  result.matches.size() == reference.matches.size();
    }
    if (batch == 1) baseline_seconds = best_seconds;
    std::printf("%-28s batch=%2zu  filter=%8.4fs  %9.1f w/s  "
                "speedup=%5.2fx  identical=%s\n",
                label.c_str(), batch, best_seconds,
                num_windows / std::max(best_seconds, 1e-9),
                baseline_seconds / std::max(best_seconds, 1e-9),
                identical ? "yes" : "NO");
    std::fflush(stdout);
    const std::string key = label + " batch=" + std::to_string(batch);
    JsonReport::Metric(key, "filter_seconds", best_seconds);
    JsonReport::Metric(key, "windows_per_sec",
                       num_windows / std::max(best_seconds, 1e-9));
    JsonReport::Metric(key, "speedup",
                       baseline_seconds / std::max(best_seconds, 1e-9));
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
  }
}

void SweepInferencePath(const std::string& label, const Pattern& pattern,
                        const BuiltDlacep& built, const DlacepConfig& base,
                        const EventStream& test) {
  const auto* trainable =
      dynamic_cast<const TrainableFilter*>(&built.pipeline->filter());
  if (trainable == nullptr) return;
  const double num_windows = static_cast<double>(
      built.pipeline->assembler().Windows(test.size()).size());
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    DlacepConfig config = base;
    config.num_threads = threads;
    DlacepPipeline tape_pipeline(
        pattern,
        std::make_unique<TapePathFilter>(trainable, built.featurizer.get()),
        config);
    DlacepPipeline fast_pipeline(
        pattern, std::make_unique<BorrowedFilter>(&built.pipeline->filter()),
        config);
    double tape_best = 0.0;
    double fast_best = 0.0;
    bool identical = true;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const PipelineResult tape = tape_pipeline.Evaluate(test);
      const PipelineResult fast = fast_pipeline.Evaluate(test);
      if (rep == 0 || tape.filter_seconds < tape_best) {
        tape_best = tape.filter_seconds;
      }
      if (rep == 0 || fast.filter_seconds < fast_best) {
        fast_best = fast.filter_seconds;
      }
      identical = identical && tape.marked_ids == fast.marked_ids &&
                  tape.marked_events == fast.marked_events;
    }
    std::printf("%-28s threads=%zu  tape=%9.1f w/s  infer=%9.1f w/s  "
                "speedup=%5.2fx  identical=%s\n",
                label.c_str(), threads,
                num_windows / std::max(tape_best, 1e-9),
                num_windows / std::max(fast_best, 1e-9),
                tape_best / std::max(fast_best, 1e-9),
                identical ? "yes" : "NO");
    std::fflush(stdout);
    const std::string key =
        label + " path threads=" + std::to_string(threads);
    JsonReport::Metric(key, "tape_windows_per_sec",
                       num_windows / std::max(tape_best, 1e-9));
    JsonReport::Metric(key, "infer_windows_per_sec",
                       num_windows / std::max(fast_best, 1e-9));
    JsonReport::Metric(key, "speedup", tape_best / std::max(fast_best, 1e-9));
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
  }
}

/// Metrics on/off A-B on the inference fast path: the observability
/// layer budgets <2% filtration throughput (CI gates on overhead_pct).
/// Single-threaded so the scheduler can't masquerade as
/// instrumentation cost, best-of-N per side, and A-B-B-A ordering so
/// slow frequency/thermal drift cancels instead of biasing one side.
/// The "on" side pre-registers the full standard schema to measure the
/// realistic steady state, not an empty registry.
void SweepMetricsOverhead(const std::string& label, const Pattern& pattern,
                          const BuiltDlacep& built, const DlacepConfig& base,
                          const EventStream& test) {
  constexpr int kOverheadReps = 8;
  const double num_windows = static_cast<double>(
      built.pipeline->assembler().Windows(test.size()).size());
  DlacepConfig config = base;
  config.num_threads = 1;
  DlacepPipeline pipeline(
      pattern, std::make_unique<BorrowedFilter>(&built.pipeline->filter()),
      config);
  obs::TouchStandardMetrics();
  pipeline.Evaluate(test);  // warm caches/arenas outside the measurement
  double best_on = 0.0;
  double best_off = 0.0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    const bool on_first = rep % 2 == 0;
    for (int side = 0; side < 2; ++side) {
      const bool on = (side == 0) == on_first;
      obs::MetricsRegistry::SetEnabled(on);
      const PipelineResult r = pipeline.Evaluate(test);
      double& best = on ? best_on : best_off;
      if (rep == 0 || r.filter_seconds < best) best = r.filter_seconds;
    }
  }
  obs::MetricsRegistry::SetEnabled(true);
  const double on_wps = num_windows / std::max(best_on, 1e-9);
  const double off_wps = num_windows / std::max(best_off, 1e-9);
  const double overhead_pct = (off_wps - on_wps) / off_wps * 100.0;
  std::printf("%-28s metrics on=%9.1f w/s  off=%9.1f w/s  "
              "overhead=%+5.2f%%\n",
              label.c_str(), on_wps, off_wps, overhead_pct);
  std::fflush(stdout);
  const std::string key = label + " metrics";
  JsonReport::Metric(key, "windows_per_sec_on", on_wps);
  JsonReport::Metric(key, "windows_per_sec_off", off_wps);
  JsonReport::Metric(key, "overhead_pct", overhead_pct);
}

/// Adaptive engine-selection gate on the Zipf-skewed stock workload:
/// SEQ(hot, hot, rare) with band conditions. In chain order the NFA
/// opens a partial match at nearly every hot event, while the lazy
/// engine's frequency-ordered chain anchors on the rare tail type and
/// touches only a fraction of the candidates — so the static engines
/// are far apart by construction, and the adaptive engine's cost model
/// must find the cheap one. CI gates the "adaptive-gate engine=..."
/// rows: adaptive events_per_sec >= 0.9x the best static engine and
/// >= 1.2x the worst (the cost of picking wrong).
void SweepEngines() {
  const EventStream stream = GenerateStockStream(StockConfig(30000, 4242));
  PatternBuilder b(stream.schema_ptr());
  std::vector<PatternBuilder::Node> children;
  children.push_back(b.PrimAnyOfIds(TopK(3), "s1"));
  children.push_back(b.PrimAnyOfIds(TopK(3), "s2"));
  children.push_back(b.PrimAnyOfIds(RankRange(40, 50), "s3"));
  auto root = b.SeqOf(std::move(children));
  b.Where(MakeBandCondition(b.Var("s3"), 0, b.Var("s1"), 0, 0.9, 1.1));
  b.Where(MakeBandCondition(b.Var("s3"), 0, b.Var("s2"), 0, 0.9, 1.1));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(30));

  const std::span<const Event> span(stream.events().data(), stream.size());
  constexpr EngineKind kKinds[] = {EngineKind::kNfa, EngineKind::kTree,
                                   EngineKind::kLazy, EngineKind::kAdaptive};
  MatchSet reference;
  bool have_reference = false;
  for (const EngineKind kind : kKinds) {
    double best_seconds = 0.0;
    bool identical = true;
    size_t match_count = 0;
    std::string selected;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      auto engine = CreateEngine(kind, pattern);
      DLACEP_CHECK_MSG(engine.ok(), engine.status().ToString());
      MatchSet matches;
      const Status status = engine.value()->Evaluate(span, &matches);
      DLACEP_CHECK_MSG(status.ok(), status.ToString());
      const double seconds = engine.value()->stats().elapsed_seconds;
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      match_count = matches.size();
      if (!have_reference) {
        reference = matches;
        have_reference = true;
      }
      identical = identical && matches.size() == reference.size() &&
                  matches.IntersectionSize(reference) == reference.size();
      if (kind == EngineKind::kAdaptive) {
        selected = EngineKindName(
            static_cast<AdaptiveEngine*>(engine.value().get())
                ->selected_kind());
      }
    }
    const double events_per_sec =
        static_cast<double>(stream.size()) / std::max(best_seconds, 1e-9);
    std::printf("%-28s engine=%-12s  eval=%8.4fs  %9.0f ev/s  "
                "matches=%zu  identical=%s%s%s\n",
                "adaptive-gate", EngineKindName(kind), best_seconds,
                events_per_sec, match_count, identical ? "yes" : "NO",
                selected.empty() ? "" : "  selected=", selected.c_str());
    std::fflush(stdout);
    const std::string key =
        std::string("adaptive-gate engine=") + EngineKindName(kind);
    JsonReport::Metric(key, "eval_seconds", best_seconds);
    JsonReport::Metric(key, "events_per_sec", events_per_sec);
    JsonReport::Metric(key, "matches", static_cast<double>(match_count));
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
  }
}

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(6000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 20;

  DlacepConfig config = BenchConfig();
  config.event_threshold = 0.35;

  std::printf("=== Parallel filtration sweep (hardware threads: %u) ===\n",
              std::thread::hardware_concurrency());

  std::printf("--- engine sweep: Zipf-skewed stock workload ---\n");
  SweepEngines();

  {
    const Pattern pattern = QA1(s, 4, 4, 0.9, 1.1, 3, w);
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    SweepThreads("QA1(j=4,k=4) event-net", pattern, built, config, test);
    std::printf("--- sharded online runtime (events/sec) ---\n");
    SweepShards("QA1(j=4,k=4) event-net", pattern, built, test);
    std::printf("--- micro-batch sweep (1 worker, windows/sec) ---\n");
    SweepBatch("QA1(j=4,k=4) event-net", pattern, built, config, test);
    std::printf("--- tape vs inference fast path (windows/sec) ---\n");
    SweepInferencePath("QA1(j=4,k=4) event-net", pattern, built, config,
                       test);
    std::printf("--- metrics overhead (windows/sec) ---\n");
    SweepMetricsOverhead("QA1(j=4,k=4) event-net", pattern, built, config,
                         test);
  }
  {
    const Pattern pattern = QA3(s, 5, 12, 3, 2, 1, 4, 0.9, 1.1, 1.5, w);
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    SweepThreads("QA3(j=5,k=12) event-net", pattern, built, config, test);
    std::printf("--- tape vs inference fast path (windows/sec) ---\n");
    SweepInferencePath("QA3(j=5,k=12) event-net", pattern, built, config,
                       test);
  }
  {
    const Pattern pattern = QA3(s, 5, 12, 3, 2, 1, 4, 0.9, 1.1, 1.5, w);
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kWindowNetwork, config);
    SweepThreads("QA3(j=5,k=12) window-net", pattern, built, config, test);
    std::printf("--- micro-batch sweep (1 worker, windows/sec) ---\n");
    SweepBatch("QA3(j=5,k=12) window-net", pattern, built, config, test);
    std::printf("--- tape vs inference fast path (windows/sec) ---\n");
    SweepInferencePath("QA3(j=5,k=12) window-net", pattern, built, config,
                       test);
  }
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
