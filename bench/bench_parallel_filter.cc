// Parallel filtration sweep: filtration-stage wall clock vs
// config.num_threads on the Figure-8 stock workload.
//
// Every assembler window is an independent inference, so the filtration
// stage should scale with the worker count while producing the exact
// mark sequence of the sequential run (deterministic window-order
// merge). This bench trains each filter once, then re-evaluates the
// same test stream under num_threads in {1, 2, 4, 8} and reports the
// filtration wall clock, the speedup over the sequential run, and an
// equality check of the merged mark vector against the 1-thread
// baseline. Speedups flatten once the worker count passes the
// machine's core count.

#include <cstdio>
#include <thread>

#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

namespace dlacep {
namespace workloads {
namespace {

/// Non-owning view so one trained filter can serve several pipelines.
class BorrowedFilter : public StreamFilter {
 public:
  explicit BorrowedFilter(const StreamFilter* inner) : inner_(inner) {}
  std::string name() const override { return inner_->name(); }
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->Mark(stream, range);
  }

 private:
  const StreamFilter* inner_;
};

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};
constexpr int kRepetitions = 3;

void SweepThreads(const std::string& label, const Pattern& pattern,
                  const BuiltDlacep& built, const DlacepConfig& base,
                  const EventStream& test) {
  double baseline_seconds = 0.0;
  PipelineResult reference;
  for (const size_t threads : kThreadSweep) {
    DlacepConfig config = base;
    config.num_threads = threads;
    DlacepPipeline pipeline(
        pattern, std::make_unique<BorrowedFilter>(&built.pipeline->filter()),
        config);
    // Best-of-N filtration wall clock; the mark vector is checked on
    // every repetition.
    double best_seconds = 0.0;
    bool identical = true;
    PipelineResult result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      result = pipeline.Evaluate(test);
      if (rep == 0 || result.filter_seconds < best_seconds) {
        best_seconds = result.filter_seconds;
      }
      if (threads == 1 && rep == 0) reference = result;
      identical = identical && result.marked_ids == reference.marked_ids &&
                  result.marked_events == reference.marked_events &&
                  result.matches.size() == reference.matches.size();
    }
    if (threads == 1) baseline_seconds = best_seconds;
    std::printf("%-28s threads=%zu  filter=%8.4fs  speedup=%5.2fx  "
                "filt=%5.1f%%  matches=%zu  identical=%s\n",
                label.c_str(), threads, best_seconds,
                baseline_seconds / std::max(best_seconds, 1e-9),
                result.filtering_ratio() * 100.0, result.matches.size(),
                identical ? "yes" : "NO");
    std::fflush(stdout);
  }
}

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(6000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 20;

  DlacepConfig config = BenchConfig();
  config.event_threshold = 0.35;

  std::printf("=== Parallel filtration sweep (hardware threads: %u) ===\n",
              std::thread::hardware_concurrency());

  {
    const Pattern pattern = QA1(s, 4, 4, 0.9, 1.1, 3, w);
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    SweepThreads("QA1(j=4,k=4) event-net", pattern, built, config, test);
  }
  {
    const Pattern pattern = QA3(s, 5, 12, 3, 2, 1, 4, 0.9, 1.1, 1.5, w);
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    SweepThreads("QA3(j=5,k=12) event-net", pattern, built, config, test);
  }
  {
    const Pattern pattern = QA3(s, 5, 12, 3, 2, 1, 4, 0.9, 1.1, 1.5, w);
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kWindowNetwork, config);
    SweepThreads("QA3(j=5,k=12) window-net", pattern, built, config, test);
  }
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main() { return dlacep::workloads::Run(); }
