// Figure 13(c,d): impact of the number of stacked BiLSTM layers on
// throughput gain and recall, evaluated on QB1 with a large window
// (paper: W = 350, layers 3/4/5; scaled: W = 150, layers 1/2/3).
//
// Expectation: recall grows with network capacity while the added
// inference cost erodes the throughput gain.

#include "common/string_util.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const size_t w = 150;
  const EventStream train = SyntheticStream(7500, 501);
  const EventStream test = SyntheticStream(3000, 902);
  const Pattern pattern = QB1(train.schema_ptr(), w, 0.3, 3.0);

  PrintHeader("Fig 13(c,d): gain & recall vs number of BiLSTM layers, "
              "QB1 at W=150 (paper: layers 3/4/5 at W=350)");
  for (size_t layers : {1, 2, 3}) {
    DlacepConfig config = BenchConfig();
    config.network.num_layers = layers;
    config.oversample_positive = 8;
    config.event_threshold = 0.3;
    PrintRow(RunDlacepExperiment(StrFormat("layers=%zu", layers), pattern,
                                 train, test, FilterKind::kEventNetwork,
                                 config));
  }
  PrintFooter();
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
