// Tables 1 & 2: instantiates every query template of the paper, checks
// that it validates and compiles, and profiles its match / partial-match
// behaviour on a small stream — the workload census backing the figure
// benches. (Tables 1 and 2 in the paper define the templates themselves;
// this binary is their executable counterpart.)

#include <cstdio>
#include <vector>

#include "cep/engine.h"
#include "workloads/queries_a.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

struct NamedPattern {
  std::string name;
  Pattern pattern;
};

void Profile(const NamedPattern& entry, const EventStream& stream) {
  auto engine = CreateEngine(EngineKind::kNfa, entry.pattern);
  if (!engine.ok()) {
    std::printf("%-18s  ERROR: %s\n", entry.name.c_str(),
                engine.status().ToString().c_str());
    return;
  }
  MatchSet matches;
  const Status status = engine.value()->Evaluate(
      {stream.events().data(), stream.size()}, &matches);
  if (!status.ok()) {
    std::printf("%-18s  ERROR: %s\n", entry.name.c_str(),
                status.ToString().c_str());
    return;
  }
  const EngineStats& stats = engine.value()->stats();
  const double ratio =
      stats.partial_matches == 0
          ? 0.0
          : static_cast<double>(matches.size()) /
                static_cast<double>(stats.partial_matches);
  std::printf("%-18s PM=%10llu  matches=%8zu  full/partial=%.4f  %s\n",
              entry.name.c_str(),
              static_cast<unsigned long long>(stats.partial_matches),
              matches.size(), ratio, entry.pattern.ToString().c_str());
  std::fflush(stdout);
}

int Run() {
  std::printf("=== Tables 1 & 2: query template census ===\n");
  std::printf("(scaled ranks: paper T_100 -> T_10, W=150 -> W=%zu)\n\n",
              size_t{16});

  const EventStream stock =
      GenerateStockStream(StockConfig(2000, 3003));
  auto s = stock.schema_ptr();
  const size_t w = 16;

  std::vector<NamedPattern> queries;
  queries.push_back({"QA1(j=4,k=7)", QA1(s, 4, 7, 0.9, 1.1, 3, w)});
  queries.push_back({"QA1(j=4,k=24)", QA1(s, 4, 24, 0.9, 1.1, 3, w)});
  queries.push_back({"QA2(k=6)", QA2(s, 6, w)});
  queries.push_back(
      {"QA3(j=5,k=10)", QA3(s, 5, 10, 3, 2, 1, 4, 0.9, 1.1, 1.5, w)});
  queries.push_back(
      {"QA4(j=4,k=10)", QA4(s, 4, 10, 3, 1, 3, 0.9, 1.1, 0.8, 1.25, w)});
  queries.push_back({"QA5(j=2)", QA5(s, 2, 10, 2, 0.8, 1.25, w, 2)});
  queries.push_back({"QA6(j=3)", QA6(s, 3, 10, 0.8, 1.25, w, 2)});
  queries.push_back({"QA7(j=2)", QA7(s, 2, 10, 2, 0.8, 1.25, w)});
  queries.push_back({"QA8(j=2)", QA8(s, 2, 10, 2, 0.8, 1.25, w)});
  queries.push_back(
      {"QA9(j=3)", QA9(s, 3, 10, 20, 0.9, 1.1, 0.85, 1.2, w)});
  queries.push_back({"QA10(j=3)", QA10(s, 3, 8, 0.85, 1.2, w)});
  queries.push_back({"QA11(SEQ)", QA11(s, false, 8, 0.8, 1.25, w)});
  queries.push_back({"QA11(CONJ)", QA11(s, true, 8, 0.8, 1.25, w)});
  queries.push_back({"QA12", QA12(s, 8, 0.8, 1.25, 0.7, 1.4, w)});
  for (const NamedPattern& entry : queries) {
    Profile(entry, stock);
  }

  std::printf("\n--- Table 2 (synthetic) ---\n");
  const EventStream synthetic = SyntheticStream(2000, 4004);
  auto sy = synthetic.schema_ptr();
  std::vector<NamedPattern> synth;
  synth.push_back({"QB1 (len 6)", QB1(sy, 24)});
  synth.push_back({"QB2 (len 5)", QB2(sy, 24)});
  synth.push_back({"QB3 (len 4)", QB3(sy, 24)});
  for (const NamedPattern& entry : synth) {
    Profile(entry, synthetic);
  }
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
