// Ablation: transfer learning / warm starts (paper §4.3 — "employ
// transfer learning methods when multiple patterns with only slight
// differences are detected").
//
// A filter is trained to convergence on QA1 with one band width; the
// monitored pattern then changes to a slightly different band. We
// compare fine-tuning the existing weights against retraining from
// scratch, tracking the loss trajectory and the final held-out F1 at a
// fixed small epoch budget.

#include <cstdio>

#include "dlacep/event_filter.h"
#include "dlacep/pipeline.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  auto s = train.schema_ptr();
  const size_t w = 18;
  const Pattern original = QA1(s, 4, 10, 0.90, 1.10, 3, w);
  const Pattern changed = QA1(s, 4, 10, 0.85, 1.18, 3, w);

  DlacepConfig config = BenchConfig();
  const InputAssembler assembler = InputAssembler::ForWindow(w);

  std::printf("=== Ablation: warm-start fine-tuning after a pattern "
              "change (QA1 band 0.90-1.10 -> 0.85-1.18) ===\n");

  // Phase 1: converge on the original pattern.
  const Featurizer featurizer(original, train);
  const FilterDataset original_data = BuildFilterDataset(
      original, train, assembler, featurizer, config.train_fraction,
      config.split_seed);
  EventNetworkFilter warm(&featurizer, config.network,
                          config.event_threshold);
  TrainConfig phase1 = config.train;
  phase1.max_epochs = 30;
  warm.Fit(original_data.train_event, phase1);
  std::printf("pre-trained on original pattern: F1 %.3f\n\n",
              warm.Score(original_data.test_event).f1());

  // Phase 2: the pattern changes; relabel and compare warm vs cold.
  const FilterDataset changed_data = BuildFilterDataset(
      changed, train, assembler, featurizer, config.train_fraction,
      config.split_seed);
  EventNetworkFilter cold(&featurizer, config.network,
                          config.event_threshold);

  TrainConfig budget = config.train;
  budget.max_epochs = 8;  // the point: how far does a small budget get?
  std::printf("%-8s %14s %14s\n", "epoch", "warm loss", "cold loss");
  std::vector<double> warm_losses;
  std::vector<double> cold_losses;
  TrainConfig warm_cfg = budget;
  warm_cfg.on_epoch = [&](size_t, double loss) {
    warm_losses.push_back(loss);
    return true;
  };
  TrainConfig cold_cfg = budget;
  cold_cfg.on_epoch = [&](size_t, double loss) {
    cold_losses.push_back(loss);
    return true;
  };
  warm.Fit(changed_data.train_event, warm_cfg);
  cold.Fit(changed_data.train_event, cold_cfg);
  for (size_t e = 0; e < std::max(warm_losses.size(), cold_losses.size());
       ++e) {
    std::printf("%-8zu %14.4f %14.4f\n", e + 1,
                e < warm_losses.size() ? warm_losses[e] : 0.0,
                e < cold_losses.size() ? cold_losses[e] : 0.0);
  }
  std::printf("\nafter %zu epochs on the changed pattern:\n",
              budget.max_epochs);
  std::printf("  warm-start F1 : %.3f\n",
              warm.Score(changed_data.test_event).f1());
  std::printf("  from-scratch F1: %.3f\n",
              cold.Score(changed_data.test_event).f1());
  std::printf("(paper §4.3: transfer learning mitigates the retraining "
              "overhead for slightly-changed patterns)\n");
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
