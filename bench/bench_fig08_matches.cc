// Figure 8: impact of the amount of partial and full matches on the
// throughput gain over ECEP.
//
//  (a) different amounts of partial matches — QA1(k small), QA2, QA3,
//      plus the QA1(k large) scalability point;
//  (b) different partial→full completion ratios — QA3 α sweep, QA4;
//  (c) different amounts of full matches — QA1 band-width sweep (same
//      partial matches, different full matches).
//
// Paper expectations: many partials + few completions ⇒ large gains
// (QA3/QA4-style); few partials (QA1 k small) ⇒ small gains; partials
// that almost all complete (QA2) ⇒ ACEP can lose to ECEP; at fixed
// partials, fewer full matches ⇒ higher filtering ratio ⇒ higher gain.

#include "common/string_util.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(6000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 20;

  DlacepConfig config = BenchConfig();
  config.event_threshold = 0.35;

  PrintHeader(
      "Fig 8(a): amount of partial matches (paper: QA1(k=7), QA2, QA3, "
      "QA1(k=100) -> scaled k)");
  struct Case {
    std::string label;
    Pattern pattern;
    bool window_net_too;
  };
  std::vector<Case> cases_a;
  cases_a.push_back({"QA1(j=4,k=4) few partials",
                     QA1(s, 4, 4, 0.9, 1.1, 3, w), true});
  cases_a.push_back({"QA2(k=5) partials complete",
                     QA2(s, 5, 12), true});
  cases_a.push_back({"QA3(j=5,k=12) many partials",
                     QA3(s, 5, 12, 3, 2, 1, 4, 0.9, 1.1, 1.5, w), true});
  cases_a.push_back({"QA1(j=5,k=32) massive partials",
                     QA1(s, 5, 32, 0.9, 1.1, 4, w), false});
  for (const Case& c : cases_a) {
    PrintRow(RunDlacepExperiment(c.label, c.pattern, train, test,
                                 FilterKind::kEventNetwork, config));
    if (c.window_net_too) {
      PrintRow(RunDlacepExperiment(c.label, c.pattern, train, test,
                                   FilterKind::kWindowNetwork, config));
    }
  }

  PrintHeader("Fig 8(b): partial-to-full completion ratio (QA3 alpha "
              "sweep, QA4)");
  std::vector<Case> cases_b;
  cases_b.push_back({"QA3(a=0.95,b=1.05) few full",
                     QA3(s, 5, 12, 3, 2, 1, 4, 0.95, 1.05, 1.5, w),
                     false});
  cases_b.push_back({"QA3(a=0.81,b=1.22) more full",
                     QA3(s, 5, 12, 3, 2, 1, 4, 0.81, 1.22, 1.5, w),
                     false});
  cases_b.push_back({"QA4(j=4,k=12) smallest ratio",
                     QA4(s, 4, 12, 3, 1, 3, 0.95, 1.05, 0.97, 1.03, w),
                     false});
  for (const Case& c : cases_b) {
    PrintRow(RunDlacepExperiment(c.label, c.pattern, train, test,
                                 FilterKind::kEventNetwork, config));
  }

  PrintHeader("Fig 8(c): amount of full matches (QA1 band sweep at fixed "
              "partial matches; paper alpha=0.24..0.76)");
  const std::vector<std::pair<double, double>> bands = {
      {0.70, 1.45}, {0.85, 1.18}, {0.93, 1.08}, {0.97, 1.03}};
  for (const auto& [alpha, beta] : bands) {
    const std::string label =
        StrFormat("QA1(j=4,k=12,a=%.2f,b=%.2f)", alpha, beta);
    PrintRow(RunDlacepExperiment(label,
                                 QA1(s, 4, 12, alpha, beta, 3, w), train,
                                 test, FilterKind::kEventNetwork, config));
  }
  PrintFooter();
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
