// Ablation: the MarkSize / StepSize choice of the input assembler
// (paper §4.2 and the "preliminary experiments" of §5.1 that selected
// MarkSize = 2·W, StepSize = W).
//
// Runs the pipeline with a perfect-knowledge (oracle) filter so that
// only windowing effects — not learning quality — separate the
// configurations:
//   * MarkSize = W, StepSize = W: adjacent samples cannot share context;
//     matches straddling sample boundaries are missed (Fig 5);
//   * MarkSize = 2W, StepSize = W: full coverage (the default);
//   * MarkSize = 3W, StepSize = W: full coverage but excess events per
//     step (Fig 6's excess-processing effect: more marked duplicates);
//   * MarkSize = 2W, StepSize = 2W: too large a step; coverage gaps.

#include <cstdio>

#include "common/string_util.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = test.schema_ptr();
  const size_t w = 16;
  const Pattern pattern = QA1(s, 4, 10, 0.9, 1.1, 3, w);

  // Exact reference.
  auto ecep = CreateEngine(EngineKind::kNfa, pattern);
  DLACEP_CHECK(ecep.ok());
  MatchSet exact;
  DLACEP_CHECK(ecep.value()
                   ->Evaluate({test.events().data(), test.size()}, &exact)
                   .ok());

  std::printf("=== Assembler ablation (oracle filter, QA1, W=%zu) ===\n",
              w);
  std::printf("%-28s %8s %8s %10s %12s\n", "configuration", "recall",
              "prec", "marked", "PM(acep)");

  struct Config {
    const char* label;
    size_t mark;
    size_t step;
  };
  const std::vector<Config> configs = {
      {"Mark=W,   Step=W (misses)", w, w},
      {"Mark=2W,  Step=W (paper)", 2 * w, w},
      {"Mark=3W,  Step=W (excess)", 3 * w, w},
      {"Mark=2W,  Step=2W (gaps)", 2 * w, 2 * w},
  };
  for (const Config& c : configs) {
    DlacepConfig config;
    config.mark_size = c.mark;
    config.step_size = c.step;
    DlacepPipeline pipeline(pattern,
                            std::make_unique<OracleFilter>(pattern),
                            config);
    const PipelineResult result = pipeline.Evaluate(test);
    const MatchSetMetrics quality = CompareMatchSets(exact, result.matches);
    std::printf("%-28s %8.3f %8.3f %10zu %12llu\n", c.label,
                quality.recall, quality.precision, result.marked_events,
                static_cast<unsigned long long>(
                    result.cep_stats.partial_matches));
    std::fflush(stdout);
  }
  std::printf(
      "\n(MarkSize=2W / StepSize=W is the smallest configuration with "
      "recall 1.0 — the paper's choice; exact matches: %zu)\n",
      exact.size());
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
