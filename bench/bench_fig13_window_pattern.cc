// Figure 13(a,b): impact of window size W and pattern length on
// throughput gain and recall.
//
// Protocol follows §5.2: a fresh synthetic dataset per (W, length) pair;
// patterns are the Table 2 family (length 4/5/6 = QB3/QB2/QB1). The
// paper sweeps W = 100..350 at 15 uniform types; we sweep W = 60..240
// (train-stream length grows with W so the sample count stays usable).
//
// Expectation: ECEP cost grows polynomially/exponentially with both W
// and the pattern length while the DLACEP filter cost is linear in the
// stream, so the gain rises steeply with W and length; recall slowly
// degrades as the pattern concept gets harder to learn.

#include <cstdio>

#include "common/string_util.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  PrintHeader("Fig 13(a,b): throughput gain & recall vs W and pattern "
              "length (fresh dataset per pair; paper W=100..350)");
  DlacepConfig config = FastBenchConfig();
  config.train.max_epochs = 30;
  config.oversample_positive = 8;
  config.event_threshold = 0.3;

  for (size_t length : {4, 5, 6}) {
    for (size_t w : {60, 120, 240}) {
      // Scale the training stream so enough matches exist to learn from
      // (match density falls steeply as W shrinks).
      const size_t train_events = std::max<size_t>(15000, 50 * w);
      const EventStream train =
          SyntheticStream(train_events, 500 + 10 * w + length);
      const EventStream test = SyntheticStream(3000, 900 + 10 * w + length);
      const Pattern pattern =
          QBOfLength(train.schema_ptr(), length, w, 0.3, 3.0);
      PrintRow(RunDlacepExperiment(
          StrFormat("len=%zu W=%zu", length, w), pattern, train, test,
          FilterKind::kEventNetwork, config));
    }
  }
  PrintFooter();
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
