// Figure 11: impact of the amount of training epochs (a, b) and of the
// fraction of training data (c, d) on throughput gain and FN%.
//
// Protocol mirrors §5.2: the epoch sweep snapshots one training run's
// parameters at increasing epoch counts and evaluates each snapshot; the
// data sweep retrains from scratch on random subsets (paper: trained for
// a fixed 30-epoch budget). Expectation: FN% stabilizes quickly; the
// gain decreases and stabilizes as more data/epochs reduce the early
// over-filtering caused by class imbalance.

#include <cstdio>
#include <map>

#include "common/string_util.h"
#include "dlacep/event_filter.h"
#include "dlacep/pipeline.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

/// Non-owning view of a filter, so one trained network can back several
/// throw-away pipelines.
class BorrowedFilter : public StreamFilter {
 public:
  explicit BorrowedFilter(StreamFilter* inner) : inner_(inner) {}
  std::string name() const override { return inner_->name(); }
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->Mark(stream, range);
  }

 private:
  const StreamFilter* inner_;
};

struct Snapshot {
  size_t epoch;
  std::vector<Matrix> values;
};

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 18;
  // Paper: QA9(j=5); scaled to j=4.
  const Pattern pattern = QA9(s, 4, 10, 20, 0.9, 1.1, 0.85, 1.2, w);
  DlacepConfig config = BenchConfig();
  config.train.max_epochs = 30;
  config.train.convergence_epochs = 1000;  // disable early stop

  const Featurizer featurizer(pattern, train);
  const InputAssembler assembler = InputAssembler::ForWindow(w);
  const FilterDataset dataset =
      BuildFilterDataset(pattern, train, assembler, featurizer,
                         config.train_fraction, config.split_seed);

  // Exact baseline, measured once.
  auto ecep = CreateEngine(EngineKind::kNfa, pattern);
  DLACEP_CHECK(ecep.ok());
  MatchSet exact;
  DLACEP_CHECK(ecep.value()
                   ->Evaluate({test.events().data(), test.size()}, &exact)
                   .ok());
  const double ecep_seconds = ecep.value()->stats().elapsed_seconds;

  auto evaluate = [&](EventNetworkFilter* filter, const char* label,
                      const std::string& x_value) {
    DlacepPipeline pipeline(pattern,
                            std::make_unique<BorrowedFilter>(filter),
                            config);
    const PipelineResult result = pipeline.Evaluate(test);
    const MatchSetMetrics quality = CompareMatchSets(exact, result.matches);
    std::printf("%-10s %8s  tp-gain=%8.2f  FN%%=%6.2f  filt=%5.1f%%  "
                "matches=%zu/%zu\n",
                label, x_value.c_str(),
                ecep_seconds / std::max(result.elapsed_seconds(), 1e-9),
                quality.false_negative_pct, result.filtering_ratio() * 100,
                result.matches.size(), exact.size());
    std::fflush(stdout);
  };

  // ------------------------------------------------------------------
  std::printf("=== Fig 11(a,b): gain & FN%% vs training epochs, "
              "QA9(j=4) ===\n");
  const std::vector<size_t> checkpoints = {1, 3, 6, 12, 20, 30};
  EventNetworkFilter filter(&featurizer, config.network,
                            config.event_threshold);
  std::vector<Snapshot> snapshots;
  TrainConfig train_config = config.train;
  train_config.on_epoch = [&](size_t epoch, double) {
    for (size_t c : checkpoints) {
      if (epoch + 1 == c) {
        Snapshot snap;
        snap.epoch = c;
        for (Parameter* p : filter.Params()) snap.values.push_back(p->value);
        snapshots.push_back(std::move(snap));
      }
    }
    return true;
  };
  filter.Fit(dataset.train_event, train_config);

  for (const Snapshot& snap : snapshots) {
    const std::vector<Parameter*> params = filter.Params();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = snap.values[i];
    }
    filter.OnParamsChanged();  // repack frozen inference weights
    evaluate(&filter, "epochs", StrFormat("%zu", snap.epoch));
  }

  // ------------------------------------------------------------------
  std::printf("\n=== Fig 11(c,d): gain & FN%% vs training data %% "
              "(fixed 20-epoch budget) ===\n");
  for (double pct : {0.1, 0.25, 0.5, 1.0}) {
    std::vector<Sample> subset;
    const size_t count = std::max<size_t>(
        1, static_cast<size_t>(pct *
                               static_cast<double>(
                                   dataset.train_event.size())));
    // The dataset order is already a random permutation of windows.
    subset.assign(dataset.train_event.begin(),
                  dataset.train_event.begin() + static_cast<ptrdiff_t>(count));
    EventNetworkFilter fresh(&featurizer, config.network,
                             config.event_threshold);
    TrainConfig subset_config = config.train;
    subset_config.max_epochs = 20;
    fresh.Fit(subset, subset_config);
    evaluate(&fresh, "data%", StrFormat("%.0f%%", pct * 100));
  }
  std::printf("\n(paper: FN%% stabilizes quickly; gain decreases then "
              "stabilizes with more data/epochs)\n");
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
