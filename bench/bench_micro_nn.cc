// Micro benchmarks (google-benchmark) for the nn substrate, backing the
// §4.3 filtration-complexity claim: BiLSTM inference cost is O(h·l) —
// linear in the parameter count and the sequence length, independent of
// the number of partial matches in the data.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "dlacep/event_filter.h"
#include "dlacep/featurizer.h"
#include "nn/crf.h"
#include "nn/infer.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "pattern/builder.h"
#include "stream/generator.h"

namespace dlacep {
namespace {

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::Randn(n, n, 1.0, &rng);
  const Matrix b = Matrix::Randn(n, n, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulPlain(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

// The inference-path kernel: B pre-transposed at freeze time, output
// written into a caller-owned buffer. Same FLOP count as BM_MatMul —
// the delta is layout (contiguous dot products) plus zero allocation.
void BM_MatMulTransBInto(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::Randn(n, n, 1.0, &rng);
  const Matrix b_t = Matrix::Randn(n, n, 1.0, &rng);
  Matrix out(n, n);
  for (auto _ : state) {
    MatMulTransBInto(a, b_t, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatMulTransBInto)->Arg(16)->Arg(64)->Arg(128);

void BM_BiLstmForwardSeqLen(benchmark::State& state) {
  const size_t t_steps = static_cast<size_t>(state.range(0));
  Rng rng(2);
  StackedBiLstm stack("s", 8, 16, 2, &rng);
  const Matrix input = Matrix::Randn(t_steps, 8, 1.0, &rng);
  for (auto _ : state) {
    Tape tape;
    benchmark::DoNotOptimize(stack.Forward(&tape, tape.Input(input)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t_steps));
}
BENCHMARK(BM_BiLstmForwardSeqLen)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_BiLstmForwardHidden(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  Rng rng(3);
  StackedBiLstm stack("s", 8, hidden, 2, &rng);
  const Matrix input = Matrix::Randn(32, 8, 1.0, &rng);
  for (auto _ : state) {
    Tape tape;
    benchmark::DoNotOptimize(stack.Forward(&tape, tape.Input(input)));
  }
}
BENCHMARK(BM_BiLstmForwardHidden)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Tape-free counterparts of the two benches above: frozen weights,
// fused LSTM cell, one InferenceContext reused across iterations (the
// steady state of pipeline filtration — allocation-free after the
// first pass).
void BM_BiLstmInferSeqLen(benchmark::State& state) {
  const size_t t_steps = static_cast<size_t>(state.range(0));
  Rng rng(2);
  StackedBiLstm stack("s", 8, 16, 2, &rng);
  const StackedBiLstmInfer frozen = Freeze(stack);
  const Matrix input = Matrix::Randn(t_steps, 8, 1.0, &rng);
  InferenceContext ctx;
  for (auto _ : state) {
    ctx.Reset();
    benchmark::DoNotOptimize(frozen.Forward(&ctx, input).data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t_steps));
}
BENCHMARK(BM_BiLstmInferSeqLen)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_BiLstmInferHidden(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  Rng rng(3);
  StackedBiLstm stack("s", 8, hidden, 2, &rng);
  const StackedBiLstmInfer frozen = Freeze(stack);
  const Matrix input = Matrix::Randn(32, 8, 1.0, &rng);
  InferenceContext ctx;
  for (auto _ : state) {
    ctx.Reset();
    benchmark::DoNotOptimize(frozen.Forward(&ctx, input).data());
  }
}
BENCHMARK(BM_BiLstmInferHidden)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// End-to-end filter forward at the paper-scale hidden size: the full
// BiLSTM event filter (stack + emission heads + BI-CRF marginals +
// threshold) on one 64-event window, tape path vs inference path.
// This pair backs the headline speedup figure in EXPERIMENTS.md.
struct FilterBenchFixture {
  FilterBenchFixture()
      : stream([] {
          SyntheticConfig config;
          config.num_events = 2000;
          config.num_types = 5;
          config.num_attrs = 1;
          config.seed = 7;
          return GenerateSynthetic(config);
        }()),
        pattern([&] {
          PatternBuilder b(stream.schema_ptr());
          auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
          b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");
          return b.BuildOrDie(std::move(root), WindowSpec::Count(32));
        }()),
        featurizer(pattern, stream) {}

  EventStream stream;
  Pattern pattern;
  Featurizer featurizer;
};

FilterBenchFixture& SharedFixture() {
  static FilterBenchFixture fixture;
  return fixture;
}

void BM_EventFilterTapeForward(benchmark::State& state) {
  FilterBenchFixture& fx = SharedFixture();
  NetworkConfig network;
  network.hidden_dim = static_cast<size_t>(state.range(0));
  network.num_layers = 2;
  const EventNetworkFilter filter(&fx.featurizer, network, 0.5);
  Rng rng(8);
  const Matrix features =
      Matrix::Randn(64, fx.featurizer.feature_dim(), 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MarkFeaturesTape(features));
  }
}
BENCHMARK(BM_EventFilterTapeForward)->Arg(16)->Arg(64);

void BM_EventFilterInferForward(benchmark::State& state) {
  FilterBenchFixture& fx = SharedFixture();
  NetworkConfig network;
  network.hidden_dim = static_cast<size_t>(state.range(0));
  network.num_layers = 2;
  const EventNetworkFilter filter(&fx.featurizer, network, 0.5);
  Rng rng(8);
  const Matrix features =
      Matrix::Randn(64, fx.featurizer.feature_dim(), 1.0, &rng);
  InferenceContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MarkFeaturesWith(features, &ctx));
  }
}
BENCHMARK(BM_EventFilterInferForward)->Arg(16)->Arg(64);

void BM_TrainingStep(benchmark::State& state) {
  Rng rng(4);
  StackedBiLstm stack("s", 8, 16, 2, &rng);
  Dense head_f("hf", stack.out_dim(), 2, &rng);
  Dense head_b("hb", stack.out_dim(), 2, &rng);
  BiCrf crf("crf", 2, &rng);
  const Matrix input = Matrix::Randn(32, 8, 1.0, &rng);
  std::vector<int> labels(32);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = (i % 3) == 0;

  std::vector<Parameter*> params = stack.Params();
  for (Parameter* p : head_f.Params()) params.push_back(p);
  for (Parameter* p : head_b.Params()) params.push_back(p);
  for (Parameter* p : crf.Params()) params.push_back(p);

  for (auto _ : state) {
    Tape tape;
    Var h = stack.Forward(&tape, tape.Input(input));
    Var loss = crf.Nll(&tape, head_f.Forward(&tape, h),
                       head_b.Forward(&tape, h), labels);
    tape.Backward(loss);
    for (Parameter* p : params) p->ZeroGrad();
    benchmark::DoNotOptimize(loss.value()(0, 0));
  }
}
BENCHMARK(BM_TrainingStep);

void BM_CrfViterbi(benchmark::State& state) {
  const size_t t_steps = static_cast<size_t>(state.range(0));
  Rng rng(5);
  LinearChainCrf crf("crf", 2, &rng);
  const Matrix emissions = Matrix::Randn(t_steps, 2, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Viterbi(emissions));
  }
}
BENCHMARK(BM_CrfViterbi)->Arg(32)->Arg(128)->Arg(512);

void BM_CrfMarginals(benchmark::State& state) {
  Rng rng(6);
  LinearChainCrf crf("crf", 2, &rng);
  const Matrix emissions = Matrix::Randn(64, 2, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf.Marginals(emissions));
  }
}
BENCHMARK(BM_CrfMarginals);

}  // namespace
}  // namespace dlacep

// --json F is translated into google-benchmark's own JSON reporter so
// all 16 bench binaries share one flag for machine-readable output.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static std::string out_flag;
  static std::string fmt_flag = "--benchmark_out_format=json";
  for (size_t i = 1; i < args.size(); ++i) {
    std::string arg = args[i];
    std::string path;
    if (arg == "--json" && i + 1 < args.size()) {
      path = args[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      args.erase(args.begin() + i);
    } else {
      continue;
    }
    out_flag = "--benchmark_out=" + path;
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
    break;
  }
  int rewritten_argc = static_cast<int>(args.size());
  benchmark::Initialize(&rewritten_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
