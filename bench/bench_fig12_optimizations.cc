// Figure 12: DLACEP vs state-of-the-art ECEP optimizations (ZStream-style
// cost-based tree evaluation and lazy frequency-ordered evaluation).
//
// Two baseline deployments are measured:
//   * batch — the whole span is evaluated at once with the id-window
//     constraint pruning joins. This is a *stronger* baseline than the
//     original streaming ZStream (no overlap is re-evaluated);
//   * streaming — the engine runs on overlapping batches of 2W stepped
//     by W with deduplication, the way a sliding-window deployment
//     actually executes.
//
// Workloads: the paper's QA11(SEQ), QA11(CONJ), QA12 (scaled), plus the
// partial-match-heavy QA1(j=5, k=32) regime where the optimizations'
// selective-anchor tricks stop helping — the regime the paper's W=150
// experiments operate in.

#include <cstdio>

#include "common/timer.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

// Evaluates `engine` in streaming batches of 2W stepped by W (dedup by
// MatchSet), returning elapsed seconds.
double StreamingEvaluate(CepEngine* engine, const EventStream& stream,
                         size_t w, MatchSet* out) {
  Stopwatch watch;
  for (const WindowRange& range :
       CountWindows(stream.size(), 2 * w, w)) {
    DLACEP_CHECK(
        engine->Evaluate(stream.View(range.begin, range.size()), out)
            .ok());
  }
  return watch.ElapsedSeconds();
}

void RunCase(const std::string& label, const Pattern& pattern,
             const EventStream& train, const EventStream& test,
             const DlacepConfig& config) {
  const size_t w = pattern.window().count_size();

  // NFA ECEP baseline.
  auto nfa = CreateEngine(EngineKind::kNfa, pattern);
  DLACEP_CHECK(nfa.ok());
  MatchSet exact;
  Stopwatch nfa_watch;
  DLACEP_CHECK(nfa.value()
                   ->Evaluate({test.events().data(), test.size()}, &exact)
                   .ok());
  const double nfa_seconds = nfa_watch.ElapsedSeconds();
  std::printf("%-28s %-22s gain=%8.2f recall=%5.3f PM=%llu\n",
              label.c_str(), "nfa (ECEP baseline)", 1.0, 1.0,
              static_cast<unsigned long long>(
                  nfa.value()->stats().partial_matches));
  std::fflush(stdout);

  for (EngineKind kind : {EngineKind::kTree, EngineKind::kLazy}) {
    // Batch deployment.
    auto batch = CreateEngine(kind, pattern);
    DLACEP_CHECK(batch.ok());
    MatchSet batch_matches;
    Stopwatch batch_watch;
    DLACEP_CHECK(
        batch.value()
            ->Evaluate({test.events().data(), test.size()}, &batch_matches)
            .ok());
    const double batch_seconds = batch_watch.ElapsedSeconds();
    std::printf("%-28s %-22s gain=%8.2f recall=%5.3f PM=%llu\n",
                label.c_str(),
                (std::string(EngineKindName(kind)) + " batch").c_str(),
                nfa_seconds / std::max(batch_seconds, 1e-9),
                CompareMatchSets(exact, batch_matches).recall,
                static_cast<unsigned long long>(
                    batch.value()->stats().partial_matches));

    // Streaming deployment (2W batches stepped by W).
    auto streaming = CreateEngine(kind, pattern);
    DLACEP_CHECK(streaming.ok());
    MatchSet streaming_matches;
    const double streaming_seconds = StreamingEvaluate(
        streaming.value().get(), test, w, &streaming_matches);
    std::printf("%-28s %-22s gain=%8.2f recall=%5.3f PM=%llu\n",
                label.c_str(),
                (std::string(EngineKindName(kind)) + " streaming").c_str(),
                nfa_seconds / std::max(streaming_seconds, 1e-9),
                CompareMatchSets(exact, streaming_matches).recall,
                static_cast<unsigned long long>(
                    streaming.value()->stats().partial_matches));
    std::fflush(stdout);
  }

  const ExperimentRow row = RunDlacepExperiment(
      label, pattern, train, test, FilterKind::kEventNetwork, config);
  std::printf("%-28s %-22s gain=%8.2f recall=%5.3f PM=%llu (filt %.0f%%)\n",
              label.c_str(), "DLACEP event-network", row.throughput_gain,
              row.recall,
              static_cast<unsigned long long>(row.acep_partial_matches),
              row.filtering_ratio * 100);
  std::fflush(stdout);
}

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();

  DlacepConfig config = BenchConfig();
  config.oversample_positive = 4;
  config.event_threshold = 0.3;

  std::printf("=== Fig 12: DLACEP vs ECEP optimization baselines ===\n");
  RunCase("QA11(SEQ)", QA11(s, false, 6, 0.3, 3.0, 30), train, test,
          config);
  RunCase("QA11(CONJ)", QA11(s, true, 6, 0.5, 2.0, 24), train, test,
          config);
  RunCase("QA12", QA12(s, 6, 0.3, 3.0, 0.25, 4.0, 30), train, test,
          config);
  RunCase("QA1(j=5,k=32) heavy-PM", QA1(s, 5, 32, 0.9, 1.1, 4, 24),
          train, test, config);
  std::printf(
      "\n(paper regime = the heavy-PM row: with partial matches "
      "dominating, lazy evaluation degenerates to the NFA and DLACEP "
      "pulls ahead; on the selective QA11/QA12 instantiations at "
      "laptop scale the optimizations still cope)\n");
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
