// Ablation: negation-aware labeling (§4.4).
//
// The paper reports that the plain event network produced "a large
// amount of false positive matches" on negation patterns, because the
// filter dropped the negated-type events that would have vetoed the
// match; labeling (and hence relaying) negated types fixed it. This
// bench reproduces both sides on QA7.

#include <cstdio>

#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const Pattern pattern = QA7(s, 1, 10, 2, 0.8, 1.25, 18);

  PrintHeader("Ablation: negation-aware labeling on/off, QA7(j=1) "
              "(paper §4.4 — without it, false positives abound)");
  for (const bool aware : {true, false}) {
    DlacepConfig config = BenchConfig();
    config.negation_aware_labeling = aware;
    PrintRow(RunDlacepExperiment(
        aware ? "neg-aware labeling ON" : "neg-aware labeling OFF",
        pattern, train, test, FilterKind::kEventNetwork, config));
  }
  std::printf("(precision < 1 in the OFF row = fabricated matches; the "
              "ON row suppresses them at some throughput cost)\n");
  PrintFooter();
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
