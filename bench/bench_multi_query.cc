// Multi-query serving bench: one shared-trunk MultiQueryServer serving
// 8 registered queries vs 8 independent single-query OnlineDlacep
// pipelines reusing the same trained filter.
//
// The shared side pays one trunk forward per assembler window and
// decodes 8 cheap per-query heads off the shared CRF marginals; the
// independent side pays the full forward 8 times. With the NN
// dominating the window cost the ratio approaches the query count
// (~3.8x measured locally). CI hard-gates on the deterministic
// signals — identical answers and the sharing counters — and holds the
// wall-clock speedup only to a noise-tolerant floor (see
// BENCH_multi_query in the workflow). Both sides run num_shards=1 so
// the comparison is
// work, not parallelism; a shard sweep afterwards reports how the
// shared server scales.
//
// The query set includes two structural-twin pairs (QA1 and QA3
// duplicates) so the shared-CEP dedup path is exercised: twins are
// extracted once and fanned out, visible in the sharing stats. Every
// configuration checks that per-query match sets are byte-identical to
// the independent runs — speed that changes answers doesn't count.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dlacep/multi_pattern.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

constexpr int kRepetitions = 3;

bool SameMatches(const MatchSet& a, const MatchSet& b) {
  return a.size() == b.size() && a.IntersectionSize(b) == a.size();
}

/// The 8-query serving mix: two structural-twin pairs (dedup path) plus
/// four distinct shapes (SEQ bands, one-sided, double band, DISJ).
/// QA2-style unconditioned sequences are deliberately absent — their
/// match blowup would turn the bench into an extraction stress test.
std::vector<Pattern> ServingMix(std::shared_ptr<const Schema> s, size_t w) {
  std::vector<Pattern> patterns;
  patterns.push_back(QA1(s, 4, 7, 0.9, 1.1, 3, w));
  patterns.push_back(QA1(s, 4, 7, 0.9, 1.1, 3, w));  // twin of q0
  patterns.push_back(QA1(s, 5, 5, 0.85, 1.15, 2, w));
  patterns.push_back(QA3(s, 5, 6, 3, 2, 1, 4, 0.9, 1.1, 1.5, w));
  patterns.push_back(QA3(s, 5, 6, 3, 2, 1, 4, 0.9, 1.1, 1.5, w));  // twin
  patterns.push_back(QA4(s, 4, 6, 3, 1, 3, 0.9, 1.1, 0.8, 1.25, w));
  patterns.push_back(QA10(s, 3, 8, 0.85, 1.2, w));
  patterns.push_back(QA11(s, false, 8, 0.8, 1.25, w));
  return patterns;
}

OnlineConfig ServingConfig(size_t max_window, size_t shards) {
  OnlineConfig config;
  config.num_shards = shards;
  config.queue_capacity = 4096;
  config.batch_size = 8;
  config.overload.enabled = false;
  // Pin the geometry both sides share; the serve path would resolve the
  // same values from the registry, the isolated runs would not.
  config.mark_size = 2 * max_window;
  config.step_size = max_window;
  return config;
}

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(3000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 12;

  const std::vector<Pattern> patterns = ServingMix(s, w);
  // A serving-grade trunk: the paper's deployment regime has the BiLSTM
  // forward dominating the per-window cost, which is exactly what makes
  // trunk sharing pay. The micro trunks the other benches train would
  // leave this bench extraction-bound and measure nothing.
  DlacepConfig config = FastBenchConfig();
  config.network.hidden_dim = 96;
  config.train.max_epochs = 10;
  std::printf("training shared trunk over %zu queries...\n", patterns.size());
  MultiPatternDlacep multi(patterns, train, config);
  std::printf("trained: f1=%.3f max_window=%zu\n", multi.test_metrics().f1(),
              multi.max_window());

  // --- Independent baseline: 8 single-query pipelines, same filter. ---
  const OnlineConfig online = ServingConfig(multi.max_window(), 1);
  std::vector<MatchSet> independent(patterns.size());
  double independent_seconds = 0.0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    double total = 0.0;
    for (size_t q = 0; q < patterns.size(); ++q) {
      OnlineDlacep alone(patterns[q], multi.filter(), online);
      ReplaySource source(&test);
      OnlineResult result = alone.Run(&source);
      total += result.stats.elapsed_seconds;
      if (rep == 0) independent[q] = std::move(result.matches);
    }
    if (rep == 0 || total < independent_seconds) independent_seconds = total;
  }
  const double independent_eps =
      static_cast<double>(test.size()) / std::max(independent_seconds, 1e-9);
  std::printf("%-24s %8.4fs  %9.0f ev/s\n", "independent x8",
              independent_seconds, independent_eps);

  // --- Shared serving: one registry, one trunk forward per window. ---
  serve::QueryRegistry registry;
  for (size_t q = 0; q < patterns.size(); ++q) {
    serve::QueryOptions options;
    options.name = "q" + std::to_string(q);
    auto id = registry.Register(patterns[q], options);
    if (!id.ok()) {
      std::fprintf(stderr, "register q%zu: %s\n", q,
                   id.status().ToString().c_str());
      return 1;
    }
  }

  bool all_identical = true;
  double shared_eps_at_1 = 0.0;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    serve::ServeConfig serve_config;
    serve_config.online = ServingConfig(multi.max_window(), shards);
    serve::MultiQueryServer server(&registry, multi.filter(), multi.filter(),
                                   serve_config);
    double best_seconds = 0.0;
    serve::MultiQueryResult result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      ReplaySource source(&test);
      serve::MultiQueryResult run;
      const Status status = server.Run(&source, &run);
      if (!status.ok()) {
        std::fprintf(stderr, "serve run: %s\n", status.ToString().c_str());
        return 1;
      }
      const double seconds =
          run.stats.elapsed_seconds + run.stats.extract_seconds;
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
        result = std::move(run);
      }
    }
    bool identical = result.queries.size() == independent.size();
    for (size_t q = 0; identical && q < result.queries.size(); ++q) {
      identical = SameMatches(result.queries[q].matches, independent[q]);
    }
    all_identical = all_identical && identical;
    const double eps = result.events_per_sec();
    if (shards == 1) shared_eps_at_1 = eps;
    std::printf("%-24s %8.4fs (stream=%.4f extract=%.4f)  %9.0f ev/s  "
                "speedup=%5.2fx  identical=%s\n",
                ("shared x8 shards=" + std::to_string(shards)).c_str(),
                best_seconds, result.stats.elapsed_seconds,
                result.stats.extract_seconds, eps,
                eps / std::max(independent_eps, 1e-9),
                identical ? "yes" : "NO");
    std::printf("  sharing: %zu partitions, %zu engines run, %zu shared, "
                "%zu guard-pruned, %zu type-pruned\n",
                result.sharing.partitions, result.sharing.engines_run,
                result.sharing.engines_shared, result.sharing.guard_pruned,
                result.sharing.type_pruned);
    std::printf("  headline: %zu queries x %.0f ev/s = %.0f query-events/s\n",
                result.queries.size(), eps, result.query_events_per_sec());
    std::fflush(stdout);
    const std::string key = "8 queries shards=" + std::to_string(shards);
    JsonReport::Metric(key, "serve_seconds", best_seconds);
    JsonReport::Metric(key, "events_per_sec_shared", eps);
    JsonReport::Metric(key, "query_events_per_sec",
                       result.query_events_per_sec());
    JsonReport::Metric(key, "speedup_vs_independent",
                       eps / std::max(independent_eps, 1e-9));
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
    JsonReport::Metric(key, "engines_run",
                       static_cast<double>(result.sharing.engines_run));
    JsonReport::Metric(key, "engines_shared",
                       static_cast<double>(result.sharing.engines_shared));
    JsonReport::Metric(key, "total_matches",
                       static_cast<double>(result.total_matches()));
    // Fault-isolation counters: this bench runs unbudgeted, so all three
    // must stay 0 — a nonzero value means budgets/breakers leaked into
    // the perf path and the identical gate is no longer apples to apples.
    size_t degraded = 0;
    for (const serve::QueryResult& query : result.queries) {
      degraded += query.degraded ? 1 : 0;
    }
    JsonReport::Metric(key, "degraded_queries",
                       static_cast<double>(degraded));
    JsonReport::Metric(key, "breaker_trips",
                       static_cast<double>(result.sharing.breaker_trips));
    JsonReport::Metric(key, "budget_aborts",
                       static_cast<double>(result.sharing.budget_aborts));
  }

  // --- Adaptive serving: same 8 queries, per-query engine=adaptive. ---
  // Each shared-extraction unit's cost model picks its own engine
  // (auto-feed: every chunk Evaluate observes its span); answers must
  // stay byte-identical to the independent NFA runs, which CI gates.
  {
    serve::QueryRegistry adaptive_registry;
    for (size_t q = 0; q < patterns.size(); ++q) {
      serve::QueryOptions options;
      options.name = "q" + std::to_string(q);
      options.engine = EngineKind::kAdaptive;
      auto id = adaptive_registry.Register(patterns[q], options);
      if (!id.ok()) {
        std::fprintf(stderr, "register adaptive q%zu: %s\n", q,
                     id.status().ToString().c_str());
        return 1;
      }
    }
    serve::ServeConfig serve_config;
    serve_config.online = ServingConfig(multi.max_window(), 1);
    serve::MultiQueryServer server(&adaptive_registry, multi.filter(),
                                   multi.filter(), serve_config);
    double best_seconds = 0.0;
    serve::MultiQueryResult result;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      ReplaySource source(&test);
      serve::MultiQueryResult run;
      const Status status = server.Run(&source, &run);
      if (!status.ok()) {
        std::fprintf(stderr, "adaptive serve run: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      const double seconds =
          run.stats.elapsed_seconds + run.stats.extract_seconds;
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
        result = std::move(run);
      }
    }
    bool identical = result.queries.size() == independent.size();
    for (size_t q = 0; identical && q < result.queries.size(); ++q) {
      identical = SameMatches(result.queries[q].matches, independent[q]);
    }
    all_identical = all_identical && identical;
    const double eps = result.events_per_sec();
    std::printf("%-24s %8.4fs  %9.0f ev/s  identical=%s\n",
                "shared x8 adaptive", best_seconds, eps,
                identical ? "yes" : "NO");
    std::fflush(stdout);
    const std::string key = "8 queries adaptive shards=1";
    JsonReport::Metric(key, "serve_seconds", best_seconds);
    JsonReport::Metric(key, "events_per_sec_shared", eps);
    JsonReport::Metric(key, "identical", identical ? 1.0 : 0.0);
  }

  // The gate the CI perf job asserts on: shared serving of 8 queries at
  // one shard vs 8 independent pipelines, identical answers.
  const double speedup = shared_eps_at_1 / std::max(independent_eps, 1e-9);
  JsonReport::Metric("gate", "events_per_sec_independent", independent_eps);
  JsonReport::Metric("gate", "events_per_sec_shared", shared_eps_at_1);
  JsonReport::Metric("gate", "speedup", speedup);
  JsonReport::Metric("gate", "identical", all_identical ? 1.0 : 0.0);
  std::printf("gate: speedup=%.2fx (CI floor 1.5)  identical=%s\n",
              speedup, all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
