// Figure 10: qualitative analysis of detected vs undetected matches.
//
// Reproduces the paper's case study on QA10: partition the exact matches
// by the variance of the volume attribute across the match's events and
// count how many of each bucket DLACEP detected vs missed. Expectation:
// missed matches exhibit significantly higher variance — smooth volume
// transitions are easier for the network to categorize.

#include <cstdio>

#include "dlacep/analysis.h"
#include "workloads/queries_a.h"
#include "workloads/recipes.h"
#include "workloads/report.h"

#include "bench_json.h"

namespace dlacep {
namespace workloads {
namespace {

int Run() {
  const EventStream train = GenerateStockStream(StockConfig(5000, 1001));
  const EventStream test = GenerateStockStream(StockConfig(3000, 2002));
  auto s = train.schema_ptr();
  const size_t w = 18;
  // Paper: QA10(j=4); scaled to j=3 rank bands of width 8.
  const Pattern pattern = QA10(s, 3, 8, 0.85, 1.2, w);
  const DlacepConfig config = BenchConfig();

  std::printf("=== Fig 10: variance of detected (D) vs undetected (U) "
              "matches, QA10(j=3) ===\n");

  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
  const ComparisonResult comparison =
      built.pipeline->CompareWithEcep(test);

  const VarianceSummary summary = SummarizeVariance(
      comparison.exact_matches, comparison.dlacep.matches, test, 0);
  std::printf("\ndetected:   %zu matches, mean volume variance %.4f\n",
              summary.detected_count, summary.detected_mean);
  std::printf("undetected: %zu matches, mean volume variance %.4f\n",
              summary.undetected_count, summary.undetected_mean);
  std::printf("recall %.3f\n\n",
              comparison.quality.recall);

  const auto buckets = VarianceDistribution(
      comparison.exact_matches, comparison.dlacep.matches, test, 0, 8);
  std::printf("%-24s %10s %10s %10s\n", "variance bucket", "detected",
              "undetected", "miss-rate");
  for (const VarianceBucket& bucket : buckets) {
    const size_t total = bucket.detected + bucket.undetected;
    std::printf("[%9.3f, %9.3f) %10zu %10zu %9.1f%%\n", bucket.lo,
                bucket.hi, bucket.detected, bucket.undetected,
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(bucket.undetected) /
                                 static_cast<double>(total));
  }
  std::printf("\n(paper: the volume of missed matches exhibits "
              "significantly higher variance than detected ones)\n");
  return 0;
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep

int main(int argc, char** argv) {
  dlacep::workloads::JsonReport::Init(argc, argv);
  return dlacep::workloads::JsonReport::Finish(dlacep::workloads::Run());
}
