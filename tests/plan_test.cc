// Unit tests for plan compilation: position layouts, precedence masks,
// group repetition, negation anchoring, condition splitting, pruning
// readiness, and negation-violation checking.

#include <gtest/gtest.h>

#include "pattern/builder.h"
#include "pattern/plan.h"
#include "stream/generator.h"

namespace dlacep {
namespace {

std::shared_ptr<Schema> TestSchema() { return MakeSyntheticSchema(6, 1); }

TEST(PlanCompile, SeqProducesTotalOrderChain) {
  PatternBuilder b(TestSchema());
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"), b.Prim("C", "c"));
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans.value().size(), 1u);
  const LinearPlan& plan = plans.value()[0];
  ASSERT_EQ(plan.num_positions(), 3u);
  EXPECT_EQ(plan.preds[0], 0u);
  EXPECT_EQ(plan.preds[1], 0b001u);
  EXPECT_EQ(plan.preds[2], 0b011u);
  EXPECT_FALSE(plan.group_repeat);
  EXPECT_TRUE(plan.negs.empty());
}

TEST(PlanCompile, ConjProducesUnorderedPositions) {
  PatternBuilder b(TestSchema());
  auto root = b.Conj(b.Prim("A", "a"), b.Prim("B", "bb"));
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];
  EXPECT_EQ(plan.preds[0], 0u);
  EXPECT_EQ(plan.preds[1], 0u);
}

TEST(PlanCompile, DisjYieldsOnePlanPerBranch) {
  PatternBuilder b(TestSchema());
  auto root = b.Disj(b.Seq(b.Prim("A", "a"), b.Prim("B", "bb")),
                     b.Prim("C", "c"));
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  ASSERT_EQ(plans.value().size(), 2u);
  // The condition over (a, bb) belongs to the first branch only.
  EXPECT_EQ(plans.value()[0].pos_conditions.size(), 1u);
  EXPECT_EQ(plans.value()[1].pos_conditions.size(), 0u);
}

TEST(PlanCompile, KleenePrimitiveInsideSeq) {
  PatternBuilder b(TestSchema());
  auto root = b.Seq(b.Prim("A", "a"),
                    b.Kleene(b.Prim("B", "k"), 2, 5),
                    b.Prim("C", "c"));
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];
  ASSERT_EQ(plan.num_positions(), 3u);
  EXPECT_TRUE(plan.positions[1].kleene);
  EXPECT_EQ(plan.positions[1].min_reps, 2u);
  EXPECT_EQ(plan.positions[1].max_reps, 5u);
}

TEST(PlanCompile, TopLevelKcSeqSetsGroupRepeat) {
  PatternBuilder b(TestSchema());
  auto root = b.Kleene(b.Seq(b.Prim("A", "a"), b.Prim("B", "bb")), 1, 4);
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];
  EXPECT_TRUE(plan.group_repeat);
  EXPECT_EQ(plan.group_max_reps, 4u);
  EXPECT_EQ(plan.num_positions(), 2u);
}

TEST(PlanCompile, NegationAnchorsBetweenNeighbors) {
  PatternBuilder b(TestSchema());
  auto root = b.Seq(b.Prim("A", "a"), b.Neg(b.Prim("C", "nc")),
                    b.Neg(b.Prim("D", "nd")), b.Prim("B", "bb"));
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];
  ASSERT_EQ(plan.num_positions(), 2u);  // only positives
  ASSERT_EQ(plan.negs.size(), 2u);
  for (const NegSubPattern& neg : plan.negs) {
    EXPECT_EQ(neg.after_pos, 0);
    EXPECT_EQ(neg.before_pos, 1);
    ASSERT_EQ(neg.positions.size(), 1u);
  }
}

TEST(PlanCompile, NegConditionsAreSplitFromPositive) {
  PatternBuilder b(TestSchema());
  auto root = b.Seq(b.Prim("A", "a"), b.Neg(b.Prim("C", "nc")),
                    b.Prim("B", "bb"));
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");   // positive
  b.WhereCmp(1.0, "nc", "vol", CmpOp::kGt, 1.0, "a");   // negation
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];
  EXPECT_EQ(plan.pos_conditions.size(), 1u);
  EXPECT_EQ(plan.neg_conditions.size(), 1u);
}

TEST(PlanCompile, MultiTypePositionsCarryTheirSets) {
  PatternBuilder b(TestSchema());
  auto root = b.Seq(b.PrimAnyOf({"A", "B", "C"}, "x"), b.Prim("D", "y"));
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const PlanPosition& pos = plans.value()[0].positions[0];
  EXPECT_EQ(pos.types.size(), 3u);
  EXPECT_TRUE(pos.Matches(0));
  EXPECT_TRUE(pos.Matches(2));
  EXPECT_FALSE(pos.Matches(3));
}

TEST(ReadyForPruning, RequiresEqualKleeneListLengths) {
  PatternBuilder b(TestSchema());
  auto root = b.Kleene(b.Seq(b.Prim("A", "a"), b.Prim("B", "bb")), 1, 3);
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  const Condition& condition = *pattern.conditions()[0];
  const VarId va = 0;
  const VarId vb = 1;

  Event e1(0, 0, 0, {1.0});
  Event e2(1, 1, 1, {2.0});
  Event e3(2, 0, 2, {3.0});
  Binding binding(2);
  binding.Bind(pattern.vars()[0].name == "a" ? va : vb, &e1);
  // Identify which var is "a" by the VarInfo list.
  VarId a_var = -1;
  VarId b_var = -1;
  for (size_t i = 0; i < pattern.vars().size(); ++i) {
    if (pattern.vars()[i].name == "a") a_var = static_cast<VarId>(i);
    if (pattern.vars()[i].name == "bb") b_var = static_cast<VarId>(i);
  }
  Binding fresh(2);
  fresh.Bind(a_var, &e1);
  EXPECT_FALSE(ReadyForPruningEval(condition, fresh, pattern));  // bb unbound
  fresh.Bind(b_var, &e2);
  EXPECT_TRUE(ReadyForPruningEval(condition, fresh, pattern));  // 1 vs 1
  fresh.Bind(a_var, &e3);
  EXPECT_FALSE(ReadyForPruningEval(condition, fresh, pattern));  // 2 vs 1
}

TEST(ViolatesNegationCheck, DetectsAndRespectsConditions) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {1.0});  // A  (id 0)
  stream.Append(2, 1, {5.0});  // C  (id 1) — the negated type
  stream.Append(1, 2, {2.0});  // B  (id 2)

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Neg(b.Prim("C", "nc")),
                    b.Prim("B", "bb"));
  b.WhereCmp(1.0, "nc", "vol", CmpOp::kGt, 1.0, "a");
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];

  VarId a_var = -1;
  VarId b_var = -1;
  for (size_t i = 0; i < pattern.vars().size(); ++i) {
    if (pattern.vars()[i].name == "a") a_var = static_cast<VarId>(i);
    if (pattern.vars()[i].name == "bb") b_var = static_cast<VarId>(i);
  }
  Binding binding(pattern.num_vars());
  binding.Bind(a_var, &stream[0]);
  binding.Bind(b_var, &stream[2]);

  const std::span<const Event> span(stream.events().data(), stream.size());
  // C's vol (5.0) > a's vol (1.0): the negated occurrence qualifies.
  EXPECT_TRUE(ViolatesNegation(plan, binding, span));
}

TEST(ViolatesNegationCheck, IgnoresNonQualifyingOccurrence) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {10.0});  // A with high vol
  stream.Append(2, 1, {5.0});   // C with lower vol — does not qualify
  stream.Append(1, 2, {2.0});   // B

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Neg(b.Prim("C", "nc")),
                    b.Prim("B", "bb"));
  b.WhereCmp(1.0, "nc", "vol", CmpOp::kGt, 1.0, "a");
  const Pattern pattern = b.BuildOrDie(std::move(root),
                                       WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());

  VarId a_var = -1;
  VarId b_var = -1;
  for (size_t i = 0; i < pattern.vars().size(); ++i) {
    if (pattern.vars()[i].name == "a") a_var = static_cast<VarId>(i);
    if (pattern.vars()[i].name == "bb") b_var = static_cast<VarId>(i);
  }
  Binding binding(pattern.num_vars());
  binding.Bind(a_var, &stream[0]);
  binding.Bind(b_var, &stream[2]);
  EXPECT_FALSE(ViolatesNegation(
      plans.value()[0], binding,
      std::span<const Event>(stream.events().data(), stream.size())));
}

TEST(PatternValidation, RejectsUnsupportedShapes) {
  {
    PatternBuilder b(TestSchema());
    auto root = b.Seq(b.Prim("A", "a"),
                      b.Kleene(b.Seq(b.Prim("B", "x"), b.Prim("C", "y")),
                               1, 2));
    EXPECT_FALSE(b.Build(std::move(root), WindowSpec::Count(5)).ok());
  }
  {
    PatternBuilder b(TestSchema());
    auto root = b.Conj(b.Prim("A", "a"),
                       b.Seq(b.Prim("B", "x"), b.Prim("C", "y")));
    EXPECT_FALSE(b.Build(std::move(root), WindowSpec::Count(5)).ok());
  }
}

}  // namespace
}  // namespace dlacep
