// Unit tests for the stream substrate: schema, event stream, windows,
// generators, the stock simulator, and CSV round trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "stream/csv_io.h"
#include "stream/generator.h"
#include "stream/stocksim.h"
#include "stream/window.h"

namespace dlacep {
namespace {

TEST(Schema, RegistersAndLooksUpTypesAndAttrs) {
  Schema schema;
  const TypeId a = schema.RegisterType("GOOG");
  const TypeId b = schema.RegisterType("AAPL");
  EXPECT_NE(a, b);
  EXPECT_EQ(schema.RegisterType("GOOG"), a);  // idempotent
  EXPECT_EQ(schema.TypeIdOf("AAPL").value(), b);
  EXPECT_FALSE(schema.TypeIdOf("MSFT").ok());
  EXPECT_EQ(schema.TypeName(a), "GOOG");
  EXPECT_EQ(schema.TypeName(kBlankType), "<blank>");

  const size_t vol = schema.RegisterAttr("vol");
  EXPECT_EQ(schema.AttrIndexOf("vol").value(), vol);
  EXPECT_FALSE(schema.AttrIndexOf("price").ok());
  EXPECT_EQ(schema.num_types(), 2u);
  EXPECT_EQ(schema.num_attrs(), 1u);
}

TEST(EventStream, AssignsStrictlyIncreasingIds) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  EXPECT_EQ(stream.Append(0, 0.0, {1.0}), 0u);
  EXPECT_EQ(stream.Append(1, 1.0, {2.0}), 1u);
  EXPECT_EQ(stream.AppendBlank(2.0), 2u);
  EXPECT_EQ(stream.size(), 3u);
  EXPECT_TRUE(stream[2].is_blank());
  EXPECT_FALSE(stream[0].is_blank());
}

TEST(EventStream, ComputeAttrStatsIgnoresBlanks) {
  auto schema = MakeSyntheticSchema(2, 1);
  EventStream stream(schema);
  stream.Append(0, 0.0, {2.0});
  stream.AppendBlank(1.0);
  stream.Append(1, 2.0, {4.0});
  const AttrStats stats = stream.ComputeAttrStats(0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
}

TEST(EventStream, TypeHistogramAndSlice) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  for (int i = 0; i < 6; ++i) {
    stream.Append(static_cast<TypeId>(i % 2), i, {0.0});
  }
  const auto hist = stream.TypeHistogram();
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 0u);

  const EventStream slice = stream.Slice(2, 3);
  EXPECT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0].id, 2u);  // ids preserved
}

TEST(Windows, FitsWindowCountAndTime) {
  Event e1(0, 0, 0.0, {});
  Event e2(4, 0, 8.0, {});
  const std::vector<const Event*> events = {&e1, &e2};
  EXPECT_TRUE(FitsWindow(events, WindowSpec::Count(5)));
  EXPECT_FALSE(FitsWindow(events, WindowSpec::Count(4)));
  EXPECT_TRUE(FitsWindow(events, WindowSpec::Time(8.0)));
  EXPECT_FALSE(FitsWindow(events, WindowSpec::Time(7.9)));
  EXPECT_TRUE(FitsWindow({}, WindowSpec::Count(1)));
}

TEST(Windows, CountWindowsCoverStreamWithStep) {
  const auto windows = CountWindows(10, 4, 2);
  ASSERT_GE(windows.size(), 4u);
  EXPECT_EQ(windows[0].begin, 0u);
  EXPECT_EQ(windows[0].end, 4u);
  EXPECT_EQ(windows[1].begin, 2u);
  EXPECT_EQ(windows.back().end, 10u);
}

TEST(Windows, TimeWindowsFollowTimestamps) {
  auto schema = MakeSyntheticSchema(1, 1);
  EventStream stream(schema);
  for (double ts : {0.0, 1.0, 5.0, 6.0, 20.0}) {
    stream.Append(0, ts, {0.0});
  }
  const auto windows = TimeWindows(stream, 2.0);
  ASSERT_FALSE(windows.empty());
  // First window covers ts 0,1 (span 2.0 excludes ts 5).
  EXPECT_EQ(windows[0].begin, 0u);
  EXPECT_EQ(windows[0].end, 2u);
  // The last event sits in its own window.
  EXPECT_EQ(windows.back().end, 5u);
}

// Coverage contract of TimeWindows: every pair of events whose
// timestamps differ by at most `span` must co-occur in at least one
// emitted window.
void ExpectPairwiseCoverage(const EventStream& stream, double span) {
  const auto windows = TimeWindows(stream, span);
  for (size_t i = 0; i < stream.size(); ++i) {
    for (size_t j = i + 1; j < stream.size(); ++j) {
      if (std::abs(stream[j].timestamp - stream[i].timestamp) > span) {
        continue;
      }
      bool covered = false;
      for (const WindowRange& w : windows) {
        covered = covered || (w.begin <= i && j < w.end);
      }
      EXPECT_TRUE(covered) << "pair (" << i << "," << j
                           << ") never co-occurs, ts "
                           << stream[i].timestamp << " vs "
                           << stream[j].timestamp;
    }
  }
}

TEST(Windows, TimeWindowsCoverAllPairsOnSortedStreams) {
  auto schema = MakeSyntheticSchema(1, 1);
  EventStream stream(schema);
  Rng rng(31);
  double ts = 0.0;
  for (int i = 0; i < 60; ++i) {
    ts += rng.Uniform() * 3.0;
    stream.Append(0, ts, {0.0});
  }
  ExpectPairwiseCoverage(stream, 4.0);
}

// Regression: with out-of-order timestamps (e.g. a stream loaded from
// an external CSV) the window anchored at an event used to stop at the
// first out-of-span straggler, so later in-span partners never
// co-occurred with the anchor. Here the pair (0, 2) — ts 0 and 3,
// within span 5 — was missed because ts=100 truncated event 0's window.
TEST(Windows, TimeWindowsCoverAllPairsOnUnsortedStreams) {
  auto schema = MakeSyntheticSchema(1, 1);
  EventStream stream(schema);
  for (double ts : {0.0, 100.0, 3.0}) {
    stream.Append(0, ts, {0.0});
  }
  ExpectPairwiseCoverage(stream, 5.0);

  // Randomized shuffled timestamps exercise the general case.
  EventStream shuffled(schema);
  Rng rng(32);
  for (int i = 0; i < 50; ++i) {
    shuffled.Append(0, rng.Uniform() * 40.0, {0.0});
  }
  ExpectPairwiseCoverage(shuffled, 6.0);
}

TEST(SyntheticGenerator, IsDeterministicAndRespectsConfig) {
  SyntheticConfig config;
  config.num_events = 200;
  config.num_types = 7;
  config.num_attrs = 2;
  config.seed = 5;
  const EventStream a = GenerateSynthetic(config);
  const EventStream b = GenerateSynthetic(config);
  ASSERT_EQ(a.size(), 200u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].attrs, b[i].attrs);
    EXPECT_LT(a[i].type, 7);
    EXPECT_EQ(a[i].attrs.size(), 2u);
  }
  // Constant sampling rate.
  EXPECT_DOUBLE_EQ(a[10].timestamp - a[9].timestamp, 1.0);
}

TEST(StockSimulator, RanksAreOrderedByPrevalence) {
  StockSimConfig config;
  config.num_events = 8000;
  config.num_symbols = 12;
  config.zipf_exponent = 1.1;
  config.seed = 9;
  const EventStream stream = GenerateStockStream(config);
  const auto hist = stream.TypeHistogram();
  // Zipf rank order: earlier ids strictly more prevalent on average;
  // allow small inversions between adjacent ranks but require the
  // aggregate ordering head >> tail.
  size_t head = 0;
  size_t tail = 0;
  for (size_t i = 0; i < 4; ++i) head += hist[i];
  for (size_t i = 8; i < 12; ++i) tail += hist[i];
  EXPECT_GT(head, 2 * tail);
}

TEST(StockSimulator, VolumesArePositiveAndCorrelated) {
  StockSimConfig config;
  config.num_events = 2000;
  config.num_symbols = 4;
  config.seed = 10;
  const EventStream stream = GenerateStockStream(config);
  double prev_by_symbol[4] = {0, 0, 0, 0};
  size_t close = 0;
  size_t total = 0;
  for (const Event& e : stream) {
    const double v = e.attr(0);
    EXPECT_GT(v, 0.0);
    double& prev = prev_by_symbol[e.type];
    if (prev > 0.0) {
      ++total;
      if (v > prev * 0.8 && v < prev * 1.25) ++close;
    }
    prev = v;
  }
  // Random-walk volumes: consecutive ticks of a symbol stay close.
  EXPECT_GT(static_cast<double>(close) / static_cast<double>(total), 0.9);
}

TEST(CsvIo, RoundTripPreservesEventsAndBlanks) {
  auto schema = MakeSyntheticSchema(3, 2);
  EventStream stream(schema);
  stream.Append(0, 0.5, {1.25, -3.0});
  stream.AppendBlank(1.0);
  stream.Append(2, 2.5, {0.0, 42.0});

  const std::string path = ::testing::TempDir() + "/dlacep_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(stream, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const EventStream& out = loaded.value();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].attrs, stream[0].attrs);
  EXPECT_TRUE(out[1].is_blank());
  EXPECT_DOUBLE_EQ(out[2].timestamp, 2.5);
  EXPECT_EQ(out.schema().TypeName(out[2].type), "C");
  std::remove(path.c_str());
}

TEST(CsvIo, RejectsMissingFileAndBadHeader) {
  EXPECT_FALSE(ReadCsv("/nonexistent/file.csv").ok());
  const std::string path = ::testing::TempDir() + "/dlacep_bad.csv";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("wrong,header\n", f);
  std::fclose(f);
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dlacep
