// Unit tests for the workload kit: every Table 1 / Table 2 template
// instantiates, validates, compiles, and behaves per its design intent.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "workloads/queries_a.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"

namespace dlacep {
namespace workloads {
namespace {

const EventStream& Stock() {
  static const EventStream stream =
      GenerateStockStream(StockConfig(1500, 51));
  return stream;
}

std::span<const Event> SpanOf(const EventStream& s) {
  return {s.events().data(), s.size()};
}

size_t CountMatches(const Pattern& pattern, const EventStream& stream) {
  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  MatchSet out;
  EXPECT_TRUE(engine.value()->Evaluate(SpanOf(stream), &out).ok());
  return out.size();
}

TEST(RankHelpers, TopKAndRanges) {
  EXPECT_EQ(TopK(3), (std::vector<TypeId>{0, 1, 2}));
  EXPECT_EQ(RankRange(2, 5), (std::vector<TypeId>{2, 3, 4}));
}

TEST(TableOneTemplates, AllInstantiateAndValidate) {
  auto s = Stock().schema_ptr();
  const size_t w = 14;
  const std::vector<Pattern> patterns = {
      QA1(s, 4, 7, 0.9, 1.1, 3, w),
      QA2(s, 6, w),
      QA3(s, 5, 10, 3, 2, 1, 4, 0.9, 1.1, 1.5, w),
      QA4(s, 4, 10, 3, 1, 3, 0.9, 1.1, 0.8, 1.25, w),
      QA5(s, 2, 10, 2, 0.8, 1.25, w, 2),
      QA6(s, 3, 10, 0.8, 1.25, w, 2),
      QA7(s, 2, 10, 2, 0.8, 1.25, w),
      QA8(s, 2, 10, 2, 0.8, 1.25, w),
      QA9(s, 3, 10, 20, 0.9, 1.1, 0.85, 1.2, w),
      QA10(s, 3, 8, 0.85, 1.2, w),
      QA11(s, false, 8, 0.5, 2.0, w),
      QA11(s, true, 8, 0.5, 2.0, w),
      QA12(s, 8, 0.5, 2.0, 0.4, 2.5, w),
  };
  for (const Pattern& pattern : patterns) {
    EXPECT_TRUE(pattern.Validate().ok()) << pattern.ToString();
    EXPECT_TRUE(CompilePlans(pattern).ok()) << pattern.ToString();
  }
}

TEST(TableOneTemplates, QA1GrowsPartialMatchesWithK) {
  auto s = Stock().schema_ptr();
  auto count_pm = [&](size_t k) {
    auto engine =
        CreateEngine(EngineKind::kNfa, QA1(s, 4, k, 0.9, 1.1, 3, 14));
    MatchSet out;
    EXPECT_TRUE(engine.value()->Evaluate(SpanOf(Stock()), &out).ok());
    return engine.value()->stats().partial_matches;
  };
  EXPECT_LT(count_pm(4), count_pm(16));
  EXPECT_LT(count_pm(16), count_pm(40));
}

TEST(TableOneTemplates, QA1WiderBandsYieldMoreFullMatches) {
  auto s = Stock().schema_ptr();
  const size_t narrow =
      CountMatches(QA1(s, 4, 10, 0.97, 1.03, 3, 14), Stock());
  const size_t wide =
      CountMatches(QA1(s, 4, 10, 0.7, 1.4, 3, 14), Stock());
  EXPECT_LT(narrow, wide);
}

TEST(TableOneTemplates, QA2CompletesMostPartials) {
  auto s = Stock().schema_ptr();
  auto engine = CreateEngine(EngineKind::kNfa, QA2(s, 6, 14));
  MatchSet out;
  ASSERT_TRUE(engine.value()->Evaluate(SpanOf(Stock()), &out).ok());
  const double ratio =
      static_cast<double>(out.size()) /
      static_cast<double>(engine.value()->stats().partial_matches);
  EXPECT_GT(ratio, 0.2);  // "almost all completed" at this scale
}

TEST(TableOneTemplates, QA7MoreNegOperatorsFewerMatches) {
  auto s = Stock().schema_ptr();
  const size_t one = CountMatches(QA7(s, 1, 10, 2, 0.8, 1.25, 14), Stock());
  const size_t two = CountMatches(QA7(s, 2, 10, 2, 0.8, 1.25, 14), Stock());
  EXPECT_LE(two, one);  // each extra NEG can only remove matches
}

TEST(TableOneTemplates, QA9UnionsItsBranches) {
  auto s = Stock().schema_ptr();
  const Pattern disj = QA9(s, 3, 10, 20, 0.9, 1.1, 0.85, 1.2, 14);
  auto plans = CompilePlans(disj);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans.value().size(), 2u);
}

TEST(TableTwoTemplates, InstantiateAndScaleWithLength) {
  const EventStream synth = SyntheticStream(1500, 52);
  auto s = synth.schema_ptr();
  for (size_t len : {4, 5, 6}) {
    const Pattern pattern = QBOfLength(s, len, 30);
    EXPECT_TRUE(pattern.Validate().ok());
    auto plans = CompilePlans(pattern);
    ASSERT_TRUE(plans.ok());
    EXPECT_EQ(plans.value()[0].num_positions(), len);
  }
}

TEST(TableTwoTemplates, WiderBandsMeanMoreMatches) {
  const EventStream synth = SyntheticStream(3000, 53);
  auto s = synth.schema_ptr();
  const size_t tight = CountMatches(QB3(s, 60, 0.85, 1.15), synth);
  const size_t wide = CountMatches(QB3(s, 60, 0.3, 3.0), synth);
  EXPECT_LE(tight, wide);
}

TEST(Recipes, StreamsAreReproducibleAndSized) {
  const EventStream a = StockTrainStream();
  const EventStream b = StockTrainStream();
  ASSERT_EQ(a.size(), kTrainEvents);
  EXPECT_EQ(a[100].type, b[100].type);
  EXPECT_EQ(StockTestStream().size(), kTestEvents);
}

}  // namespace
}  // namespace workloads
}  // namespace dlacep
